//! Property-based tests (proptest) over the whole stack: generator programs
//! always parse and analyze; printing round-trips; gadget extraction and
//! the interpreter never panic on generator output; SPP length invariance.

use proptest::prelude::*;
use sevuldet_analysis::ProgramAnalysis;
use sevuldet_dataset::{case_for, CaseOpts, Origin};
use sevuldet_gadget::Category;
use sevuldet_gadget::{find_special_tokens, generate_all, GadgetKind, Normalizer, SliceConfig};
use sevuldet_interp::Interp;
use sevuldet_lang::printer::{program_to_string, stmt_tokens};

fn arb_opts() -> impl Strategy<Value = (u64, usize, bool, bool, bool, usize)> {
    (
        any::<u64>(),
        0usize..4,
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        0usize..12,
    )
}

fn build_case(
    seed: u64,
    cat_idx: usize,
    vulnerable: bool,
    displaced: bool,
    interproc: bool,
    filler: usize,
) -> sevuldet_dataset::ProgramSample {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let opts = CaseOpts {
        vulnerable,
        displaced_guard: displaced,
        filler,
        interproc,
        origin: Origin::SardSim,
    };
    case_for(Category::ALL[cat_idx], &mut rng, &opts, 0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every template instantiation parses, analyzes, and yields gadgets
    /// without panicking; labels agree with the flaw-line ground truth.
    #[test]
    fn generated_programs_survive_the_whole_pipeline(
        (seed, cat, vuln, displaced, interproc, filler) in arb_opts()
    ) {
        let case = build_case(seed, cat, vuln, displaced, interproc, filler);
        let program = sevuldet_lang::parse(&case.source)
            .unwrap_or_else(|e| panic!("{e}\n{}", case.source));
        let analysis = ProgramAnalysis::analyze(&program);
        let tokens = find_special_tokens(&program, &analysis);
        prop_assert!(!tokens.is_empty(), "every template has special tokens");
        for kind in [GadgetKind::Classic, GadgetKind::PathSensitive] {
            let gadgets = generate_all(&program, &analysis, &tokens, kind, &SliceConfig::default());
            prop_assert_eq!(gadgets.len(), tokens.len());
            for g in &gadgets {
                prop_assert!(!g.lines.is_empty());
                let n = Normalizer::normalize_gadget(g);
                prop_assert_eq!(n.lines.len(), g.lines.len());
                // Line numbers stay sorted within each function.
                let mut per_fn: std::collections::HashMap<&str, u32> = Default::default();
                for l in &n.lines {
                    let prev = per_fn.entry(l.func.as_str()).or_insert(0);
                    prop_assert!(l.line >= *prev, "lines ordered in {}", l.func);
                    *prev = l.line;
                }
            }
        }
        prop_assert_eq!(case.vulnerable, !case.flaw_lines.is_empty());
    }

    /// Pretty-printing a generated program and re-parsing it preserves every
    /// statement's token stream (parser ↔ printer coherence).
    #[test]
    fn print_parse_roundtrip(
        (seed, cat, vuln, displaced, interproc, filler) in arb_opts()
    ) {
        let case = build_case(seed, cat, vuln, displaced, interproc, filler);
        let p1 = sevuldet_lang::parse(&case.source).unwrap();
        let printed = program_to_string(&p1);
        let p2 = sevuldet_lang::parse(&printed)
            .unwrap_or_else(|e| panic!("{e}\n{printed}"));
        let streams = |p: &sevuldet_lang::Program| -> Vec<Vec<Vec<String>>> {
            p.functions()
                .map(|f| f.body.stmts.iter().map(stmt_tokens).collect())
                .collect()
        };
        prop_assert_eq!(streams(&p1), streams(&p2));
    }

    /// The interpreter never panics on generator output, whatever the input
    /// bytes; it either completes or reports a typed fault.
    #[test]
    fn interpreter_is_total_on_generated_programs(
        (seed, cat, vuln, displaced, interproc, filler) in arb_opts(),
        input in proptest::collection::vec(any::<u8>(), 0..32)
    ) {
        let case = build_case(seed, cat, vuln, displaced, interproc, filler);
        let program = sevuldet_lang::parse(&case.source).unwrap();
        let interp = Interp::new(&program);
        let result = interp.run_main(&input);
        // Either a clean exit or a typed fault; both carry coverage.
        prop_assert!(result.steps > 0);
        match result.value {
            Ok(_) => {}
            Err(fault) => {
                let _ = fault.to_string();
            }
        }
    }

    /// SPP emits the same output length whatever the input length — the
    /// architectural property the paper's flexible-length claim rests on.
    #[test]
    fn spp_output_is_always_fixed_length(len in 1usize..900, channels in 1usize..12) {
        let mut spp = sevuldet_nn::Spp::paper();
        let data: Vec<f64> = (0..len * channels).map(|i| (i % 17) as f64).collect();
        let x = sevuldet_nn::Tensor::from_vec(&[len, channels], data);
        let y = spp.forward(&x);
        prop_assert_eq!(y.len(), 7 * channels);
    }
}
