//! Cross-crate checks of the Fig. 5 mechanism claims: each classical
//! detector exhibits the failure mode the paper attributes to it, measured
//! on the synthetic corpus.

use sevuldet::Confusion;
use sevuldet_dataset::{sard, SardConfig};
use sevuldet_static::{Checkmarx, Flawfinder, Rats, StaticDetector, Vuddy};

fn corpus() -> Vec<sevuldet_dataset::ProgramSample> {
    sard::generate(&SardConfig {
        per_category: 30,
        seed: 99,
        ..SardConfig::default()
    })
}

fn evaluate(flag: impl Fn(&str) -> bool, samples: &[sevuldet_dataset::ProgramSample]) -> Confusion {
    let mut c = Confusion::default();
    for p in samples {
        c.record(flag(&p.source), p.vulnerable);
    }
    c
}

#[test]
fn lexical_scanners_have_both_error_kinds() {
    let samples = corpus();
    for (name, c) in [
        ("Flawfinder", evaluate(|s| Flawfinder.flags(s, 4), &samples)),
        ("RATS", evaluate(|s| Rats.flags(s, 3), &samples)),
    ] {
        assert!(
            c.fpr() > 0.15,
            "{name} must flag guarded-but-safe API uses (FPR {:.2})",
            c.fpr()
        );
        assert!(
            c.fnr() > 0.15,
            "{name} must miss non-API vulnerabilities (FNR {:.2})",
            c.fnr()
        );
    }
}

#[test]
fn checkmarx_beats_lexical_tools_on_accuracy() {
    let samples = corpus();
    let cm = evaluate(|s| Checkmarx.flags(s, 3), &samples);
    let ff = evaluate(|s| Flawfinder.flags(s, 4), &samples);
    assert!(
        cm.accuracy() > ff.accuracy(),
        "checkmarx {:.2} vs flawfinder {:.2}",
        cm.accuracy(),
        ff.accuracy()
    );
}

#[test]
fn vuddy_is_precise_but_blind_to_novelty() {
    let samples = corpus();
    let n_train = samples.len() / 2;
    let (train, test) = samples.split_at(n_train);
    let mut vuddy = Vuddy::new();
    for p in train.iter().filter(|p| p.vulnerable) {
        vuddy.fit_vulnerable_functions(&p.source, &p.flaw_lines);
    }
    let c = evaluate(|s| vuddy.flags(s), test);
    assert!(
        c.fpr() < 0.35,
        "clone matching should be relatively precise (FPR {:.2})",
        c.fpr()
    );
    assert!(
        c.fnr() > 0.3,
        "unseen structures must be missed (FNR {:.2})",
        c.fnr()
    );
}

#[test]
fn checkmarx_misses_displaced_guards() {
    // The path-sensitivity gap: guard-existence heuristics accept the
    // Fig.-1 vulnerable twin.
    use rand::SeedableRng;
    use sevuldet_dataset::{CaseOpts, Origin};
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let opts = CaseOpts {
        vulnerable: true,
        displaced_guard: true,
        filler: 0,
        interproc: false,
        origin: Origin::SardSim,
    };
    let case = sevuldet_dataset::templates::fc_case(&mut rng, &opts, 0);
    assert!(case.vulnerable);
    assert!(
        !Checkmarx.flags(&case.source, 4),
        "displaced guard fools the heuristic:\n{}",
        case.source
    );
}
