//! End-to-end check of the paper's Fig. 1 motivating example across four
//! crates: identical classic gadgets, distinct path-sensitive gadgets, and
//! the 50%-accuracy consequence.

use sevuldet::Confusion;
use sevuldet_analysis::ProgramAnalysis;
use sevuldet_gadget::{build_gadget, find_special_tokens, GadgetKind, Normalizer, SliceConfig};

const SAFE: &str = r#"void process(char *dest, char *data) {
    int n = atoi(data);
    if (n < 16) {
        strncpy(dest, data, n);
    }
}"#;

const VULNERABLE: &str = r#"void process(char *dest, char *data) {
    int n = atoi(data);
    if (n < 16) {
        puts("small");
    }
    strncpy(dest, data, n);
}"#;

fn normalized_gadget(source: &str, kind: GadgetKind) -> Vec<String> {
    let program = sevuldet_lang::parse(source).unwrap();
    let analysis = ProgramAnalysis::analyze(&program);
    let tokens = find_special_tokens(&program, &analysis);
    let strncpy = tokens.iter().find(|t| t.name == "strncpy").unwrap();
    let gadget = build_gadget(&program, &analysis, strncpy, kind, &SliceConfig::default());
    Normalizer::normalize_gadget(&gadget)
        .lines
        .iter()
        .map(|l| l.tokens.join(" "))
        .filter(|t| !t.contains("puts"))
        .collect()
}

#[test]
fn classic_gadgets_collide_path_sensitive_differ() {
    let cg_safe = normalized_gadget(SAFE, GadgetKind::Classic);
    let cg_vuln = normalized_gadget(VULNERABLE, GadgetKind::Classic);
    assert_eq!(cg_safe, cg_vuln, "Fig. 1: classic gadgets are identical");

    let ps_safe = normalized_gadget(SAFE, GadgetKind::PathSensitive);
    let ps_vuln = normalized_gadget(VULNERABLE, GadgetKind::PathSensitive);
    assert_ne!(ps_safe, ps_vuln, "Algorithm 1 disambiguates the pair");
}

#[test]
fn identical_gadgets_pin_any_classifier_at_half_accuracy() {
    // Whatever a model answers on the colliding pair, accuracy is 50%.
    for verdict in [true, false] {
        let mut c = Confusion::default();
        c.record(verdict, true); // the vulnerable twin
        c.record(verdict, false); // the safe twin
        assert_eq!(c.accuracy(), 0.5);
    }
}

#[test]
fn path_sensitive_gadget_orders_sink_relative_to_scope() {
    let ps_safe = normalized_gadget(SAFE, GadgetKind::PathSensitive);
    let ps_vuln = normalized_gadget(VULNERABLE, GadgetKind::PathSensitive);
    let pos = |lines: &[String], needle: &str| {
        lines
            .iter()
            .position(|l| l.contains(needle))
            .unwrap_or_else(|| panic!("{needle} not in {lines:?}"))
    };
    // Safe: copy before the closing brace; vulnerable: copy after it.
    assert!(pos(&ps_safe, "strncpy") < pos(&ps_safe, "}"));
    let close = ps_vuln.iter().position(|l| l == "}").expect("close brace");
    assert!(pos(&ps_vuln, "strncpy") > close);
}
