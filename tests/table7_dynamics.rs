//! The Table VII dynamic asymmetry: an AFL-style campaign finds the
//! zero-stride loop CVEs quickly but misses the magic-offset overflow.

use sevuldet_dataset::xen;
use sevuldet_interp::{fuzz, Fault, FuzzConfig, FuzzTarget, Interp};

fn campaign(source: &str, iterations: usize, seed: u64) -> sevuldet_interp::CampaignResult {
    let program = sevuldet_lang::parse(source).unwrap();
    fuzz(
        &program,
        &FuzzTarget::Harness("harness".into()),
        &FuzzConfig {
            iterations,
            seed,
            ..FuzzConfig::default()
        },
    )
}

#[test]
fn afl_finds_cve_2016_9776_zero_stride_hang() {
    let case = xen::cve_2016_9776();
    let r = campaign(&case.vulnerable.source, 2500, 11);
    assert!(
        r.found(|f| matches!(f, Fault::LoopBudget)),
        "zero stride should hang quickly: {:?}",
        r.crashes
    );
    // The patch neutralizes the zero-stride trigger itself (a fuzzing
    // campaign can still exhaust the interpreter's fuel with a huge-but-
    // finite size, so the right check is the trigger, not the campaign).
    let patched = sevuldet_lang::parse(&case.patched.source).unwrap();
    let r = Interp::new(&patched).run_function("harness", &[0, 100], &[]);
    assert!(
        r.value.is_ok(),
        "patched twin terminates on the trigger: {:?}",
        r.value
    );
}

#[test]
fn afl_finds_cve_2016_4453_fifo_hang() {
    let case = xen::cve_2016_4453();
    let r = campaign(&case.vulnerable.source, 2500, 13);
    assert!(
        r.found(|f| matches!(f, Fault::LoopBudget)),
        "zero command should hang the FIFO: {:?}",
        r.crashes
    );
    // Patched twin survives the zero-command trigger.
    let patched = sevuldet_lang::parse(&case.patched.source).unwrap();
    let r = Interp::new(&patched).run_function("harness", &[0, 5], &[]);
    assert!(
        r.value.is_ok(),
        "patched twin terminates on the trigger: {:?}",
        r.value
    );
}

#[test]
fn afl_misses_cve_2016_9104_magic_offset() {
    let case = xen::cve_2016_9104();
    let r = campaign(&case.vulnerable.source, 4000, 17);
    assert!(
        !r.found(|f| matches!(f, Fault::OutOfBounds { .. })),
        "the near-INT_MAX offset should stay out of the mutator's reach: {:?}",
        r.crashes
    );
}

#[test]
fn cve_2016_9104_is_triggerable_with_the_magic_offset() {
    // The vulnerability is real — direct execution with the boundary offset
    // bypasses the check and faults; the patched twin rejects it.
    let case = xen::cve_2016_9104();
    // The harness couples its fields like the transport does; the magic
    // offset must come with the matching second field.
    let offset = i32::MAX - 10;
    let coupled = offset % 977;
    assert!(coupled > 10, "chosen offset must wrap the check");
    let program = sevuldet_lang::parse(&case.vulnerable.source).unwrap();
    let interp = Interp::new(&program);
    let r = interp.run_function("harness", &[offset, coupled], &[]);
    assert!(
        matches!(r.fault(), Some(Fault::OutOfBounds { .. })),
        "magic offset must bypass the check: {:?}",
        r.value
    );
    let patched = sevuldet_lang::parse(&case.patched.source).unwrap();
    let r = Interp::new(&patched).run_function("harness", &[offset, coupled], &[]);
    assert_eq!(r.value, Ok(-1), "patched check rejects the magic offset");
}

#[test]
fn cve_analogues_behave_correctly_on_benign_inputs() {
    // Each analogue has inputs that exercise the code without the trigger
    // (4453's FIFO needs a slot chain that actually reaches `stop`).
    let benign = [
        ("CVE-2016-4453", (1, 31)),
        ("CVE-2016-9104", (4, 4)),
        ("CVE-2016-9776", (4, 100)),
    ];
    for case in xen::cve_cases() {
        let (_, args) = benign
            .iter()
            .find(|(cve, _)| *cve == case.cve)
            .expect("known case");
        let program = sevuldet_lang::parse(&case.vulnerable.source).unwrap();
        let interp = Interp::new(&program);
        let r = interp.run_function("harness", &[args.0, args.1], &[]);
        assert!(
            r.value.is_ok(),
            "{} must run clean on benign input {:?}: {:?}",
            case.cve,
            args,
            r.value
        );
    }
}
