//! Cross-tier acceptance: the f32/SIMD and int8 inference tiers must agree
//! with the bit-exact f64 reference on the repro corpus — scores within the
//! documented envelopes (f32 ≤ 1e-3, int8 ≤ 1e-1 on sigmoid
//! probabilities), and identical flag decisions on every gadget whose f64
//! score clears the threshold by more than the tier's envelope (inside
//! that band a flag is, by construction, quantization-sensitive — no
//! reduced-precision tier can promise otherwise). The model makes a
//! save/load round trip first, so the tiers run exactly the way `scan`,
//! `serve`, and the repro harness get them: from a sealed v3 file whose
//! calibration section feeds int8.

use sevuldet::{
    load_detector, prepare_source, save_detector, score_prepared_mut, Detector, GadgetSpec,
    ModelKind, Precision, PreparedSource, TrainConfig,
};
use sevuldet_dataset::{sard, SardConfig};

/// f32 end-to-end score envelope (see `sevuldet_nn::kernels_f32` docs).
const F32_TOL: f64 = 1e-3;
/// int8 end-to-end score envelope (per-tensor symmetric quantization).
const INT8_TOL: f64 = 1e-1;

const LEAKY: &str = r#"void process(char *dest, char *data) {
    int n = atoi(data);
    if (n < 16) {
        puts("small");
    }
    strncpy(dest, data, n);
}"#;

const CLEAN: &str = "int three() { return 3; }";

fn trained_round_tripped() -> Detector {
    let samples = sard::generate(&SardConfig {
        per_category: 8,
        ..SardConfig::default()
    });
    let corpus = GadgetSpec::path_sensitive().extract(&samples);
    // Enough epochs to polarize the scores: an undertrained model keeps
    // every probability pinned near the threshold, which would make the
    // flag-identity assertion below vacuous.
    let cfg = TrainConfig {
        embed_dim: 12,
        w2v_epochs: 2,
        epochs: 14,
        cnn_channels: 8,
        ..TrainConfig::quick()
    };
    let mut det = Detector::train(&corpus, ModelKind::SevulDet, &cfg);
    // v3 save attaches the int8 calibration section; load is how every
    // consumer (CLI, server, this test) actually receives the model.
    let text = save_detector(&mut det);
    load_detector(&text).expect("round trip")
}

/// A small scan corpus: the paper's motivating example, a clean source, and
/// a handful of generated SARD samples (fresh seed so they are not the
/// training set).
fn scan_corpus() -> Vec<PreparedSource> {
    let mut sources: Vec<String> = vec![LEAKY.to_string(), CLEAN.to_string()];
    let held_out = sard::generate(&SardConfig {
        per_category: 2,
        seed: 777,
        ..SardConfig::default()
    });
    sources.extend(held_out.iter().take(8).map(|s| s.source.clone()));
    sources
        .iter()
        .map(|s| prepare_source(s, 1).expect("corpus parses"))
        .collect()
}

fn scores_at(det: &mut Detector, prepared: &[PreparedSource], p: Precision) -> Vec<(f64, bool)> {
    det.set_precision(p)
        .unwrap_or_else(|e| panic!("set_precision({p}): {e}"));
    score_prepared_mut(det, prepared, 1)
        .expect("scores")
        .iter()
        .flat_map(|r| r.findings.iter().map(|f| (f.score, f.flagged)))
        .collect()
}

#[test]
fn fast_tiers_match_f64_flags_within_envelope() {
    let mut det = trained_round_tripped();
    let threshold = det.threshold();
    let prepared = scan_corpus();
    let reference = scores_at(&mut det, &prepared, Precision::F64);
    assert!(
        reference.len() >= 4,
        "corpus should yield several gadgets, got {}",
        reference.len()
    );

    for (precision, tol) in [(Precision::F32, F32_TOL), (Precision::Int8, INT8_TOL)] {
        let fast = scores_at(&mut det, &prepared, precision);
        assert_eq!(fast.len(), reference.len());
        let mut max_delta = 0.0f64;
        let mut near_threshold = 0usize;
        for (i, ((ref_score, ref_flag), (score, flag))) in reference.iter().zip(&fast).enumerate() {
            let delta = (ref_score - score).abs();
            max_delta = max_delta.max(delta);
            assert!(
                delta <= tol,
                "{precision} gadget {i}: |{score} - {ref_score}| = {delta} > {tol}"
            );
            if (ref_score - threshold).abs() > tol {
                assert_eq!(
                    flag, ref_flag,
                    "{precision} gadget {i} flag flipped (f64 {ref_score}, {precision} {score})"
                );
            } else {
                near_threshold += 1;
            }
        }
        // The near-threshold carve-out must stay a carve-out: if a large
        // share of the corpus sits inside the envelope, the flag-identity
        // claim above is vacuous.
        assert!(
            near_threshold * 10 <= reference.len(),
            "{precision}: {near_threshold}/{} gadgets within {tol} of threshold",
            reference.len()
        );
        println!(
            "{precision}: max |Δscore| = {max_delta:.2e}, {near_threshold} near-threshold, {} gadgets",
            fast.len()
        );
    }
}

#[test]
fn switching_back_to_f64_restores_reference_scores() {
    let mut det = trained_round_tripped();
    let prepared = scan_corpus();
    let before = scores_at(&mut det, &prepared, Precision::F64);
    let _ = scores_at(&mut det, &prepared, Precision::Int8);
    let after = scores_at(&mut det, &prepared, Precision::F64);
    // f64 is the bit-exact reference tier: a trip through a fast tier must
    // not perturb it.
    assert_eq!(before, after);
}
