//! Full-pipeline integration: corpus generation → gadget extraction →
//! embedding → training → evaluation, plus the k-fold machinery of Step II.

use sevuldet::{
    encode, k_folds, run_split, stratified_split, Confusion, GadgetSpec, ModelKind, TrainConfig,
};
use sevuldet_dataset::{sard, SardConfig};
use sevuldet_gadget::Category;

fn quick() -> TrainConfig {
    TrainConfig {
        embed_dim: 12,
        w2v_epochs: 1,
        epochs: 10,
        cnn_channels: 12,
        rnn_hidden: 8,
        rnn_steps: 80,
        threshold: 0.5,
        ..TrainConfig::quick()
    }
}

#[test]
fn end_to_end_detection_beats_chance() {
    let samples = sard::generate(&SardConfig {
        per_category: 18,
        displaced_fraction: 0.0,
        long_fraction: 0.0,
        ..SardConfig::default()
    });
    let corpus = GadgetSpec::path_sensitive().extract(&samples);
    let idx = corpus.indices_of(None);
    let (train, test) = stratified_split(&corpus, &idx, 0.25, 3);
    let c = run_split(&corpus, ModelKind::SevulDet, &quick(), &train, &test);
    assert!(c.total() == test.len());
    assert!(c.accuracy() > 0.6, "{c}");
}

#[test]
fn five_fold_cross_validation_covers_everything() {
    let samples = sard::generate(&SardConfig {
        per_category: 8,
        ..SardConfig::default()
    });
    let corpus = GadgetSpec::path_sensitive().extract(&samples);
    let idx = corpus.indices_of(None);
    let folds = k_folds(&idx, 5, 7);
    assert_eq!(folds.len(), 5);
    let mut merged = Confusion::default();
    let mut tested = 0;
    for (train, test) in &folds {
        assert_eq!(train.len() + test.len(), idx.len());
        tested += test.len();
        // A majority-class "model" exercises only the metric plumbing.
        for &i in test {
            merged.record(false, corpus.items[i].label);
        }
        let _ = train;
    }
    assert_eq!(tested, idx.len());
    assert_eq!(merged.total(), idx.len());
}

#[test]
fn encode_vocabulary_covers_corpus_tokens() {
    let samples = sard::generate(&SardConfig {
        per_category: 6,
        ..SardConfig::default()
    });
    let corpus = GadgetSpec::path_sensitive().extract(&samples);
    let enc = encode(&corpus, &quick());
    // Every token of every gadget resolves to a non-<unk> id (min_count=1).
    for (ids, item) in enc.ids.iter().zip(&corpus.items) {
        for (&id, tok) in ids.iter().zip(&item.tokens) {
            assert!(id != 1, "token {tok} unexpectedly <unk>");
        }
    }
}

#[test]
fn all_four_categories_produce_learnable_corpora() {
    let samples = sard::generate(&SardConfig {
        per_category: 16,
        displaced_fraction: 0.0,
        ..SardConfig::default()
    });
    let corpus = GadgetSpec::path_sensitive().extract(&samples);
    for cat in Category::ALL {
        let idx = corpus.indices_of(Some(cat));
        let pos = idx.iter().filter(|&&i| corpus.items[i].label).count();
        assert!(
            pos > 0 && pos < idx.len(),
            "category {cat} needs both classes ({pos}/{})",
            idx.len()
        );
    }
}

#[test]
fn data_only_slicing_yields_smaller_gadgets() {
    let samples = sard::generate(&SardConfig {
        per_category: 8,
        ..SardConfig::default()
    });
    let with_cd = GadgetSpec::classic().extract(&samples);
    let without_cd = GadgetSpec::data_only().extract(&samples);
    let avg = |c: &sevuldet::GadgetCorpus| {
        c.items.iter().map(|i| i.tokens.len()).sum::<usize>() as f64 / c.len() as f64
    };
    assert!(
        avg(&without_cd) < avg(&with_cd),
        "dropping control dependence must shrink slices: {} vs {}",
        avg(&without_cd),
        avg(&with_cd)
    );
}

#[test]
fn cross_validation_merges_fold_results() {
    let samples = sard::generate(&SardConfig {
        per_category: 8,
        displaced_fraction: 0.0,
        long_fraction: 0.0,
        ..SardConfig::default()
    });
    let corpus = GadgetSpec::path_sensitive().extract(&samples);
    let mut cfg = quick();
    cfg.epochs = 2;
    let (per_fold, merged) = sevuldet::cross_validate(&corpus, ModelKind::SevulDet, &cfg, 3);
    assert_eq!(per_fold.len(), 3);
    let total: usize = per_fold.iter().map(|c| c.total()).sum();
    assert_eq!(total, corpus.len(), "every gadget tested exactly once");
    assert_eq!(merged.total(), corpus.len());
}
