//! Grammar-coverage integration tests for the mini-C front end.

use sevuldet_lang::ast::*;
use sevuldet_lang::printer::{program_to_string, stmt_tokens};
use sevuldet_lang::{parse, ParseError};

fn parses(src: &str) -> Program {
    parse(src).unwrap_or_else(|e: ParseError| panic!("{e}\n{src}"))
}

#[test]
fn single_statement_control_bodies_are_wrapped() {
    let p = parses("void f(int n) { if (n) g(); else h(); while (n) n--; for (;;) break; }");
    let f = p.function("f").unwrap();
    match &f.body.stmts[0].kind {
        StmtKind::If {
            then, else_block, ..
        } => {
            assert_eq!(then.stmts.len(), 1);
            assert_eq!(else_block.as_ref().unwrap().body.stmts.len(), 1);
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn empty_for_clauses() {
    let p = parses("void f() { for (;;) { break; } }");
    let f = p.function("f").unwrap();
    match &f.body.stmts[0].kind {
        StmtKind::For {
            init, cond, step, ..
        } => {
            assert!(init.is_none());
            assert!(cond.is_none());
            assert!(step.is_none());
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn nested_ternary_and_logical_precedence() {
    let p = parses("int f(int a, int b) { return a && b ? a : b || a ? 1 : 2; }");
    let f = p.function("f").unwrap();
    let StmtKind::Return(Some(e)) = &f.body.stmts[0].kind else {
        panic!()
    };
    assert!(matches!(e.kind, ExprKind::Ternary { .. }));
}

#[test]
fn deeply_nested_expressions_do_not_overflow() {
    let mut expr = String::from("x");
    for _ in 0..200 {
        expr = format!("({expr} + 1)");
    }
    let src = format!("int f(int x) {{ return {expr}; }}");
    parses(&src);
}

#[test]
fn chained_else_if_keeps_source_lines() {
    let src = "void f(int n) {\n  if (n == 1) {\n    a();\n  } else if (n == 2) {\n    b();\n  } else if (n == 3) {\n    c();\n  } else {\n    d();\n  }\n}";
    let p = parses(src);
    let f = p.function("f").unwrap();
    let StmtKind::If {
        else_ifs,
        else_block,
        ..
    } = &f.body.stmts[0].kind
    else {
        panic!()
    };
    assert_eq!(else_ifs.len(), 2);
    assert_eq!(else_ifs[0].span.start.line, 4);
    assert_eq!(else_ifs[1].span.start.line, 6);
    assert_eq!(else_block.as_ref().unwrap().span.start.line, 8);
}

#[test]
fn multi_dimensional_arrays() {
    let p = parses("void f() { int grid[4][8]; grid[1][2] = 3; }");
    let f = p.function("f").unwrap();
    let StmtKind::Decl(d) = &f.body.stmts[0].kind else {
        panic!()
    };
    assert_eq!(d.array_dims, vec![Some(4), Some(8)]);
}

#[test]
fn comments_and_directives_everywhere() {
    let src = r#"
#include <string.h>
// leading comment
int /* inline */ f(int a /* param */) {
    // statement comment
    return a; /* trailing */
}
#define UNUSED 1
"#;
    let p = parses(src);
    assert!(p.function("f").is_some());
}

#[test]
fn printer_emits_compilable_switch() {
    let src = "void f(int x) { switch (x) { case 1: g(); break; default: h(); } }";
    let p = parses(src);
    let printed = program_to_string(&p);
    let p2 = parses(&printed);
    let toks = |p: &Program| -> Vec<Vec<String>> {
        p.function("f")
            .unwrap()
            .body
            .stmts
            .iter()
            .map(stmt_tokens)
            .collect()
    };
    assert_eq!(toks(&p), toks(&p2));
}

#[test]
fn error_positions_are_meaningful() {
    let err = parse("void f() {\n  int x = ;\n}").unwrap_err();
    assert_eq!(err.span.start.line, 2);
    let err = parse("void f( {").unwrap_err();
    assert_eq!(err.span.start.line, 1);
}

#[test]
fn sizeof_precedence_binds_tightly() {
    let p = parses("int f(int x) { return sizeof x + 1; }");
    let f = p.function("f").unwrap();
    let StmtKind::Return(Some(e)) = &f.body.stmts[0].kind else {
        panic!()
    };
    // sizeof x + 1 parses as (sizeof x) + 1.
    match &e.kind {
        ExprKind::Binary {
            op: BinaryOp::Add,
            lhs,
            ..
        } => {
            assert!(matches!(lhs.kind, ExprKind::Sizeof(_)));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn address_of_and_deref_chains() {
    parses("void f(int **pp, int *p, int x) { *pp = p; **pp = x; p = &x; g(&p); }");
}

#[test]
fn hex_char_escapes_and_negative_literals() {
    let p = parses("void f() { int a = 0x10; int b = -3; char c = '\\n'; char z = '\\0'; }");
    let f = p.function("f").unwrap();
    let inits: Vec<i64> = f
        .body
        .stmts
        .iter()
        .filter_map(|s| match &s.kind {
            StmtKind::Decl(d) => d.init.as_ref().map(|e| match &e.kind {
                ExprKind::IntLit(v) => *v,
                ExprKind::CharLit(v) => *v,
                ExprKind::Unary { expr, .. } => match expr.kind {
                    ExprKind::IntLit(v) => -v,
                    _ => 0,
                },
                _ => 0,
            }),
            _ => None,
        })
        .collect();
    assert_eq!(inits, vec![16, -3, 10, 0]);
}
