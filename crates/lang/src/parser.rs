//! Recursive-descent parser for mini-C.
//!
//! The grammar is a practical subset of C: functions, globals, structs,
//! pointers, arrays, the eight structured control statements that Algorithm 1
//! recognises as key nodes (`if`, `else if`, `else`, `for`, `while`,
//! `do while`, `switch`, `case`), and a full expression grammar with C
//! precedence. `goto` is lexed but rejected here: the paper excludes jump
//! statements from key nodes, and the synthetic corpora never emit them.

use crate::ast::*;
use crate::error::{ParseError, ParseResult};
use crate::lexer::tokenize;
use crate::span::Span;
use crate::token::{Keyword, Punct, Token, TokenKind};

/// Parses a complete mini-C translation unit.
///
/// # Errors
///
/// Returns the first lexical or syntactic error.
///
/// # Examples
///
/// ```
/// let prog = sevuldet_lang::parse("int main() { return 0; }").unwrap();
/// assert!(prog.function("main").is_some());
/// ```
pub fn parse(src: &str) -> ParseResult<Program> {
    let tokens = tokenize(src)?;
    let _t = sevuldet_trace::span!("lang.parse");
    Parser::new(tokens).program()
}

/// Hard cap on parser recursion (statement nesting + expression nesting
/// combined). Recursive descent uses the call stack, so pathological inputs
/// — thousands of `{`, `(`, or unary operators — would otherwise overflow
/// it and abort the process instead of returning a parse error. 300 keeps
/// 200-deep real-world expressions parseable (pinned by the grammar suite)
/// with ample stack margin on 2 MiB worker threads.
const MAX_DEPTH: usize = 300;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    next_stmt_id: u32,
    depth: usize,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser {
            tokens,
            pos: 0,
            next_stmt_id: 0,
            depth: 0,
        }
    }

    /// Bumps the recursion depth, failing with a parse error (not a stack
    /// overflow) past [`MAX_DEPTH`]. Paired with a manual decrement in the
    /// guarded entry points.
    fn enter(&mut self) -> ParseResult<()> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(ParseError::new(
                format!("nesting too deep (limit {MAX_DEPTH})"),
                self.peek().span,
            ));
        }
        Ok(())
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_at(&self, n: usize) -> &Token {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek().kind, TokenKind::Eof)
    }

    fn expect_punct(&mut self, p: Punct) -> ParseResult<Token> {
        if self.peek().is_punct(p) {
            Ok(self.bump())
        } else {
            Err(self.unexpected(&format!("`{}`", p.as_str())))
        }
    }

    fn expect_keyword(&mut self, k: Keyword) -> ParseResult<Token> {
        if self.peek().is_keyword(k) {
            Ok(self.bump())
        } else {
            Err(self.unexpected(&format!("`{}`", k.as_str())))
        }
    }

    fn expect_ident(&mut self) -> ParseResult<(String, Span)> {
        match &self.peek().kind {
            TokenKind::Ident(_) => {
                let t = self.bump();
                match t.kind {
                    TokenKind::Ident(name) => Ok((name, t.span)),
                    _ => unreachable!(),
                }
            }
            _ => Err(self.unexpected("an identifier")),
        }
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if self.peek().is_punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, k: Keyword) -> bool {
        if self.peek().is_keyword(k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn unexpected(&self, wanted: &str) -> ParseError {
        let t = self.peek();
        ParseError::new(
            format!("expected {wanted}, found `{}`", t.kind.surface()),
            t.span,
        )
    }

    fn fresh_stmt_id(&mut self) -> StmtId {
        let id = StmtId(self.next_stmt_id);
        self.next_stmt_id += 1;
        id
    }

    // ---------------------------------------------------------------- items

    fn program(&mut self) -> ParseResult<Program> {
        let mut items = Vec::new();
        while !self.at_eof() {
            items.push(self.item()?);
        }
        Ok(Program { items })
    }

    fn item(&mut self) -> ParseResult<Item> {
        // `struct Name { ... };` definition (vs `struct Name` used as a type).
        if self.peek().is_keyword(Keyword::Struct)
            && matches!(self.peek_at(1).kind, TokenKind::Ident(_))
            && self.peek_at(2).is_punct(Punct::LBrace)
        {
            return Ok(Item::Struct(self.struct_def()?));
        }
        let start = self.peek().span;
        let ty = self.type_spec()?;
        let (name, _) = self.expect_ident()?;
        if self.peek().is_punct(Punct::LParen) {
            let f = self.function_rest(ty, name, start)?;
            Ok(Item::Function(f))
        } else {
            let decl = self.decl_rest(ty, name, start)?;
            self.expect_punct(Punct::Semi)?;
            Ok(Item::Global(decl))
        }
    }

    fn struct_def(&mut self) -> ParseResult<StructDef> {
        let start = self.expect_keyword(Keyword::Struct)?.span;
        let (name, _) = self.expect_ident()?;
        self.expect_punct(Punct::LBrace)?;
        let mut fields = Vec::new();
        while !self.peek().is_punct(Punct::RBrace) {
            let fstart = self.peek().span;
            let ty = self.type_spec()?;
            let (fname, _) = self.expect_ident()?;
            let field = self.decl_rest(ty, fname, fstart)?;
            self.expect_punct(Punct::Semi)?;
            fields.push(field);
        }
        self.expect_punct(Punct::RBrace)?;
        let end = self.expect_punct(Punct::Semi)?.span;
        Ok(StructDef {
            name,
            fields,
            span: start.merge(end),
        })
    }

    fn function_rest(&mut self, ret: TypeSpec, name: String, start: Span) -> ParseResult<Function> {
        self.expect_punct(Punct::LParen)?;
        let mut params = Vec::new();
        if !self.peek().is_punct(Punct::RParen) {
            // `void` parameter list.
            if self.peek().is_keyword(Keyword::Void) && self.peek_at(1).is_punct(Punct::RParen) {
                self.bump();
            } else {
                loop {
                    params.push(self.param()?);
                    if !self.eat_punct(Punct::Comma) {
                        break;
                    }
                }
            }
        }
        self.expect_punct(Punct::RParen)?;
        let body = self.block()?;
        let span = start.merge(body.span);
        Ok(Function {
            name,
            ret,
            params,
            body,
            span,
        })
    }

    fn param(&mut self) -> ParseResult<Param> {
        let start = self.peek().span;
        let ty = self.type_spec()?;
        let (name, nspan) = self.expect_ident()?;
        let mut array_dims = Vec::new();
        let mut end = nspan;
        while self.peek().is_punct(Punct::LBracket) {
            self.bump();
            if self.peek().is_punct(Punct::RBracket) {
                array_dims.push(None);
            } else if let TokenKind::IntLit(n) = self.peek().kind {
                self.bump();
                array_dims.push(Some(n));
            } else {
                return Err(self.unexpected("an array dimension"));
            }
            end = self.expect_punct(Punct::RBracket)?.span;
        }
        Ok(Param {
            name,
            ty,
            array_dims,
            span: start.merge(end),
        })
    }

    // ---------------------------------------------------------------- types

    fn at_type_start(&self) -> bool {
        matches!(
            self.peek().kind,
            TokenKind::Keyword(
                Keyword::Int
                    | Keyword::Char
                    | Keyword::Void
                    | Keyword::Long
                    | Keyword::Short
                    | Keyword::Float
                    | Keyword::Double
                    | Keyword::Unsigned
                    | Keyword::Signed
                    | Keyword::SizeT
                    | Keyword::Struct
                    | Keyword::Const
                    | Keyword::Static
            )
        )
    }

    fn type_spec(&mut self) -> ParseResult<TypeSpec> {
        // Swallow qualifiers.
        while self.eat_keyword(Keyword::Const) || self.eat_keyword(Keyword::Static) {}
        let mut parts: Vec<&'static str> = Vec::new();
        let mut struct_name: Option<String> = None;
        while let TokenKind::Keyword(kw) = &self.peek().kind {
            let kw = *kw;
            match kw {
                Keyword::Int
                | Keyword::Char
                | Keyword::Void
                | Keyword::Long
                | Keyword::Short
                | Keyword::Float
                | Keyword::Double
                | Keyword::Unsigned
                | Keyword::Signed
                | Keyword::SizeT => {
                    parts.push(kw.as_str());
                    self.bump();
                }
                Keyword::Struct => {
                    self.bump();
                    let (name, _) = self.expect_ident()?;
                    struct_name = Some(format!("struct {name}"));
                    break;
                }
                Keyword::Const => {
                    self.bump();
                }
                _ => break,
            }
        }
        let name = if let Some(s) = struct_name {
            s
        } else if parts.is_empty() {
            return Err(self.unexpected("a type"));
        } else {
            parts.join(" ")
        };
        let mut depth: u8 = 0;
        while self.peek().is_punct(Punct::Star) {
            self.bump();
            depth += 1;
            // Swallow `const` between stars.
            while self.eat_keyword(Keyword::Const) {}
        }
        Ok(TypeSpec {
            name,
            ptr_depth: depth,
        })
    }

    fn decl_rest(&mut self, ty: TypeSpec, name: String, start: Span) -> ParseResult<Decl> {
        let mut array_dims = Vec::new();
        let mut end = start;
        while self.peek().is_punct(Punct::LBracket) {
            self.bump();
            if self.peek().is_punct(Punct::RBracket) {
                array_dims.push(None);
            } else {
                // Constant dimensions only (mini-C forbids VLAs in
                // declarations the analyses must size).
                let dim = self.assignment_expr()?;
                match const_eval(&dim) {
                    Some(n) => array_dims.push(Some(n)),
                    None => array_dims.push(None),
                }
            }
            end = self.expect_punct(Punct::RBracket)?.span;
        }
        let init = if self.eat_punct(Punct::Eq) {
            let e = self.assignment_expr()?;
            end = e.span;
            Some(e)
        } else {
            None
        };
        Ok(Decl {
            name,
            ty,
            array_dims,
            init,
            span: start.merge(end),
        })
    }

    // ----------------------------------------------------------- statements

    fn block(&mut self) -> ParseResult<Block> {
        let start = self.expect_punct(Punct::LBrace)?.span;
        let mut stmts = Vec::new();
        while !self.peek().is_punct(Punct::RBrace) {
            if self.at_eof() {
                return Err(self.unexpected("`}`"));
            }
            stmts.push(self.stmt()?);
        }
        let end = self.expect_punct(Punct::RBrace)?.span;
        Ok(Block {
            stmts,
            span: start.merge(end),
        })
    }

    /// Parses a statement; single non-block bodies of control statements are
    /// wrapped into one-statement blocks by `body_block`.
    fn stmt(&mut self) -> ParseResult<Stmt> {
        self.enter()?;
        let result = self.stmt_inner();
        self.depth -= 1;
        result
    }

    fn stmt_inner(&mut self) -> ParseResult<Stmt> {
        let id = self.fresh_stmt_id();
        let start = self.peek().span;
        let kind_span: (StmtKind, Span) = match &self.peek().kind {
            TokenKind::Punct(Punct::LBrace) => {
                let b = self.block()?;
                let sp = b.span;
                (StmtKind::Block(b), sp)
            }
            TokenKind::Keyword(Keyword::If) => self.if_stmt()?,
            TokenKind::Keyword(Keyword::While) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                let body = self.body_block()?;
                let sp = start.merge(body.span);
                (StmtKind::While { cond, body }, sp)
            }
            TokenKind::Keyword(Keyword::Do) => {
                self.bump();
                let body = self.body_block()?;
                self.expect_keyword(Keyword::While)?;
                self.expect_punct(Punct::LParen)?;
                let cond = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                let end = self.expect_punct(Punct::Semi)?.span;
                (StmtKind::DoWhile { body, cond }, start.merge(end))
            }
            TokenKind::Keyword(Keyword::For) => self.for_stmt(start)?,
            TokenKind::Keyword(Keyword::Switch) => self.switch_stmt(start)?,
            TokenKind::Keyword(Keyword::Break) => {
                self.bump();
                let end = self.expect_punct(Punct::Semi)?.span;
                (StmtKind::Break, start.merge(end))
            }
            TokenKind::Keyword(Keyword::Continue) => {
                self.bump();
                let end = self.expect_punct(Punct::Semi)?.span;
                (StmtKind::Continue, start.merge(end))
            }
            TokenKind::Keyword(Keyword::Return) => {
                self.bump();
                let value = if self.peek().is_punct(Punct::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                let end = self.expect_punct(Punct::Semi)?.span;
                (StmtKind::Return(value), start.merge(end))
            }
            TokenKind::Keyword(Keyword::Goto) => {
                return Err(ParseError::new(
                    "`goto` is not part of mini-C (jump statements are excluded from key nodes)",
                    start,
                ));
            }
            _ if self.at_type_start() => {
                let ty = self.type_spec()?;
                let (name, _) = self.expect_ident()?;
                let decl = self.decl_rest(ty, name, start)?;
                let end = self.expect_punct(Punct::Semi)?.span;
                (StmtKind::Decl(decl), start.merge(end))
            }
            _ => {
                let e = self.expr()?;
                let end = self.expect_punct(Punct::Semi)?.span;
                (StmtKind::Expr(e), start.merge(end))
            }
        };
        Ok(Stmt {
            id,
            kind: kind_span.0,
            span: kind_span.1,
        })
    }

    /// A control-statement body: either a braced block or a single statement
    /// wrapped into a synthetic block.
    fn body_block(&mut self) -> ParseResult<Block> {
        if self.peek().is_punct(Punct::LBrace) {
            self.block()
        } else {
            let s = self.stmt()?;
            let span = s.span;
            Ok(Block {
                stmts: vec![s],
                span,
            })
        }
    }

    fn if_stmt(&mut self) -> ParseResult<(StmtKind, Span)> {
        let start = self.expect_keyword(Keyword::If)?.span;
        self.expect_punct(Punct::LParen)?;
        let cond = self.expr()?;
        self.expect_punct(Punct::RParen)?;
        let then = self.body_block()?;
        let mut span = start.merge(then.span);
        let mut else_ifs = Vec::new();
        let mut else_block = None;
        while self.peek().is_keyword(Keyword::Else) {
            let else_span = self.bump().span;
            if self.peek().is_keyword(Keyword::If) {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let c = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                let b = self.body_block()?;
                let arm_span = else_span.merge(b.span);
                span = span.merge(arm_span);
                else_ifs.push(ElseIf {
                    cond: c,
                    body: b,
                    span: arm_span,
                });
            } else {
                let b = self.body_block()?;
                let blk_span = else_span.merge(b.span);
                span = span.merge(blk_span);
                else_block = Some(ElseBlock {
                    body: b,
                    span: blk_span,
                });
                break;
            }
        }
        Ok((
            StmtKind::If {
                cond,
                then,
                else_ifs,
                else_block,
            },
            span,
        ))
    }

    fn for_stmt(&mut self, start: Span) -> ParseResult<(StmtKind, Span)> {
        self.expect_keyword(Keyword::For)?;
        self.expect_punct(Punct::LParen)?;
        let init = if self.peek().is_punct(Punct::Semi) {
            self.bump();
            None
        } else if self.at_type_start() {
            let id = self.fresh_stmt_id();
            let dstart = self.peek().span;
            let ty = self.type_spec()?;
            let (name, _) = self.expect_ident()?;
            let decl = self.decl_rest(ty, name, dstart)?;
            let end = self.expect_punct(Punct::Semi)?.span;
            Some(Box::new(Stmt {
                id,
                kind: StmtKind::Decl(decl),
                span: dstart.merge(end),
            }))
        } else {
            let id = self.fresh_stmt_id();
            let e = self.expr()?;
            let sp = e.span;
            let end = self.expect_punct(Punct::Semi)?.span;
            Some(Box::new(Stmt {
                id,
                kind: StmtKind::Expr(e),
                span: sp.merge(end),
            }))
        };
        let cond = if self.peek().is_punct(Punct::Semi) {
            None
        } else {
            Some(self.expr()?)
        };
        self.expect_punct(Punct::Semi)?;
        let step = if self.peek().is_punct(Punct::RParen) {
            None
        } else {
            Some(self.expr()?)
        };
        self.expect_punct(Punct::RParen)?;
        let body = self.body_block()?;
        let span = start.merge(body.span);
        Ok((
            StmtKind::For {
                init,
                cond,
                step,
                body,
            },
            span,
        ))
    }

    fn switch_stmt(&mut self, start: Span) -> ParseResult<(StmtKind, Span)> {
        self.expect_keyword(Keyword::Switch)?;
        self.expect_punct(Punct::LParen)?;
        let scrutinee = self.expr()?;
        self.expect_punct(Punct::RParen)?;
        self.expect_punct(Punct::LBrace)?;
        let mut cases = Vec::new();
        while !self.peek().is_punct(Punct::RBrace) {
            let case_start = self.peek().span;
            let label = if self.eat_keyword(Keyword::Case) {
                let e = self.expr()?;
                self.expect_punct(Punct::Colon)?;
                CaseLabel::Case(e)
            } else if self.eat_keyword(Keyword::Default) {
                self.expect_punct(Punct::Colon)?;
                CaseLabel::Default
            } else {
                return Err(self.unexpected("`case` or `default`"));
            };
            let mut body = Vec::new();
            while !self.peek().is_punct(Punct::RBrace)
                && !self.peek().is_keyword(Keyword::Case)
                && !self.peek().is_keyword(Keyword::Default)
            {
                body.push(self.stmt()?);
            }
            let case_end = body.last().map(|s| s.span).unwrap_or(case_start);
            cases.push(SwitchCase {
                label,
                body,
                span: case_start.merge(case_end),
            });
        }
        let end = self.expect_punct(Punct::RBrace)?.span;
        Ok((StmtKind::Switch { scrutinee, cases }, start.merge(end)))
    }

    // ---------------------------------------------------------- expressions

    /// Full expression including the comma operator.
    fn expr(&mut self) -> ParseResult<Expr> {
        let mut lhs = self.assignment_expr()?;
        while self.peek().is_punct(Punct::Comma) {
            self.bump();
            let rhs = self.assignment_expr()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr {
                kind: ExprKind::Comma {
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            };
        }
        Ok(lhs)
    }

    fn assignment_expr(&mut self) -> ParseResult<Expr> {
        self.enter()?;
        let result = self.assignment_expr_inner();
        self.depth -= 1;
        result
    }

    fn assignment_expr_inner(&mut self) -> ParseResult<Expr> {
        let lhs = self.ternary_expr()?;
        let op = match &self.peek().kind {
            TokenKind::Punct(Punct::Eq) => Some(AssignOp::Assign),
            TokenKind::Punct(Punct::PlusEq) => Some(AssignOp::Add),
            TokenKind::Punct(Punct::MinusEq) => Some(AssignOp::Sub),
            TokenKind::Punct(Punct::StarEq) => Some(AssignOp::Mul),
            TokenKind::Punct(Punct::SlashEq) => Some(AssignOp::Div),
            TokenKind::Punct(Punct::PercentEq) => Some(AssignOp::Rem),
            TokenKind::Punct(Punct::ShlEq) => Some(AssignOp::Shl),
            TokenKind::Punct(Punct::ShrEq) => Some(AssignOp::Shr),
            TokenKind::Punct(Punct::AmpEq) => Some(AssignOp::And),
            TokenKind::Punct(Punct::PipeEq) => Some(AssignOp::Or),
            TokenKind::Punct(Punct::CaretEq) => Some(AssignOp::Xor),
            _ => None,
        };
        match op {
            Some(op) => {
                self.bump();
                let value = self.assignment_expr()?;
                let span = lhs.span.merge(value.span);
                Ok(Expr {
                    kind: ExprKind::Assign {
                        op,
                        target: Box::new(lhs),
                        value: Box::new(value),
                    },
                    span,
                })
            }
            None => Ok(lhs),
        }
    }

    fn ternary_expr(&mut self) -> ParseResult<Expr> {
        let cond = self.binary_expr(0)?;
        if self.eat_punct(Punct::Question) {
            let then_expr = self.expr()?;
            self.expect_punct(Punct::Colon)?;
            let else_expr = self.assignment_expr()?;
            let span = cond.span.merge(else_expr.span);
            Ok(Expr {
                kind: ExprKind::Ternary {
                    cond: Box::new(cond),
                    then_expr: Box::new(then_expr),
                    else_expr: Box::new(else_expr),
                },
                span,
            })
        } else {
            Ok(cond)
        }
    }

    /// Precedence-climbing binary expression parser.
    fn binary_expr(&mut self, min_prec: u8) -> ParseResult<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let (op, prec) = match &self.peek().kind {
                TokenKind::Punct(Punct::PipePipe) => (BinaryOp::LogOr, 1),
                TokenKind::Punct(Punct::AmpAmp) => (BinaryOp::LogAnd, 2),
                TokenKind::Punct(Punct::Pipe) => (BinaryOp::BitOr, 3),
                TokenKind::Punct(Punct::Caret) => (BinaryOp::BitXor, 4),
                TokenKind::Punct(Punct::Amp) => (BinaryOp::BitAnd, 5),
                TokenKind::Punct(Punct::EqEq) => (BinaryOp::Eq, 6),
                TokenKind::Punct(Punct::Ne) => (BinaryOp::Ne, 6),
                TokenKind::Punct(Punct::Lt) => (BinaryOp::Lt, 7),
                TokenKind::Punct(Punct::Gt) => (BinaryOp::Gt, 7),
                TokenKind::Punct(Punct::Le) => (BinaryOp::Le, 7),
                TokenKind::Punct(Punct::Ge) => (BinaryOp::Ge, 7),
                TokenKind::Punct(Punct::Shl) => (BinaryOp::Shl, 8),
                TokenKind::Punct(Punct::Shr) => (BinaryOp::Shr, 8),
                TokenKind::Punct(Punct::Plus) => (BinaryOp::Add, 9),
                TokenKind::Punct(Punct::Minus) => (BinaryOp::Sub, 9),
                TokenKind::Punct(Punct::Star) => (BinaryOp::Mul, 10),
                TokenKind::Punct(Punct::Slash) => (BinaryOp::Div, 10),
                TokenKind::Punct(Punct::Percent) => (BinaryOp::Rem, 10),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary_expr(prec + 1)?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr {
                kind: ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            };
        }
        Ok(lhs)
    }

    // Charges the depth guard only on actual self-recursion (a unary
    // operator chain like `!!!!x`); the pass-through to `postfix_expr` is
    // free so a parenthesized expression costs one depth unit per level
    // (in `assignment_expr`), not two.
    fn unary_expr(&mut self) -> ParseResult<Expr> {
        let start = self.peek().span;
        let op = match &self.peek().kind {
            TokenKind::Punct(Punct::Minus) => Some(UnaryOp::Neg),
            TokenKind::Punct(Punct::Plus) => Some(UnaryOp::Plus),
            TokenKind::Punct(Punct::Bang) => Some(UnaryOp::Not),
            TokenKind::Punct(Punct::Tilde) => Some(UnaryOp::BitNot),
            TokenKind::Punct(Punct::Star) => Some(UnaryOp::Deref),
            TokenKind::Punct(Punct::Amp) => Some(UnaryOp::AddrOf),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            self.enter()?;
            let expr = self.unary_expr();
            self.depth -= 1;
            let expr = expr?;
            let span = start.merge(expr.span);
            return Ok(Expr {
                kind: ExprKind::Unary {
                    op,
                    expr: Box::new(expr),
                },
                span,
            });
        }
        if self.peek().is_punct(Punct::PlusPlus) || self.peek().is_punct(Punct::MinusMinus) {
            let inc = self.peek().is_punct(Punct::PlusPlus);
            self.bump();
            self.enter()?;
            let expr = self.unary_expr();
            self.depth -= 1;
            let expr = expr?;
            let span = start.merge(expr.span);
            return Ok(Expr {
                kind: ExprKind::PreIncDec {
                    expr: Box::new(expr),
                    inc,
                },
                span,
            });
        }
        if self.peek().is_keyword(Keyword::Sizeof) {
            self.bump();
            if self.peek().is_punct(Punct::LParen) && self.type_starts_at(1) {
                self.bump();
                let ty = self.type_spec()?;
                let end = self.expect_punct(Punct::RParen)?.span;
                return Ok(Expr {
                    kind: ExprKind::Sizeof(SizeofArg::Type(ty)),
                    span: start.merge(end),
                });
            }
            let e = self.unary_expr()?;
            let span = start.merge(e.span);
            return Ok(Expr {
                kind: ExprKind::Sizeof(SizeofArg::Expr(Box::new(e))),
                span,
            });
        }
        // Cast: `(type) expr`.
        if self.peek().is_punct(Punct::LParen) && self.type_starts_at(1) {
            self.bump();
            let ty = self.type_spec()?;
            self.expect_punct(Punct::RParen)?;
            let expr = self.unary_expr()?;
            let span = start.merge(expr.span);
            return Ok(Expr {
                kind: ExprKind::Cast {
                    ty,
                    expr: Box::new(expr),
                },
                span,
            });
        }
        self.postfix_expr()
    }

    fn type_starts_at(&self, n: usize) -> bool {
        matches!(
            self.peek_at(n).kind,
            TokenKind::Keyword(
                Keyword::Int
                    | Keyword::Char
                    | Keyword::Void
                    | Keyword::Long
                    | Keyword::Short
                    | Keyword::Float
                    | Keyword::Double
                    | Keyword::Unsigned
                    | Keyword::Signed
                    | Keyword::SizeT
                    | Keyword::Struct
                    | Keyword::Const
            )
        )
    }

    fn postfix_expr(&mut self) -> ParseResult<Expr> {
        let mut e = self.primary_expr()?;
        loop {
            match &self.peek().kind {
                TokenKind::Punct(Punct::LBracket) => {
                    self.bump();
                    let index = self.expr()?;
                    let end = self.expect_punct(Punct::RBracket)?.span;
                    let span = e.span.merge(end);
                    e = Expr {
                        kind: ExprKind::Index {
                            base: Box::new(e),
                            index: Box::new(index),
                        },
                        span,
                    };
                }
                TokenKind::Punct(Punct::Dot) | TokenKind::Punct(Punct::Arrow) => {
                    let arrow = self.peek().is_punct(Punct::Arrow);
                    self.bump();
                    let (field, fspan) = self.expect_ident()?;
                    let span = e.span.merge(fspan);
                    e = Expr {
                        kind: ExprKind::Member {
                            base: Box::new(e),
                            field,
                            arrow,
                        },
                        span,
                    };
                }
                TokenKind::Punct(Punct::PlusPlus) | TokenKind::Punct(Punct::MinusMinus) => {
                    let inc = self.peek().is_punct(Punct::PlusPlus);
                    let end = self.bump().span;
                    let span = e.span.merge(end);
                    e = Expr {
                        kind: ExprKind::PostIncDec {
                            expr: Box::new(e),
                            inc,
                        },
                        span,
                    };
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary_expr(&mut self) -> ParseResult<Expr> {
        let t = self.peek().clone();
        match t.kind {
            TokenKind::IntLit(v) => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::IntLit(v),
                    span: t.span,
                })
            }
            TokenKind::CharLit(v) => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::CharLit(v),
                    span: t.span,
                })
            }
            TokenKind::StrLit(s) => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::StrLit(s),
                    span: t.span,
                })
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.peek().is_punct(Punct::LParen) {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.peek().is_punct(Punct::RParen) {
                        loop {
                            args.push(self.assignment_expr()?);
                            if !self.eat_punct(Punct::Comma) {
                                break;
                            }
                        }
                    }
                    let end = self.expect_punct(Punct::RParen)?.span;
                    Ok(Expr {
                        kind: ExprKind::Call { callee: name, args },
                        span: t.span.merge(end),
                    })
                } else {
                    Ok(Expr {
                        kind: ExprKind::Ident(name),
                        span: t.span,
                    })
                }
            }
            TokenKind::Punct(Punct::LParen) => {
                self.bump();
                let e = self.expr()?;
                let end = self.expect_punct(Punct::RParen)?.span;
                Ok(Expr {
                    kind: e.kind,
                    span: t.span.merge(end),
                })
            }
            _ => Err(self.unexpected("an expression")),
        }
    }
}

/// Best-effort constant folding of array-dimension expressions.
fn const_eval(e: &Expr) -> Option<i64> {
    match &e.kind {
        ExprKind::IntLit(v) => Some(*v),
        ExprKind::CharLit(v) => Some(*v),
        ExprKind::Unary {
            op: UnaryOp::Neg,
            expr,
        } => Some(-const_eval(expr)?),
        ExprKind::Binary { op, lhs, rhs } => {
            let a = const_eval(lhs)?;
            let b = const_eval(rhs)?;
            Some(match op {
                BinaryOp::Add => a.checked_add(b)?,
                BinaryOp::Sub => a.checked_sub(b)?,
                BinaryOp::Mul => a.checked_mul(b)?,
                BinaryOp::Div => a.checked_div(b)?,
                BinaryOp::Rem => a.checked_rem(b)?,
                BinaryOp::Shl => a.checked_shl(b.try_into().ok()?)?,
                BinaryOp::Shr => a.checked_shr(b.try_into().ok()?)?,
                _ => return None,
            })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deep_nesting_is_a_parse_error_not_a_stack_overflow() {
        // Each case recurses through a different guarded entry point:
        // blocks through stmt(), parens through assignment_expr(), unary
        // chains through unary_expr(). 10_000 levels would overflow the
        // stack without the depth cap.
        let blocks = format!(
            "void f() {{ {} {} }}",
            "{".repeat(10_000),
            "}".repeat(10_000)
        );
        let parens = format!(
            "int g() {{ return {}1{}; }}",
            "(".repeat(10_000),
            ")".repeat(10_000)
        );
        let unary = format!("int h(int x) {{ return {}x; }}", "!".repeat(10_000));
        for src in [blocks, parens, unary] {
            let err = parse(&src).expect_err("deep nesting must be rejected");
            assert!(
                err.message.contains("nesting too deep"),
                "unexpected error: {}",
                err.message
            );
        }
        // Realistic nesting stays well inside the limit.
        let ok = format!(
            "void k() {{ {} x = 1; {} }}",
            "{".repeat(50),
            "}".repeat(50)
        );
        parse(&ok).expect("moderate nesting parses");
    }

    #[test]
    fn parses_function_with_params() {
        let p = parse("int add(int a, int b) { return a + b; }").unwrap();
        let f = p.function("add").unwrap();
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.ret, TypeSpec::named("int"));
        assert_eq!(f.body.stmts.len(), 1);
    }

    #[test]
    fn parses_if_else_chain_flattened() {
        let src = "void f(int n) {\n  if (n < 0) { n = 0; }\n  else if (n > 10) { n = 10; }\n  else { n = 5; }\n}";
        let p = parse(src).unwrap();
        let f = p.function("f").unwrap();
        match &f.body.stmts[0].kind {
            StmtKind::If {
                else_ifs,
                else_block,
                ..
            } => {
                assert_eq!(else_ifs.len(), 1);
                assert!(else_block.is_some());
                assert_eq!(else_ifs[0].span.start.line, 3);
                assert_eq!(else_block.as_ref().unwrap().span.start.line, 4);
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn control_statement_spans_cover_bodies() {
        let src = "void f() {\n  while (1) {\n    g();\n  }\n}";
        let p = parse(src).unwrap();
        let f = p.function("f").unwrap();
        let s = &f.body.stmts[0];
        assert_eq!(s.span.start.line, 2);
        assert_eq!(s.span.end.line, 4);
    }

    #[test]
    fn parses_for_with_declaration_init() {
        let p = parse("void f() { for (int i = 0; i < 10; i++) { g(i); } }").unwrap();
        let f = p.function("f").unwrap();
        match &f.body.stmts[0].kind {
            StmtKind::For {
                init, cond, step, ..
            } => {
                assert!(matches!(
                    init.as_deref().map(|s| &s.kind),
                    Some(StmtKind::Decl(_))
                ));
                assert!(cond.is_some());
                assert!(step.is_some());
            }
            other => panic!("expected for, got {other:?}"),
        }
    }

    #[test]
    fn parses_switch_cases() {
        let src = "void f(int x) { switch (x) { case 1: g(); break; case 2: case 3: h(); break; default: k(); } }";
        let p = parse(src).unwrap();
        let f = p.function("f").unwrap();
        match &f.body.stmts[0].kind {
            StmtKind::Switch { cases, .. } => {
                assert_eq!(cases.len(), 4);
                assert!(matches!(cases[0].label, CaseLabel::Case(_)));
                assert!(cases[1].body.is_empty()); // fallthrough `case 2:`
                assert!(matches!(cases[3].label, CaseLabel::Default));
            }
            other => panic!("expected switch, got {other:?}"),
        }
    }

    #[test]
    fn precedence_mul_binds_tighter_than_add() {
        let p = parse("int g() { return 1 + 2 * 3; }").unwrap();
        let f = p.function("g").unwrap();
        let StmtKind::Return(Some(e)) = &f.body.stmts[0].kind else {
            panic!()
        };
        match &e.kind {
            ExprKind::Binary {
                op: BinaryOp::Add,
                rhs,
                ..
            } => assert!(matches!(
                rhs.kind,
                ExprKind::Binary {
                    op: BinaryOp::Mul,
                    ..
                }
            )),
            other => panic!("unexpected tree {other:?}"),
        }
    }

    #[test]
    fn parses_pointer_and_array_declarations() {
        let p =
            parse("void f() { char *p; int a[10]; char buf[4 * 2]; unsigned int **q; }").unwrap();
        let f = p.function("f").unwrap();
        let decls: Vec<_> = f
            .body
            .stmts
            .iter()
            .filter_map(|s| match &s.kind {
                StmtKind::Decl(d) => Some(d),
                _ => None,
            })
            .collect();
        assert_eq!(decls[0].ty.ptr_depth, 1);
        assert_eq!(decls[1].array_dims, vec![Some(10)]);
        assert_eq!(decls[2].array_dims, vec![Some(8)]);
        assert_eq!(decls[3].ty, TypeSpec::pointer("unsigned int", 2));
    }

    #[test]
    fn parses_calls_member_access_and_casts() {
        let src = "void f(struct pkt *s) { s->len = (int)strlen(s->data); g(s.len, a[i], *p); }";
        let p = parse(src).unwrap();
        assert!(p.function("f").is_some());
    }

    #[test]
    fn parses_struct_definition() {
        let p = parse("struct pkt { int len; char data[64]; };").unwrap();
        match &p.items[0] {
            Item::Struct(s) => {
                assert_eq!(s.name, "pkt");
                assert_eq!(s.fields.len(), 2);
            }
            other => panic!("expected struct, got {other:?}"),
        }
    }

    #[test]
    fn stmt_ids_are_dense_and_unique() {
        let src = "void f() { int a = 0; if (a) { a = 1; } while (a) { a--; } }";
        let p = parse(src).unwrap();
        let mut ids = Vec::new();
        struct C<'a>(&'a mut Vec<u32>);
        impl crate::visit::Visitor for C<'_> {
            fn visit_stmt(&mut self, s: &Stmt) {
                self.0.push(s.id.0);
                crate::visit::walk_stmt(self, s);
            }
        }
        let mut c = C(&mut ids);
        crate::visit::walk_program(&mut c, &p);
        ids.sort_unstable();
        let n = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), n, "ids must be unique");
    }

    #[test]
    fn rejects_goto() {
        assert!(parse("void f() { goto out; }").is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("int f( {").is_err());
        assert!(parse("void f() { int ; }").is_err());
        assert!(parse("void f() { x += ; }").is_err());
    }

    #[test]
    fn sizeof_both_forms() {
        let p = parse("void f() { int n = sizeof(int); int m = sizeof n; }").unwrap();
        assert!(p.function("f").is_some());
    }

    #[test]
    fn comma_operator_in_for_step() {
        let p = parse("void f() { for (i = 0, j = 9; i < j; i++, j--) { g(); } }").unwrap();
        let f = p.function("f").unwrap();
        match &f.body.stmts[0].kind {
            StmtKind::For { step: Some(s), .. } => {
                assert!(matches!(s.kind, ExprKind::Comma { .. }))
            }
            other => panic!("expected for, got {other:?}"),
        }
    }
}
