//! Lexical tokens of mini-C.

use crate::span::Span;
use std::fmt;

/// Keywords recognised by the mini-C lexer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Keyword {
    Int,
    Char,
    Void,
    Long,
    Short,
    Float,
    Double,
    Unsigned,
    Signed,
    SizeT,
    Struct,
    Const,
    Static,
    If,
    Else,
    For,
    While,
    Do,
    Switch,
    Case,
    Default,
    Break,
    Continue,
    Return,
    Sizeof,
    Goto,
}

impl Keyword {
    /// Parses an identifier-like word into a keyword, if it is one.
    pub fn from_word(word: &str) -> Option<Keyword> {
        Some(match word {
            "int" => Keyword::Int,
            "char" => Keyword::Char,
            "void" => Keyword::Void,
            "long" => Keyword::Long,
            "short" => Keyword::Short,
            "float" => Keyword::Float,
            "double" => Keyword::Double,
            "unsigned" => Keyword::Unsigned,
            "signed" => Keyword::Signed,
            "size_t" => Keyword::SizeT,
            "struct" => Keyword::Struct,
            "const" => Keyword::Const,
            "static" => Keyword::Static,
            "if" => Keyword::If,
            "else" => Keyword::Else,
            "for" => Keyword::For,
            "while" => Keyword::While,
            "do" => Keyword::Do,
            "switch" => Keyword::Switch,
            "case" => Keyword::Case,
            "default" => Keyword::Default,
            "break" => Keyword::Break,
            "continue" => Keyword::Continue,
            "return" => Keyword::Return,
            "sizeof" => Keyword::Sizeof,
            "goto" => Keyword::Goto,
            _ => return None,
        })
    }

    /// The source spelling of this keyword.
    pub fn as_str(&self) -> &'static str {
        match self {
            Keyword::Int => "int",
            Keyword::Char => "char",
            Keyword::Void => "void",
            Keyword::Long => "long",
            Keyword::Short => "short",
            Keyword::Float => "float",
            Keyword::Double => "double",
            Keyword::Unsigned => "unsigned",
            Keyword::Signed => "signed",
            Keyword::SizeT => "size_t",
            Keyword::Struct => "struct",
            Keyword::Const => "const",
            Keyword::Static => "static",
            Keyword::If => "if",
            Keyword::Else => "else",
            Keyword::For => "for",
            Keyword::While => "while",
            Keyword::Do => "do",
            Keyword::Switch => "switch",
            Keyword::Case => "case",
            Keyword::Default => "default",
            Keyword::Break => "break",
            Keyword::Continue => "continue",
            Keyword::Return => "return",
            Keyword::Sizeof => "sizeof",
            Keyword::Goto => "goto",
        }
    }
}

impl fmt::Display for Keyword {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Punctuation and operator tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Punct {
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Colon,
    Question,
    Dot,
    Arrow,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    Ne,
    AmpAmp,
    PipePipe,
    Shl,
    Shr,
    Eq,
    PlusEq,
    MinusEq,
    StarEq,
    SlashEq,
    PercentEq,
    AmpEq,
    PipeEq,
    CaretEq,
    ShlEq,
    ShrEq,
    PlusPlus,
    MinusMinus,
}

impl Punct {
    /// The source spelling of this punctuation token.
    pub fn as_str(&self) -> &'static str {
        match self {
            Punct::LParen => "(",
            Punct::RParen => ")",
            Punct::LBrace => "{",
            Punct::RBrace => "}",
            Punct::LBracket => "[",
            Punct::RBracket => "]",
            Punct::Semi => ";",
            Punct::Comma => ",",
            Punct::Colon => ":",
            Punct::Question => "?",
            Punct::Dot => ".",
            Punct::Arrow => "->",
            Punct::Plus => "+",
            Punct::Minus => "-",
            Punct::Star => "*",
            Punct::Slash => "/",
            Punct::Percent => "%",
            Punct::Amp => "&",
            Punct::Pipe => "|",
            Punct::Caret => "^",
            Punct::Tilde => "~",
            Punct::Bang => "!",
            Punct::Lt => "<",
            Punct::Gt => ">",
            Punct::Le => "<=",
            Punct::Ge => ">=",
            Punct::EqEq => "==",
            Punct::Ne => "!=",
            Punct::AmpAmp => "&&",
            Punct::PipePipe => "||",
            Punct::Shl => "<<",
            Punct::Shr => ">>",
            Punct::Eq => "=",
            Punct::PlusEq => "+=",
            Punct::MinusEq => "-=",
            Punct::StarEq => "*=",
            Punct::SlashEq => "/=",
            Punct::PercentEq => "%=",
            Punct::AmpEq => "&=",
            Punct::PipeEq => "|=",
            Punct::CaretEq => "^=",
            Punct::ShlEq => "<<=",
            Punct::ShrEq => ">>=",
            Punct::PlusPlus => "++",
            Punct::MinusMinus => "--",
        }
    }
}

impl fmt::Display for Punct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The payload of a lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// An identifier (variable, function, type, or label name).
    Ident(String),
    /// A reserved keyword.
    Keyword(Keyword),
    /// An integer literal, already decoded to a value.
    IntLit(i64),
    /// A character literal such as `'a'`, decoded to its value.
    CharLit(i64),
    /// A string literal with escapes decoded.
    StrLit(String),
    /// Punctuation or an operator.
    Punct(Punct),
    /// End of input.
    Eof,
}

impl TokenKind {
    /// The surface text of the token, used by the gadget tokenizer.
    pub fn surface(&self) -> String {
        match self {
            TokenKind::Ident(s) => s.clone(),
            TokenKind::Keyword(k) => k.as_str().to_string(),
            TokenKind::IntLit(v) => v.to_string(),
            TokenKind::CharLit(v) => format!("'{}'", char::from_u32(*v as u32).unwrap_or('?')),
            TokenKind::StrLit(s) => format!("{:?}", s),
            TokenKind::Punct(p) => p.as_str().to_string(),
            TokenKind::Eof => String::new(),
        }
    }
}

/// A lexical token: a [`TokenKind`] plus the [`Span`] it came from.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where in the source it appeared.
    pub span: Span,
}

impl Token {
    /// Creates a token.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }

    /// Whether the token is the given punctuation.
    pub fn is_punct(&self, p: Punct) -> bool {
        matches!(&self.kind, TokenKind::Punct(q) if *q == p)
    }

    /// Whether the token is the given keyword.
    pub fn is_keyword(&self, k: Keyword) -> bool {
        matches!(&self.kind, TokenKind::Keyword(q) if *q == k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_roundtrip() {
        for kw in [
            "int", "char", "void", "if", "else", "for", "while", "do", "switch", "case", "default",
            "break", "continue", "return", "sizeof", "size_t", "struct", "unsigned",
        ] {
            let k = Keyword::from_word(kw).expect("keyword should parse");
            assert_eq!(k.as_str(), kw);
        }
        assert!(Keyword::from_word("strncpy").is_none());
    }

    #[test]
    fn surface_text() {
        assert_eq!(TokenKind::Ident("x".into()).surface(), "x");
        assert_eq!(TokenKind::IntLit(42).surface(), "42");
        assert_eq!(TokenKind::Punct(Punct::Arrow).surface(), "->");
        assert_eq!(TokenKind::StrLit("hi".into()).surface(), "\"hi\"");
    }
}
