//! Source positions and spans.
//!
//! SEVulDet's path-sensitive gadget generation (Algorithm 1) reasons about
//! *line numbers*: a control range is the `[min line, max line]` interval of
//! the AST subtree rooted at a key node. Every token and AST node therefore
//! carries a [`Span`] with 1-based line/column information.

use std::fmt;

/// A 1-based line/column position in a source file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl Pos {
    /// Creates a position from 1-based line and column numbers.
    pub fn new(line: u32, col: u32) -> Self {
        Pos { line, col }
    }
}

impl Default for Pos {
    fn default() -> Self {
        Pos { line: 1, col: 1 }
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A half-open region of source text, identified by its start and end
/// positions (inclusive start, inclusive end — both positions are inside the
/// spanned text).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Position of the first character.
    pub start: Pos,
    /// Position of the last character.
    pub end: Pos,
}

impl Span {
    /// Creates a span from a start and end position.
    pub fn new(start: Pos, end: Pos) -> Self {
        Span { start, end }
    }

    /// A degenerate span covering a single position.
    pub fn point(pos: Pos) -> Self {
        Span {
            start: pos,
            end: pos,
        }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// First line covered by this span (1-based).
    pub fn start_line(&self) -> u32 {
        self.start.line
    }

    /// Last line covered by this span (1-based).
    pub fn end_line(&self) -> u32 {
        self.end.line
    }

    /// Whether `line` falls inside the line range of this span.
    pub fn contains_line(&self, line: u32) -> bool {
        self.start.line <= line && line <= self.end.line
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.start == self.end {
            write!(f, "{}", self.start)
        } else {
            write!(f, "{}-{}", self.start, self.end)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_takes_extremes() {
        let a = Span::new(Pos::new(2, 5), Pos::new(3, 1));
        let b = Span::new(Pos::new(1, 9), Pos::new(2, 7));
        let m = a.merge(b);
        assert_eq!(m.start, Pos::new(1, 9));
        assert_eq!(m.end, Pos::new(3, 1));
    }

    #[test]
    fn contains_line_is_inclusive() {
        let s = Span::new(Pos::new(4, 1), Pos::new(7, 2));
        assert!(s.contains_line(4));
        assert!(s.contains_line(7));
        assert!(!s.contains_line(3));
        assert!(!s.contains_line(8));
    }

    #[test]
    fn display_formats() {
        let s = Span::new(Pos::new(1, 2), Pos::new(1, 2));
        assert_eq!(s.to_string(), "1:2");
        let s = Span::new(Pos::new(1, 2), Pos::new(3, 4));
        assert_eq!(s.to_string(), "1:2-3:4");
    }
}
