//! Abstract syntax tree for mini-C.
//!
//! Every node carries a [`Span`]; statements additionally carry a [`StmtId`]
//! assigned in parse order. Line numbers are the currency of SEVulDet's
//! Algorithm 1 (control ranges are `[min line, max line]` intervals of AST
//! subtrees), so the tree is deliberately designed to make per-statement line
//! lookup trivial.

use crate::span::Span;
use std::fmt;

/// Unique identifier of a statement within one parsed [`Program`].
///
/// Ids are assigned in parse order and are dense (0..n), so analyses can use
/// them as vector indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StmtId(pub u32);

impl StmtId {
    /// The id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StmtId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A parsed translation unit.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

impl Program {
    /// Iterates over the function definitions in the program.
    pub fn functions(&self) -> impl Iterator<Item = &Function> {
        self.items.iter().filter_map(|i| match i {
            Item::Function(f) => Some(f),
            _ => None,
        })
    }

    /// Finds a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions().find(|f| f.name == name)
    }
}

/// A top-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// A function definition.
    Function(Function),
    /// A global variable declaration.
    Global(Decl),
    /// A struct definition (field types are kept, but mini-C performs no
    /// layout or type checking).
    Struct(StructDef),
}

/// A struct definition.
#[derive(Debug, Clone, PartialEq)]
pub struct StructDef {
    /// Struct tag name.
    pub name: String,
    /// Field declarations.
    pub fields: Vec<Decl>,
    /// Source span of the whole definition.
    pub span: Span,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: TypeSpec,
    /// Parameters in order.
    pub params: Vec<Param>,
    /// Function body.
    pub body: Block,
    /// Source span of the whole definition.
    pub span: Span,
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Declared type.
    pub ty: TypeSpec,
    /// `Some(dims)` when declared with array syntax (`int a[]`).
    pub array_dims: Vec<Option<i64>>,
    /// Source span.
    pub span: Span,
}

/// A (simplified) type: a base name plus pointer depth. Arrays live on the
/// declarator ([`Decl::array_dims`]), as in C.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TypeSpec {
    /// Base type name, e.g. `"int"`, `"unsigned int"`, `"struct buf"`.
    pub name: String,
    /// Number of `*`s.
    pub ptr_depth: u8,
}

impl TypeSpec {
    /// Creates a non-pointer type.
    pub fn named(name: impl Into<String>) -> Self {
        TypeSpec {
            name: name.into(),
            ptr_depth: 0,
        }
    }

    /// Creates a pointer type of the given depth.
    pub fn pointer(name: impl Into<String>, depth: u8) -> Self {
        TypeSpec {
            name: name.into(),
            ptr_depth: depth,
        }
    }

    /// Whether the type is a pointer.
    pub fn is_pointer(&self) -> bool {
        self.ptr_depth > 0
    }
}

impl fmt::Display for TypeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.name, "*".repeat(self.ptr_depth as usize))
    }
}

/// A variable declaration (local, global, or struct field).
#[derive(Debug, Clone, PartialEq)]
pub struct Decl {
    /// Declared name.
    pub name: String,
    /// Declared type.
    pub ty: TypeSpec,
    /// Array dimensions; `None` entries are unsized (`[]`).
    pub array_dims: Vec<Option<i64>>,
    /// Optional initializer.
    pub init: Option<Expr>,
    /// Source span.
    pub span: Span,
}

impl Decl {
    /// Whether this declaration declares an array.
    pub fn is_array(&self) -> bool {
        !self.array_dims.is_empty()
    }
}

/// A statement: id + kind + span.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// Dense per-program id in parse order.
    pub id: StmtId,
    /// What the statement is.
    pub kind: StmtKind,
    /// Source span of the whole statement (for control statements this spans
    /// the entire construct including its body — exactly the "control range"
    /// of Algorithm 1).
    pub span: Span,
}

impl Stmt {
    /// The line the statement *starts* on — the key used to identify it in
    /// code gadgets.
    pub fn line(&self) -> u32 {
        self.span.start.line
    }
}

/// An `else if` arm of an [`StmtKind::If`] chain.
#[derive(Debug, Clone, PartialEq)]
pub struct ElseIf {
    /// The arm's condition.
    pub cond: Expr,
    /// The arm's body.
    pub body: Block,
    /// Span from the `else if` keywords to the end of the body.
    pub span: Span,
}

/// The trailing `else` of an [`StmtKind::If`] chain.
#[derive(Debug, Clone, PartialEq)]
pub struct ElseBlock {
    /// The else body.
    pub body: Block,
    /// Span from the `else` keyword to the end of the body.
    pub span: Span,
}

/// A `case`/`default` arm of a switch.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchCase {
    /// The label (`case expr` or `default`).
    pub label: CaseLabel,
    /// Statements until the next label or the closing brace.
    pub body: Vec<Stmt>,
    /// Span from the label to the last statement of the arm.
    pub span: Span,
}

/// Switch case label.
#[derive(Debug, Clone, PartialEq)]
pub enum CaseLabel {
    /// `case <const-expr>:`
    Case(Expr),
    /// `default:`
    Default,
}

/// Statement kinds. The eight *key node* kinds of Algorithm 1 map to:
/// `If` (if / else-if / else), `While`, `DoWhile`, `For`, `Switch` (switch /
/// case).
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// A local declaration.
    Decl(Decl),
    /// An expression statement.
    Expr(Expr),
    /// A free-standing block.
    Block(Block),
    /// An `if` chain with flattened `else if` arms, mirroring how Algorithm 1
    /// treats `if` / `elseif` / `else` as three distinct key-node kinds.
    If {
        /// The `if` condition.
        cond: Expr,
        /// The `if` body.
        then: Block,
        /// Flattened `else if` arms.
        else_ifs: Vec<ElseIf>,
        /// Trailing `else`, if present.
        else_block: Option<ElseBlock>,
    },
    /// A `while` loop.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Block,
    },
    /// A `do { } while (cond);` loop.
    DoWhile {
        /// Loop body.
        body: Block,
        /// Loop condition (evaluated after the body).
        cond: Expr,
    },
    /// A `for` loop. `init` may be a declaration or expression statement.
    For {
        /// Optional init clause.
        init: Option<Box<Stmt>>,
        /// Optional condition.
        cond: Option<Expr>,
        /// Optional step expression.
        step: Option<Expr>,
        /// Loop body.
        body: Block,
    },
    /// A `switch` statement.
    Switch {
        /// The switched-on expression.
        scrutinee: Expr,
        /// Case arms in source order.
        cases: Vec<SwitchCase>,
    },
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `return;` / `return expr;`
    Return(Option<Expr>),
}

/// A `{ ... }` block.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
    /// Span from `{` to `}`.
    pub span: Span,
}

/// An expression: kind + span.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// What the expression is.
    pub kind: ExprKind,
    /// Source span.
    pub span: Span,
}

/// Unary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// `-x`
    Neg,
    /// `+x`
    Plus,
    /// `!x`
    Not,
    /// `~x`
    BitNot,
    /// `*p`
    Deref,
    /// `&x`
    AddrOf,
}

impl UnaryOp {
    /// Surface spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            UnaryOp::Neg => "-",
            UnaryOp::Plus => "+",
            UnaryOp::Not => "!",
            UnaryOp::BitNot => "~",
            UnaryOp::Deref => "*",
            UnaryOp::AddrOf => "&",
        }
    }
}

/// Binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&`
    BitAnd,
    /// `^`
    BitXor,
    /// `|`
    BitOr,
    /// `&&`
    LogAnd,
    /// `||`
    LogOr,
}

impl BinaryOp {
    /// Surface spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Rem => "%",
            BinaryOp::Shl => "<<",
            BinaryOp::Shr => ">>",
            BinaryOp::Lt => "<",
            BinaryOp::Gt => ">",
            BinaryOp::Le => "<=",
            BinaryOp::Ge => ">=",
            BinaryOp::Eq => "==",
            BinaryOp::Ne => "!=",
            BinaryOp::BitAnd => "&",
            BinaryOp::BitXor => "^",
            BinaryOp::BitOr => "|",
            BinaryOp::LogAnd => "&&",
            BinaryOp::LogOr => "||",
        }
    }

    /// Whether the operator is arithmetic (used by the AE special-token
    /// detector).
    pub fn is_arithmetic(&self) -> bool {
        matches!(
            self,
            BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div | BinaryOp::Rem
        )
    }
}

/// Compound-assignment operator (`=` is `AssignOp::Assign`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssignOp {
    /// `=`
    Assign,
    /// `+=`
    Add,
    /// `-=`
    Sub,
    /// `*=`
    Mul,
    /// `/=`
    Div,
    /// `%=`
    Rem,
    /// `<<=`
    Shl,
    /// `>>=`
    Shr,
    /// `&=`
    And,
    /// `|=`
    Or,
    /// `^=`
    Xor,
}

impl AssignOp {
    /// Surface spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            AssignOp::Assign => "=",
            AssignOp::Add => "+=",
            AssignOp::Sub => "-=",
            AssignOp::Mul => "*=",
            AssignOp::Div => "/=",
            AssignOp::Rem => "%=",
            AssignOp::Shl => "<<=",
            AssignOp::Shr => ">>=",
            AssignOp::And => "&=",
            AssignOp::Or => "|=",
            AssignOp::Xor => "^=",
        }
    }

    /// The binary operator a compound assignment desugars to, if any.
    pub fn binary_op(&self) -> Option<BinaryOp> {
        Some(match self {
            AssignOp::Assign => return None,
            AssignOp::Add => BinaryOp::Add,
            AssignOp::Sub => BinaryOp::Sub,
            AssignOp::Mul => BinaryOp::Mul,
            AssignOp::Div => BinaryOp::Div,
            AssignOp::Rem => BinaryOp::Rem,
            AssignOp::Shl => BinaryOp::Shl,
            AssignOp::Shr => BinaryOp::Shr,
            AssignOp::And => BinaryOp::BitAnd,
            AssignOp::Or => BinaryOp::BitOr,
            AssignOp::Xor => BinaryOp::BitXor,
        })
    }
}

/// Argument of `sizeof`.
#[derive(Debug, Clone, PartialEq)]
pub enum SizeofArg {
    /// `sizeof(int)`
    Type(TypeSpec),
    /// `sizeof expr`
    Expr(Box<Expr>),
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(i64),
    /// Character literal (value).
    CharLit(i64),
    /// String literal.
    StrLit(String),
    /// Variable reference.
    Ident(String),
    /// Unary operation.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// The operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// The operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Assignment (simple or compound).
    Assign {
        /// The operator.
        op: AssignOp,
        /// Assignment target (lvalue).
        target: Box<Expr>,
        /// Assigned value.
        value: Box<Expr>,
    },
    /// `cond ? a : b`
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// Value when true.
        then_expr: Box<Expr>,
        /// Value when false.
        else_expr: Box<Expr>,
    },
    /// A direct function call (mini-C has no function pointers).
    Call {
        /// Called function name.
        callee: String,
        /// Arguments in order.
        args: Vec<Expr>,
    },
    /// `base[index]`
    Index {
        /// Indexed expression.
        base: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
    },
    /// `base.field` / `base->field`
    Member {
        /// Accessed expression.
        base: Box<Expr>,
        /// Field name.
        field: String,
        /// Whether the access used `->`.
        arrow: bool,
    },
    /// `(type)expr`
    Cast {
        /// Target type.
        ty: TypeSpec,
        /// Casted expression.
        expr: Box<Expr>,
    },
    /// `sizeof(...)`
    Sizeof(SizeofArg),
    /// `++x` / `--x`
    PreIncDec {
        /// Operand (lvalue).
        expr: Box<Expr>,
        /// `true` for `++`.
        inc: bool,
    },
    /// `x++` / `x--`
    PostIncDec {
        /// Operand (lvalue).
        expr: Box<Expr>,
        /// `true` for `++`.
        inc: bool,
    },
    /// `lhs, rhs`
    Comma {
        /// First (discarded) expression.
        lhs: Box<Expr>,
        /// Second (result) expression.
        rhs: Box<Expr>,
    },
}

impl Expr {
    /// If the expression is a bare identifier, its name.
    pub fn as_ident(&self) -> Option<&str> {
        match &self.kind {
            ExprKind::Ident(n) => Some(n),
            _ => None,
        }
    }

    /// The *root variable* of an lvalue expression: `a` for `a`, `a[i]`,
    /// `*a`, `a->f`, `a.f`, and nestings thereof. `None` for non-lvalues.
    pub fn root_var(&self) -> Option<&str> {
        match &self.kind {
            ExprKind::Ident(n) => Some(n),
            ExprKind::Index { base, .. } => base.root_var(),
            ExprKind::Member { base, .. } => base.root_var(),
            ExprKind::Unary {
                op: UnaryOp::Deref, ..
            } => match &self.kind {
                ExprKind::Unary { expr, .. } => expr.root_var(),
                _ => unreachable!(),
            },
            ExprKind::Cast { expr, .. } => expr.root_var(),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Pos, Span};

    fn e(kind: ExprKind) -> Expr {
        Expr {
            kind,
            span: Span::point(Pos::new(1, 1)),
        }
    }

    #[test]
    fn root_var_walks_through_projections() {
        let base = e(ExprKind::Ident("buf".into()));
        let idx = e(ExprKind::Index {
            base: Box::new(base),
            index: Box::new(e(ExprKind::IntLit(0))),
        });
        let memb = e(ExprKind::Member {
            base: Box::new(idx),
            field: "len".into(),
            arrow: true,
        });
        assert_eq!(memb.root_var(), Some("buf"));
        let deref = e(ExprKind::Unary {
            op: UnaryOp::Deref,
            expr: Box::new(e(ExprKind::Ident("p".into()))),
        });
        assert_eq!(deref.root_var(), Some("p"));
        assert_eq!(e(ExprKind::IntLit(3)).root_var(), None);
    }

    #[test]
    fn assign_op_desugars() {
        assert_eq!(AssignOp::Add.binary_op(), Some(BinaryOp::Add));
        assert_eq!(AssignOp::Assign.binary_op(), None);
    }

    #[test]
    fn typespec_display() {
        assert_eq!(TypeSpec::pointer("char", 2).to_string(), "char**");
        assert!(TypeSpec::pointer("int", 1).is_pointer());
        assert!(!TypeSpec::named("int").is_pointer());
    }
}
