//! A hand-written lexer for mini-C.
//!
//! The lexer skips `//` and `/* */` comments and preprocessor lines (`#...`),
//! but keeps track of line numbers so downstream analyses (control ranges,
//! gadget line keys) see the same numbering as the original file.

use crate::error::{ParseError, ParseResult};
use crate::span::{Pos, Span};
use crate::token::{Keyword, Punct, Token, TokenKind};

/// Streaming tokenizer over mini-C source text.
#[derive(Debug)]
pub struct Lexer<'src> {
    src: &'src [u8],
    off: usize,
    line: u32,
    col: u32,
}

impl<'src> Lexer<'src> {
    /// Creates a lexer over the given source text.
    pub fn new(src: &'src str) -> Self {
        Lexer {
            src: src.as_bytes(),
            off: 0,
            line: 1,
            col: 1,
        }
    }

    /// Lexes the entire input into a token vector terminated by
    /// [`TokenKind::Eof`].
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] on malformed literals, unterminated comments,
    /// or bytes that are not part of mini-C.
    pub fn tokenize(mut self) -> ParseResult<Vec<Token>> {
        let mut out = Vec::new();
        loop {
            let tok = self.next_token()?;
            let eof = matches!(tok.kind, TokenKind::Eof);
            out.push(tok);
            if eof {
                return Ok(out);
            }
        }
    }

    fn pos(&self) -> Pos {
        Pos::new(self.line, self.col)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.off).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.off + 1).copied()
    }

    fn peek3(&self) -> Option<u8> {
        self.src.get(self.off + 2).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.off += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn skip_trivia(&mut self) -> ParseResult<()> {
        loop {
            match self.peek() {
                Some(b' ') | Some(b'\t') | Some(b'\r') | Some(b'\n') => {
                    self.bump();
                }
                Some(b'#') if self.col == 1 || self.at_line_start() => {
                    // Preprocessor directive: skip to end of line (keeping the
                    // newline so line numbers stay correct).
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.pos();
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'*'), Some(b'/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => {
                                return Err(ParseError::new(
                                    "unterminated block comment",
                                    Span::point(start),
                                ));
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn at_line_start(&self) -> bool {
        // True when everything before the cursor on this line is whitespace.
        let mut i = self.off;
        while i > 0 {
            let b = self.src[i - 1];
            if b == b'\n' {
                return true;
            }
            if b != b' ' && b != b'\t' && b != b'\r' {
                return false;
            }
            i -= 1;
        }
        true
    }

    fn next_token(&mut self) -> ParseResult<Token> {
        self.skip_trivia()?;
        let start = self.pos();
        let Some(b) = self.peek() else {
            return Ok(Token::new(TokenKind::Eof, Span::point(start)));
        };

        if b.is_ascii_alphabetic() || b == b'_' {
            return Ok(self.lex_word(start));
        }
        if b.is_ascii_digit() {
            return self.lex_number(start);
        }
        match b {
            b'\'' => self.lex_char(start),
            b'"' => self.lex_string(start),
            _ => self.lex_punct(start),
        }
    }

    fn lex_word(&mut self, start: Pos) -> Token {
        let begin = self.off;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        let word = std::str::from_utf8(&self.src[begin..self.off])
            .expect("identifier bytes are ASCII")
            .to_string();
        let span = Span::new(start, self.last_pos(start));
        match Keyword::from_word(&word) {
            Some(k) => Token::new(TokenKind::Keyword(k), span),
            None => Token::new(TokenKind::Ident(word), span),
        }
    }

    fn last_pos(&self, start: Pos) -> Pos {
        // End position: column just before the cursor (safe because tokens
        // never span a newline except strings, handled separately).
        if self.col > 1 {
            Pos::new(self.line, self.col - 1)
        } else {
            start
        }
    }

    fn lex_number(&mut self, start: Pos) -> ParseResult<Token> {
        let begin = self.off;
        let mut radix = 10;
        if self.peek() == Some(b'0') && matches!(self.peek2(), Some(b'x') | Some(b'X')) {
            radix = 16;
            self.bump();
            self.bump();
        }
        while let Some(b) = self.peek() {
            let ok = match radix {
                16 => b.is_ascii_hexdigit(),
                _ => b.is_ascii_digit(),
            };
            if ok {
                self.bump();
            } else {
                break;
            }
        }
        // Swallow integer suffixes (u, l, ul, ll, ...).
        while matches!(
            self.peek(),
            Some(b'u') | Some(b'U') | Some(b'l') | Some(b'L')
        ) {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[begin..self.off]).expect("ascii");
        let digits = text.trim_end_matches(['u', 'U', 'l', 'L']);
        let digits = if radix == 16 {
            digits.trim_start_matches("0x").trim_start_matches("0X")
        } else {
            digits
        };
        let value = i64::from_str_radix(digits, radix).map_err(|_| {
            ParseError::new(
                format!("invalid integer literal `{text}`"),
                Span::point(start),
            )
        })?;
        Ok(Token::new(
            TokenKind::IntLit(value),
            Span::new(start, self.last_pos(start)),
        ))
    }

    fn lex_escape(&mut self, start: Pos) -> ParseResult<u8> {
        match self.bump() {
            Some(b'n') => Ok(b'\n'),
            Some(b't') => Ok(b'\t'),
            Some(b'r') => Ok(b'\r'),
            Some(b'0') => Ok(0),
            Some(b'\\') => Ok(b'\\'),
            Some(b'\'') => Ok(b'\''),
            Some(b'"') => Ok(b'"'),
            _ => Err(ParseError::new(
                "invalid escape sequence",
                Span::point(start),
            )),
        }
    }

    fn lex_char(&mut self, start: Pos) -> ParseResult<Token> {
        self.bump(); // opening quote
        let value = match self.bump() {
            Some(b'\\') => self.lex_escape(start)? as i64,
            Some(b) => b as i64,
            None => {
                return Err(ParseError::new(
                    "unterminated char literal",
                    Span::point(start),
                ))
            }
        };
        if self.bump() != Some(b'\'') {
            return Err(ParseError::new(
                "unterminated char literal",
                Span::point(start),
            ));
        }
        Ok(Token::new(
            TokenKind::CharLit(value),
            Span::new(start, self.last_pos(start)),
        ))
    }

    fn lex_string(&mut self, start: Pos) -> ParseResult<Token> {
        self.bump(); // opening quote
        let mut out = Vec::new();
        loop {
            match self.bump() {
                Some(b'"') => break,
                Some(b'\\') => out.push(self.lex_escape(start)?),
                Some(b'\n') | None => {
                    return Err(ParseError::new(
                        "unterminated string literal",
                        Span::point(start),
                    ));
                }
                Some(b) => out.push(b),
            }
        }
        let text = String::from_utf8_lossy(&out).into_owned();
        Ok(Token::new(
            TokenKind::StrLit(text),
            Span::new(start, self.last_pos(start)),
        ))
    }

    fn lex_punct(&mut self, start: Pos) -> ParseResult<Token> {
        use Punct::*;
        let a = self.peek();
        let b = self.peek2();
        let c = self.peek3();
        let (punct, len) = match (a, b, c) {
            (Some(b'<'), Some(b'<'), Some(b'=')) => (ShlEq, 3),
            (Some(b'>'), Some(b'>'), Some(b'=')) => (ShrEq, 3),
            (Some(b'-'), Some(b'>'), _) => (Arrow, 2),
            (Some(b'+'), Some(b'+'), _) => (PlusPlus, 2),
            (Some(b'-'), Some(b'-'), _) => (MinusMinus, 2),
            (Some(b'<'), Some(b'<'), _) => (Shl, 2),
            (Some(b'>'), Some(b'>'), _) => (Shr, 2),
            (Some(b'<'), Some(b'='), _) => (Le, 2),
            (Some(b'>'), Some(b'='), _) => (Ge, 2),
            (Some(b'='), Some(b'='), _) => (EqEq, 2),
            (Some(b'!'), Some(b'='), _) => (Ne, 2),
            (Some(b'&'), Some(b'&'), _) => (AmpAmp, 2),
            (Some(b'|'), Some(b'|'), _) => (PipePipe, 2),
            (Some(b'+'), Some(b'='), _) => (PlusEq, 2),
            (Some(b'-'), Some(b'='), _) => (MinusEq, 2),
            (Some(b'*'), Some(b'='), _) => (StarEq, 2),
            (Some(b'/'), Some(b'='), _) => (SlashEq, 2),
            (Some(b'%'), Some(b'='), _) => (PercentEq, 2),
            (Some(b'&'), Some(b'='), _) => (AmpEq, 2),
            (Some(b'|'), Some(b'='), _) => (PipeEq, 2),
            (Some(b'^'), Some(b'='), _) => (CaretEq, 2),
            (Some(b'('), _, _) => (LParen, 1),
            (Some(b')'), _, _) => (RParen, 1),
            (Some(b'{'), _, _) => (LBrace, 1),
            (Some(b'}'), _, _) => (RBrace, 1),
            (Some(b'['), _, _) => (LBracket, 1),
            (Some(b']'), _, _) => (RBracket, 1),
            (Some(b';'), _, _) => (Semi, 1),
            (Some(b','), _, _) => (Comma, 1),
            (Some(b':'), _, _) => (Colon, 1),
            (Some(b'?'), _, _) => (Question, 1),
            (Some(b'.'), _, _) => (Dot, 1),
            (Some(b'+'), _, _) => (Plus, 1),
            (Some(b'-'), _, _) => (Minus, 1),
            (Some(b'*'), _, _) => (Star, 1),
            (Some(b'/'), _, _) => (Slash, 1),
            (Some(b'%'), _, _) => (Percent, 1),
            (Some(b'&'), _, _) => (Amp, 1),
            (Some(b'|'), _, _) => (Pipe, 1),
            (Some(b'^'), _, _) => (Caret, 1),
            (Some(b'~'), _, _) => (Tilde, 1),
            (Some(b'!'), _, _) => (Bang, 1),
            (Some(b'<'), _, _) => (Lt, 1),
            (Some(b'>'), _, _) => (Gt, 1),
            (Some(b'='), _, _) => (Eq, 1),
            (Some(other), _, _) => {
                return Err(ParseError::new(
                    format!("unexpected character `{}`", other as char),
                    Span::point(start),
                ));
            }
            (None, _, _) => unreachable!("caller checked non-empty"),
        };
        for _ in 0..len {
            self.bump();
        }
        Ok(Token::new(
            TokenKind::Punct(punct),
            Span::new(start, self.last_pos(start)),
        ))
    }
}

/// Lexes an entire source string.
///
/// # Errors
///
/// Returns the first lexical error encountered.
///
/// # Examples
///
/// ```
/// let toks = sevuldet_lang::lexer::tokenize("int x = 1;").unwrap();
/// assert_eq!(toks.len(), 6); // int, x, =, 1, ;, EOF
/// ```
pub fn tokenize(src: &str) -> ParseResult<Vec<Token>> {
    let _t = sevuldet_trace::span!("lang.lex");
    Lexer::new(src).tokenize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::{Keyword, Punct, TokenKind};

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_simple_declaration() {
        let k = kinds("int x = 42;");
        assert_eq!(
            k,
            vec![
                TokenKind::Keyword(Keyword::Int),
                TokenKind::Ident("x".into()),
                TokenKind::Punct(Punct::Eq),
                TokenKind::IntLit(42),
                TokenKind::Punct(Punct::Semi),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn tracks_line_numbers_across_comments_and_directives() {
        let src = "#include <stdio.h>\n// comment\nint main() {\n  return 0;\n}\n";
        let toks = tokenize(src).unwrap();
        // `int` is on line 3.
        assert_eq!(toks[0].span.start.line, 3);
        // `return` is on line 4.
        let ret = toks.iter().find(|t| t.is_keyword(Keyword::Return)).unwrap();
        assert_eq!(ret.span.start.line, 4);
    }

    #[test]
    fn lexes_multichar_operators_longest_first() {
        let k = kinds("a <<= b >> c != d->e");
        assert!(k.contains(&TokenKind::Punct(Punct::ShlEq)));
        assert!(k.contains(&TokenKind::Punct(Punct::Shr)));
        assert!(k.contains(&TokenKind::Punct(Punct::Ne)));
        assert!(k.contains(&TokenKind::Punct(Punct::Arrow)));
    }

    #[test]
    fn lexes_hex_and_suffixed_integers() {
        assert_eq!(kinds("0xFF")[0], TokenKind::IntLit(255));
        assert_eq!(kinds("10UL")[0], TokenKind::IntLit(10));
    }

    #[test]
    fn lexes_char_and_string_literals() {
        assert_eq!(kinds("'a'")[0], TokenKind::CharLit(97));
        assert_eq!(kinds("'\\n'")[0], TokenKind::CharLit(10));
        assert_eq!(kinds("\"hi\\t\"")[0], TokenKind::StrLit("hi\t".into()));
    }

    #[test]
    fn block_comments_preserve_line_numbers() {
        let src = "/* a\n b\n c */ int x;";
        let toks = tokenize(src).unwrap();
        assert_eq!(toks[0].span.start.line, 3);
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(tokenize("\"oops").is_err());
        assert!(tokenize("/* oops").is_err());
        assert!(tokenize("'x").is_err());
    }

    #[test]
    fn rejects_stray_bytes() {
        assert!(tokenize("int $x;").is_err());
    }
}
