//! AST visitors.
//!
//! [`Visitor`] walks immutably; each `visit_*` method defaults to walking
//! children via the matching `walk_*` free function, so implementations
//! override only what they need (and call `walk_*` to keep descending).

use crate::ast::*;

/// An immutable AST visitor.
pub trait Visitor: Sized {
    /// Visits a top-level item.
    fn visit_item(&mut self, item: &Item) {
        walk_item(self, item);
    }
    /// Visits a function definition.
    fn visit_function(&mut self, f: &Function) {
        walk_function(self, f);
    }
    /// Visits a block.
    fn visit_block(&mut self, b: &Block) {
        walk_block(self, b);
    }
    /// Visits a statement.
    fn visit_stmt(&mut self, s: &Stmt) {
        walk_stmt(self, s);
    }
    /// Visits a declaration.
    fn visit_decl(&mut self, d: &Decl) {
        walk_decl(self, d);
    }
    /// Visits an expression.
    fn visit_expr(&mut self, e: &Expr) {
        walk_expr(self, e);
    }
}

/// Walks all items of a program.
pub fn walk_program<V: Visitor>(v: &mut V, p: &Program) {
    for item in &p.items {
        v.visit_item(item);
    }
}

/// Walks an item's children.
pub fn walk_item<V: Visitor>(v: &mut V, item: &Item) {
    match item {
        Item::Function(f) => v.visit_function(f),
        Item::Global(d) => v.visit_decl(d),
        Item::Struct(s) => {
            for f in &s.fields {
                v.visit_decl(f);
            }
        }
    }
}

/// Walks a function's body.
pub fn walk_function<V: Visitor>(v: &mut V, f: &Function) {
    v.visit_block(&f.body);
}

/// Walks a block's statements.
pub fn walk_block<V: Visitor>(v: &mut V, b: &Block) {
    for s in &b.stmts {
        v.visit_stmt(s);
    }
}

/// Walks a declaration's initializer.
pub fn walk_decl<V: Visitor>(v: &mut V, d: &Decl) {
    if let Some(init) = &d.init {
        v.visit_expr(init);
    }
}

/// Walks a statement's children.
pub fn walk_stmt<V: Visitor>(v: &mut V, s: &Stmt) {
    match &s.kind {
        StmtKind::Decl(d) => v.visit_decl(d),
        StmtKind::Expr(e) => v.visit_expr(e),
        StmtKind::Block(b) => v.visit_block(b),
        StmtKind::If {
            cond,
            then,
            else_ifs,
            else_block,
        } => {
            v.visit_expr(cond);
            v.visit_block(then);
            for ei in else_ifs {
                v.visit_expr(&ei.cond);
                v.visit_block(&ei.body);
            }
            if let Some(eb) = else_block {
                v.visit_block(&eb.body);
            }
        }
        StmtKind::While { cond, body } => {
            v.visit_expr(cond);
            v.visit_block(body);
        }
        StmtKind::DoWhile { body, cond } => {
            v.visit_block(body);
            v.visit_expr(cond);
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(i) = init {
                v.visit_stmt(i);
            }
            if let Some(c) = cond {
                v.visit_expr(c);
            }
            if let Some(st) = step {
                v.visit_expr(st);
            }
            v.visit_block(body);
        }
        StmtKind::Switch { scrutinee, cases } => {
            v.visit_expr(scrutinee);
            for c in cases {
                if let CaseLabel::Case(e) = &c.label {
                    v.visit_expr(e);
                }
                for s in &c.body {
                    v.visit_stmt(s);
                }
            }
        }
        StmtKind::Break | StmtKind::Continue => {}
        StmtKind::Return(e) => {
            if let Some(e) = e {
                v.visit_expr(e);
            }
        }
    }
}

/// Walks an expression's children.
pub fn walk_expr<V: Visitor>(v: &mut V, e: &Expr) {
    match &e.kind {
        ExprKind::IntLit(_) | ExprKind::CharLit(_) | ExprKind::StrLit(_) | ExprKind::Ident(_) => {}
        ExprKind::Unary { expr, .. } => v.visit_expr(expr),
        ExprKind::Binary { lhs, rhs, .. } => {
            v.visit_expr(lhs);
            v.visit_expr(rhs);
        }
        ExprKind::Assign { target, value, .. } => {
            v.visit_expr(target);
            v.visit_expr(value);
        }
        ExprKind::Ternary {
            cond,
            then_expr,
            else_expr,
        } => {
            v.visit_expr(cond);
            v.visit_expr(then_expr);
            v.visit_expr(else_expr);
        }
        ExprKind::Call { args, .. } => {
            for a in args {
                v.visit_expr(a);
            }
        }
        ExprKind::Index { base, index } => {
            v.visit_expr(base);
            v.visit_expr(index);
        }
        ExprKind::Member { base, .. } => v.visit_expr(base),
        ExprKind::Cast { expr, .. } => v.visit_expr(expr),
        ExprKind::Sizeof(arg) => {
            if let SizeofArg::Expr(e) = arg {
                v.visit_expr(e);
            }
        }
        ExprKind::PreIncDec { expr, .. } | ExprKind::PostIncDec { expr, .. } => v.visit_expr(expr),
        ExprKind::Comma { lhs, rhs } => {
            v.visit_expr(lhs);
            v.visit_expr(rhs);
        }
    }
}

/// Collects every identifier used in an expression (reads *and* writes).
pub fn expr_idents(e: &Expr) -> Vec<String> {
    struct C(Vec<String>);
    impl Visitor for C {
        fn visit_expr(&mut self, e: &Expr) {
            if let ExprKind::Ident(n) = &e.kind {
                self.0.push(n.clone());
            }
            walk_expr(self, e);
        }
    }
    let mut c = C(Vec::new());
    c.visit_expr(e);
    c.0
}

/// Collects the callee names of every call inside an expression.
pub fn expr_calls(e: &Expr) -> Vec<String> {
    struct C(Vec<String>);
    impl Visitor for C {
        fn visit_expr(&mut self, e: &Expr) {
            if let ExprKind::Call { callee, .. } = &e.kind {
                self.0.push(callee.clone());
            }
            walk_expr(self, e);
        }
    }
    let mut c = C(Vec::new());
    c.visit_expr(e);
    c.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn expr_idents_collects_reads_and_writes() {
        let p = parse("void f() { a[i] = b + c->d; }").unwrap();
        let f = p.function("f").unwrap();
        let StmtKind::Expr(e) = &f.body.stmts[0].kind else {
            panic!()
        };
        let mut ids = expr_idents(e);
        ids.sort();
        assert_eq!(ids, vec!["a", "b", "c", "i"]);
    }

    #[test]
    fn expr_calls_finds_nested_callees() {
        let p = parse("void f() { g(h(x), k()); }").unwrap();
        let f = p.function("f").unwrap();
        let StmtKind::Expr(e) = &f.body.stmts[0].kind else {
            panic!()
        };
        let mut calls = expr_calls(e);
        calls.sort();
        assert_eq!(calls, vec!["g", "h", "k"]);
    }

    #[test]
    fn visitor_reaches_all_statement_kinds() {
        let src = r#"
void f(int n) {
    int i;
    do { n--; } while (n > 0);
    switch (n) { case 1: g(); break; default: h(); }
    for (i = 0; i < n; i++) { if (i) { g(); } else { h(); } }
    { n = sizeof(int); }
    return;
}
"#;
        let p = parse(src).unwrap();
        struct C(usize);
        impl Visitor for C {
            fn visit_stmt(&mut self, s: &Stmt) {
                self.0 += 1;
                walk_stmt(self, s);
            }
        }
        let mut c = C(0);
        walk_program(&mut c, &p);
        assert!(c.0 >= 12, "expected to count many statements, got {}", c.0);
    }
}
