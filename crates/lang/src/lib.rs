//! # sevuldet-lang
//!
//! A from-scratch lexer, parser, and AST for **mini-C**, the C subset used by
//! the SEVulDet reproduction (DSN 2022, Tang et al.).
//!
//! The paper's pipeline runs Joern over C/C++; this crate is the substitute
//! substrate: it provides everything Algorithm 1 and the PDG construction
//! need — line-numbered AST nodes, the eight structured control statements
//! (`if`, `else if`, `else`, `for`, `while`, `do while`, `switch`, `case`),
//! pointers, arrays, and a full C expression grammar.
//!
//! ## Example
//!
//! ```
//! use sevuldet_lang::parse;
//!
//! let program = parse(r#"
//! void copy(char *dest, char *data, int n) {
//!     if (n < 10) {
//!         strncpy(dest, data, n);
//!     }
//! }
//! "#).unwrap();
//! let f = program.function("copy").unwrap();
//! assert_eq!(f.params.len(), 3);
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod span;
pub mod token;
pub mod visit;

pub use ast::{Block, Expr, ExprKind, Function, Item, Program, Stmt, StmtId, StmtKind, TypeSpec};
pub use error::{ParseError, ParseResult};
pub use parser::parse;
pub use span::{Pos, Span};
