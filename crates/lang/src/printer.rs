//! AST printing.
//!
//! Two consumers with different needs share this module:
//!
//! * the gadget pipeline needs a **token list** per statement (the paper's
//!   Definition 1: a statement is an ordered sequence of tokens), produced by
//!   [`stmt_tokens`] / [`expr_tokens`];
//! * tests, examples, and the VUDDY baseline need whole-program **source
//!   text**, produced by [`program_to_string`].

use crate::ast::*;

/// Appends the surface tokens of an expression to `out`.
pub fn expr_tokens(e: &Expr, out: &mut Vec<String>) {
    match &e.kind {
        ExprKind::IntLit(v) => out.push(v.to_string()),
        ExprKind::CharLit(v) => out.push(format!("'{}'", char::from_u32(*v as u32).unwrap_or('?'))),
        ExprKind::StrLit(s) => out.push(format!("{s:?}")),
        ExprKind::Ident(n) => out.push(n.clone()),
        ExprKind::Unary { op, expr } => {
            out.push(op.as_str().to_string());
            expr_tokens(expr, out);
        }
        ExprKind::Binary { op, lhs, rhs } => {
            expr_tokens(lhs, out);
            out.push(op.as_str().to_string());
            expr_tokens(rhs, out);
        }
        ExprKind::Assign { op, target, value } => {
            expr_tokens(target, out);
            out.push(op.as_str().to_string());
            expr_tokens(value, out);
        }
        ExprKind::Ternary {
            cond,
            then_expr,
            else_expr,
        } => {
            expr_tokens(cond, out);
            out.push("?".into());
            expr_tokens(then_expr, out);
            out.push(":".into());
            expr_tokens(else_expr, out);
        }
        ExprKind::Call { callee, args } => {
            out.push(callee.clone());
            out.push("(".into());
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push(",".into());
                }
                expr_tokens(a, out);
            }
            out.push(")".into());
        }
        ExprKind::Index { base, index } => {
            expr_tokens(base, out);
            out.push("[".into());
            expr_tokens(index, out);
            out.push("]".into());
        }
        ExprKind::Member { base, field, arrow } => {
            expr_tokens(base, out);
            out.push(if *arrow { "->" } else { "." }.into());
            out.push(field.clone());
        }
        ExprKind::Cast { ty, expr } => {
            out.push("(".into());
            out.push(ty.to_string());
            out.push(")".into());
            expr_tokens(expr, out);
        }
        ExprKind::Sizeof(arg) => {
            out.push("sizeof".into());
            out.push("(".into());
            match arg {
                SizeofArg::Type(t) => out.push(t.to_string()),
                SizeofArg::Expr(e) => expr_tokens(e, out),
            }
            out.push(")".into());
        }
        ExprKind::PreIncDec { expr, inc } => {
            out.push(if *inc { "++" } else { "--" }.into());
            expr_tokens(expr, out);
        }
        ExprKind::PostIncDec { expr, inc } => {
            expr_tokens(expr, out);
            out.push(if *inc { "++" } else { "--" }.into());
        }
        ExprKind::Comma { lhs, rhs } => {
            expr_tokens(lhs, out);
            out.push(",".into());
            expr_tokens(rhs, out);
        }
    }
}

fn decl_tokens(d: &Decl, out: &mut Vec<String>) {
    out.push(d.ty.name.clone());
    for _ in 0..d.ty.ptr_depth {
        out.push("*".into());
    }
    out.push(d.name.clone());
    for dim in &d.array_dims {
        out.push("[".into());
        if let Some(n) = dim {
            out.push(n.to_string());
        }
        out.push("]".into());
    }
    if let Some(init) = &d.init {
        out.push("=".into());
        expr_tokens(init, out);
    }
}

/// The *header* tokens of a statement — what appears on the statement's own
/// line in a code gadget. Control-statement bodies are **not** included:
/// gadget lines are per-statement, and Algorithm 1 inserts block-delimiting
/// statements separately.
pub fn stmt_tokens(s: &Stmt) -> Vec<String> {
    let mut out = Vec::new();
    match &s.kind {
        StmtKind::Decl(d) => {
            decl_tokens(d, &mut out);
            out.push(";".into());
        }
        StmtKind::Expr(e) => {
            expr_tokens(e, &mut out);
            out.push(";".into());
        }
        StmtKind::Block(_) => {
            out.push("{".into());
        }
        StmtKind::If { cond, .. } => {
            out.push("if".into());
            out.push("(".into());
            expr_tokens(cond, &mut out);
            out.push(")".into());
            out.push("{".into());
        }
        StmtKind::While { cond, .. } => {
            out.push("while".into());
            out.push("(".into());
            expr_tokens(cond, &mut out);
            out.push(")".into());
            out.push("{".into());
        }
        StmtKind::DoWhile { .. } => {
            out.push("do".into());
            out.push("{".into());
        }
        StmtKind::For {
            init, cond, step, ..
        } => {
            out.push("for".into());
            out.push("(".into());
            if let Some(i) = init {
                match &i.kind {
                    StmtKind::Decl(d) => decl_tokens(d, &mut out),
                    StmtKind::Expr(e) => expr_tokens(e, &mut out),
                    _ => {}
                }
            }
            out.push(";".into());
            if let Some(c) = cond {
                expr_tokens(c, &mut out);
            }
            out.push(";".into());
            if let Some(st) = step {
                expr_tokens(st, &mut out);
            }
            out.push(")".into());
            out.push("{".into());
        }
        StmtKind::Switch { scrutinee, .. } => {
            out.push("switch".into());
            out.push("(".into());
            expr_tokens(scrutinee, &mut out);
            out.push(")".into());
            out.push("{".into());
        }
        StmtKind::Break => {
            out.push("break".into());
            out.push(";".into());
        }
        StmtKind::Continue => {
            out.push("continue".into());
            out.push(";".into());
        }
        StmtKind::Return(e) => {
            out.push("return".into());
            if let Some(e) = e {
                expr_tokens(e, &mut out);
            }
            out.push(";".into());
        }
    }
    out
}

/// Renders a statement's header tokens as a single line of text.
pub fn stmt_to_line(s: &Stmt) -> String {
    stmt_tokens(s).join(" ")
}

struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn line(&mut self, text: &str) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(text);
        self.out.push('\n');
    }

    fn expr(&self, e: &Expr) -> String {
        let mut toks = Vec::new();
        expr_tokens(e, &mut toks);
        join_tokens(&toks)
    }

    fn block(&mut self, b: &Block) {
        self.indent += 1;
        for s in &b.stmts {
            self.stmt(s);
        }
        self.indent -= 1;
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Decl(d) => {
                let mut toks = Vec::new();
                decl_tokens(d, &mut toks);
                self.line(&format!("{};", join_tokens(&toks)));
            }
            StmtKind::Expr(e) => {
                let t = self.expr(e);
                self.line(&format!("{t};"));
            }
            StmtKind::Block(b) => {
                self.line("{");
                self.block(b);
                self.line("}");
            }
            StmtKind::If {
                cond,
                then,
                else_ifs,
                else_block,
            } => {
                let c = self.expr(cond);
                self.line(&format!("if ({c}) {{"));
                self.block(then);
                for ei in else_ifs {
                    let c = self.expr(&ei.cond);
                    self.line(&format!("}} else if ({c}) {{"));
                    self.block(&ei.body);
                }
                if let Some(eb) = else_block {
                    self.line("} else {");
                    self.block(&eb.body);
                }
                self.line("}");
            }
            StmtKind::While { cond, body } => {
                let c = self.expr(cond);
                self.line(&format!("while ({c}) {{"));
                self.block(body);
                self.line("}");
            }
            StmtKind::DoWhile { body, cond } => {
                self.line("do {");
                self.block(body);
                let c = self.expr(cond);
                self.line(&format!("}} while ({c});"));
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                let i = match init.as_deref().map(|s| &s.kind) {
                    Some(StmtKind::Decl(d)) => {
                        let mut t = Vec::new();
                        decl_tokens(d, &mut t);
                        join_tokens(&t)
                    }
                    Some(StmtKind::Expr(e)) => self.expr(e),
                    _ => String::new(),
                };
                let c = cond.as_ref().map(|c| self.expr(c)).unwrap_or_default();
                let st = step.as_ref().map(|s| self.expr(s)).unwrap_or_default();
                self.line(&format!("for ({i}; {c}; {st}) {{"));
                self.block(body);
                self.line("}");
            }
            StmtKind::Switch { scrutinee, cases } => {
                let sc = self.expr(scrutinee);
                self.line(&format!("switch ({sc}) {{"));
                for case in cases {
                    match &case.label {
                        CaseLabel::Case(e) => {
                            let v = self.expr(e);
                            self.line(&format!("case {v}:"));
                        }
                        CaseLabel::Default => self.line("default:"),
                    }
                    self.indent += 1;
                    for s in &case.body {
                        self.stmt(s);
                    }
                    self.indent -= 1;
                }
                self.line("}");
            }
            StmtKind::Break => self.line("break;"),
            StmtKind::Continue => self.line("continue;"),
            StmtKind::Return(e) => match e {
                Some(e) => {
                    let t = self.expr(e);
                    self.line(&format!("return {t};"));
                }
                None => self.line("return;"),
            },
        }
    }
}

/// Joins surface tokens with C-ish spacing (no space before `;,)]`, none
/// after `([`).
fn join_tokens(toks: &[String]) -> String {
    let mut out = String::new();
    for (i, t) in toks.iter().enumerate() {
        let glue_left = matches!(t.as_str(), ";" | "," | ")" | "]" | "++" | "--");
        let prev_glues = i > 0 && matches!(toks[i - 1].as_str(), "(" | "[" | "!" | "~");
        if i > 0 && !glue_left && !prev_glues {
            out.push(' ');
        }
        out.push_str(t);
    }
    out
}

/// Pretty-prints a whole program back to compilable mini-C text.
///
/// The output is *not* byte-identical to the input (line numbers change), but
/// re-parsing it yields a structurally equal AST modulo spans and statement
/// ids — a property the test suite checks.
pub fn program_to_string(p: &Program) -> String {
    let mut pr = Printer {
        out: String::new(),
        indent: 0,
    };
    for item in &p.items {
        match item {
            Item::Function(f) => {
                let params = f
                    .params
                    .iter()
                    .map(|p| {
                        let mut s = format!("{} {}", p.ty, p.name);
                        for d in &p.array_dims {
                            match d {
                                Some(n) => s.push_str(&format!("[{n}]")),
                                None => s.push_str("[]"),
                            }
                        }
                        s
                    })
                    .collect::<Vec<_>>()
                    .join(", ");
                pr.line(&format!("{} {}({params}) {{", f.ret, f.name));
                pr.block(&f.body);
                pr.line("}");
            }
            Item::Global(d) => {
                let mut toks = Vec::new();
                decl_tokens(d, &mut toks);
                pr.line(&format!("{};", join_tokens(&toks)));
            }
            Item::Struct(s) => {
                pr.line(&format!("struct {} {{", s.name));
                pr.indent += 1;
                for f in &s.fields {
                    let mut toks = Vec::new();
                    decl_tokens(f, &mut toks);
                    pr.line(&format!("{};", join_tokens(&toks)));
                }
                pr.indent -= 1;
                pr.line("};");
            }
        }
    }
    pr.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn stmt_tokens_for_if_header_only() {
        let p = parse("void f(int n) { if (n > 5) { g(); } }").unwrap();
        let f = p.function("f").unwrap();
        let toks = stmt_tokens(&f.body.stmts[0]);
        assert_eq!(toks, vec!["if", "(", "n", ">", "5", ")", "{"]);
    }

    #[test]
    fn stmt_tokens_for_call() {
        let p = parse("void f() { strncpy(dest, data, n); }").unwrap();
        let f = p.function("f").unwrap();
        let toks = stmt_tokens(&f.body.stmts[0]);
        assert_eq!(
            toks,
            vec!["strncpy", "(", "dest", ",", "data", ",", "n", ")", ";"]
        );
    }

    #[test]
    fn roundtrip_structural_equality() {
        let src = r#"
struct pkt { int len; char data[16]; };
int limit = 100;
int clamp(int n) {
    if (n < 0) { return 0; }
    else if (n > limit) { return limit; }
    else { return n; }
}
void f(struct pkt *p, int n) {
    char buf[8];
    for (int i = 0; i < n; i++) {
        switch (i % 3) {
        case 0:
            buf[i] = 'a';
            break;
        default:
            buf[i] = (char)(i + 48);
        }
    }
    do { n--; } while (n > 0 && p->len < 16);
    memcpy(p->data, buf, sizeof buf);
}
"#;
        let p1 = parse(src).unwrap();
        let text = program_to_string(&p1);
        let p2 = parse(&text).expect("printed program must re-parse");
        // Compare shapes: same functions, same statement token streams.
        for (f1, f2) in p1.functions().zip(p2.functions()) {
            assert_eq!(f1.name, f2.name);
            let t1: Vec<_> = f1.body.stmts.iter().map(stmt_tokens).collect();
            let t2: Vec<_> = f2.body.stmts.iter().map(stmt_tokens).collect();
            assert_eq!(t1, t2);
        }
    }
}
