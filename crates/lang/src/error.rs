//! Lexer and parser error types.

use crate::span::Span;
use std::fmt;

/// An error produced while lexing or parsing mini-C source.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Where in the source the error occurred.
    pub span: Span,
}

impl ParseError {
    /// Creates a new parse error at the given span.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        ParseError {
            message: message.into(),
            span,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Convenience alias for lexer/parser results.
pub type ParseResult<T> = Result<T, ParseError>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Pos;

    #[test]
    fn display_includes_location_and_message() {
        let e = ParseError::new("unexpected token", Span::point(Pos::new(3, 7)));
        assert_eq!(e.to_string(), "parse error at 3:7: unexpected token");
    }
}
