//! Regenerates the paper's table3 (see `sevuldet_bench::tables`).
fn main() {
    sevuldet_bench::tables::table3();
}
