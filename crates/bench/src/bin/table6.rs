//! Regenerates the paper's Table VI (real-world Xen-sim transfer).
fn main() {
    sevuldet_bench::tables::table6();
}
