//! Regenerates the paper's table1 (see `sevuldet_bench::tables`).
fn main() {
    sevuldet_bench::tables::table1();
}
