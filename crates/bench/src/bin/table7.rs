//! Regenerates the paper's Table VII (the three CVE analogues).
fn main() {
    sevuldet_bench::tables::table7();
}
