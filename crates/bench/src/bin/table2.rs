//! Regenerates the paper's table2 (see `sevuldet_bench::tables`).
fn main() {
    sevuldet_bench::tables::table2();
}
