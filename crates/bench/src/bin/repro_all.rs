//! Runs every table and figure of the paper back to back — the one-shot
//! reproduction entry point. `SEVULDET_SCALE`/`SEVULDET_SEED` apply.
fn main() {
    use sevuldet_bench::tables;
    let t0 = std::time::Instant::now();
    tables::table1();
    tables::table2();
    tables::table3();
    tables::table4();
    tables::fig5();
    tables::table5();
    tables::table6();
    tables::table7();
    tables::fig6();
    println!("\ntotal reproduction time: {:.1?}", t0.elapsed());
}
