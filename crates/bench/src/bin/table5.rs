//! Regenerates the paper's table5 (see `sevuldet_bench::tables`).
fn main() {
    sevuldet_bench::tables::table5();
}
