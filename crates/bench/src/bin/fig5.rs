//! Regenerates the paper's fig5 (see `sevuldet_bench::tables`).
fn main() {
    sevuldet_bench::tables::fig5();
}
