//! `loadgen` — an epoll-based HTTP load generator for `sevuldet serve` and
//! `sevuldet balance`, built to hold 10k concurrent keep-alive connections
//! from one process (the thread-per-request shape of a naive client would
//! melt first and measure itself, not the server).
//!
//! Each connection runs a closed loop by default — send `POST /scan`, await
//! the response, record latency, immediately send the next — so `N`
//! connections ≈ `N` outstanding requests. `--rate R` switches to an
//! open loop: requests are scheduled at a fixed aggregate rate and latency
//! is measured from the *scheduled* send time, so a server that falls
//! behind accrues queueing delay in the numbers instead of silently slowing
//! the generator (coordinated omission).
//!
//! ```text
//! loadgen --addr 127.0.0.1:8080 [--connections 1000] [--duration-s 10]
//!         [--warmup-s 2] [--distinct 64] [--rate 0] [--json] [--self-test]
//! ```
//!
//! `--distinct N` rotates N distinct source bodies (distinct digests), which
//! is what exercises consistent-hash cache affinity behind the balancer.
//! Reports req/s plus p50/p99/p999 latency; any non-200 response or I/O
//! error counts as a failure, broken down by status code and error class
//! (connect hangup vs read vs write) so chaos benches report *availability*
//! — completed / attempted — not just throughput. `--min-availability P`
//! (e.g. `0.999`) turns the exit gate from "zero failures" into "measured
//! availability ≥ P", which is what a rolling-restart run asserts.
//! `--self-test` spins an in-process server and runs a short closed-loop
//! burst against it (the CI smoke path).

#[cfg(target_os = "linux")]
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    linux::main(&args)
}

#[cfg(not(target_os = "linux"))]
fn main() {
    eprintln!("loadgen requires Linux (epoll)");
    std::process::exit(2);
}

#[cfg(target_os = "linux")]
mod linux {
    use sevuldet::Json;
    use sevuldet_serve::sys::{
        raise_nofile_limit, Epoll, EpollEvent, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT,
    };
    use std::collections::BTreeMap;
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use std::os::fd::AsRawFd;
    use std::time::{Duration, Instant};

    const MAX_EVENTS: usize = 1024;

    /// The scan body template; `{i}` varies per distinct source so each has
    /// its own digest (and its own consistent-hash home shard).
    fn scan_body(i: usize) -> String {
        let source = format!(
            "void process_{i}(char *dest, char *data) {{\n    int n = atoi(data) + {i};\n    if (n < 16) {{\n        puts(\"small\");\n    }}\n    strncpy(dest, data, n);\n}}"
        );
        Json::obj(vec![
            ("source", Json::str(source)),
            ("name", Json::str(format!("bench_{i}.c"))),
        ])
        .to_string()
    }

    /// Pre-serialized keep-alive request bytes for one distinct body.
    fn request_bytes(addr: &str, body: &str) -> Vec<u8> {
        format!(
            "POST /scan HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .into_bytes()
    }

    struct Conn {
        stream: TcpStream,
        wbuf: &'static [u8],
        wpos: usize,
        rbuf: Vec<u8>,
        /// When the in-flight request was (actually or nominally) sent.
        sent_at: Instant,
        /// Open loop: when this connection's next request is due.
        next_due: Instant,
        in_flight: bool,
        interest: u32,
        dead: bool,
    }

    struct Stats {
        latencies_ns: Vec<u64>,
        completed: u64,
        failures: u64,
        /// Responses by exact status code (200 included).
        statuses: BTreeMap<u16, u64>,
        /// Transport failures by class: `hangup` (EPOLLERR/HUP or EOF
        /// mid-response), `read`, `write`.
        errors: BTreeMap<&'static str, u64>,
    }

    pub fn main(args: &[String]) {
        let get = |name: &str| {
            args.iter()
                .position(|a| a == name)
                .and_then(|i| args.get(i + 1))
                .cloned()
        };
        let has = |name: &str| args.iter().any(|a| a == name);
        let parse = |name: &str, default: u64| -> u64 {
            get(name).map_or(default, |v| {
                v.parse().unwrap_or_else(|_| {
                    eprintln!("bad {name} `{v}`");
                    std::process::exit(2);
                })
            })
        };

        if has("--self-test") {
            self_test();
            return;
        }
        let Some(addr) = get("--addr") else {
            eprintln!(
                "usage: loadgen --addr host:port [--connections N] [--duration-s N] [--warmup-s N] [--distinct N] [--rate R] [--min-availability P] [--json] [--self-test]"
            );
            std::process::exit(2);
        };
        let connections = parse("--connections", 1000) as usize;
        let duration = Duration::from_secs(parse("--duration-s", 10));
        let warmup = Duration::from_secs(parse("--warmup-s", 2));
        let distinct = (parse("--distinct", 64) as usize).max(1);
        let rate = parse("--rate", 0);
        let as_json = has("--json");
        let min_availability: Option<f64> = get("--min-availability").map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("bad --min-availability `{v}`");
                std::process::exit(2);
            })
        });

        let report = run(&addr, connections, duration, warmup, distinct, rate);
        print_report(
            &report,
            connections,
            duration,
            distinct,
            rate,
            as_json,
            min_availability,
        );
    }

    struct Report {
        requests: u64,
        failures: u64,
        statuses: BTreeMap<u16, u64>,
        errors: BTreeMap<&'static str, u64>,
        elapsed: Duration,
        p50_ms: f64,
        p99_ms: f64,
        p999_ms: f64,
    }

    impl Report {
        /// Completed ÷ attempted: the availability a client of this fleet
        /// observed during the run.
        fn availability(&self) -> f64 {
            let attempted = self.requests + self.failures;
            if attempted == 0 {
                return 0.0;
            }
            self.requests as f64 / attempted as f64
        }
    }

    fn percentile_ms(sorted_ns: &[u64], q: f64) -> f64 {
        if sorted_ns.is_empty() {
            return 0.0;
        }
        let idx = ((sorted_ns.len() as f64 * q) as usize).min(sorted_ns.len() - 1);
        sorted_ns[idx] as f64 / 1e6
    }

    fn run(
        addr: &str,
        connections: usize,
        duration: Duration,
        warmup: Duration,
        distinct: usize,
        rate: u64,
    ) -> Report {
        match raise_nofile_limit() {
            Ok(limit) if (limit as usize) < connections + 64 => {
                eprintln!("warning: nofile limit {limit} is tight for {connections} connections");
            }
            Err(e) => eprintln!("warning: could not raise nofile limit: {e}"),
            _ => {}
        }

        // One request per distinct body, leaked once: connections borrow
        // them for the whole run without per-send allocation.
        let requests: Vec<&'static [u8]> = (0..distinct)
            .map(|i| &*Vec::leak(request_bytes(addr, &scan_body(i))))
            .collect();

        let ep = Epoll::new().expect("epoll");
        let mut conns: Vec<Conn> = Vec::with_capacity(connections);
        // Open loop: stagger each connection's schedule so the aggregate
        // rate is smooth, not a thundering herd at every interval edge.
        let interval = if rate > 0 {
            Duration::from_secs_f64(connections as f64 / rate as f64)
        } else {
            Duration::ZERO
        };
        let start = Instant::now();
        for i in 0..connections {
            let stream = match TcpStream::connect(addr) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("connect {i}: {e}");
                    std::process::exit(1);
                }
            };
            stream.set_nonblocking(true).expect("nonblocking");
            stream.set_nodelay(true).expect("nodelay");
            ep.add(stream.as_raw_fd(), i as u64, EPOLLIN)
                .expect("epoll add");
            conns.push(Conn {
                stream,
                wbuf: requests[i % distinct],
                wpos: 0,
                rbuf: Vec::new(),
                sent_at: start,
                next_due: start,
                in_flight: false,
                interest: EPOLLIN,
                dead: false,
            });
            // Pace the connect storm so the server's accept backlog never
            // overflows (it drains per event-loop wakeup).
            if i % 256 == 255 {
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        // Schedules are based *after* the connect storm: at high connection
        // counts setup takes real time, and basing `next_due` before it
        // would book the loadgen's own slow start as server latency.
        let sched_start = Instant::now();
        if rate > 0 {
            for (i, c) in conns.iter_mut().enumerate() {
                c.next_due = sched_start + interval.mul_f64(i as f64 / connections as f64);
            }
        }

        let mut stats = Stats {
            latencies_ns: Vec::with_capacity(1 << 20),
            completed: 0,
            failures: 0,
            statuses: BTreeMap::new(),
            errors: BTreeMap::new(),
        };
        let measure_from = Instant::now() + warmup;
        let deadline = measure_from + duration;
        let mut measuring = false;
        let mut events = [EpollEvent::default(); MAX_EVENTS];
        let mut round = 0usize;

        loop {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            if !measuring && now >= measure_from {
                measuring = true;
                stats.latencies_ns.clear();
                stats.completed = 0;
                stats.failures = 0;
                stats.statuses.clear();
                stats.errors.clear();
            }
            // Kick idle connections whose next request is due (closed loop:
            // always due). Sweep a slice per iteration to bound the scan.
            for (i, c) in conns.iter_mut().enumerate() {
                if c.dead || c.in_flight {
                    continue;
                }
                if rate == 0 || c.next_due <= now {
                    begin_request(&ep, c, i, &requests, distinct, round, rate, interval, now);
                }
            }
            round += 1;

            let timeout = if rate > 0 { 1 } else { 10 };
            let n = ep.wait(&mut events, timeout).unwrap_or(0);
            for ev in &events[..n] {
                let (token, bits) = ({ ev.data } as usize, { ev.events });
                let c = &mut conns[token];
                if c.dead {
                    continue;
                }
                if bits & (EPOLLERR | EPOLLHUP) != 0 {
                    kill(&ep, c, &mut stats, measuring, "hangup");
                    continue;
                }
                if bits & EPOLLOUT != 0 {
                    continue_write(&ep, c, token, &mut stats, measuring);
                }
                if bits & EPOLLIN != 0 {
                    continue_read(&ep, c, token, &mut stats, measuring);
                }
            }
        }

        let elapsed = Instant::now() - measure_from.min(Instant::now());
        stats.latencies_ns.sort_unstable();
        Report {
            requests: stats.completed,
            failures: stats.failures,
            statuses: stats.statuses,
            errors: stats.errors,
            elapsed,
            p50_ms: percentile_ms(&stats.latencies_ns, 0.50),
            p99_ms: percentile_ms(&stats.latencies_ns, 0.99),
            p999_ms: percentile_ms(&stats.latencies_ns, 0.999),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn begin_request(
        ep: &Epoll,
        c: &mut Conn,
        token: usize,
        requests: &[&'static [u8]],
        distinct: usize,
        round: usize,
        rate: u64,
        interval: Duration,
        now: Instant,
    ) {
        // Rotate bodies across rounds so every connection eventually posts
        // every distinct source (a repeated-corpus workload).
        c.wbuf = requests[(token + round) % distinct];
        c.wpos = 0;
        c.in_flight = true;
        // Open loop: latency includes any lateness of this very send.
        c.sent_at = if rate > 0 { c.next_due } else { now };
        if rate > 0 {
            c.next_due += interval;
        }
        write_some(c);
        let want = if c.wpos < c.wbuf.len() {
            EPOLLIN | EPOLLOUT
        } else {
            EPOLLIN
        };
        if want != c.interest {
            if ep.modify(c.stream.as_raw_fd(), token as u64, want).is_err() {
                c.dead = true;
                return;
            }
            c.interest = want;
        }
    }

    fn write_some(c: &mut Conn) {
        while c.wpos < c.wbuf.len() {
            match c.stream.write(&c.wbuf[c.wpos..]) {
                Ok(0) => {
                    c.dead = true;
                    return;
                }
                Ok(n) => c.wpos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    c.dead = true;
                    return;
                }
            }
        }
    }

    fn continue_write(ep: &Epoll, c: &mut Conn, token: usize, stats: &mut Stats, measuring: bool) {
        write_some(c);
        if c.dead {
            if measuring {
                stats.failures += 1;
                *stats.errors.entry("write").or_insert(0) += 1;
            }
            let _ = ep.delete(c.stream.as_raw_fd());
            return;
        }
        if c.wpos >= c.wbuf.len()
            && c.interest != EPOLLIN
            && ep
                .modify(c.stream.as_raw_fd(), token as u64, EPOLLIN)
                .is_ok()
        {
            c.interest = EPOLLIN;
        }
    }

    fn continue_read(ep: &Epoll, c: &mut Conn, _token: usize, stats: &mut Stats, measuring: bool) {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match c.stream.read(&mut chunk) {
                Ok(0) => {
                    kill(ep, c, stats, measuring, "hangup");
                    return;
                }
                Ok(n) => {
                    c.rbuf.extend_from_slice(&chunk[..n]);
                    if n < chunk.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    kill(ep, c, stats, measuring, "read");
                    return;
                }
            }
        }
        // One request in flight per connection, so at most one complete
        // response sits in the buffer.
        if let Some((status, total)) = parse_response(&c.rbuf) {
            if c.rbuf.len() >= total {
                if measuring {
                    *stats.statuses.entry(status).or_insert(0) += 1;
                    if status == 200 {
                        stats.completed += 1;
                        stats
                            .latencies_ns
                            .push(c.sent_at.elapsed().as_nanos() as u64);
                    } else {
                        stats.failures += 1;
                    }
                }
                c.rbuf.drain(..total);
                c.in_flight = false;
            }
        }
    }

    /// Parses a buffered response head; returns `(status, total response
    /// bytes including body)` once the head is complete.
    fn parse_response(buf: &[u8]) -> Option<(u16, usize)> {
        let head_end = buf.windows(4).position(|w| w == b"\r\n\r\n")?;
        let head = std::str::from_utf8(&buf[..head_end]).ok()?;
        let status: u16 = head.split_whitespace().nth(1)?.parse().ok()?;
        let content_length: usize = head
            .lines()
            .find_map(|l| {
                let (name, value) = l.split_once(':')?;
                name.eq_ignore_ascii_case("content-length")
                    .then(|| value.trim().parse().ok())?
            })
            .unwrap_or(0);
        Some((status, head_end + 4 + content_length))
    }

    fn kill(ep: &Epoll, c: &mut Conn, stats: &mut Stats, measuring: bool, class: &'static str) {
        if !c.dead {
            c.dead = true;
            let _ = ep.delete(c.stream.as_raw_fd());
            if measuring && c.in_flight {
                stats.failures += 1;
                *stats.errors.entry(class).or_insert(0) += 1;
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn print_report(
        report: &Report,
        connections: usize,
        duration: Duration,
        distinct: usize,
        rate: u64,
        as_json: bool,
        min_availability: Option<f64>,
    ) {
        let secs = report.elapsed.as_secs_f64().max(1e-9);
        let rps = report.requests as f64 / secs;
        let availability = report.availability();
        if as_json {
            let statuses = Json::Obj(
                report
                    .statuses
                    .iter()
                    .map(|(code, n)| (code.to_string(), Json::Num(*n as f64)))
                    .collect(),
            );
            let errors = Json::Obj(
                report
                    .errors
                    .iter()
                    .map(|(class, n)| (class.to_string(), Json::Num(*n as f64)))
                    .collect(),
            );
            println!(
                "{}",
                Json::obj(vec![
                    ("connections", Json::Num(connections as f64)),
                    ("duration_s", Json::Num(duration.as_secs_f64())),
                    ("distinct_sources", Json::Num(distinct as f64)),
                    ("rate_target", Json::Num(rate as f64)),
                    ("requests", Json::Num(report.requests as f64)),
                    ("failures", Json::Num(report.failures as f64)),
                    ("availability", Json::Num(availability)),
                    ("statuses", statuses),
                    ("errors", errors),
                    ("req_per_s", Json::Num(rps)),
                    ("p50_ms", Json::Num(report.p50_ms)),
                    ("p99_ms", Json::Num(report.p99_ms)),
                    ("p999_ms", Json::Num(report.p999_ms)),
                ])
            );
        } else {
            println!(
                "{connections} conns, {:.1}s: {} requests ({rps:.0} req/s), {} failure(s), availability {:.4}%; latency p50 {:.2} ms, p99 {:.2} ms, p99.9 {:.2} ms",
                secs,
                report.requests,
                report.failures,
                availability * 100.0,
                report.p50_ms,
                report.p99_ms,
                report.p999_ms
            );
            if !report.statuses.is_empty() || !report.errors.is_empty() {
                let statuses: Vec<String> = report
                    .statuses
                    .iter()
                    .map(|(code, n)| format!("{code}:{n}"))
                    .collect();
                let errors: Vec<String> = report
                    .errors
                    .iter()
                    .map(|(class, n)| format!("{class}:{n}"))
                    .collect();
                println!(
                    "  statuses {{{}}} transport-errors {{{}}}",
                    statuses.join(", "),
                    errors.join(", ")
                );
            }
        }
        let failed = match min_availability {
            Some(min) => availability < min,
            None => report.failures > 0,
        };
        if failed {
            std::process::exit(1);
        }
    }

    /// CI smoke: a tiny in-process server, 64 keep-alive connections,
    /// closed loop for two seconds — asserts zero failures and nonzero
    /// throughput, exercising the whole loadgen state machine plus the
    /// server's event loop.
    fn self_test() {
        use sevuldet::{save_detector, Detector, GadgetSpec, ModelKind, TrainConfig};
        use sevuldet_dataset::{sard, SardConfig};
        use sevuldet_serve::registry::ModelRegistry;
        use sevuldet_serve::server::{start, ServeConfig};

        let samples = sard::generate(&SardConfig {
            per_category: 5,
            ..SardConfig::default()
        });
        let corpus = GadgetSpec::path_sensitive().extract(&samples);
        let cfg = TrainConfig {
            embed_dim: 10,
            w2v_epochs: 1,
            epochs: 2,
            cnn_channels: 8,
            seed: 42,
            ..TrainConfig::quick()
        };
        let mut det = Detector::train(&corpus, ModelKind::SevulDet, &cfg);
        let dir = std::env::temp_dir().join(format!("svd-loadgen-selftest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("model.svd");
        std::fs::write(&path, save_detector(&mut det)).expect("write model");

        let registry = ModelRegistry::open(&path).expect("model loads");
        let handle = start(
            ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                workers: 2,
                max_batch: 16,
                queue_cap: 256,
                ..ServeConfig::default()
            },
            registry,
        )
        .expect("server starts");
        let addr = handle.addr().to_string();

        let report = run(
            &addr,
            64,
            Duration::from_secs(2),
            Duration::from_millis(500),
            8,
            0,
        );
        handle.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(report.failures, 0, "self-test saw request failures");
        assert!(report.requests > 0, "self-test completed no requests");
        println!(
            "loadgen self-test ok: {} requests, p99 {:.2} ms",
            report.requests, report.p99_ms
        );
    }
}
