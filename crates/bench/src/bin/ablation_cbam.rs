//! Runs the CBAM sequential-vs-parallel arrangement ablation.
fn main() {
    sevuldet_bench::tables::ablation_cbam();
}
