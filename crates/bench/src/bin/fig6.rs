//! Regenerates the paper's fig6 (see `sevuldet_bench::tables`).
fn main() {
    sevuldet_bench::tables::fig6();
}
