//! Markdown link checker for the repository's documentation — `std` only.
//!
//! Walks `README.md`, the other root-level `*.md` files, and `docs/*.md`,
//! extracts every inline link and image (`[text](target)` / `![alt](target)`),
//! and verifies:
//!
//! * relative targets resolve to a file or directory on disk (queries and
//!   fragments stripped first);
//! * fragment targets (`#anchor`, `FILE.md#anchor`) name a real heading in
//!   the target document, using GitHub's slugging rules (lowercase, drop
//!   punctuation, spaces to dashes, `-N` suffixes for duplicates);
//! * `http(s)`/`mailto` targets are skipped — CI has no network, and flaky
//!   external checks would make the gate useless.
//!
//! Fenced code blocks and inline code spans are ignored on both sides: a
//! `[label](target)` inside an example snippet is not a link, and headings
//! inside fences do not create anchors.
//!
//! Exit codes follow the CLI convention: `0` clean, `1` broken links found,
//! `3` an input file could not be read.
//!
//! Run as `cargo run -p sevuldet-bench --bin linkcheck [ROOT]` (default:
//! the current directory). CI runs it over the checkout on every push.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    let root = PathBuf::from(root);
    let files = match doc_files(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("linkcheck: {e}");
            return ExitCode::from(3);
        }
    };
    let mut broken = 0usize;
    let mut checked = 0usize;
    // Anchor sets are built lazily per target document and memoized.
    let mut anchors: HashMap<PathBuf, Option<Vec<String>>> = HashMap::new();
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("linkcheck: cannot read {}: {e}", file.display());
                return ExitCode::from(3);
            }
        };
        for link in extract_links(&text) {
            checked += 1;
            if let Some(reason) = check_link(file, &link.target, &mut anchors) {
                broken += 1;
                eprintln!(
                    "{}:{}: broken link `{}` — {reason}",
                    file.display(),
                    link.line,
                    link.target
                );
            }
        }
    }
    println!(
        "linkcheck: {} file(s), {checked} link(s), {broken} broken",
        files.len()
    );
    if broken > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// The documentation set: every `*.md` at the root and under `docs/`.
fn doc_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for dir in [root.to_path_buf(), root.join("docs")] {
        if !dir.is_dir() {
            continue;
        }
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "md") && path.is_file() {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

struct Link {
    line: usize,
    target: String,
}

/// Extracts inline link/image targets, skipping fenced code blocks and
/// inline code spans.
fn extract_links(text: &str) -> Vec<Link> {
    let mut links = Vec::new();
    let mut in_fence = false;
    for (i, raw) in text.lines().enumerate() {
        let trimmed = raw.trim_start();
        if trimmed.starts_with("```") || trimmed.starts_with("~~~") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let line = strip_code_spans(raw);
        let bytes = line.as_bytes();
        let mut pos = 0;
        while let Some(open) = line[pos..].find("](").map(|o| pos + o) {
            // Walk back to the matching `[`, tolerating nested brackets in
            // the label (e.g. `[![badge](img)](page)` handled per-pair).
            let mut depth = 1i32;
            let mut start = None;
            for j in (0..open).rev() {
                match bytes[j] {
                    b']' => depth += 1,
                    b'[' => {
                        depth -= 1;
                        if depth == 0 {
                            start = Some(j);
                            break;
                        }
                    }
                    _ => {}
                }
            }
            let Some(close) = line[open + 2..].find(')').map(|c| open + 2 + c) else {
                break;
            };
            if start.is_some() {
                let target = line[open + 2..close].trim();
                // `[text](url "title")` — drop the title part.
                let target = target.split_whitespace().next().unwrap_or("");
                if !target.is_empty() {
                    links.push(Link {
                        line: i + 1,
                        target: target.to_string(),
                    });
                }
            }
            pos = close + 1;
        }
    }
    links
}

/// Replaces `` `code spans` `` with spaces so link syntax inside them is
/// invisible to the extractor (lengths preserved for stable columns).
fn strip_code_spans(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut in_span = false;
    for ch in line.chars() {
        if ch == '`' {
            in_span = !in_span;
            out.push(' ');
        } else if in_span {
            out.push(' ');
        } else {
            out.push(ch);
        }
    }
    out
}

/// Returns `None` if the link is fine, or a human-readable reason.
fn check_link(
    from: &Path,
    target: &str,
    anchors: &mut HashMap<PathBuf, Option<Vec<String>>>,
) -> Option<String> {
    if target.starts_with("http://")
        || target.starts_with("https://")
        || target.starts_with("mailto:")
    {
        return None; // external — out of scope for an offline checker
    }
    let (path_part, fragment) = match target.split_once('#') {
        Some((p, f)) => (p, Some(f)),
        None => (target, None),
    };
    let path_part = path_part.split('?').next().unwrap_or(path_part);
    let base = from.parent().unwrap_or(Path::new("."));
    let resolved = if path_part.is_empty() {
        from.to_path_buf() // same-document `#anchor`
    } else {
        base.join(path_part)
    };
    if !resolved.exists() {
        return Some(format!("target `{}` does not exist", resolved.display()));
    }
    let fragment = fragment?;
    if resolved.extension().is_none_or(|e| e != "md") {
        return None; // fragments into non-markdown targets are not ours to judge
    }
    let canon = resolved.canonicalize().unwrap_or(resolved.clone());
    let slugs = anchors.entry(canon).or_insert_with(|| {
        std::fs::read_to_string(&resolved)
            .ok()
            .map(|t| heading_slugs(&t))
    });
    match slugs {
        None => Some(format!("cannot read `{}` for anchors", resolved.display())),
        Some(slugs) if slugs.iter().any(|s| s == fragment) => None,
        Some(_) => Some(format!(
            "no heading for anchor `#{fragment}` in `{}`",
            resolved.display()
        )),
    }
}

/// GitHub-style anchor slugs for every ATX heading outside code fences.
fn heading_slugs(text: &str) -> Vec<String> {
    let mut slugs: Vec<String> = Vec::new();
    let mut counts: HashMap<String, usize> = HashMap::new();
    let mut in_fence = false;
    for raw in text.lines() {
        let trimmed = raw.trim_start();
        if trimmed.starts_with("```") || trimmed.starts_with("~~~") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence || !trimmed.starts_with('#') {
            continue;
        }
        let title = trimmed.trim_start_matches('#');
        if !title.starts_with(' ') && !title.is_empty() {
            continue; // `#hashtag`, not a heading
        }
        let slug = slugify(title.trim());
        let n = counts.entry(slug.clone()).or_insert(0);
        slugs.push(if *n == 0 {
            slug.clone()
        } else {
            format!("{slug}-{n}")
        });
        *n += 1;
    }
    slugs
}

/// GitHub's slug rules: strip markdown emphasis/code markers, lowercase,
/// drop everything but alphanumerics/spaces/hyphens, spaces become hyphens.
fn slugify(title: &str) -> String {
    let mut slug = String::with_capacity(title.len());
    for ch in title.chars() {
        if ch == '`' || ch == '*' || ch == '_' {
            continue;
        }
        let ch = ch.to_ascii_lowercase();
        if ch.is_alphanumeric() {
            slug.push(ch);
        } else if ch == ' ' || ch == '-' {
            slug.push('-');
        }
        // every other character drops
    }
    slug
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slugs_follow_github_rules() {
        assert_eq!(slugify("1. CLI reference"), "1-cli-reference");
        assert_eq!(slugify("`/metrics` reference"), "metrics-reference");
        assert_eq!(slugify("Checkpoint / resume"), "checkpoint--resume");
        assert_eq!(
            slugify("Multi-model serving and the A/B canary runbook"),
            "multi-model-serving-and-the-ab-canary-runbook"
        );
    }

    #[test]
    fn duplicate_headings_get_numeric_suffixes() {
        let slugs = heading_slugs("# A\n## Same\n## Same\n```\n# not a heading\n```\n## Same\n");
        assert_eq!(slugs, vec!["a", "same", "same-1", "same-2"]);
    }

    #[test]
    fn links_inside_code_are_ignored() {
        let text = "see [real](docs/API.md)\n```\n[fake](nope.md)\n```\nand `[span](x.md)` too\n";
        let links = extract_links(text);
        assert_eq!(links.len(), 1);
        assert_eq!(links[0].target, "docs/API.md");
        assert_eq!(links[0].line, 1);
    }

    #[test]
    fn titles_and_fragments_are_parsed_off_targets() {
        let links = extract_links("[a](FILE.md#sec) [b](img.png \"title\")\n");
        assert_eq!(links[0].target, "FILE.md#sec");
        assert_eq!(links[1].target, "img.png");
    }
}
