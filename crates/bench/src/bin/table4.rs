//! Regenerates the paper's Table IV (hyper-parameters).
fn main() {
    sevuldet_bench::tables::table4();
}
