//! # sevuldet-bench
//!
//! The reproduction harness: one binary per table/figure of the paper
//! (`table1` … `table7`, `fig5`, `fig6`, `repro_all`) plus criterion
//! micro-benchmarks. Every binary prints the paper's reported values next
//! to the measured ones; absolute numbers differ (synthetic corpus, CPU
//! scale), the *shape* — who wins and by roughly what factor — is the
//! reproduction target.
//!
//! All binaries honour two environment variables:
//!
//! * `SEVULDET_SCALE` (default 1) — multiplies corpus sizes;
//! * `SEVULDET_SEED` (default 42) — the global experiment seed.

pub mod tables;

use sevuldet::{Confusion, TrainConfig};
use sevuldet_dataset::{NvdConfig, SardConfig, XenConfig};

/// Experiment sizing derived from `SEVULDET_SCALE`.
#[derive(Debug, Clone)]
pub struct Sizing {
    /// SARD-sim generator configuration.
    pub sard: SardConfig,
    /// NVD-sim generator configuration.
    pub nvd: NvdConfig,
    /// Xen-sim generator configuration.
    pub xen: XenConfig,
    /// Network training configuration.
    pub train: TrainConfig,
}

/// Builds the experiment sizing for the current scale and seed.
pub fn sizing() -> Sizing {
    let scale = sevuldet::scale_factor();
    let seed = sevuldet::global_seed();
    Sizing {
        sard: SardConfig {
            per_category: 60 * scale,
            seed,
            ..SardConfig::default()
        },
        nvd: NvdConfig {
            count: 30 * scale,
            seed: seed ^ 0x0d,
            ..NvdConfig::default()
        },
        xen: XenConfig {
            distractors: 60 * scale,
            seed: seed ^ 0x8e,
            ..XenConfig::default()
        },
        train: TrainConfig {
            seed,
            ..TrainConfig::quick()
        },
    }
}

/// Prints a boxed table title.
pub fn title(text: &str) {
    println!();
    println!("==== {text} ====");
}

/// Prints a header row followed by a rule.
pub fn header(cols: &[&str]) {
    let line: Vec<String> = cols.iter().map(|c| format!("{c:>9}")).collect();
    println!("{:<28}{}", "", line.join(" "));
    println!("{}", "-".repeat(28 + cols.len() * 10));
}

/// One metric row: measured values, with the paper's values (if any) in
/// parentheses underneath.
pub fn metric_row(name: &str, c: &Confusion, paper: Option<[f64; 5]>) {
    let (fpr, fnr, a, p, f1) = c.percentages();
    println!("{name:<28}{fpr:>9.1} {fnr:>9.1} {a:>9.1} {p:>9.1} {f1:>9.1}");
    if let Some(pv) = paper {
        println!(
            "{:<28}{:>9} {:>9} {:>9} {:>9} {:>9}",
            "  (paper)",
            fmt_paper(pv[0]),
            fmt_paper(pv[1]),
            fmt_paper(pv[2]),
            fmt_paper(pv[3]),
            fmt_paper(pv[4]),
        );
    }
}

/// A three-column (A/P/F1) row with optional paper values — Table II/III
/// shape.
pub fn apf_row(name: &str, c: &Confusion, paper: Option<[f64; 3]>) {
    let (_, _, a, p, f1) = c.percentages();
    println!("{name:<34}{a:>9.1} {p:>9.1} {f1:>9.1}");
    if let Some(pv) = paper {
        println!(
            "{:<34}{:>9} {:>9} {:>9}",
            "  (paper)",
            fmt_paper(pv[0]),
            fmt_paper(pv[1]),
            fmt_paper(pv[2]),
        );
    }
}

fn fmt_paper(v: f64) -> String {
    if v.is_nan() {
        "-".to_string()
    } else {
        format!("({v:.1})")
    }
}

/// Paper reference values, one module per exhibit.
pub mod paper {
    /// Table I: gadgets per category (vulnerable, non-vulnerable, total).
    pub const TABLE1: [(&str, u64, u64, u64); 5] = [
        ("Library/API function call", 44_683, 504_872, 549_555),
        ("Array usage", 44_996, 394_451, 439_447),
        ("Pointer usage", 29_424, 512_876, 542_300),
        ("Arithmetic expression", 3_696, 38_855, 42_551),
        ("All", 122_799, 1_451_054, 1_573_853),
    ];

    /// Table II rows: (network, flexible, kind, A, P, F1).
    pub const TABLE2: [(&str, bool, &str, f64, f64, f64); 6] = [
        ("BLSTM", false, "CG", 94.9, 82.5, 85.2),
        ("BLSTM", false, "PS-CG", 95.1, 87.8, 88.8),
        ("BGRU", false, "CG", 96.0, 84.1, 85.9),
        ("BGRU", false, "PS-CG", 97.0, 88.6, 90.7),
        ("SEVulDet", true, "CG", 95.4, 91.0, 89.6),
        ("SEVulDet", true, "PS-CG", 97.3, 96.2, 94.2),
    ];

    /// Table III rows: (network, A, P, F1).
    pub const TABLE3: [(&str, f64, f64, f64); 3] = [
        ("CNN", 95.4, 88.4, 89.1),
        ("CNN-TokenATT", 95.5, 90.1, 91.0),
        ("CNN-MultiATT", 97.3, 96.2, 94.2),
    ];

    /// Table V rows: (work-kind, FPR, FNR, A, P, F1).
    pub const TABLE5: [(&str, f64, f64, f64, f64, f64); 11] = [
        ("VulDeePecker-FC", 4.1, 21.7, 92.0, 84.0, 81.0),
        ("SySeVR-FC", 3.1, 7.6, 95.9, 89.5, 90.9),
        ("SEVulDet-FC", 1.9, 5.0, 97.3, 94.9, 94.9),
        ("SySeVR-AU", 3.0, 10.2, 95.2, 90.6, 90.2),
        ("SEVulDet-AU", 4.9, 3.6, 96.0, 93.3, 94.8),
        ("SySeVR-PU", 1.7, 22.7, 96.2, 83.2, 80.1),
        ("SEVulDet-PU", 1.4, 9.3, 97.2, 93.1, 91.9),
        ("SySeVR-AE", 1.4, 3.8, 98.2, 93.7, 94.9),
        ("SEVulDet-AE", 0.5, 3.6, 99.8, 96.3, 96.3),
        ("SySeVR-All", 2.7, 12.3, 96.0, 84.1, 85.9),
        ("SEVulDet-All", 1.9, 9.7, 96.3, 92.4, 91.3),
    ];

    /// Table VI rows: (work, FPR, FNR, A, P, F1) on real-world software.
    pub const TABLE6: [(&str, f64, f64, f64, f64, f64); 3] = [
        ("VulDeePecker", 4.3, 26.7, 94.3, 51.6, 60.6),
        ("SySeVR", 3.5, 19.8, 95.5, 60.0, 67.9),
        ("SEVulDet", 3.3, 11.5, 96.2, 62.7, 73.4),
    ];

    /// Table VII: (CVE, file, Xen version, detectors per the paper).
    pub const TABLE7: [(&str, &str, &str, &str); 3] = [
        (
            "CVE-2016-4453",
            "*/display/vmware_vga.c",
            "Xen 4.4.2",
            "AFL, SySeVR, SEVulDet",
        ),
        (
            "CVE-2016-9104",
            "*/9pfs/virtio-9p.c",
            "Xen 4.6.0",
            "VulDeePecker, SEVulDet",
        ),
        (
            "CVE-2016-9776",
            "*/net/mcf_fec.c",
            "Xen 4.7.4",
            "AFL, SEVulDet",
        ),
    ];

    /// Fig. 5 approximate bar values (FPR, FNR, A, P, F1) read off the
    /// chart.
    pub const FIG5: [(&str, f64, f64, f64, f64, f64); 5] = [
        ("Flawfinder", 44.0, 69.0, 55.0, 22.0, 25.0),
        ("RATS", 42.0, 78.0, 54.0, 19.0, 20.0),
        ("Checkmarx", 20.0, 44.0, 72.0, 46.0, 50.0),
        ("VUDDY", 1.0, 90.0, 71.0, 58.0, 17.0),
        ("SEVulDet", 2.0, 9.0, 96.0, 93.0, 92.0),
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizing_scales_with_env() {
        // Default scale = 1 (do not mutate the environment in tests; other
        // tests run concurrently).
        let s = sizing();
        assert!(s.sard.per_category >= 60);
        assert!(s.train.epochs >= 1);
    }

    #[test]
    fn paper_tables_have_expected_shapes() {
        assert_eq!(paper::TABLE1.len(), 5);
        assert_eq!(paper::TABLE2.len(), 6);
        assert_eq!(paper::TABLE5.len(), 11);
        assert_eq!(paper::TABLE7.len(), 3);
        // The headline: SEVulDet-All F1 beats SySeVR-All by 5.4 points.
        let sysevr = paper::TABLE5[9].5;
        let sevuldet = paper::TABLE5[10].5;
        assert!((sevuldet - sysevr - 5.4).abs() < 1e-9);
    }

    #[test]
    fn printing_helpers_do_not_panic() {
        title("demo");
        header(&["FPR", "FNR", "A", "P", "F1"]);
        metric_row("x", &Confusion::default(), Some([1.0, 2.0, 3.0, 4.0, 5.0]));
        apf_row("y", &Confusion::default(), None);
    }
}
