//! One function per table/figure of the paper. Each prints measured values
//! next to the paper's and returns the measured data so integration tests
//! can assert the reproduction *shape*.

use crate::{apf_row, metric_row, paper, sizing, title};
use sevuldet::{
    run_split, stratified_split, subsample, Confusion, Detector, GadgetCorpus, GadgetSpec,
    ModelKind,
};
use sevuldet_dataset::{sard, xen, ProgramSample};
use sevuldet_gadget::Category;
use sevuldet_interp::{fuzz, Fault, FuzzConfig, FuzzTarget};
use std::collections::HashMap;

/// A framework under comparison = gadget generation + network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Framework {
    /// Data-dependence-only gadgets (FC seeds) + BLSTM.
    VulDeePecker,
    /// Classic gadgets (data + control dependence) + BGRU.
    SySeVr,
    /// Path-sensitive gadgets + CNN-SPP-MultiATT.
    SevulDet,
}

impl Framework {
    /// Display name.
    pub fn label(&self) -> &'static str {
        match self {
            Framework::VulDeePecker => "VulDeePecker",
            Framework::SySeVr => "SySeVR",
            Framework::SevulDet => "SEVulDet",
        }
    }

    /// Gadget generation spec of the framework.
    pub fn gadget_spec(&self) -> GadgetSpec {
        match self {
            Framework::VulDeePecker => GadgetSpec::data_only(),
            Framework::SySeVr => GadgetSpec::classic(),
            Framework::SevulDet => GadgetSpec::path_sensitive(),
        }
    }

    /// Network of the framework.
    pub fn model(&self) -> ModelKind {
        match self {
            Framework::VulDeePecker => ModelKind::Blstm,
            Framework::SySeVr => ModelKind::Bgru,
            Framework::SevulDet => ModelKind::SevulDet,
        }
    }

    /// VulDeePecker only handles library/API-call gadgets.
    pub fn category_filter(&self) -> Option<Category> {
        match self {
            Framework::VulDeePecker => Some(Category::Fc),
            _ => None,
        }
    }
}

fn restrict(corpus: &GadgetCorpus, cat: Option<Category>) -> GadgetCorpus {
    match cat {
        None => corpus.clone(),
        Some(c) => GadgetCorpus {
            items: corpus
                .items
                .iter()
                .filter(|i| i.category == c)
                .cloned()
                .collect(),
        },
    }
}

// ---------------------------------------------------------------- Table I

/// Table I: gadget counts per category. Returns `(category, vuln, total)`.
pub fn table1() -> Vec<(Category, usize, usize)> {
    let s = sizing();
    let mut samples = sard::generate(&s.sard);
    samples.extend(sard::generate_nvd(&s.nvd));
    let corpus = GadgetSpec::path_sensitive().extract(&samples);

    title("Table I: path-sensitive code gadgets per category");
    println!("programs: {} (paper: 127,821)", samples.len());
    println!(
        "{:<28}{:>12} {:>15} {:>10} {:>8}",
        "Category", "Vulnerable", "Non-vulnerable", "Total", "Vuln%"
    );
    println!("{}", "-".repeat(78));
    let mut out = Vec::new();
    let mut total = (0usize, 0usize);
    for (i, cat) in Category::ALL.iter().enumerate() {
        let idx = corpus.indices_of(Some(*cat));
        let vuln = idx.iter().filter(|&&j| corpus.items[j].label).count();
        total.0 += vuln;
        total.1 += idx.len() - vuln;
        let p = paper::TABLE1[i];
        println!(
            "{:<28}{:>12} {:>15} {:>10} {:>7.1}%",
            cat.long_name(),
            vuln,
            idx.len() - vuln,
            idx.len(),
            pct(vuln, idx.len())
        );
        println!(
            "{:<28}{:>12} {:>15} {:>10} {:>7.1}%",
            "  (paper)",
            p.1,
            p.2,
            p.3,
            pct(p.1 as usize, p.3 as usize)
        );
        out.push((*cat, vuln, idx.len()));
    }
    println!("{}", "-".repeat(78));
    println!(
        "{:<28}{:>12} {:>15} {:>10} {:>7.1}%",
        "All",
        total.0,
        total.1,
        total.0 + total.1,
        pct(total.0, total.0 + total.1)
    );
    let all = paper::TABLE1[4];
    println!(
        "{:<28}{:>12} {:>15} {:>10} {:>7.1}%",
        "  (paper)",
        all.1,
        all.2,
        all.3,
        pct(all.1 as usize, all.3 as usize)
    );
    out
}

fn pct(n: usize, d: usize) -> f64 {
    if d == 0 {
        0.0
    } else {
        n as f64 / d as f64 * 100.0
    }
}

// --------------------------------------------------------------- Table II

/// Table II: CG vs PS-CG × {BLSTM, BGRU, SEVulDet}. Returns rows of
/// `(model, kind-name, confusion)`.
pub fn table2() -> Vec<(ModelKind, &'static str, Confusion)> {
    let s = sizing();
    let samples = sard::generate(&s.sard);
    let specs = [
        ("CG", GadgetSpec::classic()),
        ("PS-CG", GadgetSpec::path_sensitive()),
    ];
    let models = [ModelKind::Blstm, ModelKind::Bgru, ModelKind::SevulDet];

    title("Table II: CG vs PS-CG x {BLSTM, BGRU, SEVulDet}");
    println!(
        "{:<34}{:>9} {:>9} {:>9}",
        "Network / Kind", "A(%)", "P(%)", "F1(%)"
    );
    println!("{}", "-".repeat(64));
    let mut out = Vec::new();
    for model in models {
        for (kname, spec) in &specs {
            let corpus = subsample(&spec.extract(&samples), 1200, s.train.seed);
            let idx = corpus.indices_of(None);
            let (train, test) = stratified_split(&corpus, &idx, 0.2, s.train.seed);
            let c = run_split(&corpus, model, &s.train, &train, &test);
            let flexible = model == ModelKind::SevulDet;
            let label = format!(
                "{model} ({}) - {kname}",
                if flexible { "flexible" } else { "fixed" }
            );
            let paper_vals = paper::TABLE2
                .iter()
                .find(|(m, _, k, ..)| {
                    *k == *kname
                        && ((model == ModelKind::Blstm && *m == "BLSTM")
                            || (model == ModelKind::Bgru && *m == "BGRU")
                            || (model == ModelKind::SevulDet && *m == "SEVulDet"))
                })
                .map(|&(_, _, _, a, p, f1)| [a, p, f1]);
            apf_row(&label, &c, paper_vals);
            out.push((model, *kname, c));
        }
    }
    out
}

// -------------------------------------------------------------- Table III

/// Table III: attention ablation. Returns `(model, confusion)` rows.
pub fn table3() -> Vec<(ModelKind, Confusion)> {
    let s = sizing();
    let samples = sard::generate(&s.sard);
    let corpus = subsample(
        &GadgetSpec::path_sensitive().extract(&samples),
        1200,
        s.train.seed,
    );
    let idx = corpus.indices_of(None);
    let (train, test) = stratified_split(&corpus, &idx, 0.2, s.train.seed);

    title("Table III: multilayer-attention ablation");
    println!(
        "{:<34}{:>9} {:>9} {:>9}",
        "Neural network", "A(%)", "P(%)", "F1(%)"
    );
    println!("{}", "-".repeat(64));
    let rows = [
        (ModelKind::CnnPlain, paper::TABLE3[0]),
        (ModelKind::CnnTokenAtt, paper::TABLE3[1]),
        (ModelKind::SevulDet, paper::TABLE3[2]),
    ];
    let mut out = Vec::new();
    for (model, (_, a, p, f1)) in rows {
        let c = run_split(&corpus, model, &s.train, &train, &test);
        let label = if model == ModelKind::SevulDet {
            "CNN-MultiATT (SEVulDet)".to_string()
        } else {
            model.label().to_string()
        };
        apf_row(&label, &c, Some([a, p, f1]));
        out.push((model, c));
    }
    println!(
        "\ncorpus: {} path-sensitive gadgets ({} vulnerable)",
        corpus.len(),
        corpus.vulnerable()
    );
    out
}

// --------------------------------------------------------------- Table IV

/// Table IV: hyper-parameters (static print).
pub fn table4() {
    let s = sizing();
    title("Table IV: hyper-parameters");
    println!(
        "{:<18}{:>14} {:>10} {:>22}",
        "Parameter", "VulDeePecker", "SySeVR", "SEVulDet (paper/ours)"
    );
    println!("{}", "-".repeat(68));
    let rows: [(&str, &str, &str, String); 6] = [
        (
            "Dimension",
            "50",
            "30",
            format!("30 / {}", s.train.embed_dim),
        ),
        ("Flexible-length", "no", "no", "yes / yes".to_string()),
        ("Batch size", "64", "16", format!("16 / {}", s.train.batch)),
        (
            "Learning rate",
            "0.001",
            "0.002",
            format!("0.0001 / {}", s.train.lr),
        ),
        (
            "Dropout",
            "0.5",
            "0.2",
            format!("0.2 / {}", s.train.dropout),
        ),
        ("Epochs", "4", "20", format!("20 / {}", s.train.epochs)),
    ];
    for (p, v, sy, se) in rows {
        println!("{p:<18}{v:>14} {sy:>10} {se:>22}");
    }
    println!(
        "\nRNN baselines use {} predefined time steps (paper: 500); decision threshold {}.",
        s.train.rnn_steps, s.train.threshold
    );
}

// ---------------------------------------------------------------- Table V

/// Table V: VulDeePecker / SySeVR / SEVulDet per category and on All.
/// Returns `(row label, confusion)`.
pub fn table5() -> Vec<(String, Confusion)> {
    let s = sizing();
    let samples = sard::generate(&s.sard);
    title("Table V: deep-learning frameworks per gadget category");
    println!(
        "{:<28}{:>9} {:>9} {:>9} {:>9} {:>9}",
        "Work - Kind", "FPR(%)", "FNR(%)", "A(%)", "P(%)", "F1(%)"
    );
    println!("{}", "-".repeat(80));
    let mut out = Vec::new();
    let runs: Vec<(Framework, Option<Category>)> = vec![
        (Framework::VulDeePecker, Some(Category::Fc)),
        (Framework::SySeVr, Some(Category::Fc)),
        (Framework::SevulDet, Some(Category::Fc)),
        (Framework::SySeVr, Some(Category::Au)),
        (Framework::SevulDet, Some(Category::Au)),
        (Framework::SySeVr, Some(Category::Pu)),
        (Framework::SevulDet, Some(Category::Pu)),
        (Framework::SySeVr, Some(Category::Ae)),
        (Framework::SevulDet, Some(Category::Ae)),
        (Framework::SySeVr, None),
        (Framework::SevulDet, None),
    ];
    for (fw, cat) in runs {
        let full = fw.gadget_spec().extract(&samples);
        let corpus = subsample(&restrict(&full, cat), 1200, s.train.seed);
        let idx: Vec<usize> = (0..corpus.len()).collect();
        let (train, test) = stratified_split(&corpus, &idx, 0.2, s.train.seed);
        let c = run_split(&corpus, fw.model(), &s.train, &train, &test);
        let label = format!(
            "{}-{}",
            fw.label(),
            cat.map(|c| c.abbrev()).unwrap_or("All")
        );
        let paper_vals = paper::TABLE5
            .iter()
            .find(|(n, ..)| *n == label)
            .map(|&(_, fpr, fnr, a, p, f1)| [fpr, fnr, a, p, f1]);
        metric_row(&label, &c, paper_vals);
        out.push((label, c));
    }
    out
}

// --------------------------------------------------------------- Table VI

/// Table VI: train on SARD-sim, detect on the Xen-like corpus. Returns
/// `(framework, confusion)`.
pub fn table6() -> Vec<(Framework, Confusion)> {
    let s = sizing();
    let train_samples = sard::generate(&s.sard);
    let xen_samples = xen::generate(&s.xen);
    title("Table VI: real-world-software (Xen-sim) transfer");
    println!(
        "{:<28}{:>9} {:>9} {:>9} {:>9} {:>9}",
        "Work", "FPR(%)", "FNR(%)", "A(%)", "P(%)", "F1(%)"
    );
    println!("{}", "-".repeat(80));
    let mut out = Vec::new();
    for (i, fw) in [
        Framework::VulDeePecker,
        Framework::SySeVr,
        Framework::SevulDet,
    ]
    .into_iter()
    .enumerate()
    {
        let train_corpus = subsample(
            &restrict(
                &fw.gadget_spec().extract(&train_samples),
                fw.category_filter(),
            ),
            1200,
            s.train.seed,
        );
        let xen_corpus = restrict(
            &fw.gadget_spec().extract(&xen_samples),
            fw.category_filter(),
        );
        let mut det = Detector::train(&train_corpus, fw.model(), &s.train);
        let c = det.evaluate_corpus(&xen_corpus);
        let p = paper::TABLE6[i];
        metric_row(fw.label(), &c, Some([p.1, p.2, p.3, p.4, p.5]));
        out.push((fw, c));
    }
    out
}

// -------------------------------------------------------------- Table VII

/// One CVE row of Table VII.
#[derive(Debug, Clone)]
pub struct CveDetection {
    /// CVE id.
    pub cve: &'static str,
    /// Detectors that found it in this reproduction.
    pub detected_by: Vec<&'static str>,
    /// The paper's detector list.
    pub paper: &'static str,
}

/// Table VII: which systems detect the three CVE analogues — an AFL-style
/// fuzzing campaign vs the three trained frameworks.
pub fn table7() -> Vec<CveDetection> {
    table7_with(&FuzzConfig {
        iterations: 6000,
        seed: sevuldet::global_seed(),
        ..FuzzConfig::default()
    })
}

/// Table VII with an explicit fuzzing budget (tests use a smaller one).
pub fn table7_with(fuzz_cfg: &FuzzConfig) -> Vec<CveDetection> {
    let s = sizing();
    let train_samples = sard::generate(&s.sard);
    let mut detectors: HashMap<Framework, (Detector, GadgetSpec, Option<Category>)> =
        HashMap::new();
    for fw in [
        Framework::VulDeePecker,
        Framework::SySeVr,
        Framework::SevulDet,
    ] {
        let train_corpus = restrict(
            &fw.gadget_spec().extract(&train_samples),
            fw.category_filter(),
        );
        let det = Detector::train(&train_corpus, fw.model(), &s.train);
        detectors.insert(fw, (det, fw.gadget_spec(), fw.category_filter()));
    }

    title("Table VII: the three CVE analogues");
    let mut out = Vec::new();
    for case in xen::cve_cases() {
        let mut found: Vec<&'static str> = Vec::new();
        // --- AFL-style fuzzing on the vulnerable analogue ---
        let program = sevuldet_lang::parse(&case.vulnerable.source).expect("analogue parses");
        let result = fuzz(
            &program,
            &FuzzTarget::Harness(case.harness.to_string()),
            fuzz_cfg,
        );
        let crashed = result.found(|f| {
            matches!(
                f,
                Fault::LoopBudget | Fault::OutOfBounds { .. } | Fault::UseAfterFree
            )
        });
        if crashed {
            found.push("AFL");
        }
        // --- the three learned frameworks ---
        for fw in [
            Framework::VulDeePecker,
            Framework::SySeVr,
            Framework::SevulDet,
        ] {
            let (det, spec, cat) = detectors.get_mut(&fw).expect("trained above");
            let corpus = restrict(&spec.extract(std::slice::from_ref(&case.vulnerable)), *cat);
            // A framework detects the CVE when one of its gadgets that
            // covers a flaw line (label = true by Step-II construction) is
            // classified vulnerable.
            let hit = corpus
                .items
                .iter()
                .any(|item| item.label && det.is_vulnerable(&item.tokens));
            if hit {
                found.push(fw.label());
            }
        }
        let paper_row = paper::TABLE7
            .iter()
            .find(|(c, ..)| *c == case.cve)
            .expect("known CVE");
        println!(
            "{:<16} {:<24} {:<12}",
            case.cve, case.file, case.xen_version
        );
        println!("    detected by (ours):  {}", found.join(", "));
        println!("    detected by (paper): {}", paper_row.3);
        out.push(CveDetection {
            cve: case.cve,
            detected_by: found,
            paper: paper_row.3,
        });
    }
    out
}

// ----------------------------------------------------------------- Fig. 5

/// Fig. 5: classical static tools vs SEVulDet, program-level. Returns
/// `(tool, confusion)`.
pub fn fig5() -> Vec<(&'static str, Confusion)> {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    use sevuldet_static::{Checkmarx, Flawfinder, Rats, StaticDetector, Vuddy};
    let s = sizing();
    let mut samples = sard::generate(&s.sard);
    // Program-level split — shuffled, or the head of the list would be a
    // single category (the generator emits categories in order).
    let mut rng = rand::rngs::StdRng::seed_from_u64(s.train.seed ^ 0xf195);
    samples.shuffle(&mut rng);
    let n_test = samples.len() / 5;
    let (test_programs, train_programs) = samples.split_at(n_test);

    title("Fig. 5: classical static detectors vs SEVulDet (program level)");
    println!(
        "{:<28}{:>9} {:>9} {:>9} {:>9} {:>9}",
        "Tool", "FPR(%)", "FNR(%)", "A(%)", "P(%)", "F1(%)"
    );
    println!("{}", "-".repeat(80));
    let mut out = Vec::new();

    let eval_static = |flagger: &dyn Fn(&ProgramSample) -> bool| -> Confusion {
        let mut c = Confusion::default();
        for p in test_programs {
            c.record(flagger(p), p.vulnerable);
        }
        c
    };

    let ff = Flawfinder;
    let c = eval_static(&|p| ff.flags(&p.source, 4));
    metric_row("Flawfinder", &c, Some(row5(paper::FIG5[0])));
    out.push(("Flawfinder", c));

    let rats = Rats;
    let c = eval_static(&|p| rats.flags(&p.source, 3));
    metric_row("RATS", &c, Some(row5(paper::FIG5[1])));
    out.push(("RATS", c));

    let cm = Checkmarx;
    let c = eval_static(&|p| cm.flags(&p.source, 4));
    metric_row("Checkmarx", &c, Some(row5(paper::FIG5[2])));
    out.push(("Checkmarx", c));

    let mut vuddy = Vuddy::new();
    for p in train_programs.iter().filter(|p| p.vulnerable) {
        vuddy.fit_vulnerable_functions(&p.source, &p.flaw_lines);
    }
    let c = eval_static(&|p| vuddy.flags(&p.source));
    metric_row("VUDDY", &c, Some(row5(paper::FIG5[3])));
    out.push(("VUDDY", c));

    // SEVulDet at program level: a program is flagged when its most
    // suspicious gadget clears the paper's 0.8 confidence threshold (a bare
    // 0.5 any-gadget rule would compound per-gadget false positives).
    let spec = GadgetSpec::path_sensitive();
    let train_corpus = spec.extract(train_programs);
    let mut det = Detector::train(&train_corpus, ModelKind::SevulDet, &s.train);
    let mut c = Confusion::default();
    for p in test_programs {
        let corpus = spec.extract(std::slice::from_ref(p));
        let max_p = corpus
            .items
            .iter()
            .map(|item| det.predict(&item.tokens))
            .fold(0.0f64, f64::max);
        c.record(max_p > 0.8, p.vulnerable);
    }
    metric_row("SEVulDet", &c, Some(row5(paper::FIG5[4])));
    out.push(("SEVulDet", c));
    println!("\n(paper values are approximate read-offs from the Fig. 5 bars)");
    out
}

fn row5(r: (&str, f64, f64, f64, f64, f64)) -> [f64; 5] {
    [r.1, r.2, r.3, r.4, r.5]
}

// ----------------------------------------------------------------- Fig. 6

/// Fig. 6: attention-weight visualization for the CVE-2016-9776 analogue.
/// Returns the ranked tokens.
pub fn fig6() -> Vec<sevuldet::RankedToken> {
    let s = sizing();
    let train_samples = sard::generate(&s.sard);
    let spec = GadgetSpec::path_sensitive();
    let corpus = spec.extract(&train_samples);
    let mut det = Detector::train(&corpus, ModelKind::SevulDet, &s.train);

    let case = xen::cve_2016_9776();
    let program = sevuldet_lang::parse(&case.vulnerable.source).expect("analogue parses");
    let analysis = sevuldet_analysis::ProgramAnalysis::analyze(&program);
    let tokens = sevuldet_gadget::find_special_tokens(&program, &analysis);
    let seed = tokens
        .iter()
        .find(|t| t.func == "fec_receive" && case.vulnerable.flaw_lines.contains(&t.line))
        .expect("special token at the stride subtraction");
    let gadget = sevuldet_gadget::build_gadget(
        &program,
        &analysis,
        seed,
        sevuldet_gadget::GadgetKind::PathSensitive,
        &spec.slice_config(),
    );
    let normalized = sevuldet_gadget::Normalizer::normalize_gadget(&gadget);
    let toks = normalized.tokens();

    title("Fig. 6: top-10 attention tokens of the CVE-2016-9776 gadget");
    println!("path-sensitive gadget ({} tokens):", toks.len());
    for line in gadget.to_text().lines() {
        println!("    {line}");
    }
    println!();
    let ranked = sevuldet::top_tokens(&mut det, &toks, 10);
    for r in &ranked {
        let bar = "#".repeat((r.percent / 4.0).round() as usize);
        println!("{:>10}  {:>6.1}%  {}", r.token, r.percent, bar);
    }
    println!("\n(the paper's top tokens cluster on the loop head and the stride line)");
    ranked
}

// ------------------------------------------------------- CBAM-order ablation

/// The sequential-vs-parallel CBAM arrangement ablation the paper alludes to
/// ("the sequential alignment of the two modules gives better results").
/// Returns `(order label, confusion)`.
pub fn ablation_cbam() -> Vec<(&'static str, Confusion)> {
    let s = sizing();
    let samples = sard::generate(&s.sard);
    let corpus = subsample(
        &GadgetSpec::path_sensitive().extract(&samples),
        1200,
        s.train.seed,
    );
    let idx = corpus.indices_of(None);
    let (train, test) = stratified_split(&corpus, &idx, 0.2, s.train.seed);

    title("Ablation: CBAM gate arrangement (paper: sequential wins)");
    println!(
        "{:<34}{:>9} {:>9} {:>9}",
        "Arrangement", "A(%)", "P(%)", "F1(%)"
    );
    println!("{}", "-".repeat(64));
    let mut out = Vec::new();
    for (name, model) in [
        ("sequential (paper)", ModelKind::SevulDet),
        ("parallel", ModelKind::SevulDetCbamParallel),
    ] {
        let c = run_split(&corpus, model, &s.train, &train, &test);
        apf_row(name, &c, None);
        out.push((name, c));
    }
    out
}
