//! The incremental-scan benchmark behind `BENCH_incremental.json`: prepare
//! a synthetic ~250-file tree cold (no cache), warm (every file memoized),
//! and with exactly one function edited — the engine's headline scenario.
//! The acceptance criterion is warm-rescan-with-one-touched-file being at
//! least 10× faster than the cold scan; the measured numbers are recorded
//! in `BENCH_incremental.json` at the repository root.
//!
//! In CI this runs under `-- --test` (the vendored harness's run-once
//! mode), which also cross-checks that every tier returns results equal to
//! a direct `prepare_source`.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use sevuldet::prepare_source;
use sevuldet_query::{QueryConfig, QueryEngine};
use std::path::PathBuf;

const FILES: usize = 250;

/// One synthetic source file: a couple of gadget-bearing functions with an
/// inter-procedural edge, varied per index so every file is a distinct
/// cache entry.
fn file_source(i: usize) -> String {
    format!(
        "void sink_{i}(char *dst, char *src, int n) {{\n\
         \x20   if (n < {len}) {{\n\
         \x20       strncpy(dst, src, n);\n\
         \x20   }}\n\
         }}\n\
         \n\
         void feed_{i}(char *buf) {{\n\
         \x20   char local[{len}];\n\
         \x20   local[0] = {i};\n\
         \x20   sink_{i}(buf, local, {len});\n\
         }}\n\
         \n\
         int calc_{i}(int x) {{\n\
         \x20   int y = x * {mult};\n\
         \x20   return y + {i};\n\
         }}\n",
        len = 16 + (i % 48),
        mult = 2 + (i % 7),
    )
}

fn tree() -> Vec<String> {
    (0..FILES).map(file_source).collect()
}

fn cache_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("svd-bench-incr-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn prepare_all(engine: &QueryEngine, sources: &[String]) -> usize {
    sources
        .iter()
        .map(|s| engine.prepare(s, 1).expect("prepare").gadgets.len())
        .sum()
}

fn bench_incremental_scan(c: &mut Criterion) {
    let sources = tree();
    let mut group = c.benchmark_group("incremental_scan");

    // Cold: a fresh store and a fresh engine every iteration — the full
    // parse/analyze/slice/normalize cost for all files, plus cache writes.
    group.bench_function("cold_250_files", |b| {
        let mut n = 0usize;
        b.iter_batched(
            || {
                n += 1;
                let dir = cache_dir(&format!("cold-{n}"));
                (
                    QueryEngine::open(&QueryConfig {
                        cache_dir: Some(dir.clone()),
                        ..QueryConfig::default()
                    })
                    .expect("open"),
                    dir,
                )
            },
            |(engine, dir)| {
                let total = prepare_all(&engine, &sources);
                let _ = std::fs::remove_dir_all(&dir);
                black_box(total)
            },
            BatchSize::PerIteration,
        )
    });

    // Warm: every file already memoized; a rescan is pure hits.
    {
        let engine = QueryEngine::in_memory();
        prepare_all(&engine, &sources);
        group.bench_function("warm_250_files", |b| {
            b.iter(|| black_box(prepare_all(&engine, &sources)))
        });
    }

    // Warm with one touched function: 249 memo hits + one real recompute.
    // Every iteration edits the victim to a never-before-seen body, so the
    // recompute cannot be served from the file memo — only the function
    // tier inside it helps.
    {
        let engine = QueryEngine::in_memory();
        prepare_all(&engine, &sources);
        let victim = FILES / 2;
        let mut n = 0u32;
        group.bench_function("warm_one_file_touched", |b| {
            b.iter(|| {
                n += 1;
                let edited = sources[victim].replace("int y = x *", &format!("int y = {n} + x *"));
                let mut total = 0usize;
                for (i, s) in sources.iter().enumerate() {
                    let s = if i == victim { &edited } else { s };
                    total += engine.prepare(s, 1).expect("prepare").gadgets.len();
                }
                black_box(total)
            })
        });
    }

    // Disk-tier warm rescan: a brand-new process (modeled as a fresh
    // engine) over a populated store — every hit pays read + unseal +
    // decode instead of a memo clone.
    {
        let dir = cache_dir("disk");
        let seed_engine = QueryEngine::open(&QueryConfig {
            cache_dir: Some(dir.clone()),
            ..QueryConfig::default()
        })
        .expect("open");
        prepare_all(&seed_engine, &sources);
        group.bench_function("warm_disk_250_files", |b| {
            b.iter_batched(
                || {
                    QueryEngine::open(&QueryConfig {
                        cache_dir: Some(dir.clone()),
                        ..QueryConfig::default()
                    })
                    .expect("open")
                },
                |engine| black_box(prepare_all(&engine, &sources)),
                BatchSize::PerIteration,
            )
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    group.finish();

    // Correctness cross-check (runs in `--test` mode too): the engine's
    // answers equal direct computation for a sample of the tree.
    let engine = QueryEngine::in_memory();
    for src in sources.iter().step_by(50) {
        assert_eq!(
            engine.prepare(src, 1).expect("engine"),
            prepare_source(src, 1).expect("direct"),
            "engine diverged from prepare_source"
        );
    }
}

criterion_group!(benches, bench_incremental_scan);
criterion_main!(benches);
