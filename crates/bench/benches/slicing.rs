//! Criterion benches for the preprocessing pipeline: parsing, PDG
//! construction, and the classic-vs-path-sensitive slicing ablation
//! (DESIGN.md: path sensitivity costs extra AST passes — measure it).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sevuldet_analysis::ProgramAnalysis;
use sevuldet_dataset::{sard, SardConfig};
use sevuldet_gadget::{find_special_tokens, generate_all, GadgetKind, SliceConfig};
use sevuldet_lang::parse;

fn corpus_sources() -> Vec<String> {
    sard::generate(&SardConfig {
        per_category: 8,
        seed: 11,
        ..SardConfig::default()
    })
    .into_iter()
    .map(|s| s.source)
    .collect()
}

fn bench_parse(c: &mut Criterion) {
    let sources = corpus_sources();
    c.bench_function("parse_32_programs", |b| {
        b.iter(|| {
            for s in &sources {
                std::hint::black_box(parse(s).expect("generated source parses"));
            }
        })
    });
}

fn bench_pdg(c: &mut Criterion) {
    let programs: Vec<_> = corpus_sources().iter().map(|s| parse(s).unwrap()).collect();
    c.bench_function("pdg_32_programs", |b| {
        b.iter(|| {
            for p in &programs {
                std::hint::black_box(ProgramAnalysis::analyze(p));
            }
        })
    });
}

fn bench_gadgets(c: &mut Criterion) {
    let programs: Vec<_> = corpus_sources().iter().map(|s| parse(s).unwrap()).collect();
    let analyzed: Vec<_> = programs
        .iter()
        .map(|p| {
            let a = ProgramAnalysis::analyze(p);
            let t = find_special_tokens(p, &a);
            (p, a, t)
        })
        .collect();
    let mut group = c.benchmark_group("gadget_generation");
    for (name, kind) in [
        ("classic", GadgetKind::Classic),
        ("path_sensitive", GadgetKind::PathSensitive),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || (),
                |_| {
                    for (p, a, t) in &analyzed {
                        std::hint::black_box(generate_all(p, a, t, kind, &SliceConfig::default()));
                    }
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_parse, bench_pdg, bench_gadgets
);
criterion_main!(benches);
