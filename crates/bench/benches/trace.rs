//! Criterion benches for the trace layer's overhead contract: a disabled
//! span is one relaxed atomic load (sub-nanosecond next to any pipeline
//! stage), and recording must stay cheap enough that `--profile` does not
//! distort what it measures. The end-to-end pair trains one identical epoch
//! with recording off and on; the acceptance bound (disabled overhead on
//! e2e train < 2%) is recorded with wall-clock evidence in
//! `BENCH_trace.json`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sevuldet::{
    build_model, encode, train_model, GadgetCorpus, GadgetSpec, ModelKind, TrainConfig,
};
use sevuldet_dataset::{sard, SardConfig};
use sevuldet_trace as trace;
use std::cell::Cell;

fn bench_span_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("span");

    trace::set_recording(false);
    group.bench_function("disabled", |b| {
        b.iter(|| {
            let _g = trace::span!("bench.stage");
        })
    });

    // Recording on: drain every 100k spans so the buffer (and the sort
    // inside `take`) stays bounded; the amortized drain is part of the
    // honest cost of actually keeping a recording.
    trace::set_recording(true);
    let produced = Cell::new(0u64);
    group.bench_function("enabled", |b| {
        b.iter(|| {
            let _g = trace::span!("bench.stage");
            produced.set(produced.get() + 1);
            if produced.get().is_multiple_of(100_000) {
                let _ = trace::take();
            }
        })
    });
    trace::set_recording(false);
    let _ = trace::take();

    // Observer notification without recording — the serve /metrics path.
    let id = trace::add_observer(|_name, _dur| {});
    group.bench_function("observed", |b| {
        b.iter(|| {
            let _g = trace::span!("bench.stage");
        })
    });
    trace::remove_observer(id);

    group.finish();
}

fn bench_cfg() -> TrainConfig {
    TrainConfig {
        embed_dim: 10,
        w2v_epochs: 1,
        epochs: 1,
        cnn_channels: 8,
        seed: 42,
        jobs: 1,
        ..TrainConfig::quick()
    }
}

fn bench_corpus() -> GadgetCorpus {
    let samples = sard::generate(&SardConfig {
        per_category: 5,
        ..SardConfig::default()
    });
    GadgetSpec::path_sensitive().extract(&samples)
}

fn bench_train_e2e(c: &mut Criterion) {
    let corpus = bench_corpus();
    let cfg = bench_cfg();
    let encoded = encode(&corpus, &cfg);
    let idx: Vec<usize> = (0..corpus.len()).collect();
    let mut group = c.benchmark_group("train_epoch");

    trace::set_recording(false);
    group.bench_function("tracing_off", |b| {
        b.iter_batched(
            || build_model(ModelKind::SevulDet, encoded.table.clone(), &cfg),
            |mut model| train_model(&mut model, &corpus, &encoded, &idx, &cfg),
            BatchSize::LargeInput,
        )
    });

    group.bench_function("tracing_on", |b| {
        trace::set_recording(true);
        b.iter_batched(
            || build_model(ModelKind::SevulDet, encoded.table.clone(), &cfg),
            |mut model| {
                train_model(&mut model, &corpus, &encoded, &idx, &cfg);
                // Draining is part of a real `--profile` run's cost.
                let _ = trace::take();
            },
            BatchSize::LargeInput,
        )
    });
    trace::set_recording(false);
    let _ = trace::take();

    group.finish();
}

criterion_group!(benches, bench_span_cost, bench_train_e2e);
criterion_main!(benches);
