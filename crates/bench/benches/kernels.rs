//! Criterion benches for the kernel layer: register-tiled GEMM and im2col
//! convolution against frozen copies of the naive loops they replaced.
//!
//! The naive implementations here are deliberate verbatim copies of the
//! pre-kernel-layer code (the same frozen loops live in
//! `sevuldet_nn::kernels::reference` for the bit-identity tests, but that
//! module is `cfg(test)` and invisible to benches). Sizes mirror the real
//! model: conv1 of the default CNN sees `c_in = 30, c_out = 32, k = 3` over
//! a few hundred tokens.
//!
//! The GEMM and matvec groups additionally run the f32/SIMD and int8
//! inference tiers (`sevuldet_nn::kernels_f32`) on the same shapes, so
//! `cargo bench --bench kernels` (and its `-- --test` smoke mode) exercises
//! all three precision tiers side by side. The int8 entries include the
//! per-forward activation quantization, matching what the inference engine
//! actually pays.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sevuldet_nn::{kernels, kernels_f32 as kf, Conv1d, Tensor, Workspace};

const L: usize = 256;
const C_IN: usize = 30;
const C_OUT: usize = 32;
const KW: usize = 3;

fn values(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

// ---- frozen naive loops (pre-kernel-layer code, verbatim) ----

fn matmul_naive(a: &[f64], b: &[f64], m: usize, k: usize, n: usize) -> Vec<f64> {
    let mut out = vec![0.0; m * n];
    for i in 0..m {
        for p in 0..k {
            let av = a[i * k + p];
            if av == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    out
}

fn conv1d_forward_naive(x: &[f64], w: &[f64], bias: &[f64], l: usize) -> Vec<f64> {
    let pad = (KW / 2) as isize;
    let mut out = vec![0.0; l * C_OUT];
    for t in 0..l {
        for co in 0..C_OUT {
            let mut acc = bias[co];
            for j in 0..KW {
                let src = t as isize + j as isize - pad;
                if src < 0 || src >= l as isize {
                    continue;
                }
                let s = src as usize;
                for ci in 0..C_IN {
                    acc += x[s * C_IN + ci] * w[co * (KW * C_IN) + j * C_IN + ci];
                }
            }
            out[t * C_OUT + co] = acc;
        }
    }
    out
}

#[allow(clippy::type_complexity)]
fn conv1d_backward_naive(
    x: &[f64],
    w: &[f64],
    dy: &[f64],
    l: usize,
) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let pad = (KW / 2) as isize;
    let mut db = vec![0.0; C_OUT];
    let mut dw = vec![0.0; C_OUT * KW * C_IN];
    let mut dx = vec![0.0; l * C_IN];
    for t in 0..l {
        for co in 0..C_OUT {
            let g = dy[t * C_OUT + co];
            if g == 0.0 {
                continue;
            }
            db[co] += g;
            for j in 0..KW {
                let src = t as isize + j as isize - pad;
                if src < 0 || src >= l as isize {
                    continue;
                }
                let s = src as usize;
                let base = co * (KW * C_IN) + j * C_IN;
                for ci in 0..C_IN {
                    dw[base + ci] += g * x[s * C_IN + ci];
                    dx[s * C_IN + ci] += g * w[base + ci];
                }
            }
        }
    }
    (db, dw, dx)
}

// ---- benches ----

fn bench_matmul(c: &mut Criterion) {
    let k = KW * C_IN;
    let a = values(L * k, 10);
    let b = values(k * C_OUT, 11);
    let mut group = c.benchmark_group("matmul_256x90x32");
    group.bench_function("naive", |bch| {
        bch.iter(|| std::hint::black_box(matmul_naive(&a, &b, L, k, C_OUT)))
    });
    let mut out = vec![0.0; L * C_OUT];
    group.bench_function("tiled", |bch| {
        bch.iter(|| {
            out.iter_mut().for_each(|v| *v = 0.0);
            kernels::gemm_acc(&mut out, &a, &b, L, k, C_OUT);
            std::hint::black_box(out[0])
        })
    });
    let a32: Vec<f32> = a.iter().map(|&v| v as f32).collect();
    let b32: Vec<f32> = b.iter().map(|&v| v as f32).collect();
    let mut out32 = vec![0.0f32; L * C_OUT];
    group.bench_function("f32_simd", |bch| {
        bch.iter(|| {
            out32.iter_mut().for_each(|v| *v = 0.0);
            kf::gemm_f32(&mut out32, &a32, &b32, L, k, C_OUT);
            std::hint::black_box(out32[0])
        })
    });
    let sa = kf::max_abs_f32(&a32) / 127.0;
    let sb = kf::max_abs_f32(&b32) / 127.0;
    let mut qb = Vec::new();
    kf::quantize_i8(&mut qb, &b32, sb); // weights: quantized once at load
    let mut qa = Vec::new();
    let mut qacc = vec![0i32; L * C_OUT];
    group.bench_function("int8_simd", |bch| {
        bch.iter(|| {
            kf::quantize_i8(&mut qa, &a32, sa); // activations: per forward
            qacc.iter_mut().for_each(|v| *v = 0);
            kf::gemm_i8(&mut qacc, &qa, &qb, L, k, C_OUT);
            let f = sa * sb;
            for (o, &v) in out32.iter_mut().zip(qacc.iter()) {
                *o = v as f32 * f;
            }
            std::hint::black_box(out32[0])
        })
    });
    group.finish();
}

fn bench_conv_forward(c: &mut Criterion) {
    let x = values(L * C_IN, 20);
    let w = values(C_OUT * KW * C_IN, 21);
    let bias = values(C_OUT, 22);
    let mut group = c.benchmark_group("conv1d_forward_L256_c30_o32_k3");
    group.bench_function("naive", |bch| {
        bch.iter(|| std::hint::black_box(conv1d_forward_naive(&x, &w, &bias, L)))
    });
    let mut rng = StdRng::seed_from_u64(23);
    let mut conv = Conv1d::new(C_IN, C_OUT, KW, &mut rng);
    conv.w.w = Tensor::from_vec(&[C_OUT, KW * C_IN], w.clone());
    conv.b.w = Tensor::from_vec(&[C_OUT], bias.clone());
    let xt = Tensor::from_vec(&[L, C_IN], x.clone());
    let mut ws = Workspace::new();
    let mut out = Tensor::zeros(&[0, 0]);
    group.bench_function("im2col_gemm", |bch| {
        bch.iter(|| {
            conv.forward_into(&xt, &mut out, &mut ws);
            std::hint::black_box(out.data()[0])
        })
    });
    group.finish();
}

fn bench_conv_backward(c: &mut Criterion) {
    let x = values(L * C_IN, 30);
    let w = values(C_OUT * KW * C_IN, 31);
    let bias = values(C_OUT, 32);
    let dy = values(L * C_OUT, 33);
    let mut group = c.benchmark_group("conv1d_backward_L256_c30_o32_k3");
    group.bench_function("naive", |bch| {
        bch.iter(|| std::hint::black_box(conv1d_backward_naive(&x, &w, &dy, L)))
    });
    let mut rng = StdRng::seed_from_u64(34);
    let mut conv = Conv1d::new(C_IN, C_OUT, KW, &mut rng);
    conv.w.w = Tensor::from_vec(&[C_OUT, KW * C_IN], w.clone());
    conv.b.w = Tensor::from_vec(&[C_OUT], bias.clone());
    let xt = Tensor::from_vec(&[L, C_IN], x.clone());
    let dyt = Tensor::from_vec(&[L, C_OUT], dy.clone());
    let mut ws = Workspace::new();
    let mut out = Tensor::zeros(&[0, 0]);
    let mut dx = Tensor::zeros(&[0, 0]);
    conv.forward_into(&xt, &mut out, &mut ws);
    group.bench_function("im2col_gemm", |bch| {
        bch.iter(|| {
            conv.forward_into(&xt, &mut out, &mut ws);
            conv.backward_into(&dyt, &mut dx, &mut ws);
            std::hint::black_box(dx.data()[0])
        })
    });
    group.finish();
}

fn bench_matvec(c: &mut Criterion) {
    let m = 256;
    let k = 256;
    let a = values(m * k, 40);
    let x = values(k, 41);
    let mut group = c.benchmark_group("matvec_256x256");
    group.bench_function("naive", |bch| {
        bch.iter(|| {
            let y: Vec<f64> = (0..m)
                .map(|i| {
                    a[i * k..(i + 1) * k]
                        .iter()
                        .zip(&x)
                        .map(|(a, b)| a * b)
                        .sum()
                })
                .collect();
            std::hint::black_box(y)
        })
    });
    let mut y = vec![0.0; m];
    group.bench_function("tiled", |bch| {
        bch.iter(|| {
            kernels::matvec_into(&mut y, &a, &x, m, k);
            std::hint::black_box(y[0])
        })
    });
    let a32: Vec<f32> = a.iter().map(|&v| v as f32).collect();
    let x32: Vec<f32> = x.iter().map(|&v| v as f32).collect();
    let mut y32 = vec![0.0f32; m];
    group.bench_function("f32_simd", |bch| {
        bch.iter(|| {
            kf::matvec_f32(&mut y32, &a32, &x32, m, k);
            std::hint::black_box(y32[0])
        })
    });
    let sa = kf::max_abs_f32(&a32) / 127.0;
    let sx = kf::max_abs_f32(&x32) / 127.0;
    let mut qa = Vec::new();
    kf::quantize_i8(&mut qa, &a32, sa); // weights: quantized once at load
    let mut qx = Vec::new();
    let mut qacc = vec![0i32; m];
    group.bench_function("int8_simd", |bch| {
        bch.iter(|| {
            kf::quantize_i8(&mut qx, &x32, sx); // activations: per forward
            kf::matvec_i8(&mut qacc, &qa, &qx, m, k);
            let f = sa * sx;
            for (o, &v) in y32.iter_mut().zip(qacc.iter()) {
                *o = v as f32 * f;
            }
            std::hint::black_box(y32[0])
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_matmul,
    bench_conv_forward,
    bench_conv_backward,
    bench_matvec
);
criterion_main!(benches);
