//! End-to-end throughput of `sevuldet serve`: a burst of concurrent
//! `POST /scan` requests against a live server at `max_batch` 1, 4, and 16.
//! Each iteration fires 16 clients at once and waits for all responses, so
//! ms/iter divided into 16 gives requests/second. Larger `max_batch` lets
//! one worker coalesce the burst into fewer forward passes; on a single-core
//! host the delta quantifies per-pass overhead rather than parallel speedup.

use criterion::{criterion_group, criterion_main, Criterion};
use sevuldet::{save_detector, Detector, GadgetSpec, Json, ModelKind, TrainConfig};
use sevuldet_dataset::{sard, SardConfig};
use sevuldet_serve::registry::ModelRegistry;
use sevuldet_serve::server::{start, ServeConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};

const BURST: usize = 16;
const BATCHES: &[usize] = &[1, 4, 16];

const SOURCE: &str = r#"void process(char *dest, char *data) {
    int n = atoi(data);
    if (n < 16) {
        puts("small");
    }
    strncpy(dest, data, n);
}"#;

/// Trains a tiny detector and persists it for the server to load.
fn model_path() -> PathBuf {
    let samples = sard::generate(&SardConfig {
        per_category: 5,
        ..SardConfig::default()
    });
    let corpus = GadgetSpec::path_sensitive().extract(&samples);
    let cfg = TrainConfig {
        embed_dim: 10,
        w2v_epochs: 1,
        epochs: 2,
        cnn_channels: 8,
        seed: 42,
        ..TrainConfig::quick()
    };
    let mut det = Detector::train(&corpus, ModelKind::SevulDet, &cfg);
    let dir = std::env::temp_dir().join(format!("svd-bench-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("model.svd");
    std::fs::write(&path, save_detector(&mut det)).expect("write model");
    path
}

fn spawn_server(max_batch: usize, path: &Path) -> ServerHandle {
    let registry = ModelRegistry::open(path).expect("model loads");
    start(
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            max_batch,
            queue_cap: 64,
            ..ServeConfig::default()
        },
        registry,
    )
    .expect("server binds")
}

/// One request over a fresh connection; panics on anything but 200.
fn scan_once(addr: SocketAddr, body: &str) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let req = format!(
        "POST /scan HTTP/1.1\r\nHost: bench\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
}

fn bench_serve_burst(c: &mut Criterion) {
    let path = model_path();
    let body = Json::obj(vec![
        ("source", Json::str(SOURCE)),
        ("name", Json::str("bench.c")),
    ])
    .to_string();
    let mut group = c.benchmark_group("serve_burst16");
    for &max_batch in BATCHES {
        let handle = spawn_server(max_batch, &path);
        let addr = handle.addr();
        group.bench_function(format!("batch{max_batch}"), |b| {
            b.iter(|| {
                let clients: Vec<_> = (0..BURST)
                    .map(|_| {
                        let body = body.clone();
                        std::thread::spawn(move || scan_once(addr, &body))
                    })
                    .collect();
                for t in clients {
                    t.join().expect("client thread");
                }
            })
        });
        handle.shutdown();
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_serve_burst
);
criterion_main!(benches);
