//! End-to-end throughput of `sevuldet serve` across its two I/O models: a
//! burst of concurrent `POST /scan` requests against a live server, over
//! fresh connections (one TCP handshake per request — the worst case) and
//! over keep-alive connections (the fleet-realistic case the event loop is
//! built for). Each iteration fires 16 clients; fresh-connection clients
//! send one request each, keep-alive clients send four on one connection.
//! ms/iter divided into the request count gives requests/second. The
//! `io_threads` and `io_eventloop` variants answer byte-identically (the
//! integration suite asserts it); this bench quantifies the cost of the
//! path, not the payload.

use criterion::{criterion_group, criterion_main, Criterion};
use sevuldet::{save_detector, Detector, GadgetSpec, Json, ModelKind, TrainConfig};
use sevuldet_dataset::{sard, SardConfig};
use sevuldet_serve::registry::ModelRegistry;
use sevuldet_serve::server::{start, IoModel, ServeConfig, ServerHandle};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};

const BURST: usize = 16;
const KEEPALIVE_REQS: usize = 4;

const SOURCE: &str = r#"void process(char *dest, char *data) {
    int n = atoi(data);
    if (n < 16) {
        puts("small");
    }
    strncpy(dest, data, n);
}"#;

/// Trains a tiny detector and persists it for the server to load.
fn model_path() -> PathBuf {
    let samples = sard::generate(&SardConfig {
        per_category: 5,
        ..SardConfig::default()
    });
    let corpus = GadgetSpec::path_sensitive().extract(&samples);
    let cfg = TrainConfig {
        embed_dim: 10,
        w2v_epochs: 1,
        epochs: 2,
        cnn_channels: 8,
        seed: 42,
        ..TrainConfig::quick()
    };
    let mut det = Detector::train(&corpus, ModelKind::SevulDet, &cfg);
    let dir = std::env::temp_dir().join(format!("svd-bench-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("model.svd");
    std::fs::write(&path, save_detector(&mut det)).expect("write model");
    path
}

fn spawn_server(io_model: IoModel, path: &Path) -> ServerHandle {
    let registry = ModelRegistry::open(path).expect("model loads");
    start(
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            max_batch: 16,
            queue_cap: 64,
            io_model,
            ..ServeConfig::default()
        },
        registry,
    )
    .expect("server binds")
}

fn io_variants() -> Vec<(&'static str, IoModel)> {
    let mut v = vec![("io_threads", IoModel::Threads)];
    if cfg!(target_os = "linux") {
        v.push(("io_eventloop", IoModel::EventLoop));
    }
    v
}

/// One request over a fresh connection; panics on anything but 200.
fn scan_once(addr: SocketAddr, body: &str) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let req = format!(
        "POST /scan HTTP/1.1\r\nHost: bench\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
}

/// `n` sequential requests on one keep-alive connection; panics on anything
/// but 200s.
fn scan_keepalive(addr: SocketAddr, body: &str, n: usize) {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let req = format!(
        "POST /scan HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    for _ in 0..n {
        writer.write_all(req.as_bytes()).expect("send");
        let mut status = String::new();
        reader.read_line(&mut status).expect("status line");
        assert!(status.starts_with("HTTP/1.1 200"), "{status}");
        let mut len = 0usize;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).expect("header line");
            if line.trim_end().is_empty() {
                break;
            }
            if let Some(v) = line.trim_end().strip_prefix("Content-Length: ") {
                len = v.parse().expect("content length");
            }
        }
        let mut body = vec![0u8; len];
        reader.read_exact(&mut body).expect("body");
    }
}

fn bench_serve(c: &mut Criterion) {
    let path = model_path();
    let body = Json::obj(vec![
        ("source", Json::str(SOURCE)),
        ("name", Json::str("bench.c")),
    ])
    .to_string();

    // Fresh connection per request: pays a TCP handshake every time.
    let mut group = c.benchmark_group("serve_burst16_fresh");
    for (name, io_model) in io_variants() {
        let handle = spawn_server(io_model, &path);
        let addr = handle.addr();
        group.bench_function(name, |b| {
            b.iter(|| {
                let clients: Vec<_> = (0..BURST)
                    .map(|_| {
                        let body = body.clone();
                        std::thread::spawn(move || scan_once(addr, &body))
                    })
                    .collect();
                for t in clients {
                    t.join().expect("client thread");
                }
            })
        });
        handle.shutdown();
    }
    group.finish();

    // Keep-alive: one connection, several requests — the fleet-realistic
    // shape (and 4x the requests per iteration).
    let mut group = c.benchmark_group("serve_burst16_keepalive4");
    for (name, io_model) in io_variants() {
        let handle = spawn_server(io_model, &path);
        let addr = handle.addr();
        group.bench_function(name, |b| {
            b.iter(|| {
                let clients: Vec<_> = (0..BURST)
                    .map(|_| {
                        let body = body.clone();
                        std::thread::spawn(move || scan_keepalive(addr, &body, KEEPALIVE_REQS))
                    })
                    .collect();
                for t in clients {
                    t.join().expect("client thread");
                }
            })
        });
        handle.shutdown();
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_serve
);
criterion_main!(benches);
