//! Criterion benches for the data-parallel engine: one training epoch and a
//! full-corpus scan at 1 vs N worker threads. On a multi-core host the N-job
//! rows should approach a linear speedup (gradient merge and the Adam step
//! stay sequential); on a single-core host they quantify the engine's
//! sharding overhead instead.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sevuldet::{
    build_model, encode, train_model, Detector, GadgetCorpus, GadgetSpec, ModelKind, TrainConfig,
};
use sevuldet_dataset::{sard, SardConfig};

const JOBS: &[usize] = &[1, 2, 4];

fn bench_cfg(jobs: usize) -> TrainConfig {
    TrainConfig {
        embed_dim: 16,
        w2v_epochs: 1,
        epochs: 1,
        cnn_channels: 16,
        seed: 42,
        jobs,
        ..TrainConfig::quick()
    }
}

fn bench_corpus() -> GadgetCorpus {
    let samples = sard::generate(&SardConfig {
        per_category: 10,
        ..SardConfig::default()
    });
    GadgetSpec::path_sensitive().extract(&samples)
}

fn bench_train_epoch(c: &mut Criterion) {
    let corpus = bench_corpus();
    let encoded = encode(&corpus, &bench_cfg(1));
    let idx: Vec<usize> = (0..corpus.len()).collect();
    let mut group = c.benchmark_group("train_epoch");
    for &jobs in JOBS {
        let cfg = bench_cfg(jobs);
        group.bench_function(format!("jobs{jobs}"), |b| {
            b.iter_batched(
                || build_model(ModelKind::SevulDet, encoded.table.clone(), &cfg),
                |mut model| train_model(&mut model, &corpus, &encoded, &idx, &cfg),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_scan_throughput(c: &mut Criterion) {
    let corpus = bench_corpus();
    let det = {
        let cfg = bench_cfg(1);
        Detector::train(&corpus, ModelKind::SevulDet, &cfg)
    };
    let streams: Vec<Vec<String>> = corpus.items.iter().map(|i| i.tokens.clone()).collect();
    let mut group = c.benchmark_group("scan_corpus");
    for &jobs in JOBS {
        group.bench_function(format!("jobs{jobs}"), |b| {
            b.iter(|| std::hint::black_box(det.predict_batch(&streams, jobs)))
        });
    }
    group.finish();
}

fn bench_extraction(c: &mut Criterion) {
    let samples = sard::generate(&SardConfig {
        per_category: 10,
        ..SardConfig::default()
    });
    let spec = GadgetSpec::path_sensitive();
    let mut group = c.benchmark_group("extract_gadgets");
    for &jobs in JOBS {
        group.bench_function(format!("jobs{jobs}"), |b| {
            b.iter(|| std::hint::black_box(spec.extract_jobs(&samples, jobs)))
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_train_epoch, bench_scan_throughput, bench_extraction
);
criterion_main!(benches);
