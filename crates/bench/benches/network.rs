//! Criterion benches for the networks: forward-pass cost of the SEVulDet
//! CNN at several input lengths (the SPP "any length, one structure" claim),
//! the fixed-length ablation, the RNN baselines, and one training step.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sevuldet_nn::{
    bce_with_logits, Adam, CellKind, CnnConfig, RnnNet, SequenceClassifier, SevulDetCnn, Tensor,
};

const VOCAB: usize = 200;
const DIM: usize = 24;

fn table(seed: u64) -> Tensor {
    use rand::Rng;
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::from_vec(
        &[VOCAB, DIM],
        (0..VOCAB * DIM).map(|_| rng.gen_range(-0.3..0.3)).collect(),
    )
}

fn ids(len: usize) -> Vec<usize> {
    (0..len).map(|i| (i * 7 + 3) % VOCAB).collect()
}

fn bench_cnn_forward(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut net = SevulDetCnn::new(table(2), CnnConfig::default(), &mut rng);
    let mut group = c.benchmark_group("sevuldet_forward");
    for len in [50usize, 200, 700] {
        let input = ids(len);
        group.bench_function(format!("L{len}"), |b| {
            b.iter(|| std::hint::black_box(net.forward_logit(&input, false, &mut rng)))
        });
    }
    group.finish();
}

fn bench_fixed_vs_spp(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let mut flexible = SevulDetCnn::new(table(4), CnnConfig::default(), &mut rng);
    let mut fixed = SevulDetCnn::new(
        table(4),
        CnnConfig {
            fixed_len: Some(300),
            ..CnnConfig::default()
        },
        &mut rng,
    );
    let input = ids(700);
    let mut group = c.benchmark_group("spp_vs_fixed_L700");
    group.bench_function("flexible_spp", |b| {
        b.iter(|| std::hint::black_box(flexible.forward_logit(&input, false, &mut rng)))
    });
    group.bench_function("truncate_300", |b| {
        b.iter(|| std::hint::black_box(fixed.forward_logit(&input, false, &mut rng)))
    });
    group.finish();
}

fn bench_rnn_forward(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let mut blstm = RnnNet::new(table(6), CellKind::Lstm, 24, 300, 0.0, &mut rng);
    let mut bgru = RnnNet::new(table(7), CellKind::Gru, 24, 300, 0.0, &mut rng);
    let input = ids(300);
    let mut group = c.benchmark_group("rnn_forward_L300");
    group.bench_function("blstm", |b| {
        b.iter(|| std::hint::black_box(blstm.forward_logit(&input, false, &mut rng)))
    });
    group.bench_function("bgru", |b| {
        b.iter(|| std::hint::black_box(bgru.forward_logit(&input, false, &mut rng)))
    });
    group.finish();
}

fn bench_train_step(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(8);
    let mut net = SevulDetCnn::new(table(9), CnnConfig::default(), &mut rng);
    let mut opt = Adam::new(1e-3);
    let input = ids(150);
    c.bench_function("sevuldet_train_step_L150", |b| {
        b.iter(|| {
            let logit = net.forward_logit(&input, true, &mut rng);
            let (_, d) = bce_with_logits(logit, 1.0);
            net.backward(d);
            opt.step(&mut net.params_mut());
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_cnn_forward, bench_fixed_vs_spp, bench_rnn_forward, bench_train_step
);
criterion_main!(benches);
