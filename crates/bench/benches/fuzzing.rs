//! Criterion benches for the dynamic substrate: interpreter execution
//! throughput and fuzzing campaign cost on the CVE-2016-9776 analogue.

use criterion::{criterion_group, criterion_main, Criterion};
use sevuldet_dataset::xen;
use sevuldet_interp::{fuzz, FuzzConfig, FuzzTarget, Interp};

fn bench_interp(c: &mut Criterion) {
    let case = xen::cve_2016_9776();
    let program = sevuldet_lang::parse(&case.vulnerable.source).unwrap();
    let interp = Interp::new(&program);
    c.bench_function("interp_fec_receive_terminating", |b| {
        b.iter(|| std::hint::black_box(interp.run_function("harness", &[4, 1000], &[])))
    });
    c.bench_function("interp_fec_receive_hang_budget", |b| {
        b.iter(|| std::hint::black_box(interp.run_function("harness", &[0, 10], &[])))
    });
}

fn bench_fuzz_campaign(c: &mut Criterion) {
    let case = xen::cve_2016_4453();
    let program = sevuldet_lang::parse(&case.vulnerable.source).unwrap();
    c.bench_function("fuzz_500_execs_vmsvga", |b| {
        b.iter(|| {
            std::hint::black_box(fuzz(
                &program,
                &FuzzTarget::Harness("harness".into()),
                &FuzzConfig {
                    iterations: 500,
                    seed: 7,
                    ..FuzzConfig::default()
                },
            ))
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_interp, bench_fuzz_campaign
);
criterion_main!(benches);
