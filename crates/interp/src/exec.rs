//! The mini-C interpreter with sanitizer-style fault detection.
//!
//! Execution is fuel-bounded (a fuel-exhausted run is reported as
//! [`Fault::LoopBudget`] — the infinite-loop verdict), memory accesses are
//! bounds- and liveness-checked, and edge coverage `(prev line → line)` is
//! recorded for the fuzzer's feedback loop. Integer arithmetic wraps at 32
//! bits like C `int` on every mainstream platform, which is exactly what the
//! CVE-2016-9104 analogue's check-bypass needs.

use crate::value::{Block, BlockState, Fault, Ptr, Value};
use sevuldet_lang::ast::*;
use std::collections::{HashMap, HashSet};

/// Why evaluation stopped early.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Stop {
    Fault(Fault),
    Exit(i32),
}

impl From<Fault> for Stop {
    fn from(f: Fault) -> Stop {
        Stop::Fault(f)
    }
}

/// Statement-level control flow.
#[derive(Debug, Clone, PartialEq)]
enum Flow {
    Normal,
    Break,
    Continue,
    Return(Value),
}

/// Execution limits.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Statement/expression fuel before [`Fault::LoopBudget`].
    pub fuel: u64,
    /// Maximum call depth.
    pub max_depth: usize,
    /// Maximum single allocation (elements).
    pub max_alloc: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            fuel: 200_000,
            max_depth: 64,
            max_alloc: 1 << 20,
        }
    }
}

/// Result of one program run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Exit/return value when the run completed.
    pub value: Result<i32, Fault>,
    /// Edge coverage observed (pairs of source lines).
    pub coverage: HashSet<(u32, u32)>,
    /// Fuel consumed.
    pub steps: u64,
}

impl RunResult {
    /// The fault, if the run crashed.
    pub fn fault(&self) -> Option<&Fault> {
        self.value.as_ref().err()
    }
}

/// A ready-to-run interpreter over one parsed program.
#[derive(Debug)]
pub struct Interp<'p> {
    program: &'p Program,
    funcs: HashMap<&'p str, &'p Function>,
    /// Execution limits applied to every run.
    pub limits: Limits,
}

impl<'p> Interp<'p> {
    /// Prepares an interpreter for `program`.
    pub fn new(program: &'p Program) -> Interp<'p> {
        let funcs = program.functions().map(|f| (f.name.as_str(), f)).collect();
        Interp {
            program,
            funcs,
            limits: Limits::default(),
        }
    }

    /// Runs `main` with the given stdin bytes.
    pub fn run_main(&self, input: &[u8]) -> RunResult {
        self.run_function("main", &[], input)
    }

    /// Runs a named function with integer arguments (the fuzz-harness entry).
    pub fn run_function(&self, name: &str, args: &[i32], input: &[u8]) -> RunResult {
        let mut m = Machine {
            interp: self,
            blocks: Vec::new(),
            globals: HashMap::new(),
            scopes: Vec::new(),
            input: input.to_vec(),
            input_pos: 0,
            steps: 0,
            depth: 0,
            coverage: HashSet::new(),
            last_line: 0,
        };
        let value = match m.init_globals() {
            Err(Stop::Fault(f)) => Err(f),
            Err(Stop::Exit(c)) => Ok(c),
            Ok(()) => {
                let argv: Vec<Value> = args.iter().map(|&a| Value::Int(a)).collect();
                match m.call(name, &argv) {
                    Ok(v) => Ok(v.as_int()),
                    Err(Stop::Exit(c)) => Ok(c),
                    Err(Stop::Fault(f)) => Err(f),
                }
            }
        };
        RunResult {
            value,
            coverage: m.coverage,
            steps: m.steps,
        }
    }
}

struct Machine<'p, 'i> {
    interp: &'i Interp<'p>,
    blocks: Vec<Block>,
    globals: HashMap<String, Slot>,
    scopes: Vec<HashMap<String, Slot>>,
    input: Vec<u8>,
    input_pos: usize,
    steps: u64,
    depth: usize,
    coverage: HashSet<(u32, u32)>,
    last_line: u32,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    block: usize,
    array: bool,
}

type EvalResult = Result<Value, Stop>;

impl<'p, 'i> Machine<'p, 'i> {
    fn tick(&mut self) -> Result<(), Stop> {
        self.steps += 1;
        if self.steps > self.interp.limits.fuel {
            Err(Fault::LoopBudget.into())
        } else {
            Ok(())
        }
    }

    fn cover(&mut self, line: u32) {
        self.coverage.insert((self.last_line, line));
        self.last_line = line;
    }

    fn alloc(&mut self, len: usize, heap: bool) -> usize {
        self.blocks.push(Block::zeroed(len, heap));
        self.blocks.len() - 1
    }

    fn init_globals(&mut self) -> Result<(), Stop> {
        for item in &self.interp.program.items {
            if let Item::Global(d) = item {
                let len = decl_len(d);
                let block = self.alloc(len, false);
                if let Some(init) = &d.init {
                    let v = self.eval(init)?;
                    self.blocks[block].data[0] = v;
                }
                self.globals.insert(
                    d.name.clone(),
                    Slot {
                        block,
                        array: d.is_array(),
                    },
                );
            }
        }
        Ok(())
    }

    fn lookup(&self, name: &str) -> Option<Slot> {
        for scope in self.scopes.iter().rev() {
            if let Some(s) = scope.get(name) {
                return Some(*s);
            }
        }
        self.globals.get(name).copied()
    }

    fn define(&mut self, name: &str, slot: Slot) {
        self.scopes
            .last_mut()
            .expect("a scope is always active")
            .insert(name.to_string(), slot);
    }

    fn call(&mut self, name: &str, args: &[Value]) -> EvalResult {
        let Some(f) = self.interp.funcs.get(name).copied() else {
            return Err(Fault::Undefined(format!("function {name}")).into());
        };
        if self.depth >= self.interp.limits.max_depth {
            return Err(Fault::StackOverflow.into());
        }
        self.depth += 1;
        let scopes_before = self.scopes.len();
        self.scopes.push(HashMap::new());
        for (i, p) in f.params.iter().enumerate() {
            let v = args.get(i).copied().unwrap_or(Value::Int(0));
            let block = self.alloc(1, false);
            self.blocks[block].data[0] = v;
            self.define(
                &p.name,
                Slot {
                    block,
                    array: false,
                },
            );
        }
        let flow = self.exec_block(&f.body);
        self.scopes.truncate(scopes_before);
        self.depth -= 1;
        match flow? {
            Flow::Return(v) => Ok(v),
            _ => Ok(Value::Int(0)),
        }
    }

    // ------------------------------------------------------------- stmts

    fn exec_block(&mut self, b: &Block_) -> Result<Flow, Stop> {
        self.scopes.push(HashMap::new());
        let mut flow = Flow::Normal;
        for s in &b.stmts {
            flow = self.exec_stmt(s)?;
            if flow != Flow::Normal {
                break;
            }
        }
        self.scopes.pop();
        Ok(flow)
    }

    fn exec_stmt(&mut self, s: &Stmt) -> Result<Flow, Stop> {
        self.tick()?;
        self.cover(s.span.start.line);
        match &s.kind {
            StmtKind::Decl(d) => {
                let len = decl_len(d);
                let block = self.alloc(len, false);
                if let Some(init) = &d.init {
                    let v = self.eval(init)?;
                    self.blocks[block].data[0] = v;
                }
                self.define(
                    &d.name,
                    Slot {
                        block,
                        array: d.is_array(),
                    },
                );
                Ok(Flow::Normal)
            }
            StmtKind::Expr(e) => {
                self.eval(e)?;
                Ok(Flow::Normal)
            }
            StmtKind::Block(b) => self.exec_block(b),
            StmtKind::If {
                cond,
                then,
                else_ifs,
                else_block,
            } => {
                if self.eval(cond)?.truthy() {
                    return self.exec_block(then);
                }
                for ei in else_ifs {
                    if self.eval(&ei.cond)?.truthy() {
                        return self.exec_block(&ei.body);
                    }
                }
                if let Some(eb) = else_block {
                    return self.exec_block(&eb.body);
                }
                Ok(Flow::Normal)
            }
            StmtKind::While { cond, body } => {
                loop {
                    self.tick()?;
                    if !self.eval(cond)?.truthy() {
                        break;
                    }
                    match self.exec_block(body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        _ => {}
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::DoWhile { body, cond } => {
                loop {
                    self.tick()?;
                    match self.exec_block(body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        _ => {}
                    }
                    if !self.eval(cond)?.truthy() {
                        break;
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                if let Some(init) = init {
                    let f = self.exec_stmt(init)?;
                    debug_assert_eq!(f, Flow::Normal);
                }
                let result = loop {
                    self.tick()?;
                    if let Some(c) = cond {
                        if !self.eval(c)?.truthy() {
                            break Flow::Normal;
                        }
                    }
                    match self.exec_block(body)? {
                        Flow::Break => break Flow::Normal,
                        Flow::Return(v) => break Flow::Return(v),
                        _ => {}
                    }
                    if let Some(st) = step {
                        self.eval(st)?;
                    }
                };
                self.scopes.pop();
                Ok(result)
            }
            StmtKind::Switch { scrutinee, cases } => {
                let v = self.eval(scrutinee)?.as_int();
                let mut matched: Option<usize> = None;
                let mut default: Option<usize> = None;
                for (i, c) in cases.iter().enumerate() {
                    match &c.label {
                        CaseLabel::Case(e) => {
                            let cv = self.eval(e)?.as_int();
                            if cv == v && matched.is_none() {
                                matched = Some(i);
                            }
                        }
                        CaseLabel::Default => default = Some(i),
                    }
                }
                let start = matched.or(default);
                if let Some(start) = start {
                    self.scopes.push(HashMap::new());
                    let mut flow = Flow::Normal;
                    'arms: for c in &cases[start..] {
                        for s in &c.body {
                            flow = self.exec_stmt(s)?;
                            match flow {
                                Flow::Break => {
                                    flow = Flow::Normal;
                                    break 'arms;
                                }
                                Flow::Return(_) | Flow::Continue => break 'arms,
                                Flow::Normal => {}
                            }
                        }
                    }
                    self.scopes.pop();
                    return Ok(flow);
                }
                Ok(Flow::Normal)
            }
            StmtKind::Break => Ok(Flow::Break),
            StmtKind::Continue => Ok(Flow::Continue),
            StmtKind::Return(e) => {
                let v = match e {
                    Some(e) => self.eval(e)?,
                    None => Value::Int(0),
                };
                Ok(Flow::Return(v))
            }
        }
    }

    // ------------------------------------------------------------- exprs

    fn eval(&mut self, e: &Expr) -> EvalResult {
        self.tick()?;
        match &e.kind {
            ExprKind::IntLit(v) => Ok(Value::Int(*v as i32)),
            ExprKind::CharLit(v) => Ok(Value::Int(*v as i32)),
            ExprKind::StrLit(s) => {
                let block = self.alloc(s.len() + 1, false);
                for (i, b) in s.bytes().enumerate() {
                    self.blocks[block].data[i] = Value::Int(b as i32);
                }
                Ok(Value::Ptr(Ptr { block, offset: 0 }))
            }
            ExprKind::Ident(name) => {
                if name == "NULL" {
                    return Ok(Value::Ptr(Ptr::NULL));
                }
                if name == "stdin" || name == "stdout" || name == "stderr" {
                    return Ok(Value::Int(0));
                }
                let slot = self
                    .lookup(name)
                    .ok_or_else(|| Stop::from(Fault::Undefined(name.clone())))?;
                if slot.array {
                    Ok(Value::Ptr(Ptr {
                        block: slot.block,
                        offset: 0,
                    }))
                } else {
                    self.load(slot.block, 0)
                }
            }
            ExprKind::Unary { op, expr } => match op {
                UnaryOp::AddrOf => {
                    let (block, offset) = self.place(expr)?;
                    Ok(Value::Ptr(Ptr { block, offset }))
                }
                UnaryOp::Deref => {
                    let p = self.eval(expr)?;
                    let Value::Ptr(p) = p else {
                        return Err(Fault::NullDeref.into());
                    };
                    if p.is_null() {
                        return Err(Fault::NullDeref.into());
                    }
                    self.load(p.block, p.offset)
                }
                UnaryOp::Neg => Ok(Value::Int(self.eval(expr)?.as_int().wrapping_neg())),
                UnaryOp::Plus => self.eval(expr),
                UnaryOp::Not => Ok(Value::Int(if self.eval(expr)?.truthy() { 0 } else { 1 })),
                UnaryOp::BitNot => Ok(Value::Int(!self.eval(expr)?.as_int())),
            },
            ExprKind::Binary { op, lhs, rhs } => self.binary(*op, lhs, rhs),
            ExprKind::Assign { op, target, value } => {
                let rhs = self.eval(value)?;
                let (block, offset) = self.place(target)?;
                let new = match op.binary_op() {
                    None => rhs,
                    Some(bop) => {
                        let cur = self.load(block, offset)?;
                        arith(bop, cur, rhs)?
                    }
                };
                self.store(block, offset, new)?;
                Ok(new)
            }
            ExprKind::Ternary {
                cond,
                then_expr,
                else_expr,
            } => {
                if self.eval(cond)?.truthy() {
                    self.eval(then_expr)
                } else {
                    self.eval(else_expr)
                }
            }
            ExprKind::Call { callee, args } => {
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.eval(a)?);
                }
                if self.interp.funcs.contains_key(callee.as_str()) {
                    self.call(callee, &argv)
                } else {
                    self.builtin(callee, &argv)
                }
            }
            ExprKind::Index { .. } | ExprKind::Member { .. } => {
                let (block, offset) = self.place(e)?;
                self.load(block, offset)
            }
            ExprKind::Cast { expr, .. } => self.eval(expr),
            ExprKind::Sizeof(arg) => match arg {
                SizeofArg::Type(_) => Ok(Value::Int(4)),
                SizeofArg::Expr(inner) => {
                    // sizeof of an array variable = its length; else 4.
                    if let ExprKind::Ident(name) = &inner.kind {
                        if let Some(slot) = self.lookup(name) {
                            if slot.array {
                                return Ok(Value::Int(self.blocks[slot.block].data.len() as i32));
                            }
                        }
                    }
                    Ok(Value::Int(4))
                }
            },
            ExprKind::PreIncDec { expr, inc } => {
                let (block, offset) = self.place(expr)?;
                let cur = self.load(block, offset)?;
                let new = bump(cur, *inc)?;
                self.store(block, offset, new)?;
                Ok(new)
            }
            ExprKind::PostIncDec { expr, inc } => {
                let (block, offset) = self.place(expr)?;
                let cur = self.load(block, offset)?;
                let new = bump(cur, *inc)?;
                self.store(block, offset, new)?;
                Ok(cur)
            }
            ExprKind::Comma { lhs, rhs } => {
                self.eval(lhs)?;
                self.eval(rhs)
            }
        }
    }

    fn binary(&mut self, op: BinaryOp, lhs: &Expr, rhs: &Expr) -> EvalResult {
        // Short-circuit logicals.
        match op {
            BinaryOp::LogAnd => {
                if !self.eval(lhs)?.truthy() {
                    return Ok(Value::Int(0));
                }
                return Ok(Value::Int(self.eval(rhs)?.truthy() as i32));
            }
            BinaryOp::LogOr => {
                if self.eval(lhs)?.truthy() {
                    return Ok(Value::Int(1));
                }
                return Ok(Value::Int(self.eval(rhs)?.truthy() as i32));
            }
            _ => {}
        }
        let a = self.eval(lhs)?;
        let b = self.eval(rhs)?;
        arith(op, a, b)
    }

    /// Resolves an lvalue to `(block, offset)`.
    fn place(&mut self, e: &Expr) -> Result<(usize, i64), Stop> {
        match &e.kind {
            ExprKind::Ident(name) => {
                let slot = self
                    .lookup(name)
                    .ok_or_else(|| Stop::from(Fault::Undefined(name.clone())))?;
                Ok((slot.block, 0))
            }
            ExprKind::Index { base, index } => {
                let b = self.eval(base)?;
                let i = self.eval(index)?.as_int() as i64;
                match b {
                    Value::Ptr(p) => {
                        if p.is_null() {
                            return Err(Fault::NullDeref.into());
                        }
                        Ok((p.block, p.offset + i))
                    }
                    Value::Int(_) => Err(Fault::NullDeref.into()),
                }
            }
            ExprKind::Unary {
                op: UnaryOp::Deref,
                expr,
            } => {
                let v = self.eval(expr)?;
                match v {
                    Value::Ptr(p) if !p.is_null() => Ok((p.block, p.offset)),
                    _ => Err(Fault::NullDeref.into()),
                }
            }
            ExprKind::Cast { expr, .. } => self.place(expr),
            ExprKind::Member { .. } => Err(Fault::Unsupported("struct member".into()).into()),
            other => Err(Fault::Unsupported(format!("lvalue {other:?}")).into()),
        }
    }

    fn check_access(&self, block: usize, offset: i64) -> Result<usize, Stop> {
        let b = self
            .blocks
            .get(block)
            .ok_or_else(|| Stop::from(Fault::NullDeref))?;
        if b.state == BlockState::Freed {
            return Err(Fault::UseAfterFree.into());
        }
        if offset < 0 || offset as usize >= b.data.len() {
            return Err(Fault::OutOfBounds {
                offset,
                len: b.data.len(),
            }
            .into());
        }
        Ok(offset as usize)
    }

    fn load(&mut self, block: usize, offset: i64) -> EvalResult {
        let o = self.check_access(block, offset)?;
        Ok(self.blocks[block].data[o])
    }

    fn store(&mut self, block: usize, offset: i64, v: Value) -> Result<(), Stop> {
        let o = self.check_access(block, offset)?;
        self.blocks[block].data[o] = v;
        Ok(())
    }

    // ----------------------------------------------------------- builtins

    fn builtin(&mut self, name: &str, args: &[Value]) -> EvalResult {
        match name {
            "malloc" | "alloca" => {
                let n = args.first().map(|v| v.as_int()).unwrap_or(0);
                if n <= 0 || n as usize > self.interp.limits.max_alloc {
                    return Ok(Value::Ptr(Ptr::NULL));
                }
                let block = self.alloc(n as usize, true);
                Ok(Value::Ptr(Ptr { block, offset: 0 }))
            }
            "calloc" => {
                let n = args.first().map(|v| v.as_int()).unwrap_or(0);
                let sz = args.get(1).map(|v| v.as_int()).unwrap_or(1);
                let total = (n as i64) * (sz as i64);
                if total <= 0 || total as usize > self.interp.limits.max_alloc {
                    return Ok(Value::Ptr(Ptr::NULL));
                }
                let block = self.alloc(total as usize, true);
                Ok(Value::Ptr(Ptr { block, offset: 0 }))
            }
            "free" => {
                match args.first() {
                    Some(Value::Ptr(p)) if p.is_null() => {}
                    Some(Value::Ptr(p)) => {
                        let b = self
                            .blocks
                            .get_mut(p.block)
                            .ok_or_else(|| Stop::from(Fault::NullDeref))?;
                        if b.state == BlockState::Freed {
                            return Err(Fault::DoubleFree.into());
                        }
                        if !b.heap {
                            return Err(Fault::Unsupported("free of non-heap".into()).into());
                        }
                        b.state = BlockState::Freed;
                    }
                    _ => {}
                }
                Ok(Value::Int(0))
            }
            "strlen" => {
                let p = ptr_arg(args, 0)?;
                let mut n = 0i64;
                loop {
                    let v = self.load(p.block, p.offset + n)?;
                    if v.as_int() == 0 {
                        return Ok(Value::Int(n as i32));
                    }
                    n += 1;
                    self.tick()?;
                }
            }
            "atoi" | "atol" => {
                let p = ptr_arg(args, 0)?;
                let mut n: i64 = 0;
                let mut i = 0i64;
                let mut neg = false;
                // Stop at block end rather than faulting: atoi reads until a
                // non-digit, and our strings are NUL-terminated.
                if let Ok(v) = self.load(p.block, p.offset) {
                    if v.as_int() == b'-' as i32 {
                        neg = true;
                        i = 1;
                    }
                }
                while let Ok(v) = self.load(p.block, p.offset + i) {
                    let c = v.as_int();
                    if !(48..=57).contains(&c) {
                        break;
                    }
                    n = n.saturating_mul(10).saturating_add((c - 48) as i64);
                    i += 1;
                    self.tick()?;
                }
                let n = if neg { -n } else { n };
                Ok(Value::Int(n as i32))
            }
            "strncpy" | "memcpy" | "memmove" => {
                let d = ptr_arg(args, 0)?;
                let s = ptr_arg(args, 1)?;
                let n = args.get(2).map(|v| v.as_int()).unwrap_or(0) as i64;
                for i in 0..n {
                    let v = self.load(s.block, s.offset + i)?;
                    self.store(d.block, d.offset + i, v)?;
                    if name == "strncpy" && v.as_int() == 0 {
                        break;
                    }
                    self.tick()?;
                }
                Ok(Value::Ptr(d))
            }
            "strcpy" | "strcat" => {
                let d = ptr_arg(args, 0)?;
                let s = ptr_arg(args, 1)?;
                let mut doff = d.offset;
                if name == "strcat" {
                    while self.load(d.block, doff)?.as_int() != 0 {
                        doff += 1;
                        self.tick()?;
                    }
                }
                let mut i = 0i64;
                loop {
                    let v = self.load(s.block, s.offset + i)?;
                    self.store(d.block, doff + i, v)?;
                    if v.as_int() == 0 {
                        break;
                    }
                    i += 1;
                    self.tick()?;
                }
                Ok(Value::Ptr(d))
            }
            "memset" => {
                let d = ptr_arg(args, 0)?;
                let v = args.get(1).map(|v| v.as_int()).unwrap_or(0);
                let n = args.get(2).map(|v| v.as_int()).unwrap_or(0) as i64;
                for i in 0..n {
                    self.store(d.block, d.offset + i, Value::Int(v))?;
                    self.tick()?;
                }
                Ok(Value::Ptr(d))
            }
            "fgets" => {
                let d = ptr_arg(args, 0)?;
                let n = args.get(1).map(|v| v.as_int()).unwrap_or(0).max(1) as usize;
                let mut written = 0i64;
                while written + 1 < n as i64 && self.input_pos < self.input.len() {
                    let c = self.input[self.input_pos];
                    self.input_pos += 1;
                    self.store(d.block, d.offset + written, Value::Int(c as i32))?;
                    written += 1;
                    if c == b'\n' {
                        break;
                    }
                }
                self.store(d.block, d.offset + written, Value::Int(0))?;
                Ok(Value::Ptr(d))
            }
            "gets" => {
                // The classic: copies unboundedly.
                let d = ptr_arg(args, 0)?;
                let mut written = 0i64;
                while self.input_pos < self.input.len() {
                    let c = self.input[self.input_pos];
                    self.input_pos += 1;
                    if c == b'\n' {
                        break;
                    }
                    self.store(d.block, d.offset + written, Value::Int(c as i32))?;
                    written += 1;
                }
                self.store(d.block, d.offset + written, Value::Int(0))?;
                Ok(Value::Ptr(d))
            }
            "strcmp" | "strncmp" | "memcmp" => {
                let a = ptr_arg(args, 0)?;
                let b = ptr_arg(args, 1)?;
                let limit = if name == "strcmp" {
                    i64::MAX
                } else {
                    args.get(2).map(|v| v.as_int()).unwrap_or(0) as i64
                };
                let mut i = 0i64;
                while i < limit {
                    let x = self.load(a.block, a.offset + i)?.as_int();
                    let y = self.load(b.block, b.offset + i)?.as_int();
                    if x != y {
                        return Ok(Value::Int(if x < y { -1 } else { 1 }));
                    }
                    if name != "memcmp" && x == 0 {
                        break;
                    }
                    i += 1;
                    self.tick()?;
                }
                Ok(Value::Int(0))
            }
            "printf" | "fprintf" | "puts" | "sprintf" | "snprintf" | "fputs" | "putchar" => {
                Ok(Value::Int(0))
            }
            "exit" | "abort" => {
                let code = if name == "abort" {
                    134
                } else {
                    args.first().map(|v| v.as_int()).unwrap_or(0)
                };
                Err(Stop::Exit(code))
            }
            "rand" => Ok(Value::Int(
                ((self.steps.wrapping_mul(48271)) % 233280) as i32,
            )),
            other => Err(Fault::Undefined(format!("builtin {other}")).into()),
        }
    }
}

fn ptr_arg(args: &[Value], i: usize) -> Result<Ptr, Stop> {
    match args.get(i) {
        Some(Value::Ptr(p)) if !p.is_null() => Ok(*p),
        Some(Value::Ptr(_)) => Err(Fault::NullDeref.into()),
        _ => Err(Fault::NullDeref.into()),
    }
}

fn bump(v: Value, inc: bool) -> Result<Value, Stop> {
    match v {
        Value::Int(i) => Ok(Value::Int(if inc {
            i.wrapping_add(1)
        } else {
            i.wrapping_sub(1)
        })),
        Value::Ptr(p) => Ok(Value::Ptr(Ptr {
            block: p.block,
            offset: p.offset + if inc { 1 } else { -1 },
        })),
    }
}

fn arith(op: BinaryOp, a: Value, b: Value) -> EvalResult {
    use BinaryOp::*;
    // Pointer ± integer.
    if let (Value::Ptr(p), Value::Int(i)) = (a, b) {
        match op {
            Add => {
                return Ok(Value::Ptr(Ptr {
                    block: p.block,
                    offset: p.offset + i as i64,
                }))
            }
            Sub => {
                return Ok(Value::Ptr(Ptr {
                    block: p.block,
                    offset: p.offset - i as i64,
                }))
            }
            Eq => return Ok(Value::Int((p.is_null() && i == 0) as i32)),
            Ne => return Ok(Value::Int((!(p.is_null() && i == 0)) as i32)),
            _ => {}
        }
    }
    if let (Value::Int(i), Value::Ptr(p)) = (a, b) {
        if op == Add {
            return Ok(Value::Ptr(Ptr {
                block: p.block,
                offset: p.offset + i as i64,
            }));
        }
        if op == Eq {
            return Ok(Value::Int((p.is_null() && i == 0) as i32));
        }
        if op == Ne {
            return Ok(Value::Int((!(p.is_null() && i == 0)) as i32));
        }
    }
    if let (Value::Ptr(p), Value::Ptr(q)) = (a, b) {
        return match op {
            Eq => Ok(Value::Int((p == q) as i32)),
            Ne => Ok(Value::Int((p != q) as i32)),
            Sub => Ok(Value::Int((p.offset - q.offset) as i32)),
            _ => Err(Fault::Unsupported("pointer arithmetic".into()).into()),
        };
    }
    let x = a.as_int();
    let y = b.as_int();
    let v = match op {
        Add => x.wrapping_add(y),
        Sub => x.wrapping_sub(y),
        Mul => x.wrapping_mul(y),
        Div => {
            if y == 0 {
                return Err(Fault::DivByZero.into());
            }
            x.wrapping_div(y)
        }
        Rem => {
            if y == 0 {
                return Err(Fault::DivByZero.into());
            }
            x.wrapping_rem(y)
        }
        Shl => x.wrapping_shl(y as u32 & 31),
        Shr => x.wrapping_shr(y as u32 & 31),
        Lt => (x < y) as i32,
        Gt => (x > y) as i32,
        Le => (x <= y) as i32,
        Ge => (x >= y) as i32,
        Eq => (x == y) as i32,
        Ne => (x != y) as i32,
        BitAnd => x & y,
        BitXor => x ^ y,
        BitOr => x | y,
        LogAnd | LogOr => unreachable!("short-circuited earlier"),
    };
    Ok(Value::Int(v))
}

fn decl_len(d: &Decl) -> usize {
    if d.array_dims.is_empty() {
        1
    } else {
        d.array_dims
            .iter()
            .map(|dim| dim.unwrap_or(1).max(1) as usize)
            .product::<usize>()
            .max(1)
    }
}

// The AST block type clashes with our memory Block; alias for clarity.
use sevuldet_lang::ast::Block as Block_;

#[cfg(test)]
mod tests {
    use super::*;
    use sevuldet_lang::parse;

    fn run(src: &str, input: &[u8]) -> RunResult {
        let p = parse(src).unwrap();
        Interp::new(&p).run_main(input)
    }

    fn run_h(src: &str, args: &[i32]) -> RunResult {
        let p = parse(src).unwrap();
        Interp::new(&p).run_function("harness", args, &[])
    }

    #[test]
    fn arithmetic_and_control_flow() {
        let r = run(
            "int main() { int s = 0; for (int i = 1; i <= 10; i++) { s += i; } return s; }",
            &[],
        );
        assert_eq!(r.value, Ok(55));
    }

    #[test]
    fn while_and_switch() {
        let src = r#"int main() {
            int n = 7;
            int kind = 0;
            while (n > 1) {
                if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
                kind++;
            }
            switch (kind) { case 16: return 100; default: return kind; }
        }"#;
        assert_eq!(run(src, &[]).value, Ok(100));
    }

    #[test]
    fn array_oob_is_caught() {
        let r = run("int main() { int a[4]; a[4] = 1; return 0; }", &[]);
        assert!(matches!(r.fault(), Some(Fault::OutOfBounds { .. })));
    }

    #[test]
    fn use_after_free_and_double_free() {
        let r = run(
            "int main() { char *p = malloc(4); free(p); p[0] = 1; return 0; }",
            &[],
        );
        assert_eq!(r.fault(), Some(&Fault::UseAfterFree));
        let r = run(
            "int main() { char *p = malloc(4); free(p); free(p); return 0; }",
            &[],
        );
        assert_eq!(r.fault(), Some(&Fault::DoubleFree));
    }

    #[test]
    fn null_deref_and_div_zero() {
        let r = run("int main() { char *p = NULL; p[0] = 1; return 0; }", &[]);
        assert_eq!(r.fault(), Some(&Fault::NullDeref));
        let r = run("int main() { int z = 0; return 4 / z; }", &[]);
        assert_eq!(r.fault(), Some(&Fault::DivByZero));
    }

    #[test]
    fn infinite_loop_hits_budget() {
        let r = run(
            "int main() { int x = 1; while (x) { x = 1; } return 0; }",
            &[],
        );
        assert_eq!(r.fault(), Some(&Fault::LoopBudget));
    }

    #[test]
    fn fgets_respects_bound_gets_does_not() {
        let src = "int main() { char buf[4]; fgets(buf, 4, stdin); return strlen(buf); }";
        let r = run(src, b"abcdefgh");
        assert_eq!(r.value, Ok(3));
        let src = "int main() { char buf[4]; gets(buf); return 0; }";
        let r = run(src, b"abcdefgh");
        assert!(matches!(r.fault(), Some(Fault::OutOfBounds { .. })));
    }

    #[test]
    fn strncpy_overflows_when_n_exceeds_dest() {
        let src = r#"int main() {
            char dst[4];
            char src_[16];
            fgets(src_, 16, stdin);
            strncpy(dst, src_, 12);
            return 0;
        }"#;
        let r = run(src, b"aaaaaaaaaaaaaaa");
        assert!(matches!(r.fault(), Some(Fault::OutOfBounds { .. })));
    }

    #[test]
    fn atoi_parses_input() {
        let src = r#"int main() {
            char buf[16];
            fgets(buf, 16, stdin);
            return atoi(buf);
        }"#;
        assert_eq!(run(src, b"123").value, Ok(123));
        assert_eq!(run(src, b"-45x").value, Ok(-45));
    }

    #[test]
    fn interprocedural_calls_and_globals() {
        let src = r#"int counter = 0;
int bump_twice(int v) {
    counter = counter + v;
    counter = counter + v;
    return counter;
}
int main() { bump_twice(3); return bump_twice(2); }"#;
        assert_eq!(run(src, &[]).value, Ok(10));
    }

    #[test]
    fn exit_propagates() {
        let src = "void f(int n) { if (n > 2) { exit(42); } } int main() { f(5); return 0; }";
        assert_eq!(run(src, &[]).value, Ok(42));
    }

    #[test]
    fn harness_entry_with_int_args() {
        let src = "int harness(int a, int b) { return a * 10 + b; }";
        assert_eq!(run_h(src, &[3, 4]).value, Ok(34));
    }

    #[test]
    fn coverage_grows_with_new_paths() {
        let src = r#"int harness(int a, int b) {
            if (a > 5) { return 1; }
            return 0;
        }"#;
        let p = parse(src).unwrap();
        let i = Interp::new(&p);
        let r1 = i.run_function("harness", &[0, 0], &[]);
        let r2 = i.run_function("harness", &[9, 0], &[]);
        assert!(!r2.coverage.is_subset(&r1.coverage), "branch adds edges");
    }

    #[test]
    fn int_arithmetic_wraps_like_c() {
        let src = "int harness(int a, int b) { int c = a + b; if (c < 0) { return 1; } return 0; }";
        // INT_MAX + 1 wraps negative.
        assert_eq!(run_h(src, &[2147483647, 1]).value, Ok(1));
    }

    #[test]
    fn cve_9776_analogue_infinite_loop_on_zero_stride() {
        let case = sevuldet_dataset_like_src();
        let p = parse(&case).unwrap();
        let i = Interp::new(&p);
        // stride 0 → infinite loop fault; stride 4 → terminates.
        assert_eq!(
            i.run_function("harness", &[0, 100], &[]).fault(),
            Some(&Fault::LoopBudget)
        );
        assert!(i.run_function("harness", &[4, 100], &[]).value.is_ok());
    }

    fn sevuldet_dataset_like_src() -> String {
        r#"int fec_emrbr = 1;
void fec_set_reg(int val) { fec_emrbr = val; }
int fec_receive(int size) {
    int total = 0;
    while (size > 0) { total = total + 1; size = size - fec_emrbr; }
    return total;
}
int harness(int a, int b) { fec_set_reg(a); return fec_receive(b); }"#
            .to_string()
    }

    #[test]
    fn stack_overflow_caught() {
        let src = "int f(int n) { return f(n + 1); } int main() { return f(0); }";
        let r = run(src, &[]);
        assert_eq!(r.fault(), Some(&Fault::StackOverflow));
    }
}
