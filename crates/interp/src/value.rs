//! Runtime values, memory blocks, and fault kinds of the mini-C interpreter.

use std::fmt;

/// A runtime fault — the interpreter's sanitizer verdicts. These are what
/// the AFL-style fuzzer reports as "crashes" (Table VII).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Fault {
    /// Array/heap access outside a live block.
    OutOfBounds {
        /// The offending offset.
        offset: i64,
        /// The block's length.
        len: usize,
    },
    /// Read or write through a freed block.
    UseAfterFree,
    /// `free` on an already-freed block.
    DoubleFree,
    /// Dereference of a null pointer.
    NullDeref,
    /// Integer division (or remainder) by zero.
    DivByZero,
    /// Execution budget exhausted — the infinite-loop verdict.
    LoopBudget,
    /// Call-stack depth limit exceeded.
    StackOverflow,
    /// Construct the interpreter does not model.
    Unsupported(String),
    /// Use of an undefined variable or function.
    Undefined(String),
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::OutOfBounds { offset, len } => {
                write!(
                    f,
                    "out-of-bounds access at offset {offset} of block len {len}"
                )
            }
            Fault::UseAfterFree => write!(f, "use after free"),
            Fault::DoubleFree => write!(f, "double free"),
            Fault::NullDeref => write!(f, "null pointer dereference"),
            Fault::DivByZero => write!(f, "division by zero"),
            Fault::LoopBudget => write!(f, "execution budget exhausted (infinite loop?)"),
            Fault::StackOverflow => write!(f, "call stack overflow"),
            Fault::Unsupported(s) => write!(f, "unsupported construct: {s}"),
            Fault::Undefined(s) => write!(f, "undefined symbol: {s}"),
        }
    }
}

impl std::error::Error for Fault {}

/// A pointer: block id + element offset. The null pointer is
/// `Ptr::NULL`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ptr {
    /// Target block id (`usize::MAX` = null).
    pub block: usize,
    /// Element offset within the block.
    pub offset: i64,
}

impl Ptr {
    /// The null pointer.
    pub const NULL: Ptr = Ptr {
        block: usize::MAX,
        offset: 0,
    };

    /// Whether this is the null pointer.
    pub fn is_null(&self) -> bool {
        self.block == usize::MAX
    }
}

/// A runtime value. Mini-C ints are C `int`s: 32-bit wrapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Value {
    /// A 32-bit integer.
    Int(i32),
    /// A pointer.
    Ptr(Ptr),
}

impl Value {
    /// The value as an integer, coercing pointers by nullness (like C
    /// truthiness in conditions).
    pub fn as_int(&self) -> i32 {
        match self {
            Value::Int(v) => *v,
            Value::Ptr(p) => {
                if p.is_null() {
                    0
                } else {
                    1
                }
            }
        }
    }

    /// Whether the value is truthy.
    pub fn truthy(&self) -> bool {
        self.as_int() != 0
    }
}

/// Liveness of a memory block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockState {
    /// Readable and writable.
    Alive,
    /// Freed: any access is a fault.
    Freed,
}

/// A memory block (global, local, or heap). All storage is element-typed as
/// [`Value`] so arrays of ints and strings-of-chars share one representation.
#[derive(Debug, Clone)]
pub struct Block {
    /// Element storage.
    pub data: Vec<Value>,
    /// Liveness.
    pub state: BlockState,
    /// Whether the block came from `malloc` (only those may be freed).
    pub heap: bool,
}

impl Block {
    /// A zeroed alive block.
    pub fn zeroed(len: usize, heap: bool) -> Block {
        Block {
            data: vec![Value::Int(0); len],
            state: BlockState::Alive,
            heap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_pointer_identity() {
        assert!(Ptr::NULL.is_null());
        assert!(!Ptr {
            block: 0,
            offset: 0
        }
        .is_null());
        assert_eq!(Value::Ptr(Ptr::NULL).as_int(), 0);
        assert!(!Value::Ptr(Ptr::NULL).truthy());
        assert!(Value::Ptr(Ptr {
            block: 3,
            offset: 1
        })
        .truthy());
    }

    #[test]
    fn fault_display() {
        let f = Fault::OutOfBounds { offset: 99, len: 4 };
        assert!(f.to_string().contains("99"));
        assert!(Fault::LoopBudget.to_string().contains("budget"));
    }
}
