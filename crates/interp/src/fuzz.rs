//! An AFL-style coverage-guided mutation fuzzer over the interpreter.
//!
//! Inputs are **byte buffers** parsed by the target's input interface (stdin
//! text for `main`-style targets, two decimal integers for `harness(a, b)`
//! targets). This models real AFL faithfully in the way Table VII depends
//! on: AFL mutates bytes *before* the program's parser, so synthesizing the
//! exact 31-bit boundary offset that CVE-2016-9104 needs (a ten-digit
//! decimal string) is astronomically unlikely, while the zero-stride
//! triggers of CVE-2016-4453/9776 (a literal `0` byte) fall out of the
//! interesting-value dictionary immediately. That is the paper's "special
//! offset value and far apart trigger position".

use crate::exec::Interp;
use crate::value::Fault;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sevuldet_lang::ast::Program;
use std::collections::HashSet;

/// What the fuzzer drives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FuzzTarget {
    /// `main()` reading the input bytes from stdin.
    Main,
    /// A named `fn(int, int)` harness; the input bytes are parsed as two
    /// whitespace-separated decimal integers.
    Harness(String),
}

/// Fuzzing campaign configuration.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Total executions.
    pub iterations: usize,
    /// RNG seed.
    pub seed: u64,
    /// Maximum input length.
    pub max_len: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            iterations: 4000,
            seed: 1,
            max_len: 64,
        }
    }
}

/// A crashing input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Crash {
    /// The input bytes.
    pub input: Vec<u8>,
    /// The fault observed.
    pub fault: Fault,
}

/// Campaign outcome.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// First crash per distinct fault kind.
    pub crashes: Vec<Crash>,
    /// Executions performed.
    pub execs: usize,
    /// Final corpus size (coverage-increasing inputs kept).
    pub corpus_len: usize,
    /// Total distinct edges covered.
    pub edges: usize,
}

impl CampaignResult {
    /// Whether any crash of the given coarse kind was found.
    pub fn found(&self, pred: impl Fn(&Fault) -> bool) -> bool {
        self.crashes.iter().any(|c| pred(&c.fault))
    }
}

const INTERESTING: &[u8] = b"0123456789 -\n\0\x01\x7f\xff";

/// Runs a fuzzing campaign.
pub fn fuzz(program: &Program, target: &FuzzTarget, config: &FuzzConfig) -> CampaignResult {
    let interp = Interp::new(program);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut corpus: Vec<Vec<u8>> = vec![
        b"0 0".to_vec(),
        b"1 1".to_vec(),
        b"4 100".to_vec(),
        b"hello".to_vec(),
        b"-1 -1".to_vec(),
        b"255 255".to_vec(),
    ];
    let mut edges: HashSet<(u32, u32)> = HashSet::new();
    let mut crashes: Vec<Crash> = Vec::new();
    let mut seen_faults: HashSet<String> = HashSet::new();
    let mut execs = 0usize;

    let run_one = |input: &[u8],
                   edges: &mut HashSet<(u32, u32)>,
                   crashes: &mut Vec<Crash>,
                   seen: &mut HashSet<String>,
                   execs: &mut usize|
     -> bool {
        *execs += 1;
        let result = match target {
            FuzzTarget::Main => interp.run_main(input),
            FuzzTarget::Harness(name) => {
                let (a, b) = parse_two_ints(input);
                interp.run_function(name, &[a, b], input)
            }
        };
        let mut new_cov = false;
        for e in &result.coverage {
            if edges.insert(*e) {
                new_cov = true;
            }
        }
        if let Some(fault) = result.fault() {
            let key = format!("{fault:?}");
            let coarse = coarse_key(fault);
            if seen.insert(coarse) {
                crashes.push(Crash {
                    input: input.to_vec(),
                    fault: fault.clone(),
                });
            }
            let _ = key;
        }
        new_cov
    };

    // Seed pass.
    let seeds = corpus.clone();
    for s in &seeds {
        run_one(s, &mut edges, &mut crashes, &mut seen_faults, &mut execs);
    }

    while execs < config.iterations {
        let parent = corpus[rng.gen_range(0..corpus.len())].clone();
        let child = mutate(&parent, config.max_len, &mut rng);
        if run_one(
            &child,
            &mut edges,
            &mut crashes,
            &mut seen_faults,
            &mut execs,
        ) {
            corpus.push(child);
        }
    }

    CampaignResult {
        crashes,
        execs,
        corpus_len: corpus.len(),
        edges: edges.len(),
    }
}

/// Groups faults for dedup: one representative crash per kind.
fn coarse_key(f: &Fault) -> String {
    match f {
        Fault::OutOfBounds { .. } => "oob".into(),
        other => format!("{other:?}"),
    }
}

/// AFL-ish byte-level mutations: flips, interesting bytes, arithmetic on a
/// byte, insertion, deletion, block duplication.
fn mutate(parent: &[u8], max_len: usize, rng: &mut StdRng) -> Vec<u8> {
    let mut v = parent.to_vec();
    if v.is_empty() {
        v.push(b'0');
    }
    let n_mutations = 1 + rng.gen_range(0..4);
    for _ in 0..n_mutations {
        match rng.gen_range(0..6u8) {
            0 => {
                let i = rng.gen_range(0..v.len());
                v[i] ^= 1u8 << rng.gen_range(0..8u32);
            }
            1 => {
                let i = rng.gen_range(0..v.len());
                v[i] = INTERESTING[rng.gen_range(0..INTERESTING.len())];
            }
            2 => {
                let i = rng.gen_range(0..v.len());
                v[i] = v[i].wrapping_add(rng.gen_range(1..35));
            }
            3 => {
                if v.len() < max_len {
                    let i = rng.gen_range(0..=v.len());
                    v.insert(i, INTERESTING[rng.gen_range(0..INTERESTING.len())]);
                }
            }
            4 => {
                if v.len() > 1 {
                    let i = rng.gen_range(0..v.len());
                    v.remove(i);
                }
            }
            _ => {
                if v.len() * 2 <= max_len && !v.is_empty() {
                    let extend: Vec<u8> = v.clone();
                    v.extend(extend);
                }
            }
        }
    }
    v.truncate(max_len);
    v
}

/// Parses up to two whitespace-separated decimal integers from raw bytes
/// (non-numeric junk parses as 0, like `atoi`).
pub fn parse_two_ints(input: &[u8]) -> (i32, i32) {
    let text = String::from_utf8_lossy(input);
    let mut parts = text.split_whitespace();
    let parse = |s: Option<&str>| -> i32 {
        let s = s.unwrap_or("0");
        let (neg, digits) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s),
        };
        let mut n: i64 = 0;
        for c in digits.chars().take_while(|c| c.is_ascii_digit()) {
            n = n.saturating_mul(10).saturating_add((c as u8 - b'0') as i64);
        }
        let n = if neg { -n } else { n };
        n as i32
    };
    let a = parse(parts.next());
    let b = parse(parts.next());
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sevuldet_lang::parse;

    #[test]
    fn parse_two_ints_handles_junk() {
        assert_eq!(parse_two_ints(b"12 34"), (12, 34));
        assert_eq!(parse_two_ints(b"-5"), (-5, 0));
        assert_eq!(parse_two_ints(b"xx yy"), (0, 0));
        assert_eq!(parse_two_ints(b"99999999999 1"), (99999999999i64 as i32, 1));
    }

    #[test]
    fn fuzzer_finds_easy_zero_trigger() {
        // CVE-2016-9776-style: stride 0 → infinite loop.
        let src = r#"int stride = 1;
int spin(int size) {
    int t = 0;
    while (size > 0) { t = t + 1; size = size - stride; }
    return t;
}
int harness(int a, int b) { stride = a; return spin(b); }"#;
        let p = parse(src).unwrap();
        let r = fuzz(
            &p,
            &FuzzTarget::Harness("harness".into()),
            &FuzzConfig {
                iterations: 1500,
                seed: 3,
                ..FuzzConfig::default()
            },
        );
        assert!(
            r.found(|f| matches!(f, Fault::LoopBudget)),
            "should find the zero-stride hang: {:?}",
            r.crashes
        );
    }

    #[test]
    fn fuzzer_misses_magic_offset_bypass() {
        // CVE-2016-9104-style: needs offset within 2048 of INT_MAX *and*
        // the transport couples its fields (the paper's "far apart trigger
        // position") — jointly out of the byte mutator's reach.
        // Negative values are rejected up front (the real field is a
        // size_t); only the signed-add wrap can bypass the limit check.
        let src = r#"int data[2048];
int xread(int offset, int size) {
    if (offset < 0 || size < 0) { return -1; }
    if (offset + size > 2048) { return -1; }
    int s = 0;
    int i = 0;
    while (i < size) { s = s + data[offset + i]; i = i + 1; }
    return s;
}
int harness(int a, int b) {
    if (b != a % 977) { return 0; }
    return xread(a, b);
}"#;
        let p = parse(src).unwrap();
        let r = fuzz(
            &p,
            &FuzzTarget::Harness("harness".into()),
            &FuzzConfig {
                iterations: 4000,
                seed: 4,
                ..FuzzConfig::default()
            },
        );
        assert!(
            !r.found(|f| matches!(f, Fault::OutOfBounds { .. })),
            "magic-offset bypass should stay out of reach: {:?}",
            r.crashes
        );
    }

    #[test]
    fn fuzzer_finds_gets_overflow_via_main() {
        let src = r#"int main() {
    char buf[4];
    gets(buf);
    return 0;
}"#;
        let p = parse(src).unwrap();
        let r = fuzz(
            &p,
            &FuzzTarget::Main,
            &FuzzConfig {
                iterations: 800,
                seed: 5,
                ..FuzzConfig::default()
            },
        );
        assert!(r.found(|f| matches!(f, Fault::OutOfBounds { .. })));
    }

    #[test]
    fn coverage_and_corpus_grow() {
        // The seeds do not cover a > 300; only mutation gets there.
        let src = r#"int harness(int a, int b) {
    if (a > 300) { if (b > 10) { return 2; } return 1; }
    return 0;
}"#;
        let p = parse(src).unwrap();
        let r = fuzz(
            &p,
            &FuzzTarget::Harness("harness".into()),
            &FuzzConfig {
                iterations: 500,
                seed: 6,
                ..FuzzConfig::default()
            },
        );
        assert!(r.corpus_len > 6, "coverage feedback should keep inputs");
        assert!(r.edges >= 3, "edges={}", r.edges);
        assert_eq!(r.execs, 500);
    }
}
