//! # sevuldet-interp
//!
//! A mini-C interpreter with sanitizer-style fault detection (out-of-bounds,
//! use-after-free, double free, NULL deref, division by zero, and
//! fuel-bounded infinite-loop detection) plus an **AFL-style
//! coverage-guided fuzzer** over it. Together they stand in for the paper's
//! 24-hour AFL campaigns in Table VII: the zero-stride loop CVEs are found
//! quickly, the magic-offset overflow of CVE-2016-9104 is not.
//!
//! ## Example
//!
//! ```
//! use sevuldet_interp::{Interp, Fault};
//!
//! let program = sevuldet_lang::parse(
//!     "int main() { int a[4]; a[9] = 1; return 0; }").unwrap();
//! let result = Interp::new(&program).run_main(&[]);
//! assert!(matches!(result.fault(), Some(Fault::OutOfBounds { .. })));
//! ```

pub mod exec;
pub mod fuzz;
pub mod value;

pub use exec::{Interp, Limits, RunResult};
pub use fuzz::{fuzz, CampaignResult, Crash, FuzzConfig, FuzzTarget};
pub use value::{Fault, Value};
