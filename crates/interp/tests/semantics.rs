//! Semantic integration tests for the interpreter: C-operator behaviour,
//! library models, and fault detection corner cases.

use sevuldet_interp::{Fault, Interp};

fn run(src: &str, input: &[u8]) -> Result<i32, Fault> {
    let p = sevuldet_lang::parse(src).unwrap_or_else(|e| panic!("{e}\n{src}"));
    Interp::new(&p).run_main(input).value
}

#[test]
fn operator_zoo() {
    let src = r#"int main() {
        int a = 13;
        int b = 5;
        int r = 0;
        r += (a / b) * 100;        // 200
        r += (a % b) * 10;         // +30
        r += (a << 1) >> 3;        // +3
        r += (a & b) + (a | b) + (a ^ b);  // 5 + 13 + 8 = +26
        r += !0 + !7;              // +1
        r += ~0 + 1;               // +0
        r += (a > b) + (a >= b) + (a < b) + (a <= b) + (a == 13) + (a != 13);
        return r;                  // 259 + 3 = 263
    }"#;
    assert_eq!(run(src, &[]), Ok(263));
}

#[test]
fn ternary_comma_and_incdec() {
    let src = r#"int main() {
        int i = 0;
        int j = (i++, i + 10);
        int k = j > 10 ? ++i : --i;
        return j * 100 + k * 10 + i;
    }"#;
    // i=1 after i++, j=11, k=++i=2, i=2 → 1100 + 20 + 2
    assert_eq!(run(src, &[]), Ok(1122));
}

#[test]
fn do_while_and_switch_fallthrough() {
    let src = r#"int main() {
        int n = 0;
        do { n++; } while (n < 3);
        int r = 0;
        switch (n) {
        case 3:
            r += 1;
        case 4:
            r += 10;
            break;
        case 5:
            r += 100;
        }
        return r;
    }"#;
    assert_eq!(run(src, &[]), Ok(11));
}

#[test]
fn switch_default_position_independent() {
    let src = r#"int main() {
        switch (9) {
        default:
            return 42;
        case 1:
            return 1;
        }
    }"#;
    assert_eq!(run(src, &[]), Ok(42));
}

#[test]
fn string_library_models() {
    let src = r#"int main() {
        char a[16];
        char b[16];
        strcpy(a, "abc");
        strcat(a, "def");
        strncpy(b, a, 16);
        if (strcmp(a, b) != 0) { return 1; }
        if (strncmp(a, "abcxxx", 3) != 0) { return 2; }
        if (memcmp(a, b, 6) != 0) { return 3; }
        return strlen(a);
    }"#;
    assert_eq!(run(src, &[]), Ok(6));
}

#[test]
fn calloc_zeroes_and_malloc_negative_returns_null() {
    let src = r#"int main() {
        int *z = calloc(4, 4);
        if (z == NULL) { return 1; }
        if (z[3] != 0) { return 2; }
        char *bad = malloc(-5);
        if (bad != NULL) { return 3; }
        return 0;
    }"#;
    assert_eq!(run(src, &[]), Ok(0));
}

#[test]
fn pointer_walk_and_arith() {
    let src = r#"int main() {
        char buf[8];
        memset(buf, 7, 8);
        char *p = buf;
        p = p + 3;
        int s = *p + p[1] + *(p - 1);
        return s;
    }"#;
    assert_eq!(run(src, &[]), Ok(21));
}

#[test]
fn negative_index_is_oob() {
    let src = "int main() { int a[4]; int i = -1; a[i] = 1; return 0; }";
    assert!(matches!(run(src, &[]), Err(Fault::OutOfBounds { .. })));
}

#[test]
fn sizeof_array_vs_scalar() {
    let src = r#"int main() {
        char buf[24];
        int n = sizeof buf;
        int m = sizeof(int);
        return n + m;
    }"#;
    assert_eq!(run(src, &[]), Ok(28));
}

#[test]
fn recursion_with_base_case_terminates() {
    let src = r#"int fib(int n) {
        if (n < 2) { return n; }
        return fib(n - 1) + fib(n - 2);
    }
    int main() { return fib(12); }"#;
    assert_eq!(run(src, &[]), Ok(144));
}

#[test]
fn shadowing_in_nested_scopes() {
    let src = r#"int main() {
        int x = 1;
        {
            int x = 2;
            {
                int x = 3;
                if (x != 3) { return 1; }
            }
            if (x != 2) { return 2; }
        }
        return x;
    }"#;
    assert_eq!(run(src, &[]), Ok(1));
}

#[test]
fn division_rounding_matches_c() {
    let src = "int main() { return (-7 / 2) * 100 + (-7 % 2); }";
    // C truncates toward zero: -3 * 100 + -1 = -301.
    assert_eq!(run(src, &[]), Ok(-301));
}

#[test]
fn fgets_stops_at_newline() {
    let src = r#"int main() {
        char line[32];
        fgets(line, 32, stdin);
        return strlen(line);
    }"#;
    assert_eq!(run(src, b"ab\ncdef"), Ok(3)); // "ab\n"
}

#[test]
fn undefined_function_is_a_typed_fault() {
    let src = "int main() { return mystery(); }";
    assert!(matches!(run(src, &[]), Err(Fault::Undefined(_))));
}
