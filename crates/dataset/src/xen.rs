//! The "real-world" Xen-like corpus (Tables VI & VII, Fig. 6).
//!
//! Three hand-built CVE analogues mirror the paper's case studies — the
//! infinite display-FIFO loop of CVE-2016-4453 (vmware_vga), the
//! offset-overflow check bypass of CVE-2016-9104 (virtio-9p), and the
//! zero-stride receive loop of CVE-2016-9776 (mcf_fec). Every analogue has a
//! patched twin and a `harness(a, b)` entry point so the AFL-style fuzzer in
//! `sevuldet-interp` can drive it. Template-generated "device code"
//! distractors fill out the corpus.

use crate::spec::{Cwe, Origin, ProgramSample};
use crate::templates::{case_for, CaseOpts};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sevuldet_gadget::Category;
use std::collections::HashSet;

/// One CVE case study.
#[derive(Debug, Clone)]
pub struct CveCase {
    /// The vulnerable program.
    pub vulnerable: ProgramSample,
    /// The patched twin.
    pub patched: ProgramSample,
    /// The QEMU CVE id the case is modelled on.
    pub cve: &'static str,
    /// The file path reported in the paper's Table VII.
    pub file: &'static str,
    /// Xen version the paper found it in.
    pub xen_version: &'static str,
    /// Name of the fuzzable entry point.
    pub harness: &'static str,
}

fn sample(
    id: &str,
    source: &str,
    flaw_lines: &[u32],
    cwe: Cwe,
    vulnerable: bool,
    category: Category,
) -> ProgramSample {
    ProgramSample {
        id: id.to_string(),
        source: source.to_string(),
        flaw_lines: flaw_lines.iter().copied().collect::<HashSet<u32>>(),
        cwe,
        origin: Origin::XenSim,
        vulnerable,
        category,
    }
}

/// CVE-2016-9776 analogue (mcf_fec.c): the receive loop's stride is a
/// guest-controlled register; writing 0 makes `size` constant and the
/// `while` spin forever. Fig. 6 visualizes this gadget's attention weights.
pub fn cve_2016_9776() -> CveCase {
    let vulnerable_src = r#"int fec_emrbr = 1;
int fec_total = 0;
void fec_set_reg(int val) {
    fec_emrbr = val;
}
int fec_receive(int size) {
    int descnt = 0;
    while (size > 0) {
        descnt = descnt + 1;
        fec_total = fec_total + 1;
        size = size - fec_emrbr;
    }
    return descnt;
}
int harness(int a, int b) {
    fec_set_reg(a);
    return fec_receive(b);
}
"#;
    // Patch (as in QEMU 4c4f0e4): clamp the stride before the loop.
    let patched_src = r#"int fec_emrbr = 1;
int fec_total = 0;
void fec_set_reg(int val) {
    fec_emrbr = val;
}
int fec_receive(int size) {
    int descnt = 0;
    if (fec_emrbr < 1) {
        fec_emrbr = 1;
    }
    while (size > 0) {
        descnt = descnt + 1;
        fec_total = fec_total + 1;
        size = size - fec_emrbr;
    }
    return descnt;
}
int harness(int a, int b) {
    fec_set_reg(a);
    return fec_receive(b);
}
"#;
    // Flaw: the loop head and the stride subtraction (lines 8 and 11).
    CveCase {
        vulnerable: sample(
            "xen-cve-2016-9776",
            vulnerable_src,
            &[8, 11],
            Cwe::InfiniteLoop,
            true,
            Category::Ae,
        ),
        patched: sample(
            "xen-cve-2016-9776-patched",
            patched_src,
            &[],
            Cwe::InfiniteLoop,
            false,
            Category::Ae,
        ),
        cve: "CVE-2016-9776",
        file: "*/net/mcf_fec.c",
        xen_version: "Xen 4.7.4",
        harness: "harness",
    }
}

/// CVE-2016-9104 analogue (virtio-9p): `offset + size` overflows a signed
/// int, bypassing the bounds check; the subsequent copy reads far out of
/// bounds. The trigger needs `offset` within a narrow window below
/// `INT_MAX` *and* the harness couples its two fields like the 9p transport
/// does (a checksum-style relation) — together the paper's "special offset
/// value and far apart trigger position" that AFL misses.
pub fn cve_2016_9104() -> CveCase {
    let vulnerable_src = r#"int xattr_data[2048];
int xattr_out[2048];
int v9fs_xattr_read(int offset, int size) {
    int limit = 2048;
    if (offset < 0 || size < 0) {
        return -1;
    }
    if (offset + size > limit) {
        return -1;
    }
    memcpy(xattr_out, xattr_data + offset, size);
    return size;
}
int harness(int a, int b) {
    if (b != a % 977) {
        return 0;
    }
    return v9fs_xattr_read(a, b);
}
"#;
    let patched_src = r#"int xattr_data[2048];
int xattr_out[2048];
int v9fs_xattr_read(int offset, int size) {
    int limit = 2048;
    if (offset < 0 || size < 0 || offset > limit || size > limit - offset) {
        return -1;
    }
    memcpy(xattr_out, xattr_data + offset, size);
    return size;
}
int harness(int a, int b) {
    if (b != a % 977) {
        return 0;
    }
    return v9fs_xattr_read(a, b);
}
"#;
    // Flaw: the overflowing check (line 8) and the OOB copy (line 11).
    CveCase {
        vulnerable: sample(
            "xen-cve-2016-9104",
            vulnerable_src,
            &[8, 11],
            Cwe::IntegerOverflow,
            true,
            Category::Ae,
        ),
        patched: sample(
            "xen-cve-2016-9104-patched",
            patched_src,
            &[],
            Cwe::IntegerOverflow,
            false,
            Category::Ae,
        ),
        cve: "CVE-2016-9104",
        file: "*/9pfs/virtio-9p.c",
        xen_version: "Xen 4.6.0",
        harness: "harness",
    }
}

/// CVE-2016-4453 analogue (vmware_vga): the FIFO run loop advances the
/// cursor by a guest-controlled command length; a zero command loops the
/// display thread forever.
pub fn cve_2016_4453() -> CveCase {
    let vulnerable_src = r#"int vga_fifo[64];
int vmsvga_fifo_run(int cursor, int stop) {
    int cycles = 0;
    while (cursor != stop) {
        int cmd = vga_fifo[cursor & 63];
        cursor = cursor + cmd;
        cycles = cycles + 1;
    }
    return cycles;
}
int harness(int a, int b) {
    vga_fifo[b & 63] = a;
    return vmsvga_fifo_run(b & 63, 32);
}
"#;
    let patched_src = r#"int vga_fifo[64];
int vmsvga_fifo_run(int cursor, int stop) {
    int cycles = 0;
    while (cursor != stop) {
        int cmd = vga_fifo[cursor & 63];
        if (cmd <= 0) {
            return cycles;
        }
        cursor = cursor + cmd;
        cycles = cycles + 1;
    }
    return cycles;
}
int harness(int a, int b) {
    vga_fifo[b & 63] = a;
    return vmsvga_fifo_run(b & 63, 32);
}
"#;
    CveCase {
        vulnerable: sample(
            "xen-cve-2016-4453",
            vulnerable_src,
            &[4, 6],
            Cwe::InfiniteLoop,
            true,
            Category::Au,
        ),
        patched: sample(
            "xen-cve-2016-4453-patched",
            patched_src,
            &[],
            Cwe::InfiniteLoop,
            false,
            Category::Au,
        ),
        cve: "CVE-2016-4453",
        file: "*/display/vmware_vga.c",
        xen_version: "Xen 4.4.2",
        harness: "harness",
    }
}

/// The three paper case studies.
pub fn cve_cases() -> Vec<CveCase> {
    vec![cve_2016_4453(), cve_2016_9104(), cve_2016_9776()]
}

/// Configuration of the Xen-like corpus.
#[derive(Debug, Clone)]
pub struct XenConfig {
    /// Template-generated distractor programs.
    pub distractors: usize,
    /// Fraction of distractors carrying a flaw (the paper's Xen corpus has
    /// 6.0% vulnerable gadgets; program-level fraction is higher).
    pub vuln_fraction: f64,
    /// Generator seed.
    pub seed: u64,
}

impl Default for XenConfig {
    fn default() -> Self {
        XenConfig {
            distractors: 80,
            vuln_fraction: 0.18,
            seed: 2016,
        }
    }
}

/// Generates the full Xen-like corpus: the three CVE analogues (vulnerable
/// versions) plus template distractors, all out-of-domain relative to the
/// SARD-style training corpus (always inter-procedural, long filler).
pub fn generate(config: &XenConfig) -> Vec<ProgramSample> {
    let mut out: Vec<ProgramSample> = cve_cases()
        .into_iter()
        .flat_map(|c| [c.vulnerable, c.patched])
        .collect();
    let mut rng = StdRng::seed_from_u64(config.seed);
    for i in 0..config.distractors {
        let category = Category::ALL[rng.gen_range(0..4usize)];
        let sub_seed: u64 = rng.gen();
        let mut case_rng = StdRng::seed_from_u64(sub_seed);
        let opts = CaseOpts {
            vulnerable: rng.gen_bool(config.vuln_fraction),
            displaced_guard: rng.gen_bool(0.35),
            filler: rng.gen_range(10..40),
            interproc: true,
            origin: Origin::XenSim,
        };
        let mut s = case_for(category, &mut case_rng, &opts, i);
        s.id = format!("xen-dev-{i:05}");
        out.push(s);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cve_analogues_parse_and_flaw_lines_match() {
        for case in cve_cases() {
            for s in [&case.vulnerable, &case.patched] {
                let p = sevuldet_lang::parse(&s.source).unwrap_or_else(|e| panic!("{e}\n{}", s.id));
                assert!(p.function(case.harness).is_some(), "{} harness", s.id);
            }
            assert!(case.vulnerable.vulnerable);
            assert!(!case.patched.vulnerable);
            assert!(!case.vulnerable.flaw_lines.is_empty());
            // Flaw lines point at real code.
            let lines: Vec<&str> = case.vulnerable.source.lines().collect();
            for &fl in &case.vulnerable.flaw_lines {
                assert!(!lines[(fl - 1) as usize].trim().is_empty());
            }
        }
    }

    #[test]
    fn fig6_gadget_contains_the_loop_semantics() {
        // The 9776 gadget must carry the while range and the stride line,
        // like the paper's Fig. 6 gadget does.
        use sevuldet_analysis::ProgramAnalysis;
        use sevuldet_gadget::{build_gadget, find_special_tokens, GadgetKind, SliceConfig};
        let case = cve_2016_9776();
        let p = sevuldet_lang::parse(&case.vulnerable.source).unwrap();
        let a = ProgramAnalysis::analyze(&p);
        let toks = find_special_tokens(&p, &a);
        let seed = toks
            .iter()
            .find(|t| t.func == "fec_receive" && t.line == 11)
            .expect("stride subtraction special token");
        let g = build_gadget(
            &p,
            &a,
            seed,
            GadgetKind::PathSensitive,
            &SliceConfig::default(),
        );
        let text = g.to_text();
        assert!(text.contains("while ( size > 0 ) {"), "{text}");
        assert!(text.contains("size = size - fec_emrbr"), "{text}");
        assert!(text.contains("}"), "{text}");
    }

    #[test]
    fn corpus_contains_cves_and_distractors() {
        let c = generate(&XenConfig {
            distractors: 10,
            ..XenConfig::default()
        });
        assert_eq!(c.len(), 16);
        assert!(c.iter().any(|s| s.id == "xen-cve-2016-9104"));
        for s in &c {
            sevuldet_lang::parse(&s.source)
                .unwrap_or_else(|e| panic!("{e}\n--- {}\n{}", s.id, s.source));
        }
    }
}
