//! Vulnerability templates for the synthetic SARD/NVD-style corpora.
//!
//! Each template emits a complete mini-C program plus ground-truth flaw
//! lines. Three generation axes reproduce the phenomena the paper's
//! experiments measure:
//!
//! * **Guard displacement** (`displaced_guard`): the safe twin has the sink
//!   *inside* a validating guard, the vulnerable twin has the identical sink
//!   *after* the guard — the Fig. 1 pairs whose classic gadgets are
//!   indistinguishable but whose path-sensitive gadgets differ.
//! * **Long context** (`filler`): a chain of slice-relevant statements
//!   between source and sink inflates the gadget beyond any fixed token
//!   window, so truncating models lose the discriminative tail.
//! * **Inter-procedural flow** (`interproc`): the tainted value crosses a
//!   call, exercising the slicer's call-graph traversal.

use crate::namegen;
use crate::spec::{Cwe, Origin, ProgramSample, SrcBuilder};
use rand::rngs::StdRng;
use rand::Rng;
use sevuldet_gadget::Category;

/// Per-case generation options.
#[derive(Debug, Clone, Copy)]
pub struct CaseOpts {
    /// Emit the flawed variant.
    pub vulnerable: bool,
    /// Fig.-1-style guard displacement (classic gadgets become identical
    /// between the safe and vulnerable twin).
    pub displaced_guard: bool,
    /// Number of dependent filler statements between source and sink.
    pub filler: usize,
    /// Route the tainted value through a helper function.
    pub interproc: bool,
    /// Corpus the case is generated for.
    pub origin: Origin,
}

impl CaseOpts {
    /// A plain safe/vulnerable case with no special axes.
    pub fn plain(vulnerable: bool, origin: Origin) -> CaseOpts {
        CaseOpts {
            vulnerable,
            displaced_guard: false,
            filler: 0,
            interproc: false,
            origin,
        }
    }
}

/// Emits a dependent filler chain rooted at `var`; returns the last chain
/// variable (always reads the previous one so every line joins the slice).
fn fillers(b: &mut SrcBuilder, rng: &mut StdRng, var: &str, count: usize) -> String {
    let mut prev = var.to_string();
    for i in 0..count {
        let next = format!("mix_{i}");
        let op = ["+", "-", "^", "|"][rng.gen_range(0..4usize)];
        let k = rng.gen_range(1..9);
        b.line(1, &format!("int {next} = {prev} {op} {k};"));
        prev = next;
    }
    prev
}

/// A benign decoy function exercising arrays/pointers/arithmetic, adding
/// non-vulnerable gadget mass like SARD's supporting code does.
fn decoy(b: &mut SrcBuilder, rng: &mut StdRng) -> String {
    let f = namegen::func(rng);
    let arr = namegen::var(rng);
    let n = namegen::size_var(rng);
    let sz = namegen::buf_size(rng);
    let k1 = rng.gen_range(2..97);
    let k2 = rng.gen_range(1..47);
    b.line(0, &format!("int {f}(int {n}) {{"));
    b.line(1, &format!("int {arr}[{sz}];"));
    b.line(1, &format!("int acc = {n} * {k1} + {k2};"));
    if rng.gen_bool(0.5) {
        b.line(1, &format!("acc = acc ^ {};", rng.gen_range(1..255)));
    }
    b.line(1, &format!("if ({n} > 0 && {n} < {sz}) {{"));
    b.line(2, &format!("{arr}[{n}] = acc;"));
    b.line(
        2,
        &format!("acc = acc + {arr}[{n}] % {};", rng.gen_range(2..31)),
    );
    b.line(1, "}");
    b.line(1, "return acc;");
    b.line(0, "}");
    f
}

fn main_fn(b: &mut SrcBuilder, entry: &str, decoy_fn: Option<&str>) {
    b.line(0, "int main() {");
    b.line(1, "char input[256];");
    b.line(1, "fgets(input, 256, stdin);");
    if let Some(d) = decoy_fn {
        b.line(1, &format!("int side = {d}(7);"));
        b.line(1, "printf(\"%d\", side);");
    }
    b.line(1, &format!("{entry}(input);"));
    b.line(1, "return 0;");
    b.line(0, "}");
}

/// Emits the tainted-length source, optionally through a helper.
fn taint_source(
    b: &mut SrcBuilder,
    rng: &mut StdRng,
    opts: &CaseOpts,
    data: &str,
    n: &str,
) -> Option<String> {
    if opts.interproc {
        let helper = namegen::func(rng);
        // Helper defined before the sink function (it is called below).
        b.line(0, &format!("int {helper}(char *raw) {{"));
        b.line(1, "int parsed = atoi(raw);");
        b.line(1, "return parsed;");
        b.line(0, "}");
        Some(format!("int {n} = {helper}({data});"))
    } else {
        let _ = b;
        Some(format!("int {n} = atoi({data});"))
    }
}

/// FC: unchecked copy length into a fixed buffer (CWE-121).
pub fn fc_case(rng: &mut StdRng, opts: &CaseOpts, idx: usize) -> ProgramSample {
    let flavor = rng.gen_range(0..3u8);
    let mut b = SrcBuilder::new();
    let f = namegen::func(rng);
    let buf = namegen::var(rng);
    let data = namegen::var(rng);
    let n = namegen::size_var(rng);
    let sz = namegen::buf_size(rng);
    let with_decoy = rng.gen_bool(0.5);
    let decoy_fn = with_decoy.then(|| decoy(&mut b, rng));

    match flavor {
        // strncpy/memcpy with a length guard (supports displacement).
        0 | 1 => {
            let copy = if flavor == 0 { "strncpy" } else { "memcpy" };
            let src_line = taint_source(&mut b, rng, opts, &data, &n).expect("source");
            b.line(0, &format!("void {f}(char *{data}) {{"));
            b.line(1, &format!("char {buf}[{sz}];"));
            b.line(1, &src_line);
            let tail = fillers(&mut b, rng, &n, opts.filler);
            let _ = tail;
            if rng.gen_bool(0.5) {
                b.line(1, &format!("int trail = {n} + {};", rng.gen_range(1..63)));
                b.line(1, "printf(\"%d\", trail);");
            }
            let sink = format!("{copy}({buf}, {data}, {n});");
            if opts.displaced_guard {
                b.line(1, &format!("if ({n} < {sz}) {{"));
                if opts.vulnerable {
                    b.line(2, "puts(\"within limit\");");
                    b.line(1, "}");
                    b.flaw(1, &sink);
                } else {
                    b.line(2, &sink);
                    b.line(1, "}");
                }
            } else if opts.vulnerable {
                b.flaw(1, &sink);
            } else {
                b.line(1, &format!("if ({n} < {sz}) {{"));
                b.line(2, &sink);
                b.line(1, "}");
            }
            b.line(1, &format!("puts({buf});"));
            b.line(0, "}");
        }
        // gets vs fgets (no guard involved).
        _ => {
            b.line(0, &format!("void {f}(char *{data}) {{"));
            b.line(1, &format!("char {buf}[{sz}];"));
            b.line(
                1,
                &format!("int {n} = strlen({data}) + {};", rng.gen_range(0..17)),
            );
            fillers(&mut b, rng, &n, opts.filler);
            if opts.vulnerable {
                b.flaw(1, &format!("gets({buf});"));
            } else {
                b.line(1, &format!("fgets({buf}, {sz}, stdin);"));
            }
            b.line(
                1,
                &format!("printf(\"%s %d\", {buf}, {n} * {});", rng.gen_range(1..29)),
            );
            b.line(0, "}");
        }
    }
    main_fn(&mut b, &f, decoy_fn.as_deref());
    let (source, flaw_lines) = b.finish();
    ProgramSample {
        id: format!("{}-fc-{idx:05}", origin_tag(opts.origin)),
        source,
        flaw_lines,
        cwe: Cwe::BufferOverflow,
        origin: opts.origin,
        vulnerable: opts.vulnerable,
        category: Category::Fc,
    }
}

/// AU: out-of-bounds array access (CWE-125).
pub fn au_case(rng: &mut StdRng, opts: &CaseOpts, idx: usize) -> ProgramSample {
    let flavor = rng.gen_range(0..2u8);
    let mut b = SrcBuilder::new();
    let f = namegen::func(rng);
    let arr = namegen::var(rng);
    let data = namegen::var(rng);
    let idx_v = namegen::size_var(rng);
    let sz = namegen::buf_size(rng);
    let with_decoy = rng.gen_bool(0.5);
    let decoy_fn = with_decoy.then(|| decoy(&mut b, rng));

    match flavor {
        // Tainted index with a bounds guard (supports displacement).
        0 => {
            let src_line = taint_source(&mut b, rng, opts, &data, &idx_v).expect("source");
            b.line(0, &format!("void {f}(char *{data}) {{"));
            b.line(1, &format!("int {arr}[{sz}];"));
            b.line(1, &src_line);
            fillers(&mut b, rng, &idx_v, opts.filler);
            let sink = format!("{arr}[{idx_v}] = {idx_v} + {};", rng.gen_range(1..89));
            if opts.displaced_guard {
                b.line(1, &format!("if ({idx_v} >= 0 && {idx_v} < {sz}) {{"));
                if opts.vulnerable {
                    b.line(2, "puts(\"index ok\");");
                    b.line(1, "}");
                    b.flaw(1, &sink);
                } else {
                    b.line(2, &sink);
                    b.line(1, "}");
                }
            } else if opts.vulnerable {
                b.flaw(1, &sink);
            } else {
                b.line(1, &format!("if ({idx_v} >= 0 && {idx_v} < {sz}) {{"));
                b.line(2, &sink);
                b.line(1, "}");
            }
            b.line(1, &format!("printf(\"%d\", {arr}[0]);"));
            b.line(0, "}");
        }
        // Loop bound off-by-one.
        _ => {
            b.line(0, &format!("void {f}(char *{data}) {{"));
            b.line(1, &format!("int {arr}[{sz}];"));
            b.line(
                1,
                &format!("int total = strlen({data}) * {};", rng.gen_range(1..23)),
            );
            fillers(&mut b, rng, "total", opts.filler);
            let cmp = if opts.vulnerable { "<=" } else { "<" };
            let mul = rng.gen_range(1..43);
            b.line(1, &format!("for (int i = 0; i {cmp} {sz}; i++) {{"));
            if opts.vulnerable {
                b.flaw(2, &format!("{arr}[i] = total + i * {mul};"));
            } else {
                b.line(2, &format!("{arr}[i] = total + i * {mul};"));
            }
            b.line(1, "}");
            b.line(1, &format!("printf(\"%d\", {arr}[0]);"));
            b.line(0, "}");
        }
    }
    main_fn(&mut b, &f, decoy_fn.as_deref());
    let (source, flaw_lines) = b.finish();
    ProgramSample {
        id: format!("{}-au-{idx:05}", origin_tag(opts.origin)),
        source,
        flaw_lines,
        cwe: Cwe::OutOfBounds,
        origin: opts.origin,
        vulnerable: opts.vulnerable,
        category: Category::Au,
    }
}

/// PU: use-after-free, double free, NULL deref (CWE-416/415/476).
pub fn pu_case(rng: &mut StdRng, opts: &CaseOpts, idx: usize) -> ProgramSample {
    let flavor = rng.gen_range(0..3u8);
    let mut b = SrcBuilder::new();
    let f = namegen::func(rng);
    let p = namegen::var(rng);
    let data = namegen::var(rng);
    let n = namegen::size_var(rng);
    let with_decoy = rng.gen_bool(0.5);
    let decoy_fn = with_decoy.then(|| decoy(&mut b, rng));

    let cwe = match flavor {
        0 => {
            // Use-after-free vs use-then-free.
            b.line(0, &format!("void {f}(char *{data}) {{"));
            b.line(1, &format!("int {n} = strlen({data});"));
            b.line(
                1,
                &format!("char *{p} = malloc({n} + {});", rng.gen_range(1..33)),
            );
            fillers(&mut b, rng, &n, opts.filler);
            if rng.gen_bool(0.5) {
                b.line(1, &format!("{p}[0] = {};", rng.gen_range(32..126)));
            }
            if opts.vulnerable {
                b.line(1, &format!("free({p});"));
                b.flaw(1, &format!("{p}[0] = {data}[0];"));
            } else {
                b.line(1, &format!("{p}[0] = {data}[0];"));
                b.line(1, &format!("free({p});"));
            }
            b.line(1, "puts(\"done\");");
            b.line(0, "}");
            Cwe::UseAfterFree
        }
        1 => {
            // Double free vs free + NULL reset.
            b.line(0, &format!("void {f}(char *{data}) {{"));
            b.line(1, &format!("int {n} = strlen({data});"));
            b.line(
                1,
                &format!("char *{p} = malloc({n} + {});", rng.gen_range(1..33)),
            );
            fillers(&mut b, rng, &n, opts.filler);
            b.line(1, &format!("if ({n} > {}) {{", rng.gen_range(2..17)));
            b.line(2, &format!("free({p});"));
            if opts.vulnerable {
                b.line(1, "}");
                b.flaw(1, &format!("free({p});"));
            } else {
                b.line(2, &format!("{p} = NULL;"));
                b.line(1, "}");
            }
            b.line(1, "puts(\"done\");");
            b.line(0, "}");
            Cwe::DoubleFree
        }
        _ => {
            // NULL-deref: missing (or displaced) allocation check.
            b.line(0, &format!("void {f}(char *{data}) {{"));
            b.line(1, &format!("int {n} = strlen({data});"));
            b.line(
                1,
                &format!("char *{p} = malloc({n} + {});", rng.gen_range(1..33)),
            );
            fillers(&mut b, rng, &n, opts.filler);
            let sink = format!("{p}[0] = '{}';", (b'a' + rng.gen_range(0..26u8)) as char);
            if opts.displaced_guard {
                b.line(1, &format!("if ({p} != NULL) {{"));
                if opts.vulnerable {
                    b.line(2, "puts(\"alloc ok\");");
                    b.line(1, "}");
                    b.flaw(1, &sink);
                } else {
                    b.line(2, &sink);
                    b.line(1, "}");
                }
            } else if opts.vulnerable {
                b.flaw(1, &sink);
            } else {
                b.line(1, &format!("if ({p} != NULL) {{"));
                b.line(2, &sink);
                b.line(1, "}");
            }
            b.line(1, &format!("free({p});"));
            b.line(0, "}");
            Cwe::NullDeref
        }
    };
    main_fn(&mut b, &f, decoy_fn.as_deref());
    let (source, flaw_lines) = b.finish();
    ProgramSample {
        id: format!("{}-pu-{idx:05}", origin_tag(opts.origin)),
        source,
        flaw_lines,
        cwe,
        origin: opts.origin,
        vulnerable: opts.vulnerable,
        category: Category::Pu,
    }
}

/// AE: integer overflow / division by zero / zero-stride loop /
/// overflow-bypassed bounds check (CWE-190/369/835).
pub fn ae_case(rng: &mut StdRng, opts: &CaseOpts, idx: usize) -> ProgramSample {
    let flavor = rng.gen_range(0..4u8);
    let mut b = SrcBuilder::new();
    let f = namegen::func(rng);
    let data = namegen::var(rng);
    let n = namegen::size_var(rng);
    let with_decoy = rng.gen_bool(0.5);
    let decoy_fn = with_decoy.then(|| decoy(&mut b, rng));

    let cwe = match flavor {
        0 => {
            // count * ITEM_SIZE overflow before allocation+copy.
            let item = [8i64, 16, 24, 32][rng.gen_range(0..4usize)];
            let p = namegen::var(rng);
            let src_line = taint_source(&mut b, rng, opts, &data, &n).expect("source");
            b.line(0, &format!("void {f}(char *{data}) {{"));
            b.line(1, &src_line);
            fillers(&mut b, rng, &n, opts.filler);
            let mul = format!("int total = {n} * {item};");
            let alloc = format!("char *{p} = malloc(total);");
            let copy = format!("memcpy({p}, {data}, total);");
            if opts.displaced_guard {
                b.line(
                    1,
                    &format!("if ({n} > 0 && {n} < {}) {{", rng.gen_range(200..2000)),
                );
                if opts.vulnerable {
                    b.line(2, "puts(\"count ok\");");
                    b.line(1, "}");
                    b.flaw(1, &mul);
                    b.line(1, &alloc);
                    b.line(1, &copy);
                } else {
                    b.line(2, &mul);
                    b.line(2, &alloc);
                    b.line(2, &copy);
                    b.line(1, "}");
                }
            } else if opts.vulnerable {
                b.flaw(1, &mul);
                b.line(1, &alloc);
                b.line(1, &copy);
            } else {
                b.line(
                    1,
                    &format!("if ({n} > 0 && {n} < {}) {{", rng.gen_range(200..2000)),
                );
                b.line(2, &mul);
                b.line(2, &alloc);
                b.line(2, &copy);
                b.line(1, "}");
            }
            b.line(1, "puts(\"done\");");
            b.line(0, "}");
            Cwe::IntegerOverflow
        }
        1 => {
            // sum / n without a zero check.
            let src_line = taint_source(&mut b, rng, opts, &data, &n).expect("source");
            b.line(0, &format!("void {f}(char *{data}) {{"));
            b.line(1, &src_line);
            b.line(
                1,
                &format!(
                    "int sum = {n} * {} + {};",
                    rng.gen_range(2..91),
                    rng.gen_range(1..53)
                ),
            );
            fillers(&mut b, rng, "sum", opts.filler);
            let sink = format!("int avg = sum / {n};");
            if opts.displaced_guard {
                b.line(1, &format!("if ({n} != 0) {{"));
                if opts.vulnerable {
                    b.line(2, "puts(\"nonzero\");");
                    b.line(1, "}");
                    b.flaw(1, &sink);
                } else {
                    b.line(2, &sink);
                    b.line(2, "printf(\"%d\", avg);");
                    b.line(1, "}");
                }
            } else if opts.vulnerable {
                b.flaw(1, &sink);
            } else {
                b.line(1, &format!("if ({n} != 0) {{"));
                b.line(2, &sink);
                b.line(2, "printf(\"%d\", avg);");
                b.line(1, "}");
            }
            b.line(1, "puts(\"done\");");
            b.line(0, "}");
            Cwe::DivByZero
        }
        2 => {
            // Zero-stride loop (the mcf_fec / vmware_vga shape): the loop
            // counter is updated by a tainted delta that can be zero.
            let step = namegen::size_var(rng);
            let budget = namegen::size_var(rng);
            let src_line = taint_source(&mut b, rng, opts, &data, &step).expect("source");
            let additive = rng.gen_bool(0.4);
            b.line(0, &format!("void {f}(char *{data}) {{"));
            b.line(1, &src_line);
            b.line(
                1,
                &format!("int {budget} = strlen({data}) * {};", rng.gen_range(3..40)),
            );
            b.line(1, "int done = 0;");
            fillers(&mut b, rng, &budget, opts.filler);
            let clamp = format!("if ({step} < 1) {{");
            if opts.displaced_guard {
                b.line(1, &clamp);
                if opts.vulnerable {
                    b.line(2, "puts(\"small step\");");
                } else {
                    b.line(2, &format!("{step} = 1;"));
                }
                b.line(1, "}");
            } else if !opts.vulnerable {
                b.line(1, &clamp);
                b.line(2, &format!("{step} = 1;"));
                b.line(1, "}");
            }
            if additive {
                b.line(1, "int pos = 0;");
                b.line(1, &format!("while (pos != {budget}) {{"));
                b.line(2, "done = done + 1;");
                if opts.vulnerable {
                    b.flaw(2, &format!("pos = pos + {step};"));
                } else {
                    b.line(2, &format!("pos = pos + {step};"));
                }
                b.line(2, &format!("if (pos > {budget}) {{"));
                b.line(3, "break;");
                b.line(2, "}");
                b.line(1, "}");
            } else {
                b.line(1, &format!("while ({budget} > 0) {{"));
                b.line(2, "done = done + 1;");
                if opts.vulnerable {
                    b.flaw(2, &format!("{budget} = {budget} - {step};"));
                } else {
                    b.line(2, &format!("{budget} = {budget} - {step};"));
                }
                b.line(1, "}");
            }
            b.line(1, "printf(\"%d\", done);");
            b.line(0, "}");
            Cwe::InfiniteLoop
        }
        _ => {
            // Overflow-bypassed bounds check (the virtio-9p shape): the
            // vulnerable twin validates `off + n > LIMIT`, which a huge
            // `off` wraps past; the safe twin checks subtractively.
            let off = namegen::size_var(rng);
            let n2 = namegen::size_var(rng);
            let dst = namegen::var(rng);
            let limit = [128i64, 256, 512][rng.gen_range(0..3usize)];
            b.line(0, &format!("void {f}(char *{data}) {{"));
            b.line(1, &format!("char {dst}[{limit}];"));
            b.line(1, &format!("int {off} = atoi({data});"));
            b.line(
                1,
                &format!("int {n2} = strlen({data}) + {};", rng.gen_range(0..9)),
            );
            fillers(&mut b, rng, &off, opts.filler);
            if opts.vulnerable {
                b.flaw(
                    1,
                    &format!("if ({off} < 0 || {n2} < 0 || {off} + {n2} > {limit}) {{"),
                );
                b.line(2, "return;");
                b.line(1, "}");
                b.flaw(1, &format!("memcpy({dst} + {off}, {data}, {n2});"));
            } else {
                b.line(
                    1,
                    &format!(
                        "if ({off} < 0 || {n2} < 0 || {off} > {limit} || {n2} > {limit} - {off}) {{"
                    ),
                );
                b.line(2, "return;");
                b.line(1, "}");
                b.line(1, &format!("memcpy({dst} + {off}, {data}, {n2});"));
            }
            b.line(1, &format!("puts({dst});"));
            b.line(0, "}");
            Cwe::IntegerOverflow
        }
    };
    main_fn(&mut b, &f, decoy_fn.as_deref());
    let (source, flaw_lines) = b.finish();
    ProgramSample {
        id: format!("{}-ae-{idx:05}", origin_tag(opts.origin)),
        source,
        flaw_lines,
        cwe,
        origin: opts.origin,
        vulnerable: opts.vulnerable,
        category: Category::Ae,
    }
}

/// Generates a case of the given category.
pub fn case_for(
    category: Category,
    rng: &mut StdRng,
    opts: &CaseOpts,
    idx: usize,
) -> ProgramSample {
    match category {
        Category::Fc => fc_case(rng, opts, idx),
        Category::Au => au_case(rng, opts, idx),
        Category::Pu => pu_case(rng, opts, idx),
        Category::Ae => ae_case(rng, opts, idx),
    }
}

fn origin_tag(o: Origin) -> &'static str {
    match o {
        Origin::SardSim => "sard",
        Origin::NvdSim => "nvd",
        Origin::XenSim => "xen",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sevuldet_analysis::ProgramAnalysis;

    fn all_cases(seed: u64, opts: CaseOpts) -> Vec<ProgramSample> {
        let mut rng = StdRng::seed_from_u64(seed);
        Category::ALL
            .iter()
            .enumerate()
            .map(|(i, &c)| case_for(c, &mut rng, &opts, i))
            .collect()
    }

    #[test]
    fn every_template_parses_and_analyzes() {
        for seed in 0..20u64 {
            for vuln in [false, true] {
                for displaced in [false, true] {
                    let opts = CaseOpts {
                        vulnerable: vuln,
                        displaced_guard: displaced,
                        filler: (seed % 4) as usize * 3,
                        interproc: seed % 3 == 0,
                        origin: Origin::SardSim,
                    };
                    for s in all_cases(seed, opts) {
                        let p = sevuldet_lang::parse(&s.source)
                            .unwrap_or_else(|e| panic!("{e}\n--- {}\n{}", s.id, s.source));
                        let _ = ProgramAnalysis::analyze(&p);
                    }
                }
            }
        }
    }

    #[test]
    fn vulnerable_cases_have_flaw_lines_safe_cases_none() {
        for s in all_cases(3, CaseOpts::plain(true, Origin::SardSim)) {
            assert!(!s.flaw_lines.is_empty(), "{} should have flaws", s.id);
            assert!(s.vulnerable);
        }
        for s in all_cases(3, CaseOpts::plain(false, Origin::SardSim)) {
            assert!(s.flaw_lines.is_empty(), "{} should be clean", s.id);
            assert!(!s.vulnerable);
        }
    }

    #[test]
    fn flaw_line_text_contains_the_sink() {
        let mut rng = StdRng::seed_from_u64(5);
        let opts = CaseOpts::plain(true, Origin::SardSim);
        let s = fc_case(&mut rng, &opts, 0);
        let lines: Vec<&str> = s.source.lines().collect();
        for &fl in &s.flaw_lines {
            let text = lines[(fl - 1) as usize];
            assert!(
                text.contains("strncpy") || text.contains("memcpy") || text.contains("gets"),
                "flaw line {fl} = {text}"
            );
        }
    }

    #[test]
    fn displaced_pair_has_guard_in_both_variants() {
        let mk = |vuln| {
            let mut rng = StdRng::seed_from_u64(77);
            let opts = CaseOpts {
                vulnerable: vuln,
                displaced_guard: true,
                filler: 0,
                interproc: false,
                origin: Origin::SardSim,
            };
            fc_case(&mut rng, &opts, 0)
        };
        let safe = mk(false);
        let vuln = mk(true);
        assert!(safe.source.contains("if ("));
        assert!(vuln.source.contains("if ("));
        // Same identifiers (same rng seed) — only placement differs.
        assert_ne!(safe.source, vuln.source);
    }

    #[test]
    fn filler_inflates_source() {
        let mut rng = StdRng::seed_from_u64(8);
        let small = fc_case(&mut rng, &CaseOpts::plain(true, Origin::SardSim), 0);
        let mut rng = StdRng::seed_from_u64(8);
        let big = fc_case(
            &mut rng,
            &CaseOpts {
                filler: 60,
                ..CaseOpts::plain(true, Origin::SardSim)
            },
            0,
        );
        assert!(big.source.lines().count() >= small.source.lines().count() + 60);
    }

    #[test]
    fn interproc_case_defines_helper() {
        let mut rng = StdRng::seed_from_u64(9);
        let opts = CaseOpts {
            interproc: true,
            ..CaseOpts::plain(true, Origin::SardSim)
        };
        let s = ae_case(&mut rng, &opts, 0);
        let p = sevuldet_lang::parse(&s.source).unwrap();
        assert!(p.functions().count() >= 2);
    }
}
