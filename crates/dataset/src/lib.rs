//! # sevuldet-dataset
//!
//! Synthetic corpora standing in for the paper's SARD, NVD, and Xen data:
//!
//! * [`sard::generate`] — SARD-style template test cases across the four
//!   special-token categories, including Fig.-1 guard-displacement twins and
//!   long-context cases;
//! * [`sard::generate_nvd`] — NVD-style (larger, inter-procedural) cases;
//! * [`xen`] — a "real-world" corpus with analogues of the three QEMU/Xen
//!   CVEs of Table VII plus device-code distractors;
//! * [`manifest`] — SARD-like `manifest.xml` serialization of ground truth.
//!
//! ## Example
//!
//! ```
//! use sevuldet_dataset::{SardConfig, sard::generate};
//!
//! let corpus = generate(&SardConfig { per_category: 4, ..SardConfig::default() });
//! assert_eq!(corpus.len(), 16);
//! assert!(corpus.iter().all(|s| sevuldet_lang::parse(&s.source).is_ok()));
//! ```

pub mod manifest;
pub mod namegen;
pub mod sard;
pub mod spec;
pub mod templates;
pub mod xen;

pub use sard::{generate_nvd, NvdConfig, SardConfig};
pub use spec::{Cwe, Origin, ProgramSample};
pub use templates::{case_for, CaseOpts};
pub use xen::{cve_cases, CveCase, XenConfig};
