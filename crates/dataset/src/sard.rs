//! SARD-style synthetic corpus generation.
//!
//! Mirrors the structure of the real Software Assurance Reference Dataset:
//! many small template-derived test cases per CWE, in "Good", "Flaw", and
//! "Mixed" (safe/vulnerable twin) flavours, across the paper's four
//! special-token categories.

use crate::spec::{Origin, ProgramSample};
use crate::templates::{case_for, CaseOpts};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sevuldet_gadget::Category;

/// Configuration of the SARD-style generator.
#[derive(Debug, Clone)]
pub struct SardConfig {
    /// Programs generated per category.
    pub per_category: usize,
    /// Fraction of programs carrying a flaw.
    pub vuln_fraction: f64,
    /// Fraction of cases generated as Fig.-1 guard-displacement twins
    /// (classic gadgets identical between safe and vulnerable twin).
    pub displaced_fraction: f64,
    /// Fraction of cases with a long dependent-filler chain.
    pub long_fraction: f64,
    /// Filler statements used for long cases.
    pub long_filler: usize,
    /// Fraction of cases routing taint through a helper function.
    pub interproc_fraction: f64,
    /// Generator seed.
    pub seed: u64,
}

impl Default for SardConfig {
    fn default() -> Self {
        SardConfig {
            per_category: 120,
            vuln_fraction: 0.40,
            displaced_fraction: 0.22,
            long_fraction: 0.25,
            long_filler: 70,
            interproc_fraction: 0.25,
            seed: 42,
        }
    }
}

/// Generates the SARD-style corpus.
///
/// Guard-displacement cases are emitted as *pairs* (one safe, one
/// vulnerable twin built from the same template draw), so they count twice
/// toward `per_category`.
pub fn generate(config: &SardConfig) -> Vec<ProgramSample> {
    let mut out = Vec::new();
    let mut rng = StdRng::seed_from_u64(config.seed);
    for &category in &Category::ALL {
        let mut i = 0usize;
        while i < config.per_category {
            let sub_seed: u64 = rng.gen();
            let filler = if rng.gen_bool(config.long_fraction) {
                config.long_filler
            } else {
                rng.gen_range(0..6)
            };
            let interproc = rng.gen_bool(config.interproc_fraction);
            if rng.gen_bool(config.displaced_fraction) && i + 1 < config.per_category {
                // Twin pair from the same template draw.
                for vulnerable in [false, true] {
                    let mut case_rng = StdRng::seed_from_u64(sub_seed);
                    let opts = CaseOpts {
                        vulnerable,
                        displaced_guard: true,
                        filler,
                        interproc,
                        origin: Origin::SardSim,
                    };
                    out.push(case_for(category, &mut case_rng, &opts, out.len()));
                    i += 1;
                }
            } else {
                let mut case_rng = StdRng::seed_from_u64(sub_seed);
                let opts = CaseOpts {
                    vulnerable: rng.gen_bool(config.vuln_fraction),
                    displaced_guard: false,
                    filler,
                    interproc,
                    origin: Origin::SardSim,
                };
                out.push(case_for(category, &mut case_rng, &opts, out.len()));
                i += 1;
            }
        }
    }
    out
}

/// NVD-style corpus: fewer, larger, messier cases (always inter-procedural,
/// longer filler), mimicking real open-source vulnerability contexts.
#[derive(Debug, Clone)]
pub struct NvdConfig {
    /// Total programs.
    pub count: usize,
    /// Fraction vulnerable (the real NVD split is 54.9% / 45.1%).
    pub vuln_fraction: f64,
    /// Generator seed.
    pub seed: u64,
}

impl Default for NvdConfig {
    fn default() -> Self {
        NvdConfig {
            count: 60,
            vuln_fraction: 0.549,
            seed: 7,
        }
    }
}

/// Generates the NVD-style corpus.
pub fn generate_nvd(config: &NvdConfig) -> Vec<ProgramSample> {
    let mut out = Vec::new();
    let mut rng = StdRng::seed_from_u64(config.seed);
    for i in 0..config.count {
        let category = Category::ALL[rng.gen_range(0..4usize)];
        let sub_seed: u64 = rng.gen();
        let mut case_rng = StdRng::seed_from_u64(sub_seed);
        let opts = CaseOpts {
            vulnerable: rng.gen_bool(config.vuln_fraction),
            displaced_guard: rng.gen_bool(0.3),
            filler: rng.gen_range(8..30),
            interproc: true,
            origin: Origin::NvdSim,
        };
        let mut s = case_for(category, &mut case_rng, &opts, i);
        s.id = format!("nvd-{i:05}");
        out.push(s);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic() {
        let cfg = SardConfig {
            per_category: 10,
            ..SardConfig::default()
        };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.source, y.source);
            assert_eq!(x.vulnerable, y.vulnerable);
        }
    }

    #[test]
    fn corpus_covers_all_categories_and_both_labels() {
        let cfg = SardConfig {
            per_category: 20,
            ..SardConfig::default()
        };
        let samples = generate(&cfg);
        assert_eq!(samples.len(), 80);
        for &c in &Category::ALL {
            let of_cat: Vec<_> = samples.iter().filter(|s| s.category == c).collect();
            assert_eq!(of_cat.len(), 20);
            assert!(of_cat.iter().any(|s| s.vulnerable));
            assert!(of_cat.iter().any(|s| !s.vulnerable));
        }
    }

    #[test]
    fn every_generated_program_parses() {
        let cfg = SardConfig {
            per_category: 15,
            ..SardConfig::default()
        };
        for s in generate(&cfg) {
            sevuldet_lang::parse(&s.source)
                .unwrap_or_else(|e| panic!("{e}\n--- {}\n{}", s.id, s.source));
        }
        for s in generate_nvd(&NvdConfig {
            count: 15,
            ..NvdConfig::default()
        }) {
            sevuldet_lang::parse(&s.source)
                .unwrap_or_else(|e| panic!("{e}\n--- {}\n{}", s.id, s.source));
        }
    }

    #[test]
    fn vuln_fraction_is_roughly_respected() {
        let cfg = SardConfig {
            per_category: 100,
            displaced_fraction: 0.0,
            vuln_fraction: 0.4,
            ..SardConfig::default()
        };
        let samples = generate(&cfg);
        let vulns = samples.iter().filter(|s| s.vulnerable).count();
        let frac = vulns as f64 / samples.len() as f64;
        assert!((0.25..0.55).contains(&frac), "fraction {frac}");
    }

    #[test]
    fn nvd_cases_are_interprocedural() {
        for s in generate_nvd(&NvdConfig {
            count: 8,
            ..NvdConfig::default()
        }) {
            let p = sevuldet_lang::parse(&s.source).unwrap();
            assert!(p.functions().count() >= 2, "{}", s.id);
        }
    }
}
