//! SARD-style manifest serialization.
//!
//! The real SARD ships a `manifest.xml` describing each test case's files,
//! flaw lines, and CWE ids; this module writes and parses the same shape for
//! the synthetic corpus, so downstream tooling (and humans) can inspect the
//! ground truth without Rust.

use crate::spec::{Origin, ProgramSample};
use std::collections::HashSet;

/// Serializes samples into a SARD-like `manifest.xml` string.
pub fn to_xml(samples: &[ProgramSample]) -> String {
    let mut out = String::from("<?xml version=\"1.0\"?>\n<container>\n");
    for s in samples {
        out.push_str(&format!(
            "  <testcase id=\"{}\" cwe=\"{}\" origin=\"{}\" status=\"{}\">\n",
            s.id,
            s.cwe.id(),
            origin_str(s.origin),
            if s.vulnerable { "flaw" } else { "good" },
        ));
        out.push_str(&format!("    <file path=\"{}.c\" language=\"C\">\n", s.id));
        let mut lines: Vec<u32> = s.flaw_lines.iter().copied().collect();
        lines.sort_unstable();
        for l in lines {
            out.push_str(&format!(
                "      <flaw line=\"{l}\" name=\"{}\"/>\n",
                s.cwe.id()
            ));
        }
        out.push_str("    </file>\n  </testcase>\n");
    }
    out.push_str("</container>\n");
    out
}

/// A parsed manifest entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Test-case id.
    pub id: String,
    /// CWE id string.
    pub cwe: String,
    /// Whether the case is flawed.
    pub vulnerable: bool,
    /// Flaw line numbers.
    pub flaw_lines: HashSet<u32>,
}

/// Parses a manifest produced by [`to_xml`] (a minimal, forgiving parser —
/// not a general XML parser).
pub fn parse_xml(xml: &str) -> Vec<ManifestEntry> {
    let mut out = Vec::new();
    let mut current: Option<ManifestEntry> = None;
    for line in xml.lines() {
        let t = line.trim();
        if t.starts_with("<testcase") {
            let id = attr(t, "id").unwrap_or_default();
            let cwe = attr(t, "cwe").unwrap_or_default();
            let vulnerable = attr(t, "status").as_deref() == Some("flaw");
            current = Some(ManifestEntry {
                id,
                cwe,
                vulnerable,
                flaw_lines: HashSet::new(),
            });
        } else if t.starts_with("<flaw") {
            if let (Some(cur), Some(l)) = (current.as_mut(), attr(t, "line")) {
                if let Ok(n) = l.parse() {
                    cur.flaw_lines.insert(n);
                }
            }
        } else if t.starts_with("</testcase>") {
            if let Some(cur) = current.take() {
                out.push(cur);
            }
        }
    }
    out
}

fn attr(line: &str, name: &str) -> Option<String> {
    let pat = format!("{name}=\"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

fn origin_str(o: Origin) -> &'static str {
    match o {
        Origin::SardSim => "sard-sim",
        Origin::NvdSim => "nvd-sim",
        Origin::XenSim => "xen-sim",
    }
}

/// Corpus statistics in the shape of the paper's Table I input.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CorpusStats {
    /// Total programs.
    pub programs: usize,
    /// Vulnerable programs.
    pub vulnerable: usize,
    /// Programs per CWE id.
    pub per_cwe: Vec<(&'static str, usize)>,
}

/// Computes summary statistics over a corpus.
pub fn stats(samples: &[ProgramSample]) -> CorpusStats {
    let mut per: std::collections::BTreeMap<&'static str, usize> = Default::default();
    for s in samples {
        *per.entry(s.cwe.id()).or_default() += 1;
    }
    CorpusStats {
        programs: samples.len(),
        vulnerable: samples.iter().filter(|s| s.vulnerable).count(),
        per_cwe: per.into_iter().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Cwe, SrcBuilder};

    fn sample(id: &str, vulnerable: bool, flaws: &[u32]) -> ProgramSample {
        let mut b = SrcBuilder::new();
        b.line(0, "int main() { return 0; }");
        let (source, _) = b.finish();
        ProgramSample {
            id: id.into(),
            source,
            flaw_lines: flaws.iter().copied().collect(),
            cwe: Cwe::BufferOverflow,
            origin: Origin::SardSim,
            vulnerable,
            category: sevuldet_gadget::Category::Fc,
        }
    }

    #[test]
    fn xml_roundtrip() {
        let samples = vec![sample("a-1", true, &[5, 9]), sample("a-2", false, &[])];
        let xml = to_xml(&samples);
        assert!(xml.contains("cwe=\"CWE-121\""));
        let parsed = parse_xml(&xml);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].id, "a-1");
        assert!(parsed[0].vulnerable);
        assert_eq!(parsed[0].flaw_lines, [5, 9].into_iter().collect());
        assert!(!parsed[1].vulnerable);
        assert!(parsed[1].flaw_lines.is_empty());
    }

    #[test]
    fn stats_counts() {
        let samples = vec![sample("x", true, &[1]), sample("y", false, &[])];
        let st = stats(&samples);
        assert_eq!(st.programs, 2);
        assert_eq!(st.vulnerable, 1);
        assert_eq!(st.per_cwe, vec![("CWE-121", 2)]);
    }
}
