//! Identifier randomization so generated programs do not share surface
//! names (normalization must do the generalizing, not the generator).

use rand::rngs::StdRng;
use rand::Rng;

const NOUNS: &[&str] = &[
    "buf", "data", "msg", "pkt", "frame", "line", "name", "path", "field", "entry", "item",
    "block", "chunk", "record", "payload", "body", "text", "token", "key", "value", "cell",
];
const QUALS: &[&str] = &[
    "in", "out", "tmp", "src", "dst", "raw", "net", "usr", "dev", "cfg", "log", "io", "rx", "tx",
];
const VERBS: &[&str] = &[
    "copy", "parse", "handle", "process", "read", "load", "store", "fill", "decode", "update",
    "init", "emit", "scan", "fetch", "apply", "route", "check", "merge",
];
const SIZES: &[&str] = &[
    "len", "size", "count", "n", "num", "cap", "limit", "total", "amount",
];

/// Random variable name like `rx_pkt3`.
pub fn var(rng: &mut StdRng) -> String {
    format!(
        "{}_{}{}",
        QUALS[rng.gen_range(0..QUALS.len())],
        NOUNS[rng.gen_range(0..NOUNS.len())],
        rng.gen_range(0..10)
    )
}

/// Random size-ish variable name like `pkt_len2`.
pub fn size_var(rng: &mut StdRng) -> String {
    format!(
        "{}_{}{}",
        NOUNS[rng.gen_range(0..NOUNS.len())],
        SIZES[rng.gen_range(0..SIZES.len())],
        rng.gen_range(0..10)
    )
}

/// Random function name like `parse_frame7`.
pub fn func(rng: &mut StdRng) -> String {
    format!(
        "{}_{}{}",
        VERBS[rng.gen_range(0..VERBS.len())],
        NOUNS[rng.gen_range(0..NOUNS.len())],
        rng.gen_range(0..10)
    )
}

/// Random power-of-two-ish buffer size.
pub fn buf_size(rng: &mut StdRng) -> i64 {
    *[16i64, 32, 64, 100, 128, 256]
        .get(rng.gen_range(0..6usize))
        .expect("in range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn names_are_valid_identifiers_and_vary() {
        let mut rng = StdRng::seed_from_u64(3);
        let names: Vec<String> = (0..50)
            .map(|i| {
                if i % 3 == 0 {
                    var(&mut rng)
                } else if i % 3 == 1 {
                    size_var(&mut rng)
                } else {
                    func(&mut rng)
                }
            })
            .collect();
        for n in &names {
            assert!(n.chars().next().unwrap().is_ascii_alphabetic());
            assert!(n.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
        }
        let mut uniq = names.clone();
        uniq.sort();
        uniq.dedup();
        assert!(uniq.len() > 30, "names should vary");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        assert_eq!(var(&mut a), var(&mut b));
        assert_eq!(buf_size(&mut a), buf_size(&mut b));
    }
}
