//! Corpus sample types and the source-text builder used by templates.

use sevuldet_gadget::Category;
use std::collections::HashSet;
use std::fmt;

/// CWE-style vulnerability classes seeded by the generators (the subset the
/// paper's four categories exercise).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cwe {
    /// CWE-121/787: stack buffer overflow via unchecked copy length.
    BufferOverflow,
    /// CWE-125/787: array index out of bounds.
    OutOfBounds,
    /// CWE-416: use after free.
    UseAfterFree,
    /// CWE-415: double free.
    DoubleFree,
    /// CWE-476: NULL-pointer dereference.
    NullDeref,
    /// CWE-190: integer overflow in arithmetic feeding a sensitive sink.
    IntegerOverflow,
    /// CWE-369: division by zero.
    DivByZero,
    /// CWE-835: loop with unreachable exit condition.
    InfiniteLoop,
}

impl Cwe {
    /// CWE identifier string.
    pub fn id(&self) -> &'static str {
        match self {
            Cwe::BufferOverflow => "CWE-121",
            Cwe::OutOfBounds => "CWE-125",
            Cwe::UseAfterFree => "CWE-416",
            Cwe::DoubleFree => "CWE-415",
            Cwe::NullDeref => "CWE-476",
            Cwe::IntegerOverflow => "CWE-190",
            Cwe::DivByZero => "CWE-369",
            Cwe::InfiniteLoop => "CWE-835",
        }
    }
}

impl fmt::Display for Cwe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// Which simulated corpus a sample belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Origin {
    /// Synthetic SARD-style test case.
    SardSim,
    /// Synthetic NVD-style (more complex, multi-function) case.
    NvdSim,
    /// Xen-like real-world-style code.
    XenSim,
}

/// One generated program with ground truth.
#[derive(Debug, Clone)]
pub struct ProgramSample {
    /// Stable identifier (`sard-fc-00042` style).
    pub id: String,
    /// Mini-C source text.
    pub source: String,
    /// Lines of the vulnerable statements (empty for good programs).
    pub flaw_lines: HashSet<u32>,
    /// Vulnerability class (also set on the *good* twin of a pair).
    pub cwe: Cwe,
    /// Corpus of origin.
    pub origin: Origin,
    /// Whether the program contains the flaw.
    pub vulnerable: bool,
    /// The special-token category the case was designed around.
    pub category: Category,
}

/// Line-tracking source builder used by all templates.
#[derive(Debug, Default)]
pub struct SrcBuilder {
    lines: Vec<String>,
    flaws: HashSet<u32>,
}

impl SrcBuilder {
    /// Creates an empty builder.
    pub fn new() -> SrcBuilder {
        SrcBuilder::default()
    }

    /// Emits a line at the given indent level; returns its 1-based number.
    pub fn line(&mut self, indent: usize, text: &str) -> u32 {
        self.lines
            .push(format!("{}{}", "    ".repeat(indent), text));
        self.lines.len() as u32
    }

    /// Emits a line and marks it as a flaw.
    pub fn flaw(&mut self, indent: usize, text: &str) -> u32 {
        let n = self.line(indent, text);
        self.flaws.insert(n);
        n
    }

    /// Current next line number.
    pub fn next_line(&self) -> u32 {
        self.lines.len() as u32 + 1
    }

    /// Finalizes into `(source, flaw_lines)`.
    pub fn finish(self) -> (String, HashSet<u32>) {
        (self.lines.join("\n") + "\n", self.flaws)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_tracks_lines_and_flaws() {
        let mut b = SrcBuilder::new();
        assert_eq!(b.line(0, "void f() {"), 1);
        assert_eq!(b.flaw(1, "gets(buf);"), 2);
        assert_eq!(b.line(0, "}"), 3);
        let (src, flaws) = b.finish();
        assert_eq!(src, "void f() {\n    gets(buf);\n}\n");
        assert!(flaws.contains(&2));
        assert_eq!(flaws.len(), 1);
    }

    #[test]
    fn cwe_ids() {
        assert_eq!(Cwe::UseAfterFree.id(), "CWE-416");
        assert_eq!(Cwe::InfiniteLoop.to_string(), "CWE-835");
    }
}
