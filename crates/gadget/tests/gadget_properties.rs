//! Property-based tests for the gadget pipeline (slicing, Algorithm 1,
//! normalization) on randomly shaped guard/sink programs.

use proptest::prelude::*;
use sevuldet_analysis::ProgramAnalysis;
use sevuldet_gadget::{
    build_gadget, find_special_tokens, two_way_slice, GadgetKind, LineOrigin, Normalizer,
    SliceConfig,
};

/// Builds a program with a configurable guard/sink arrangement.
fn program(guarded: bool, extra_chain: usize, second_guard: bool) -> String {
    let mut src = String::from("void f(char *dest, char *data) {\n");
    src.push_str("    char buf[32];\n");
    src.push_str("    int n = atoi(data);\n");
    let mut var = "n".to_string();
    for i in 0..extra_chain {
        src.push_str(&format!("    int c{i} = {var} + {};\n", i + 1));
        var = format!("c{i}");
    }
    if second_guard {
        src.push_str(&format!("    if ({var} > 100) {{\n"));
        src.push_str(&format!("        {var} = 100;\n"));
        src.push_str("    }\n");
    }
    if guarded {
        src.push_str(&format!("    if ({var} < 32) {{\n"));
        src.push_str(&format!("        strncpy(buf, data, {var});\n"));
        src.push_str("    }\n");
    } else {
        src.push_str(&format!("    strncpy(buf, data, {var});\n"));
    }
    src.push_str("    puts(buf);\n}\n");
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The seed statement always appears in its own gadget, and delimiters
    /// are balanced (every RangeOpen's group eventually closes or reaches
    /// the end).
    #[test]
    fn gadget_contains_seed_and_orders_lines(
        guarded in any::<bool>(),
        chain in 0usize..6,
        second in any::<bool>(),
    ) {
        let src = program(guarded, chain, second);
        let p = sevuldet_lang::parse(&src).unwrap();
        let a = ProgramAnalysis::analyze(&p);
        let toks = find_special_tokens(&p, &a);
        let seed = toks.iter().find(|t| t.name == "strncpy").expect("strncpy");
        let g = build_gadget(&p, &a, seed, GadgetKind::PathSensitive, &SliceConfig::default());
        prop_assert!(g
            .lines
            .iter()
            .any(|l| l.tokens.first().map(String::as_str) == Some("strncpy")));
        // Lines sorted per function.
        let mut prev = 0;
        for l in &g.lines {
            prop_assert!(l.line >= prev);
            prev = l.line;
        }
        // The dependent chain is fully captured.
        for i in 0..chain {
            let name = format!("c{i}");
            prop_assert!(
                g.lines.iter().any(|l| l.tokens.contains(&name)),
                "chain var {name} missing from {:?}",
                g.to_text()
            );
        }
    }

    /// Slices are monotone in their configuration: enabling control
    /// dependence never shrinks the slice; the two-way slice contains the
    /// backward slice.
    #[test]
    fn slice_monotonicity(
        guarded in any::<bool>(),
        chain in 0usize..5,
        second in any::<bool>(),
    ) {
        let src = program(guarded, chain, second);
        let p = sevuldet_lang::parse(&src).unwrap();
        let a = ProgramAnalysis::analyze(&p);
        let toks = find_special_tokens(&p, &a);
        let seed = toks.iter().find(|t| t.name == "strncpy").expect("strncpy");
        let with_cd = two_way_slice(&a, &seed.func, seed.node, &SliceConfig::default());
        let data_only = two_way_slice(&a, &seed.func, seed.node, &SliceConfig::data_only());
        prop_assert!(data_only.nodes.is_subset(&with_cd.nodes));
        let backward =
            sevuldet_gadget::backward_slice(&a, &seed.func, seed.node, &SliceConfig::default());
        prop_assert!(backward.nodes.is_subset(&with_cd.nodes));
    }

    /// Normalization is idempotent and never changes line counts or token
    /// counts.
    #[test]
    fn normalization_idempotent(
        guarded in any::<bool>(),
        chain in 0usize..5,
        second in any::<bool>(),
    ) {
        let src = program(guarded, chain, second);
        let p = sevuldet_lang::parse(&src).unwrap();
        let a = ProgramAnalysis::analyze(&p);
        let toks = find_special_tokens(&p, &a);
        for seed in toks.iter().take(6) {
            let g = build_gadget(&p, &a, seed, GadgetKind::PathSensitive, &SliceConfig::default());
            let n1 = Normalizer::normalize_gadget(&g);
            let n2 = Normalizer::normalize_gadget(&n1);
            prop_assert_eq!(n1.to_text(), n2.to_text());
            prop_assert_eq!(n1.token_len(), g.token_len());
        }
    }

    /// When the sink sits inside the guard, the gadget places the closing
    /// delimiter after it; when outside, before it.
    #[test]
    fn delimiter_placement_tracks_guard(
        chain in 0usize..4,
    ) {
        for guarded in [true, false] {
            let src = program(guarded, chain, false);
            let p = sevuldet_lang::parse(&src).unwrap();
            let a = ProgramAnalysis::analyze(&p);
            let toks = find_special_tokens(&p, &a);
            let seed = toks.iter().find(|t| t.name == "strncpy").expect("strncpy");
            let g = build_gadget(&p, &a, seed, GadgetKind::PathSensitive, &SliceConfig::default());
            let sink = g
                .lines
                .iter()
                .position(|l| l.tokens.first().map(String::as_str) == Some("strncpy"))
                .expect("sink in gadget");
            let close = g.lines.iter().position(|l| l.origin == LineOrigin::RangeClose);
            if let Some(close) = close {
                if guarded {
                    prop_assert!(sink < close, "guarded sink precedes close\n{}", g.to_text());
                } else {
                    prop_assert!(sink > close, "unguarded sink follows close\n{}", g.to_text());
                }
            }
        }
    }
}
