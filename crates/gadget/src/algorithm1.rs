//! Gadget assembly — Algorithm 1 (Step I.4).
//!
//! Turns a two-way slice into an ordered code gadget. For *classic* gadgets
//! the sliced statements are simply stacked in line order per function
//! (Definition 5). For *path-sensitive* gadgets the control ranges crossed by
//! the slice are selected, ranges bound to the same `if`-chain or `switch`
//! group are kept together, and the ranges' opening/closing delimiters are
//! inserted so no two control scopes overlap vaguely (Definition 7).

use crate::slice::{two_way_slice, SliceConfig};
use crate::special::SpecialToken;
use crate::types::{CodeGadget, GadgetKind, GadgetLine, LineOrigin};
use sevuldet_analysis::ranges::{control_ranges, RangeKind};
use sevuldet_analysis::ProgramAnalysis;
use sevuldet_lang::ast::Program;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Builds one gadget from one special token.
pub fn build_gadget(
    program: &Program,
    analysis: &ProgramAnalysis,
    token: &SpecialToken,
    kind: GadgetKind,
    slice_cfg: &SliceConfig,
) -> CodeGadget {
    let slice = two_way_slice(analysis, &token.func, token.node, slice_cfg);
    build_gadget_from_slice(program, analysis, token, kind, &slice)
}

/// Assembles a gadget from an already-computed slice — the split form of
/// [`build_gadget`] for callers that also need the slice itself (the
/// incremental query layer records `slice.functions()` as the gadget's
/// dependency set).
pub fn build_gadget_from_slice(
    program: &Program,
    analysis: &ProgramAnalysis,
    token: &SpecialToken,
    kind: GadgetKind,
    slice: &crate::slice::Slice,
) -> CodeGadget {
    let _t = sevuldet_trace::span!("gadget.assemble");

    // Group slice nodes per function; one gadget line per source line
    // (a `for` header and its step share a line — the header wins).
    let mut per_func: HashMap<String, BTreeMap<u32, GadgetLine>> = HashMap::new();
    for (func, node_id) in &slice.nodes {
        let Some(pdg) = analysis.pdg(func) else {
            continue;
        };
        let node = pdg.cfg.node(*node_id);
        if node.tokens.is_empty() {
            continue;
        }
        per_func
            .entry(func.clone())
            .or_default()
            .entry(node.line)
            .or_insert_with(|| GadgetLine {
                func: func.clone(),
                line: node.line,
                tokens: node.tokens.clone(),
                origin: LineOrigin::Stmt,
            });
    }

    if kind == GadgetKind::PathSensitive {
        insert_control_ranges(program, analysis, &mut per_func);
    }

    let order = function_order(analysis, &token.func, per_func.keys().cloned().collect());
    let mut lines = Vec::new();
    for func in order {
        if let Some(m) = per_func.remove(&func) {
            lines.extend(m.into_values());
        }
    }

    CodeGadget {
        kind,
        category: token.category,
        key_func: token.func.clone(),
        key_line: token.line,
        key_name: token.name.clone(),
        lines,
    }
}

/// Generates gadgets for every special token of a program.
pub fn generate_all(
    program: &Program,
    analysis: &ProgramAnalysis,
    tokens: &[SpecialToken],
    kind: GadgetKind,
    slice_cfg: &SliceConfig,
) -> Vec<CodeGadget> {
    tokens
        .iter()
        .map(|t| build_gadget(program, analysis, t, kind, slice_cfg))
        .collect()
}

/// The path-sensitive step: select every control range that contains a slice
/// statement, pull in the ranges bound to the same group, and insert their
/// delimiters.
fn insert_control_ranges(
    program: &Program,
    analysis: &ProgramAnalysis,
    per_func: &mut HashMap<String, BTreeMap<u32, GadgetLine>>,
) {
    let funcs: Vec<String> = per_func.keys().cloned().collect();
    for fname in funcs {
        let Some(f) = program.function(&fname) else {
            continue;
        };
        let Some(pdg) = analysis.pdg(&fname) else {
            continue;
        };
        let ranges = control_ranges(f);
        let lines = per_func.get(&fname).expect("key from map");
        let stmt_lines: HashSet<u32> = lines
            .values()
            .filter(|l| l.origin == LineOrigin::Stmt)
            .map(|l| l.line)
            .collect();

        // Ranges containing a slice statement; then close over groups.
        let mut included_groups: HashSet<u32> = HashSet::new();
        for r in &ranges {
            if stmt_lines.iter().any(|&l| r.contains(l)) {
                included_groups.insert(r.group);
            }
        }
        let included: Vec<_> = ranges
            .iter()
            .filter(|r| included_groups.contains(&r.group))
            .collect();

        let entry_tokens_on = |line: u32| -> Option<Vec<String>> {
            pdg.cfg
                .node_ids()
                .find(|id| pdg.cfg.node(*id).line == line && !pdg.cfg.node(*id).tokens.is_empty())
                .map(|id| pdg.cfg.node(id).tokens.clone())
        };

        let map = per_func.get_mut(&fname).expect("key from map");
        // Opening delimiters first: a range's header (e.g. `} else {`) beats
        // another range's bare closing `}` on the same line.
        for r in &included {
            let occupied_by_stmt = map
                .get(&r.header_line)
                .map(|l| l.origin == LineOrigin::Stmt)
                .unwrap_or(false);
            if !occupied_by_stmt {
                let tokens = entry_tokens_on(r.header_line).unwrap_or_else(|| match r.kind {
                    RangeKind::Else => vec!["}".into(), "else".into(), "{".into()],
                    RangeKind::Case => vec!["case".into(), ":".into()],
                    RangeKind::DoWhile => vec!["do".into(), "{".into()],
                    _ => vec!["{".into()],
                });
                map.insert(
                    r.header_line,
                    GadgetLine {
                        func: fname.clone(),
                        line: r.header_line,
                        tokens,
                        origin: LineOrigin::RangeOpen,
                    },
                );
            }
        }
        // Closing delimiters fill remaining gaps (cases have no brace of
        // their own; the switch's closing brace delimits them).
        for r in &included {
            if r.kind != RangeKind::Case && r.end_line > r.header_line {
                map.entry(r.end_line).or_insert_with(|| GadgetLine {
                    func: fname.clone(),
                    line: r.end_line,
                    tokens: vec!["}".into()],
                    origin: LineOrigin::RangeClose,
                });
            }
        }
    }
}

/// Orders the functions of a gadget: callers before callees (Algorithm 1
/// lines 32-36), starting from the key function's component; ties broken by
/// name for determinism.
fn function_order(
    analysis: &ProgramAnalysis,
    key_func: &str,
    involved: HashSet<String>,
) -> Vec<String> {
    // Kahn's algorithm on the caller→callee subgraph.
    let mut indeg: HashMap<&str, usize> = involved.iter().map(|f| (f.as_str(), 0)).collect();
    let mut edges: HashMap<&str, Vec<&str>> = HashMap::new();
    for site in analysis.callgraph.sites() {
        if involved.contains(&site.caller)
            && involved.contains(&site.callee)
            && site.caller != site.callee
        {
            let dests = edges.entry(site.caller.as_str()).or_default();
            if !dests.contains(&site.callee.as_str()) {
                dests.push(site.callee.as_str());
                *indeg.get_mut(site.callee.as_str()).expect("involved") += 1;
            }
        }
    }
    let mut ready: Vec<&str> = indeg
        .iter()
        .filter(|(_, &d)| d == 0)
        .map(|(f, _)| *f)
        .collect();
    ready.sort_unstable();
    let mut out = Vec::new();
    while let Some(f) = ready.pop() {
        out.push(f.to_string());
        if let Some(dests) = edges.get(f) {
            for d in dests.clone() {
                let e = indeg.get_mut(d).expect("involved");
                *e -= 1;
                if *e == 0 {
                    ready.push(d);
                    ready.sort_unstable();
                }
            }
        }
    }
    // Cycles (mutual recursion): append leftovers deterministically.
    if out.len() < involved.len() {
        let mut rest: Vec<String> = involved.into_iter().filter(|f| !out.contains(f)).collect();
        rest.sort();
        out.extend(rest);
    }
    // The key function's lines matter most; keep stable order but make sure
    // it is present even if it had no slice lines (degenerate).
    if !out.iter().any(|f| f == key_func) {
        out.push(key_func.to_string());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::special::find_special_tokens;
    use crate::types::Category;
    use sevuldet_lang::parse;

    fn gadget_for(src: &str, pick: impl Fn(&SpecialToken) -> bool, kind: GadgetKind) -> CodeGadget {
        let p = parse(src).unwrap();
        let a = ProgramAnalysis::analyze(&p);
        let toks = find_special_tokens(&p, &a);
        let t = toks.iter().find(|t| pick(t)).expect("special token");
        build_gadget(&p, &a, t, kind, &SliceConfig::default())
    }

    /// The motivating example (Fig. 1): a guarded strncpy (safe) and an
    /// unguarded strncpy after the same guard (vulnerable) must yield the
    /// SAME classic gadget text but DIFFERENT path-sensitive gadget text.
    #[test]
    fn fig1_classic_identical_path_sensitive_distinct() {
        let safe = r#"void f(char *dest, char *data) {
    int n = atoi(data);
    if (n < 16) {
        strncpy(dest, data, n);
    }
}"#;
        let vuln = r#"void f(char *dest, char *data) {
    int n = atoi(data);
    if (n < 16) {
        puts("small");
    }
    strncpy(dest, data, n);
}"#;
        let is_strncpy = |t: &SpecialToken| t.category == Category::Fc && t.name == "strncpy";

        let cg_safe = gadget_for(safe, is_strncpy, GadgetKind::Classic);
        let cg_vuln = gadget_for(vuln, is_strncpy, GadgetKind::Classic);
        // Compare statement text streams, dropping lines unique to one slice
        // (the `puts` is not dependent on anything strncpy touches).
        let text = |g: &CodeGadget| {
            g.lines
                .iter()
                .map(|l| l.tokens.join(" "))
                .filter(|t| !t.contains("puts"))
                .collect::<Vec<_>>()
        };
        assert_eq!(
            text(&cg_safe),
            text(&cg_vuln),
            "classic gadgets are indistinguishable"
        );

        let ps_safe = gadget_for(safe, is_strncpy, GadgetKind::PathSensitive);
        let ps_vuln = gadget_for(vuln, is_strncpy, GadgetKind::PathSensitive);
        assert_ne!(
            text(&ps_safe),
            text(&ps_vuln),
            "path-sensitive gadgets must differ"
        );
        // The safe gadget has strncpy BEFORE the closing `}`, the vulnerable
        // one AFTER it.
        let pos = |g: &CodeGadget, needle: &str| {
            g.lines
                .iter()
                .position(|l| l.tokens.contains(&needle.to_string()))
                .unwrap()
        };
        let close_pos = |g: &CodeGadget| {
            g.lines
                .iter()
                .position(|l| l.origin == LineOrigin::RangeClose)
                .unwrap()
        };
        assert!(pos(&ps_safe, "strncpy") < close_pos(&ps_safe));
        assert!(pos(&ps_vuln, "strncpy") > close_pos(&ps_vuln));
    }

    #[test]
    fn else_chain_keeps_bound_delimiters() {
        // Fig. 3 shape: strncpy in the else arm; the if and else-if ranges
        // are bound into the gadget for logical integrity.
        let src = r#"void f(char *dest, char *data, int n) {
    if (n < 0) {
        n = 0;
    } else if (n > 16) {
        n = 16;
    } else {
        strncpy(dest, data, n);
    }
}"#;
        let g = gadget_for(
            src,
            |t| t.category == Category::Fc && t.name == "strncpy",
            GadgetKind::PathSensitive,
        );
        let text = g.to_text();
        assert!(text.contains("if ( n < 0 ) {"));
        assert!(text.contains("} else if ( n > 16 ) {"));
        assert!(text.contains("} else {"));
        assert!(text.ends_with("}"), "closing delimiter retained: {text}");
    }

    #[test]
    fn classic_gadget_has_no_delimiters() {
        let src = r#"void f(char *dest, char *data, int n) {
    if (n < 16) {
        strncpy(dest, data, n);
    }
}"#;
        let g = gadget_for(src, |t| t.category == Category::Fc, GadgetKind::Classic);
        assert!(g.lines.iter().all(|l| l.origin == LineOrigin::Stmt));
    }

    #[test]
    fn interprocedural_gadget_orders_caller_first() {
        let src = r#"void sink(char *d, char *s, int n) {
    memcpy(d, s, n);
}
void top(char *d, char *s) {
    int n = strlen(s);
    sink(d, s, n);
}"#;
        let g = gadget_for(
            src,
            |t| t.category == Category::Fc && t.name == "memcpy",
            GadgetKind::PathSensitive,
        );
        let funcs: Vec<&str> = g.lines.iter().map(|l| l.func.as_str()).collect();
        let first_top = funcs.iter().position(|f| *f == "top").unwrap();
        let first_sink = funcs.iter().position(|f| *f == "sink").unwrap();
        assert!(first_top < first_sink, "caller lines precede callee lines");
    }

    #[test]
    fn loop_range_delimits_gadget() {
        let src = r#"void f(int n) {
    int total = 0;
    while (n > 0) {
        total = total + n;
        n--;
    }
    g(total);
}"#;
        let g = gadget_for(
            src,
            |t| t.category == Category::Ae && t.name == "total",
            GadgetKind::PathSensitive,
        );
        let text = g.to_text();
        assert!(text.contains("while ( n > 0 ) {"));
        assert!(
            g.lines.iter().any(|l| l.origin == LineOrigin::RangeClose),
            "loop close delimiter present: {text}"
        );
    }

    #[test]
    fn gadget_lines_sorted_by_line_within_function() {
        let src = r#"void f(char *dest, char *data, int n) {
    int m = n + 1;
    if (m < 16) {
        strncpy(dest, data, m);
    }
}"#;
        let g = gadget_for(src, |t| t.name == "strncpy", GadgetKind::PathSensitive);
        let lines: Vec<u32> = g.lines.iter().map(|l| l.line).collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);
    }
}
