//! Forward/backward program slicing over PDGs (Step I.3).
//!
//! Backward slices follow data *and* control dependence (finding the
//! statements an attack flows through and the guards that enrich semantics);
//! forward slices follow data dependence (where the value goes). Both are
//! inter-procedural: backward slicing ascends from function entries to call
//! sites and descends into callees through return values; forward slicing
//! descends into callees through arguments and ascends through returns.

use sevuldet_analysis::{NodeId, ProgramAnalysis};
use std::collections::{BTreeSet, VecDeque};

/// Slicing options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceConfig {
    /// Follow control dependence in the backward direction (SySeVR-style).
    /// Disable for VulDeePecker-style data-dependence-only slices.
    pub control_dep: bool,
    /// Cross function boundaries via the call graph.
    pub interprocedural: bool,
    /// Hard cap on slice size (defense against pathological programs).
    pub max_nodes: usize,
}

impl Default for SliceConfig {
    fn default() -> Self {
        SliceConfig {
            control_dep: true,
            interprocedural: true,
            max_nodes: 4096,
        }
    }
}

impl SliceConfig {
    /// VulDeePecker-style: data dependence only.
    pub fn data_only() -> Self {
        SliceConfig {
            control_dep: false,
            ..SliceConfig::default()
        }
    }
}

/// A program slice: the set of `(function, node)` pairs it covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Slice {
    /// Seed function.
    pub func: String,
    /// Seed node.
    pub seed: NodeId,
    /// All covered nodes, ordered for determinism.
    pub nodes: BTreeSet<(String, NodeId)>,
}

impl Slice {
    /// Number of nodes in the slice.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the slice covers nothing but the seed.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// The functions the slice touches, in order.
    pub fn functions(&self) -> Vec<String> {
        let mut v: Vec<String> = self.nodes.iter().map(|(f, _)| f.clone()).collect();
        v.dedup();
        v.sort();
        v.dedup();
        v
    }
}

/// Computes the combined forward+backward slice used for gadget generation:
/// backward from the seed, forward from the seed, and forward from each node
/// that directly feeds the seed (so guards that *consume* the same values as
/// the seed are captured — the property the motivating example hinges on).
pub fn two_way_slice(
    analysis: &ProgramAnalysis,
    func: &str,
    seed: NodeId,
    config: &SliceConfig,
) -> Slice {
    let _t = sevuldet_trace::span!("gadget.slice");
    let mut nodes = BTreeSet::new();
    backward(analysis, func, seed, config, &mut nodes);
    forward(analysis, func, seed, config, &mut nodes);
    if let Some(pdg) = analysis.pdg(func) {
        let feeders: Vec<NodeId> = pdg.data_preds(seed).iter().map(|(n, _)| *n).collect();
        for f in feeders {
            forward(analysis, func, f, config, &mut nodes);
        }
    }
    Slice {
        func: func.to_string(),
        seed,
        nodes,
    }
}

/// Backward slice only (exposed for tests and ablation).
pub fn backward_slice(
    analysis: &ProgramAnalysis,
    func: &str,
    seed: NodeId,
    config: &SliceConfig,
) -> Slice {
    let mut nodes = BTreeSet::new();
    backward(analysis, func, seed, config, &mut nodes);
    Slice {
        func: func.to_string(),
        seed,
        nodes,
    }
}

/// Forward slice only (exposed for tests and ablation).
pub fn forward_slice(
    analysis: &ProgramAnalysis,
    func: &str,
    seed: NodeId,
    config: &SliceConfig,
) -> Slice {
    let mut nodes = BTreeSet::new();
    forward(analysis, func, seed, config, &mut nodes);
    Slice {
        func: func.to_string(),
        seed,
        nodes,
    }
}

fn backward(
    analysis: &ProgramAnalysis,
    func: &str,
    seed: NodeId,
    config: &SliceConfig,
    out: &mut BTreeSet<(String, NodeId)>,
) {
    let mut work: VecDeque<(String, NodeId)> = VecDeque::new();
    work.push_back((func.to_string(), seed));
    while let Some((f, n)) = work.pop_front() {
        if out.len() >= config.max_nodes {
            return;
        }
        if !out.insert((f.clone(), n)) {
            continue;
        }
        let Some(pdg) = analysis.pdg(&f) else {
            continue;
        };
        for (m, _var) in pdg.data_preds(n) {
            work.push_back((f.clone(), *m));
        }
        if config.control_dep {
            for m in pdg.control_preds(n) {
                work.push_back((f.clone(), m));
            }
        }
        if config.interprocedural {
            // Reached the function entry: values came from call sites.
            if n == pdg.cfg.entry() {
                for site in analysis.callgraph.calls_to(&f) {
                    work.push_back((site.caller.clone(), site.node));
                }
            }
            // Calls whose return value feeds this node: descend into callee
            // returns.
            for call in &pdg.cfg.node(n).calls {
                if analysis.callgraph.is_user_func(&call.callee) {
                    if let Some(callee_pdg) = analysis.pdg(&call.callee) {
                        for rid in callee_pdg.cfg.node_ids() {
                            let nd = callee_pdg.cfg.node(rid);
                            if nd.tokens.first().map(String::as_str) == Some("return") {
                                work.push_back((call.callee.clone(), rid));
                            }
                        }
                    }
                }
            }
        }
    }
}

fn forward(
    analysis: &ProgramAnalysis,
    func: &str,
    seed: NodeId,
    config: &SliceConfig,
    out: &mut BTreeSet<(String, NodeId)>,
) {
    let mut work: VecDeque<(String, NodeId)> = VecDeque::new();
    work.push_back((func.to_string(), seed));
    let mut visited: BTreeSet<(String, NodeId)> = BTreeSet::new();
    while let Some((f, n)) = work.pop_front() {
        if out.len() >= config.max_nodes {
            return;
        }
        if !visited.insert((f.clone(), n)) {
            continue;
        }
        out.insert((f.clone(), n));
        let Some(pdg) = analysis.pdg(&f) else {
            continue;
        };
        for (m, _var) in pdg.data_succs(n) {
            work.push_back((f.clone(), *m));
        }
        if config.interprocedural {
            // Values passed into callees: continue from the callee entry.
            for call in &pdg.cfg.node(n).calls {
                if analysis.callgraph.is_user_func(&call.callee) {
                    if let Some(callee_pdg) = analysis.pdg(&call.callee) {
                        work.push_back((call.callee.clone(), callee_pdg.cfg.entry()));
                    }
                }
            }
            // Returned values: continue at every call site of this function.
            if pdg.cfg.node(n).tokens.first().map(String::as_str) == Some("return") {
                for site in analysis.callgraph.calls_to(&f) {
                    work.push_back((site.caller.clone(), site.node));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sevuldet_lang::parse;

    fn setup(src: &str) -> ProgramAnalysis {
        let p = parse(src).unwrap();
        ProgramAnalysis::analyze(&p)
    }

    fn node_with(analysis: &ProgramAnalysis, func: &str, tok: &str) -> NodeId {
        let pdg = analysis.pdg(func).unwrap();
        pdg.cfg
            .node_ids()
            .find(|id| pdg.cfg.node(*id).tokens.first().map(String::as_str) == Some(tok))
            .unwrap_or_else(|| panic!("no node starting with {tok} in {func}"))
    }

    fn lines_of(analysis: &ProgramAnalysis, slice: &Slice) -> Vec<(String, u32)> {
        slice
            .nodes
            .iter()
            .map(|(f, n)| (f.clone(), analysis.pdg(f).unwrap().cfg.node(*n).line))
            .collect()
    }

    #[test]
    fn backward_includes_guard_and_sources() {
        let src = r#"void f(char *dest, char *data, int n) {
    int len = n;
    if (len < 16) {
        strncpy(dest, data, len);
    }
}"#;
        let a = setup(src);
        let seed = node_with(&a, "f", "strncpy");
        let s = backward_slice(&a, "f", seed, &SliceConfig::default());
        let lines: Vec<u32> = lines_of(&a, &s).iter().map(|(_, l)| *l).collect();
        assert!(lines.contains(&2), "len source in slice");
        assert!(lines.contains(&3), "guard in slice (control dep)");
        assert!(lines.contains(&4), "seed in slice");
    }

    #[test]
    fn data_only_backward_excludes_pure_guard() {
        // The guard tests a *different* variable, so without control
        // dependence it must not enter the slice.
        let src = r#"void f(char *dest, char *data, int n, int mode) {
    if (mode) {
        strncpy(dest, data, n);
    }
}"#;
        let a = setup(src);
        let seed = node_with(&a, "f", "strncpy");
        let full = backward_slice(&a, "f", seed, &SliceConfig::default());
        let data = backward_slice(&a, "f", seed, &SliceConfig::data_only());
        let full_lines: Vec<u32> = lines_of(&a, &full).iter().map(|(_, l)| *l).collect();
        let data_lines: Vec<u32> = lines_of(&a, &data).iter().map(|(_, l)| *l).collect();
        assert!(full_lines.contains(&2));
        assert!(!data_lines.contains(&2));
    }

    #[test]
    fn two_way_slice_captures_post_seed_guard() {
        // The motivating example's program B: the guard appears *after* being
        // fed by the same def that feeds the (unguarded) strncpy. Forward
        // slicing from the feeder must capture the guard.
        let src = r#"void f(char *dest, char *data) {
    int n = atoi(data);
    if (n < 16) {
        ;
    }
    strncpy(dest, data, n);
}"#;
        // (empty statement `;` is not mini-C; use a harmless call)
        let src = src.replace(";\n    }", "puts(\"ok\");\n    }");
        let a = setup(&src);
        let seed = node_with(&a, "f", "strncpy");
        let s = two_way_slice(&a, "f", seed, &SliceConfig::default());
        let lines: Vec<u32> = lines_of(&a, &s).iter().map(|(_, l)| *l).collect();
        assert!(
            lines.contains(&3),
            "post-def guard captured via forward slice"
        );
    }

    #[test]
    fn interprocedural_backward_ascends_to_caller() {
        let src = r#"void sink(char *d, char *s, int n) {
    strncpy(d, s, n);
}
void caller(char *d, char *s) {
    int n = strlen(s);
    sink(d, s, n);
}"#;
        let a = setup(src);
        let seed = node_with(&a, "sink", "strncpy");
        let s = two_way_slice(&a, "sink", seed, &SliceConfig::default());
        assert!(
            s.functions().contains(&"caller".to_string()),
            "slice must ascend into caller"
        );
        let lines = lines_of(&a, &s);
        assert!(
            lines.contains(&("caller".to_string(), 5)),
            "n source in caller"
        );
    }

    #[test]
    fn intraprocedural_config_stays_local() {
        let src = r#"void sink(char *d, char *s, int n) {
    strncpy(d, s, n);
}
void caller(char *d, char *s) {
    sink(d, s, 4);
}"#;
        let a = setup(src);
        let seed = node_with(&a, "sink", "strncpy");
        let cfg = SliceConfig {
            interprocedural: false,
            ..SliceConfig::default()
        };
        let s = two_way_slice(&a, "sink", seed, &cfg);
        assert_eq!(s.functions(), vec!["sink".to_string()]);
    }

    #[test]
    fn forward_descends_into_callee() {
        let src = r#"void use(int n) {
    int a[4];
    a[n] = 1;
}
void src_fn(char *s) {
    int n = atoi(s);
    use(n);
}"#;
        let a = setup(src);
        let seed = node_with(&a, "src_fn", "int");
        let s = forward_slice(&a, "src_fn", seed, &SliceConfig::default());
        assert!(s.functions().contains(&"use".to_string()));
    }

    #[test]
    fn max_nodes_caps_slice() {
        let src = r#"void f(int n) {
    int a = n;
    int b = a;
    int c = b;
    int d = c;
    g(d);
}"#;
        let a = setup(src);
        let seed = node_with(&a, "f", "g");
        let cfg = SliceConfig {
            max_nodes: 2,
            ..SliceConfig::default()
        };
        let s = backward_slice(&a, "f", seed, &cfg);
        assert!(s.len() <= 2);
    }
}
