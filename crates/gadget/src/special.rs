//! Special-token identification (Step I.2).
//!
//! Following SySeVR's four syntax characteristics, a statement contains a
//! special token when it exhibits: a library/API function call (FC), an array
//! usage (AU), a pointer usage (PU), or an arithmetic expression over
//! variables (AE). Each occurrence seeds one code gadget.

use crate::types::Category;
use sevuldet_analysis::cfg::NodeRole;
use sevuldet_analysis::libmodel::is_lib_func;
use sevuldet_analysis::{NodeId, ProgramAnalysis};
use sevuldet_lang::ast::{Expr, ExprKind, Function, Program, StmtKind, UnaryOp};
use sevuldet_lang::visit::{walk_expr, Visitor};
use std::collections::HashSet;

/// A special token found in a program: the seed of one code gadget.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SpecialToken {
    /// FC / AU / PU / AE.
    pub category: Category,
    /// Function containing the token.
    pub func: String,
    /// The PDG node the token occurs in.
    pub node: NodeId,
    /// 1-based source line.
    pub line: u32,
    /// The token itself (callee name, array name, pointer name, or the
    /// variable at the root of the arithmetic expression).
    pub name: String,
}

/// Scans a whole program for special tokens, using the PDGs in `analysis` to
/// locate the CFG node of each occurrence.
pub fn find_special_tokens(program: &Program, analysis: &ProgramAnalysis) -> Vec<SpecialToken> {
    let _t = sevuldet_trace::span!("gadget.specials");
    let mut out = Vec::new();
    for f in program.functions() {
        let Some(pdg) = analysis.pdg(&f.name) else {
            continue;
        };
        // Pointer-typed names in scope (params + locals) for PU detection.
        let ptr_vars = pointer_vars(f);
        let array_vars = array_vars(f);
        for node_id in pdg.cfg.node_ids() {
            let node = pdg.cfg.node(node_id);
            if matches!(node.role, NodeRole::Entry | NodeRole::Exit) {
                continue;
            }
            let mut seen: HashSet<(Category, String)> = HashSet::new();
            // FC: library/API calls recorded on the node.
            for call in &node.calls {
                if is_lib_func(&call.callee) && seen.insert((Category::Fc, call.callee.clone())) {
                    out.push(SpecialToken {
                        category: Category::Fc,
                        func: f.name.clone(),
                        node: node_id,
                        line: node.line,
                        name: call.callee.clone(),
                    });
                }
            }
            // AU / PU / AE: inspect the tokens and def/use sets.
            for t in token_level_hits(node.tokens.as_slice(), &ptr_vars, &array_vars) {
                if seen.insert((t.0, t.1.clone())) {
                    out.push(SpecialToken {
                        category: t.0,
                        func: f.name.clone(),
                        node: node_id,
                        line: node.line,
                        name: t.1,
                    });
                }
            }
        }
    }
    out.sort_by(|a, b| {
        (a.func.as_str(), a.line, a.category, a.name.as_str()).cmp(&(
            b.func.as_str(),
            b.line,
            b.category,
            b.name.as_str(),
        ))
    });
    out
}

/// Token-level AU/PU/AE detection over a node's surface tokens.
///
/// * AU: `name [` where `name` is an identifier (or a declared array name);
/// * PU: deref `* name` at expression position, `name ->`, or a
///   pointer-typed variable occurrence;
/// * AE: an identifier adjacent to an arithmetic operator that also has a
///   neighbouring identifier (constant-only expressions are skipped).
fn token_level_hits(
    tokens: &[String],
    ptr_vars: &HashSet<String>,
    array_vars: &HashSet<String>,
) -> Vec<(Category, String)> {
    let mut hits = Vec::new();
    let is_ident = |s: &str| {
        s.chars()
            .next()
            .map(|c| c.is_ascii_alphabetic() || c == '_')
            .unwrap_or(false)
            && !is_keyword(s)
    };
    for i in 0..tokens.len() {
        let t = tokens[i].as_str();
        // AU: `x [`
        if is_ident(t) && tokens.get(i + 1).map(String::as_str) == Some("[") {
            hits.push((Category::Au, t.to_string()));
        }
        // AU: declared array names.
        if is_ident(t) && array_vars.contains(t) {
            hits.push((Category::Au, t.to_string()));
        }
        // PU: `x ->`
        if is_ident(t) && tokens.get(i + 1).map(String::as_str) == Some("->") {
            hits.push((Category::Pu, t.to_string()));
        }
        // PU: pointer-typed variable used.
        if is_ident(t) && ptr_vars.contains(t) {
            hits.push((Category::Pu, t.to_string()));
        }
        // PU: unary deref `* x` (after an operator or start — a crude but
        // effective disambiguation from multiplication).
        if t == "*" {
            let prev_is_operand = i > 0
                && (is_ident(&tokens[i - 1])
                    || tokens[i - 1].parse::<i64>().is_ok()
                    || tokens[i - 1] == ")"
                    || tokens[i - 1] == "]");
            if !prev_is_operand {
                if let Some(next) = tokens.get(i + 1) {
                    if is_ident(next) {
                        hits.push((Category::Pu, next.clone()));
                    }
                }
            }
        }
        // AE: ident next to an arithmetic operator with an identifier on the
        // other side (pure-constant arithmetic is ignored).
        if matches!(t, "+" | "-" | "*" | "/" | "%") && i > 0 {
            let prev = tokens[i - 1].as_str();
            let next = tokens.get(i + 1).map(String::as_str).unwrap_or("");
            let prev_is_operand =
                is_ident(prev) || prev.parse::<i64>().is_ok() || prev == ")" || prev == "]";
            if t == "*" && !prev_is_operand {
                continue; // deref, handled above
            }
            if is_ident(prev) {
                hits.push((Category::Ae, prev.to_string()));
            } else if is_ident(next) && prev_is_operand {
                hits.push((Category::Ae, next.to_string()));
            }
        }
    }
    hits
}

fn is_keyword(s: &str) -> bool {
    sevuldet_lang::token::Keyword::from_word(s).is_some()
}

/// Names of pointer-typed params and locals of a function.
fn pointer_vars(f: &Function) -> HashSet<String> {
    let mut set: HashSet<String> = f
        .params
        .iter()
        .filter(|p| p.ty.is_pointer())
        .map(|p| p.name.clone())
        .collect();
    struct C<'a>(&'a mut HashSet<String>);
    impl Visitor for C<'_> {
        fn visit_decl(&mut self, d: &sevuldet_lang::ast::Decl) {
            if d.ty.is_pointer() {
                self.0.insert(d.name.clone());
            }
            sevuldet_lang::visit::walk_decl(self, d);
        }
    }
    let mut c = C(&mut set);
    sevuldet_lang::visit::walk_function(&mut c, f);
    set
}

/// Names of array-typed params and locals of a function.
fn array_vars(f: &Function) -> HashSet<String> {
    let mut set: HashSet<String> = f
        .params
        .iter()
        .filter(|p| !p.array_dims.is_empty())
        .map(|p| p.name.clone())
        .collect();
    struct C<'a>(&'a mut HashSet<String>);
    impl Visitor for C<'_> {
        fn visit_decl(&mut self, d: &sevuldet_lang::ast::Decl) {
            if d.is_array() {
                self.0.insert(d.name.clone());
            }
            sevuldet_lang::visit::walk_decl(self, d);
        }
    }
    let mut c = C(&mut set);
    sevuldet_lang::visit::walk_function(&mut c, f);
    set
}

/// AST-level helper retained for tests and the static detectors: whether an
/// expression contains variable arithmetic.
pub fn has_var_arithmetic(e: &Expr) -> bool {
    struct C(bool);
    impl Visitor for C {
        fn visit_expr(&mut self, e: &Expr) {
            if let ExprKind::Binary { op, lhs, rhs } = &e.kind {
                if op.is_arithmetic() {
                    let var_side = |x: &Expr| {
                        matches!(
                            x.kind,
                            ExprKind::Ident(_)
                                | ExprKind::Index { .. }
                                | ExprKind::Member { .. }
                                | ExprKind::Unary {
                                    op: UnaryOp::Deref,
                                    ..
                                }
                        )
                    };
                    if var_side(lhs) || var_side(rhs) {
                        self.0 = true;
                    }
                }
            }
            walk_expr(self, e);
        }
    }
    let mut c = C(false);
    c.visit_expr(e);
    c.0
}

/// Counts statements in a function (used by corpus statistics).
pub fn count_statements(f: &Function) -> usize {
    struct C(usize);
    impl Visitor for C {
        fn visit_stmt(&mut self, s: &sevuldet_lang::ast::Stmt) {
            if !matches!(s.kind, StmtKind::Block(_)) {
                self.0 += 1;
            }
            sevuldet_lang::visit::walk_stmt(self, s);
        }
    }
    let mut c = C(0);
    sevuldet_lang::visit::walk_function(&mut c, f);
    c.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use sevuldet_lang::parse;

    fn tokens_of(src: &str) -> Vec<SpecialToken> {
        let p = parse(src).unwrap();
        let a = ProgramAnalysis::analyze(&p);
        find_special_tokens(&p, &a)
    }

    #[test]
    fn finds_library_call() {
        let ts = tokens_of("void f(char *d, char *s, int n) { strncpy(d, s, n); }");
        assert!(ts
            .iter()
            .any(|t| t.category == Category::Fc && t.name == "strncpy"));
    }

    #[test]
    fn user_function_call_is_not_fc() {
        let ts = tokens_of("void g(int x) { } void f() { g(1); }");
        assert!(!ts.iter().any(|t| t.category == Category::Fc));
    }

    #[test]
    fn finds_array_usage() {
        let ts = tokens_of("void f(int i) { int a[4]; a[i] = 1; }");
        let au: Vec<_> = ts.iter().filter(|t| t.category == Category::Au).collect();
        assert!(au.iter().any(|t| t.name == "a"));
    }

    #[test]
    fn finds_pointer_usage() {
        let ts = tokens_of("void f(char *p) { *p = 'x'; }");
        assert!(ts
            .iter()
            .any(|t| t.category == Category::Pu && t.name == "p"));
        let ts = tokens_of("struct s { int len; }; void f(struct s *q) { q->len = 1; }");
        assert!(ts
            .iter()
            .any(|t| t.category == Category::Pu && t.name == "q"));
    }

    #[test]
    fn finds_arithmetic_expression() {
        let ts = tokens_of("void f(int n, int m) { int x = n * m + 2; }");
        assert!(ts.iter().any(|t| t.category == Category::Ae));
    }

    #[test]
    fn constant_arithmetic_is_not_ae() {
        let ts = tokens_of("void f() { int x = 2 + 3; }");
        assert!(!ts.iter().any(|t| t.category == Category::Ae));
    }

    #[test]
    fn deref_in_multiplication_position_not_confused() {
        // `a * b` is AE on a, not PU on b.
        let ts = tokens_of("void f(int a, int b) { int x = a * b; }");
        assert!(ts.iter().any(|t| t.category == Category::Ae));
        assert!(!ts
            .iter()
            .any(|t| t.category == Category::Pu && t.name == "b"));
    }

    #[test]
    fn has_var_arithmetic_ast_helper() {
        let p = parse("void f(int n) { int x = n + 1; int y = 2 + 3; }").unwrap();
        let f = p.function("f").unwrap();
        let inits: Vec<_> = f
            .body
            .stmts
            .iter()
            .filter_map(|s| match &s.kind {
                StmtKind::Decl(d) => d.init.as_ref(),
                _ => None,
            })
            .collect();
        assert!(has_var_arithmetic(inits[0]));
        assert!(!has_var_arithmetic(inits[1]));
    }

    #[test]
    fn special_tokens_are_deterministic() {
        let src = "void f(char *p, int n) { int a[4]; a[n] = *p + n; memcpy(a, p, n); }";
        assert_eq!(tokens_of(src), tokens_of(src));
    }
}
