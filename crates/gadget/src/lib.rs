//! # sevuldet-gadget
//!
//! Code-gadget extraction for the SEVulDet reproduction: special-token
//! identification (Step I.2), inter-procedural forward/backward slicing over
//! PDGs (Step I.3), **path-sensitive gadget assembly — Algorithm 1** (Step
//! I.4), manifest-driven labeling (Step II), and identifier normalization
//! (Step III).
//!
//! The headline property (the paper's Fig. 1): a guarded and an unguarded
//! sink can slice to byte-identical *classic* gadgets, while the
//! *path-sensitive* gadgets differ because Algorithm 1 inserts the control
//! ranges' delimiters.
//!
//! ## Example
//!
//! ```
//! use sevuldet_gadget::{find_special_tokens, build_gadget, GadgetKind, SliceConfig};
//! use sevuldet_analysis::ProgramAnalysis;
//!
//! let src = r#"
//! void f(char *dest, char *data, int n) {
//!     if (n < 16) {
//!         strncpy(dest, data, n);
//!     }
//! }
//! "#;
//! let program = sevuldet_lang::parse(src).unwrap();
//! let analysis = ProgramAnalysis::analyze(&program);
//! let tokens = find_special_tokens(&program, &analysis);
//! let strncpy = tokens.iter().find(|t| t.name == "strncpy").unwrap();
//! let gadget = build_gadget(&program, &analysis, strncpy,
//!                           GadgetKind::PathSensitive, &SliceConfig::default());
//! assert!(gadget.to_text().contains("strncpy"));
//! ```

pub mod algorithm1;
pub mod label;
pub mod normalize;
pub mod slice;
pub mod special;
pub mod types;

pub use algorithm1::{build_gadget, build_gadget_from_slice, generate_all};
pub use label::{label_all, label_gadget};
pub use normalize::Normalizer;
pub use slice::{backward_slice, forward_slice, two_way_slice, Slice, SliceConfig};
pub use special::{find_special_tokens, SpecialToken};
pub use types::{Category, CodeGadget, GadgetKind, GadgetLine, LabeledGadget, LineOrigin};
