//! Gadget labeling (Step II).
//!
//! A gadget heuristically inherits the label of the program it was sliced
//! from: if any of its *statement* lines is one of the program's flawed lines
//! (per the dataset manifest), it is marked vulnerable. The paper notes this
//! can mislabel gadgets whose statements merely look like vulnerable ones;
//! `relabel_suspicious` implements the k-fold-driven manual-check hook that
//! narrows those down.

use crate::types::{CodeGadget, LabeledGadget};
use std::collections::HashSet;

/// Labels one gadget against the flawed lines of its source program.
///
/// `flaw_lines` holds 1-based line numbers of vulnerable statements (mini-C
/// programs are single-file, so lines are globally unique).
pub fn label_gadget(gadget: &CodeGadget, flaw_lines: &HashSet<u32>) -> LabeledGadget {
    let vulnerable = gadget
        .stmt_locations()
        .any(|(_, line)| flaw_lines.contains(&line));
    LabeledGadget {
        gadget: gadget.clone(),
        vulnerable,
    }
}

/// Labels a batch of gadgets.
pub fn label_all(gadgets: &[CodeGadget], flaw_lines: &HashSet<u32>) -> Vec<LabeledGadget> {
    gadgets
        .iter()
        .map(|g| label_gadget(g, flaw_lines))
        .collect()
}

/// The Step-II re-labeling hook: given per-gadget false-positive counts
/// accumulated across k-fold rounds, returns the indices of gadgets whose
/// labels deserve (simulated) manual review — those misclassified in at
/// least `threshold` rounds.
pub fn relabel_suspicious(fp_counts: &[u32], threshold: u32) -> Vec<usize> {
    fp_counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| c >= threshold)
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Category, GadgetKind, GadgetLine, LineOrigin};

    fn gadget(lines: &[(u32, LineOrigin)]) -> CodeGadget {
        CodeGadget {
            kind: GadgetKind::PathSensitive,
            category: Category::Fc,
            key_func: "f".into(),
            key_line: lines.first().map(|l| l.0).unwrap_or(1),
            key_name: "strncpy".into(),
            lines: lines
                .iter()
                .map(|&(line, origin)| GadgetLine {
                    func: "f".into(),
                    line,
                    tokens: vec!["tok".into()],
                    origin,
                })
                .collect(),
        }
    }

    #[test]
    fn gadget_covering_flaw_line_is_vulnerable() {
        let g = gadget(&[(2, LineOrigin::Stmt), (5, LineOrigin::Stmt)]);
        let flaws: HashSet<u32> = [5].into_iter().collect();
        assert!(label_gadget(&g, &flaws).vulnerable);
        let flaws: HashSet<u32> = [9].into_iter().collect();
        assert!(!label_gadget(&g, &flaws).vulnerable);
    }

    #[test]
    fn delimiter_lines_do_not_trigger_label() {
        let g = gadget(&[(2, LineOrigin::Stmt), (5, LineOrigin::RangeClose)]);
        let flaws: HashSet<u32> = [5].into_iter().collect();
        assert!(!label_gadget(&g, &flaws).vulnerable);
    }

    #[test]
    fn relabel_threshold() {
        let idx = relabel_suspicious(&[0, 3, 1, 5], 3);
        assert_eq!(idx, vec![1, 3]);
    }
}
