//! Core gadget types (Definitions 5 and 7 of the paper).

use std::fmt;

/// The four special-token categories of Step I.2 (following SySeVR).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// Library/API function call.
    Fc,
    /// Array usage.
    Au,
    /// Pointer usage.
    Pu,
    /// Arithmetic expression.
    Ae,
}

impl Category {
    /// All categories, in the paper's order.
    pub const ALL: [Category; 4] = [Category::Fc, Category::Au, Category::Pu, Category::Ae];

    /// The paper's abbreviation (FC/AU/PU/AE).
    pub fn abbrev(&self) -> &'static str {
        match self {
            Category::Fc => "FC",
            Category::Au => "AU",
            Category::Pu => "PU",
            Category::Ae => "AE",
        }
    }

    /// The paper's long name.
    pub fn long_name(&self) -> &'static str {
        match self {
            Category::Fc => "Library/API function call",
            Category::Au => "Array usage",
            Category::Pu => "Pointer usage",
            Category::Ae => "Arithmetic expression",
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// How a gadget was generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GadgetKind {
    /// Classic code gadget (Definition 5): stacked dependent statements.
    Classic,
    /// Path-sensitive code gadget (Definition 7): slice plus control-range
    /// delimiters inserted by Algorithm 1.
    PathSensitive,
}

/// Where a gadget line came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LineOrigin {
    /// A sliced program statement.
    Stmt,
    /// A control-range *opening* delimiter inserted by Algorithm 1
    /// (e.g. `} else {`).
    RangeOpen,
    /// A control-range *closing* delimiter inserted by Algorithm 1 (`}`).
    RangeClose,
}

/// One line of a code gadget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GadgetLine {
    /// Function the line belongs to.
    pub func: String,
    /// 1-based line in the original source.
    pub line: u32,
    /// Surface tokens.
    pub tokens: Vec<String>,
    /// Provenance of the line.
    pub origin: LineOrigin,
}

/// A code gadget: an ordered sequence of statements (and, when
/// path-sensitive, scope delimiters) generated from one special token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodeGadget {
    /// Classic or path-sensitive.
    pub kind: GadgetKind,
    /// The special-token category that seeded the gadget.
    pub category: Category,
    /// Function containing the special token.
    pub key_func: String,
    /// Line of the special token.
    pub key_line: u32,
    /// The special token's name (callee / array / pointer / expression var).
    pub key_name: String,
    /// Ordered gadget lines.
    pub lines: Vec<GadgetLine>,
}

impl CodeGadget {
    /// The flattened token stream of the gadget (what gets embedded).
    pub fn tokens(&self) -> Vec<String> {
        self.lines.iter().flat_map(|l| l.tokens.clone()).collect()
    }

    /// Total number of tokens.
    pub fn token_len(&self) -> usize {
        self.lines.iter().map(|l| l.tokens.len()).sum()
    }

    /// The `(func, line)` pairs of the *statement* lines (used for
    /// manifest-driven labeling — delimiters never carry a flaw).
    pub fn stmt_locations(&self) -> impl Iterator<Item = (&str, u32)> {
        self.lines
            .iter()
            .filter(|l| l.origin == LineOrigin::Stmt)
            .map(|l| (l.func.as_str(), l.line))
    }

    /// Renders the gadget as text, one line per gadget line.
    pub fn to_text(&self) -> String {
        self.lines
            .iter()
            .map(|l| l.tokens.join(" "))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

impl fmt::Display for CodeGadget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "[{} {:?} gadget @ {}:{} `{}`]",
            self.category, self.kind, self.key_func, self.key_line, self.key_name
        )?;
        f.write_str(&self.to_text())
    }
}

/// A gadget paired with its ground-truth label.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledGadget {
    /// The gadget.
    pub gadget: CodeGadget,
    /// `true` when the gadget covers a vulnerable statement.
    pub vulnerable: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(tokens: &[&str], origin: LineOrigin) -> GadgetLine {
        GadgetLine {
            func: "f".into(),
            line: 1,
            tokens: tokens.iter().map(|s| s.to_string()).collect(),
            origin,
        }
    }

    #[test]
    fn token_stream_flattens_lines() {
        let g = CodeGadget {
            kind: GadgetKind::PathSensitive,
            category: Category::Fc,
            key_func: "f".into(),
            key_line: 2,
            key_name: "strncpy".into(),
            lines: vec![
                line(&["if", "(", "n", ")", "{"], LineOrigin::Stmt),
                line(&["strncpy", "(", "d", ")", ";"], LineOrigin::Stmt),
                line(&["}"], LineOrigin::RangeClose),
            ],
        };
        assert_eq!(g.token_len(), 11);
        assert_eq!(g.tokens()[5], "strncpy");
        assert_eq!(g.stmt_locations().count(), 2);
        assert!(g.to_text().contains("strncpy ( d ) ;"));
    }

    #[test]
    fn category_metadata() {
        assert_eq!(Category::Fc.abbrev(), "FC");
        assert_eq!(Category::ALL.len(), 4);
        assert_eq!(Category::Ae.long_name(), "Arithmetic expression");
    }
}
