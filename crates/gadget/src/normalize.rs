//! Gadget normalization (Step III).
//!
//! User-defined variable and function names carry no vulnerability semantics
//! and inflate the vocabulary, so they are mapped to ordered placeholder
//! names (`var1`, `var2`, ... and `fun1`, `fun2`, ...) in first-appearance
//! order. Keywords, library/API function names, literals, and operators are
//! kept intact; non-ASCII characters are stripped.

use crate::types::{CodeGadget, GadgetLine};
use sevuldet_analysis::libmodel::is_lib_func;
use sevuldet_lang::token::Keyword;
use std::collections::HashMap;

/// Maps user identifiers to placeholder names, one gadget at a time.
#[derive(Debug, Default)]
pub struct Normalizer {
    vars: HashMap<String, String>,
    funs: HashMap<String, String>,
}

impl Normalizer {
    /// Creates an empty normalizer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Normalizes a whole gadget, producing a fresh mapping (two gadgets
    /// never share placeholder assignments, mirroring the paper).
    pub fn normalize_gadget(gadget: &CodeGadget) -> CodeGadget {
        let _t = sevuldet_trace::span!("gadget.normalize");
        let mut n = Normalizer::new();
        let lines = gadget
            .lines
            .iter()
            .map(|l| GadgetLine {
                func: l.func.clone(),
                line: l.line,
                tokens: n.normalize_tokens(&l.tokens),
                origin: l.origin,
            })
            .collect();
        CodeGadget {
            kind: gadget.kind,
            category: gadget.category,
            key_func: gadget.key_func.clone(),
            key_line: gadget.key_line,
            key_name: n.lookup_name(&gadget.key_name),
            lines,
        }
    }

    /// Normalizes one token sequence in place-order.
    pub fn normalize_tokens(&mut self, tokens: &[String]) -> Vec<String> {
        let mut out = Vec::with_capacity(tokens.len());
        for (i, t) in tokens.iter().enumerate() {
            let ascii: String = t.chars().filter(char::is_ascii).collect();
            if !is_identifier(&ascii) || keep_verbatim(&ascii) {
                out.push(ascii);
                continue;
            }
            let is_call = tokens.get(i + 1).map(String::as_str) == Some("(");
            let mapped = if is_call {
                let next = format!("fun{}", self.funs.len() + 1);
                self.funs.entry(ascii).or_insert(next).clone()
            } else {
                let next = format!("var{}", self.vars.len() + 1);
                self.vars.entry(ascii).or_insert(next).clone()
            };
            out.push(mapped);
        }
        out
    }

    fn lookup_name(&self, name: &str) -> String {
        self.funs
            .get(name)
            .or_else(|| self.vars.get(name))
            .cloned()
            .unwrap_or_else(|| name.to_string())
    }
}

fn is_identifier(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Tokens kept verbatim: keywords, library/API function names, `main`, and
/// type-ish words that survived tokenization.
fn keep_verbatim(s: &str) -> bool {
    Keyword::from_word(s).is_some() || is_lib_func(s) || s == "main" || s == "NULL"
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Category, GadgetKind, LineOrigin};

    fn gadget(lines: Vec<Vec<&str>>) -> CodeGadget {
        CodeGadget {
            kind: GadgetKind::PathSensitive,
            category: Category::Fc,
            key_func: "f".into(),
            key_line: 1,
            key_name: "strncpy".into(),
            lines: lines
                .into_iter()
                .enumerate()
                .map(|(i, toks)| GadgetLine {
                    func: "f".into(),
                    line: i as u32 + 1,
                    tokens: toks.into_iter().map(String::from).collect(),
                    origin: LineOrigin::Stmt,
                })
                .collect(),
        }
    }

    #[test]
    fn variables_renamed_in_first_appearance_order() {
        let g = gadget(vec![
            vec!["int", "count", "=", "limit", ";"],
            vec!["count", "=", "count", "+", "1", ";"],
        ]);
        let n = Normalizer::normalize_gadget(&g);
        assert_eq!(n.lines[0].tokens, vec!["int", "var1", "=", "var2", ";"]);
        assert_eq!(n.lines[1].tokens, vec!["var1", "=", "var1", "+", "1", ";"]);
    }

    #[test]
    fn library_functions_and_keywords_kept() {
        let g = gadget(vec![
            vec!["if", "(", "n", "<", "16", ")", "{"],
            vec!["strncpy", "(", "dest", ",", "data", ",", "n", ")", ";"],
        ]);
        let n = Normalizer::normalize_gadget(&g);
        assert_eq!(n.lines[0].tokens[0], "if");
        assert_eq!(n.lines[1].tokens[0], "strncpy");
        // dest/data/n got var names; n consistent across lines.
        assert_eq!(n.lines[0].tokens[2], "var1"); // n first appears in line 0
        assert_eq!(n.lines[1].tokens[6], "var1");
    }

    #[test]
    fn user_functions_renamed_separately_from_vars() {
        let g = gadget(vec![vec!["helper", "(", "helper_result", ")", ";"]]);
        let n = Normalizer::normalize_gadget(&g);
        assert_eq!(n.lines[0].tokens[0], "fun1");
        assert_eq!(n.lines[0].tokens[2], "var1");
    }

    #[test]
    fn main_and_literals_survive() {
        let g = gadget(vec![vec!["main", "(", ")", ";"], vec!["x", "=", "42", ";"]]);
        let n = Normalizer::normalize_gadget(&g);
        assert_eq!(n.lines[0].tokens[0], "main");
        assert_eq!(n.lines[1].tokens[2], "42");
    }

    #[test]
    fn non_ascii_stripped() {
        let g = gadget(vec![vec!["x\u{00e9}", "=", "1", ";"]]);
        let n = Normalizer::normalize_gadget(&g);
        assert_eq!(n.lines[0].tokens[0], "var1"); // "xé" -> "x" -> var1
    }

    #[test]
    fn identical_structure_normalizes_identically() {
        // Different user names, same shape → same normalized text. This is
        // what lets the detector generalise across naming conventions.
        let a = gadget(vec![vec![
            "strncpy", "(", "dst", ",", "src", ",", "len", ")", ";",
        ]]);
        let b = gadget(vec![vec![
            "strncpy", "(", "out", ",", "in_", ",", "cnt", ")", ";",
        ]]);
        assert_eq!(
            Normalizer::normalize_gadget(&a).to_text(),
            Normalizer::normalize_gadget(&b).to_text()
        );
    }
}
