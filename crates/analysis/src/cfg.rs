//! Per-function control-flow graph construction.
//!
//! Statement-level CFG with synthetic `Entry`/`Exit` nodes. Control
//! statements contribute one node per *decision point* — the `if` condition,
//! every `else if` condition, loop conditions, `for` steps, and `switch`
//! heads — each with its own source line, so the PDG built on top has the
//! same line-keyed granularity as the paper's Fig. 3.

use crate::defuse::{CallInfo, DefUse};
use crate::libmodel::is_noreturn;
use sevuldet_lang::ast::*;
use sevuldet_lang::printer::{expr_tokens, stmt_tokens};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

/// Index of a CFG node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// What role a CFG node plays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeRole {
    /// Synthetic function entry (defines the parameters).
    Entry,
    /// Synthetic function exit.
    Exit,
    /// A plain statement (declaration, expression, return, break, continue).
    Plain,
    /// An `if` condition.
    IfCond,
    /// The `i`-th `else if` condition of an if chain.
    ElseIfCond(u16),
    /// A `while` / `do while` / `for` condition.
    LoopCond,
    /// A `for` step expression.
    ForStep,
    /// A `switch` head.
    SwitchHead,
}

impl NodeRole {
    /// Whether the node is a branch point (has labelled out-edges).
    pub fn is_branch(&self) -> bool {
        matches!(
            self,
            NodeRole::IfCond | NodeRole::ElseIfCond(_) | NodeRole::LoopCond | NodeRole::SwitchHead
        )
    }
}

/// Kind of CFG edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Unconditional fallthrough.
    Seq,
    /// Branch taken.
    True,
    /// Branch not taken.
    False,
    /// `switch` dispatch to the `i`-th case arm.
    Case(u16),
    /// `switch` dispatch to `default` (or past the switch when absent).
    Default,
    /// Pseudo edge added so every node reaches `Exit` (infinite loops).
    Pseudo,
}

/// A CFG node.
#[derive(Debug, Clone)]
pub struct Node {
    /// The node's role.
    pub role: NodeRole,
    /// The statement the node belongs to, if any.
    pub stmt: Option<StmtId>,
    /// 1-based source line of the decision point / statement start.
    pub line: u32,
    /// Surface tokens of the node, as rendered into gadgets.
    pub tokens: Vec<String>,
    /// Variables the node writes.
    pub defs: Vec<String>,
    /// Variables the node reads.
    pub uses: Vec<String>,
    /// Calls made by the node.
    pub calls: Vec<CallInfo>,
}

/// A per-function control-flow graph.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Name of the function this CFG belongs to.
    pub func: String,
    nodes: Vec<Node>,
    succs: Vec<Vec<(NodeId, EdgeKind)>>,
    preds: Vec<Vec<(NodeId, EdgeKind)>>,
    entry: NodeId,
    exit: NodeId,
}

impl Cfg {
    /// Builds the CFG of a function.
    pub fn build(f: &Function) -> Cfg {
        let mut b = Builder {
            nodes: Vec::new(),
            edges: Vec::new(),
            break_stack: Vec::new(),
            continue_stack: Vec::new(),
        };
        let entry = b.push(Node {
            role: NodeRole::Entry,
            stmt: None,
            line: f.span.start.line,
            tokens: entry_tokens(f),
            defs: f.params.iter().map(|p| p.name.clone()).collect(),
            uses: Vec::new(),
            calls: Vec::new(),
        });
        let exit = b.push(Node {
            role: NodeRole::Exit,
            stmt: None,
            line: f.span.end.line,
            tokens: vec!["}".into()],
            defs: Vec::new(),
            uses: Vec::new(),
            calls: Vec::new(),
        });
        let (_, frontier) = b.block(&f.body, vec![(entry, EdgeKind::Seq)], exit);
        for (n, k) in frontier {
            b.edges.push((n, exit, k));
        }
        let mut cfg = b.finish(f.name.clone(), entry, exit);
        cfg.ensure_exit_reachability();
        cfg
    }

    /// Number of nodes (including entry/exit).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no statement nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 2
    }

    /// Synthetic entry node.
    pub fn entry(&self) -> NodeId {
        self.entry
    }

    /// Synthetic exit node.
    pub fn exit(&self) -> NodeId {
        self.exit
    }

    /// The node data for `id`.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// All node ids in creation order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Successors of `id` with edge kinds.
    pub fn succs(&self, id: NodeId) -> &[(NodeId, EdgeKind)] {
        &self.succs[id.index()]
    }

    /// Predecessors of `id` with edge kinds.
    pub fn preds(&self, id: NodeId) -> &[(NodeId, EdgeKind)] {
        &self.preds[id.index()]
    }

    /// The first node (smallest id) on a given source line, if any.
    pub fn node_on_line(&self, line: u32) -> Option<NodeId> {
        self.node_ids().find(|id| self.node(*id).line == line)
    }

    /// Nodes in reverse post-order from entry (a topological-ish order good
    /// for forward dataflow).
    pub fn reverse_postorder(&self) -> Vec<NodeId> {
        let mut visited = vec![false; self.nodes.len()];
        let mut post = Vec::with_capacity(self.nodes.len());
        // Iterative DFS to avoid recursion limits on long functions.
        let mut stack: Vec<(NodeId, usize)> = vec![(self.entry, 0)];
        visited[self.entry.index()] = true;
        while let Some(&mut (n, ref mut i)) = stack.last_mut() {
            if *i < self.succs[n.index()].len() {
                let (m, _) = self.succs[n.index()][*i];
                *i += 1;
                if !visited[m.index()] {
                    visited[m.index()] = true;
                    stack.push((m, 0));
                }
            } else {
                post.push(n);
                stack.pop();
            }
        }
        post.reverse();
        post
    }

    /// Adds pseudo edges to `exit` from loop conditions trapped in infinite
    /// loops so post-dominance is well-defined everywhere.
    fn ensure_exit_reachability(&mut self) {
        loop {
            let reaches = self.reaches_exit();
            let offender = self
                .node_ids()
                .find(|id| !reaches[id.index()] && self.reachable_from_entry()[id.index()]);
            match offender {
                None => return,
                Some(first) => {
                    // Prefer a loop condition in the trapped region.
                    let trapped: Vec<NodeId> = self
                        .node_ids()
                        .filter(|id| {
                            !reaches[id.index()] && self.reachable_from_entry()[id.index()]
                        })
                        .collect();
                    let pick = trapped
                        .iter()
                        .copied()
                        .find(|id| self.node(*id).role == NodeRole::LoopCond)
                        .unwrap_or(first);
                    self.add_edge(pick, self.exit, EdgeKind::Pseudo);
                }
            }
        }
    }

    fn add_edge(&mut self, from: NodeId, to: NodeId, kind: EdgeKind) {
        self.succs[from.index()].push((to, kind));
        self.preds[to.index()].push((from, kind));
    }

    fn reaches_exit(&self) -> Vec<bool> {
        let mut seen = vec![false; self.nodes.len()];
        let mut q = VecDeque::new();
        seen[self.exit.index()] = true;
        q.push_back(self.exit);
        while let Some(n) = q.pop_front() {
            for &(p, _) in &self.preds[n.index()] {
                if !seen[p.index()] {
                    seen[p.index()] = true;
                    q.push_back(p);
                }
            }
        }
        seen
    }

    fn reachable_from_entry(&self) -> Vec<bool> {
        let mut seen = vec![false; self.nodes.len()];
        let mut q = VecDeque::new();
        seen[self.entry.index()] = true;
        q.push_back(self.entry);
        while let Some(n) = q.pop_front() {
            for &(s, _) in &self.succs[n.index()] {
                if !seen[s.index()] {
                    seen[s.index()] = true;
                    q.push_back(s);
                }
            }
        }
        seen
    }
}

fn entry_tokens(f: &Function) -> Vec<String> {
    let mut toks = vec![f.ret.to_string(), f.name.clone(), "(".into()];
    for (i, p) in f.params.iter().enumerate() {
        if i > 0 {
            toks.push(",".into());
        }
        toks.push(p.ty.to_string());
        toks.push(p.name.clone());
        for d in &p.array_dims {
            toks.push("[".into());
            if let Some(n) = d {
                toks.push(n.to_string());
            }
            toks.push("]".into());
        }
    }
    toks.push(")".into());
    toks.push("{".into());
    toks
}

struct Builder {
    nodes: Vec<Node>,
    edges: Vec<(NodeId, NodeId, EdgeKind)>,
    break_stack: Vec<Vec<NodeId>>,
    continue_stack: Vec<NodeId>,
}

/// Incoming dangling edges waiting for their destination node.
type Frontier = Vec<(NodeId, EdgeKind)>;

impl Builder {
    fn push(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    fn connect(&mut self, frontier: Frontier, to: NodeId) {
        for (from, kind) in frontier {
            self.edges.push((from, to, kind));
        }
    }

    /// Builds a block. Returns `(entry, frontier)`: `entry` is the first node
    /// created (None when the block contributed no nodes, in which case the
    /// incoming frontier is passed through as the outgoing frontier).
    fn block(&mut self, b: &Block, frontier: Frontier, exit: NodeId) -> (Option<NodeId>, Frontier) {
        let mut entry = None;
        let mut frontier = frontier;
        for s in &b.stmts {
            let (e, f) = self.stmt(s, frontier, exit);
            if entry.is_none() {
                entry = e;
            }
            frontier = f;
        }
        (entry, frontier)
    }

    fn plain_node(&mut self, s: &Stmt, du: DefUse) -> NodeId {
        self.push(Node {
            role: NodeRole::Plain,
            stmt: Some(s.id),
            line: s.span.start.line,
            tokens: stmt_tokens(s),
            defs: du.defs,
            uses: du.uses,
            calls: du.calls,
        })
    }

    fn cond_node(
        &mut self,
        role: NodeRole,
        stmt: StmtId,
        line: u32,
        tokens: Vec<String>,
        cond: Option<&Expr>,
    ) -> NodeId {
        let du = cond.map(DefUse::of_expr).unwrap_or_default();
        self.push(Node {
            role,
            stmt: Some(stmt),
            line,
            tokens,
            defs: du.defs,
            uses: du.uses,
            calls: du.calls,
        })
    }

    fn stmt(&mut self, s: &Stmt, frontier: Frontier, exit: NodeId) -> (Option<NodeId>, Frontier) {
        match &s.kind {
            StmtKind::Decl(d) => {
                let n = self.plain_node(s, DefUse::of_decl(d));
                self.connect(frontier, n);
                (Some(n), vec![(n, EdgeKind::Seq)])
            }
            StmtKind::Expr(e) => {
                let du = DefUse::of_expr(e);
                let noreturn = du.calls.iter().any(|c| is_noreturn(&c.callee));
                let n = self.plain_node(s, du);
                self.connect(frontier, n);
                if noreturn {
                    self.edges.push((n, exit, EdgeKind::Seq));
                    (Some(n), Vec::new())
                } else {
                    (Some(n), vec![(n, EdgeKind::Seq)])
                }
            }
            StmtKind::Block(b) => self.block(b, frontier, exit),
            StmtKind::Return(e) => {
                let du = e.as_ref().map(DefUse::of_expr).unwrap_or_default();
                let n = self.plain_node(s, du);
                self.connect(frontier, n);
                self.edges.push((n, exit, EdgeKind::Seq));
                (Some(n), Vec::new())
            }
            StmtKind::Break => {
                let n = self.plain_node(s, DefUse::default());
                self.connect(frontier, n);
                if let Some(top) = self.break_stack.last_mut() {
                    top.push(n);
                } else {
                    // Stray break: treat as return.
                    self.edges.push((n, exit, EdgeKind::Seq));
                }
                (Some(n), Vec::new())
            }
            StmtKind::Continue => {
                let n = self.plain_node(s, DefUse::default());
                self.connect(frontier, n);
                if let Some(&target) = self.continue_stack.last() {
                    self.edges.push((n, target, EdgeKind::Seq));
                } else {
                    self.edges.push((n, exit, EdgeKind::Seq));
                }
                (Some(n), Vec::new())
            }
            StmtKind::If {
                cond,
                then,
                else_ifs,
                else_block,
            } => {
                let head = self.cond_node(
                    NodeRole::IfCond,
                    s.id,
                    s.span.start.line,
                    stmt_tokens(s),
                    Some(cond),
                );
                self.connect(frontier, head);
                let mut out = Frontier::new();
                let (then_entry, then_out) = self.block(then, Vec::new(), exit);
                match then_entry {
                    Some(e) => {
                        self.edges.push((head, e, EdgeKind::True));
                        out.extend(then_out);
                    }
                    None => out.push((head, EdgeKind::True)),
                }
                let mut false_edge = (head, EdgeKind::False);
                for (i, ei) in else_ifs.iter().enumerate() {
                    let mut toks = vec!["}".into(), "else".into(), "if".into(), "(".into()];
                    expr_tokens(&ei.cond, &mut toks);
                    toks.push(")".into());
                    toks.push("{".into());
                    let c = self.cond_node(
                        NodeRole::ElseIfCond(i as u16),
                        s.id,
                        ei.span.start.line,
                        toks,
                        Some(&ei.cond),
                    );
                    self.edges.push((false_edge.0, c, false_edge.1));
                    let (arm_entry, arm_out) = self.block(&ei.body, Vec::new(), exit);
                    match arm_entry {
                        Some(e) => {
                            self.edges.push((c, e, EdgeKind::True));
                            out.extend(arm_out);
                        }
                        None => out.push((c, EdgeKind::True)),
                    }
                    false_edge = (c, EdgeKind::False);
                }
                match else_block {
                    Some(eb) => {
                        let (else_entry, else_out) = self.block(&eb.body, Vec::new(), exit);
                        match else_entry {
                            Some(e) => {
                                self.edges.push((false_edge.0, e, false_edge.1));
                                out.extend(else_out);
                            }
                            None => out.push(false_edge),
                        }
                    }
                    None => out.push(false_edge),
                }
                (Some(head), out)
            }
            StmtKind::While { cond, body } => {
                let head = self.cond_node(
                    NodeRole::LoopCond,
                    s.id,
                    s.span.start.line,
                    stmt_tokens(s),
                    Some(cond),
                );
                self.connect(frontier, head);
                self.break_stack.push(Vec::new());
                self.continue_stack.push(head);
                let (body_entry, body_out) = self.block(body, Vec::new(), exit);
                match body_entry {
                    Some(e) => self.edges.push((head, e, EdgeKind::True)),
                    None => self.edges.push((head, head, EdgeKind::True)),
                }
                self.connect(body_out, head);
                self.continue_stack.pop();
                let breaks = self.break_stack.pop().expect("pushed above");
                let mut out = vec![(head, EdgeKind::False)];
                out.extend(breaks.into_iter().map(|n| (n, EdgeKind::Seq)));
                (Some(head), out)
            }
            StmtKind::DoWhile { body, cond } => {
                let head = self.cond_node(
                    NodeRole::LoopCond,
                    s.id,
                    cond.span.start.line,
                    {
                        let mut toks = vec!["}".into(), "while".into(), "(".into()];
                        expr_tokens(cond, &mut toks);
                        toks.push(")".into());
                        toks.push(";".into());
                        toks
                    },
                    Some(cond),
                );
                self.break_stack.push(Vec::new());
                self.continue_stack.push(head);
                let (body_entry, body_out) = self.block(body, Vec::new(), exit);
                let body_target = body_entry.unwrap_or(head);
                self.connect(frontier, body_target);
                self.connect(body_out, head);
                self.edges.push((head, body_target, EdgeKind::True));
                self.continue_stack.pop();
                let breaks = self.break_stack.pop().expect("pushed above");
                let mut out = vec![(head, EdgeKind::False)];
                out.extend(breaks.into_iter().map(|n| (n, EdgeKind::Seq)));
                (Some(body_target), out)
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                let mut frontier = frontier;
                let mut first: Option<NodeId> = None;
                if let Some(init) = init {
                    let (e, f) = self.stmt(init, frontier, exit);
                    first = e;
                    frontier = f;
                }
                let head = self.cond_node(
                    NodeRole::LoopCond,
                    s.id,
                    s.span.start.line,
                    stmt_tokens(s),
                    cond.as_ref(),
                );
                self.connect(frontier, head);
                if first.is_none() {
                    first = Some(head);
                }
                let step_node = step.as_ref().map(|st| {
                    let mut toks = Vec::new();
                    expr_tokens(st, &mut toks);
                    toks.push(";".into());
                    let du = DefUse::of_expr(st);
                    self.push(Node {
                        role: NodeRole::ForStep,
                        stmt: Some(s.id),
                        line: st.span.start.line,
                        tokens: toks,
                        defs: du.defs,
                        uses: du.uses,
                        calls: du.calls,
                    })
                });
                let continue_target = step_node.unwrap_or(head);
                self.break_stack.push(Vec::new());
                self.continue_stack.push(continue_target);
                let (body_entry, body_out) = self.block(body, Vec::new(), exit);
                match body_entry {
                    Some(e) => self.edges.push((head, e, EdgeKind::True)),
                    None => self.edges.push((head, continue_target, EdgeKind::True)),
                }
                match step_node {
                    Some(sn) => {
                        self.connect(body_out, sn);
                        self.edges.push((sn, head, EdgeKind::Seq));
                    }
                    None => self.connect(body_out, head),
                }
                self.continue_stack.pop();
                let breaks = self.break_stack.pop().expect("pushed above");
                let mut out = vec![(head, EdgeKind::False)];
                out.extend(breaks.into_iter().map(|n| (n, EdgeKind::Seq)));
                (first, out)
            }
            StmtKind::Switch { scrutinee, cases } => {
                let head = self.cond_node(
                    NodeRole::SwitchHead,
                    s.id,
                    s.span.start.line,
                    stmt_tokens(s),
                    Some(scrutinee),
                );
                self.connect(frontier, head);
                self.break_stack.push(Vec::new());
                let mut pending: Frontier = Vec::new();
                let mut has_default = false;
                for (i, case) in cases.iter().enumerate() {
                    let dispatch = match case.label {
                        CaseLabel::Case(_) => EdgeKind::Case(i as u16),
                        CaseLabel::Default => {
                            has_default = true;
                            EdgeKind::Default
                        }
                    };
                    let mut incoming = pending;
                    incoming.push((head, dispatch));
                    let mut entry = None;
                    let mut f = incoming;
                    let mut produced = false;
                    for st in &case.body {
                        let (e, nf) = self.stmt(st, f, exit);
                        if entry.is_none() {
                            entry = e;
                        }
                        if e.is_some() {
                            produced = true;
                        }
                        f = nf;
                    }
                    let _ = produced;
                    let _ = entry;
                    pending = f;
                }
                let mut out = pending;
                if !has_default {
                    out.push((head, EdgeKind::Default));
                }
                let breaks = self.break_stack.pop().expect("pushed above");
                out.extend(breaks.into_iter().map(|n| (n, EdgeKind::Seq)));
                (Some(head), out)
            }
        }
    }

    fn finish(self, func: String, entry: NodeId, exit: NodeId) -> Cfg {
        let n = self.nodes.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        let mut seen = HashSet::new();
        for (a, b, k) in self.edges {
            if seen.insert((a, b, k)) {
                succs[a.index()].push((b, k));
                preds[b.index()].push((a, k));
            }
        }
        Cfg {
            func,
            nodes: self.nodes,
            succs,
            preds,
            entry,
            exit,
        }
    }
}

/// Builds CFGs for every function in a program, keyed by function name.
pub fn build_all(p: &Program) -> HashMap<String, Cfg> {
    p.functions()
        .map(|f| (f.name.clone(), Cfg::build(f)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sevuldet_lang::parse;

    fn cfg_of(src: &str, name: &str) -> Cfg {
        let p = parse(src).unwrap();
        Cfg::build(p.function(name).unwrap())
    }

    #[test]
    fn straight_line_chain() {
        let c = cfg_of("void f() { int a = 1; int b = a; g(b); }", "f");
        // entry, exit, 3 statements
        assert_eq!(c.len(), 5);
        // entry has one successor; chain ends at exit.
        assert_eq!(c.succs(c.entry()).len(), 1);
        let rpo = c.reverse_postorder();
        assert_eq!(rpo.first(), Some(&c.entry()));
        assert_eq!(rpo.last(), Some(&c.exit()));
    }

    #[test]
    fn if_has_true_and_false_edges() {
        let c = cfg_of("void f(int n) { if (n > 0) { g(); } h(); }", "f");
        let head = c
            .node_ids()
            .find(|id| c.node(*id).role == NodeRole::IfCond)
            .unwrap();
        let kinds: Vec<_> = c.succs(head).iter().map(|(_, k)| *k).collect();
        assert!(kinds.contains(&EdgeKind::True));
        assert!(kinds.contains(&EdgeKind::False));
    }

    #[test]
    fn else_if_chain_creates_separate_cond_nodes() {
        let src = "void f(int n) {\n  if (n < 0) { a(); }\n  else if (n < 10) { b(); }\n  else { c(); }\n}";
        let c = cfg_of(src, "f");
        let roles: Vec<_> = c.node_ids().map(|id| c.node(id).role).collect();
        assert!(roles.contains(&NodeRole::IfCond));
        assert!(roles.contains(&NodeRole::ElseIfCond(0)));
        let ei = c
            .node_ids()
            .find(|id| c.node(*id).role == NodeRole::ElseIfCond(0))
            .unwrap();
        assert_eq!(c.node(ei).line, 3);
        assert_eq!(c.node(ei).tokens[0], "}");
    }

    #[test]
    fn while_loop_has_back_edge() {
        let c = cfg_of("void f(int n) { while (n > 0) { n--; } }", "f");
        let head = c
            .node_ids()
            .find(|id| c.node(*id).role == NodeRole::LoopCond)
            .unwrap();
        let body = c
            .succs(head)
            .iter()
            .find(|(_, k)| *k == EdgeKind::True)
            .unwrap()
            .0;
        assert!(c.succs(body).iter().any(|(t, _)| *t == head));
    }

    #[test]
    fn for_loop_step_node_in_cycle() {
        let c = cfg_of(
            "void f(int n) { for (int i = 0; i < n; i++) { g(i); } }",
            "f",
        );
        let step = c
            .node_ids()
            .find(|id| c.node(*id).role == NodeRole::ForStep)
            .unwrap();
        let head = c
            .node_ids()
            .find(|id| c.node(*id).role == NodeRole::LoopCond)
            .unwrap();
        assert!(c.succs(step).iter().any(|(t, _)| *t == head));
        assert_eq!(c.node(step).defs, vec!["i"]);
    }

    #[test]
    fn do_while_executes_body_first() {
        let c = cfg_of("void f(int n) { do { n--; } while (n > 0); }", "f");
        // Entry's successor should be the body statement, not the condition.
        let (first, _) = c.succs(c.entry())[0];
        assert_eq!(c.node(first).role, NodeRole::Plain);
    }

    #[test]
    fn switch_dispatches_to_cases_with_fallthrough() {
        let src =
            "void f(int x) { switch (x) { case 1: a(); case 2: b(); break; default: d(); } e(); }";
        let c = cfg_of(src, "f");
        let head = c
            .node_ids()
            .find(|id| c.node(*id).role == NodeRole::SwitchHead)
            .unwrap();
        // head dispatches to case 0, case 1, and default.
        let kinds: HashSet<_> = c.succs(head).iter().map(|(_, k)| *k).collect();
        assert!(kinds.contains(&EdgeKind::Case(0)));
        assert!(kinds.contains(&EdgeKind::Case(1)));
        assert!(kinds.contains(&EdgeKind::Default));
        // a() falls through to b().
        c.node_on_line(1).map(|_| ()).and(Some(())).unwrap();
        let a_node = c
            .node_ids()
            .find(|id| c.node(*id).tokens.first().map(String::as_str) == Some("a"))
            .unwrap();
        let b_node = c
            .node_ids()
            .find(|id| c.node(*id).tokens.first().map(String::as_str) == Some("b"))
            .unwrap();
        assert!(c.succs(a_node).iter().any(|(t, _)| *t == b_node));
    }

    #[test]
    fn return_goes_to_exit() {
        let c = cfg_of("int f(int n) { if (n) { return 1; } return 0; }", "f");
        let rets: Vec<_> = c
            .node_ids()
            .filter(|id| c.node(*id).tokens.first().map(String::as_str) == Some("return"))
            .collect();
        assert_eq!(rets.len(), 2);
        for r in rets {
            assert!(c.succs(r).iter().any(|(t, _)| *t == c.exit()));
        }
    }

    #[test]
    fn break_leaves_loop() {
        let c = cfg_of(
            "void f(int n) { while (1) { if (n == 0) { break; } n--; } g(); }",
            "f",
        );
        let brk = c
            .node_ids()
            .find(|id| c.node(*id).tokens.first().map(String::as_str) == Some("break"))
            .unwrap();
        let g = c
            .node_ids()
            .find(|id| c.node(*id).tokens.first().map(String::as_str) == Some("g"))
            .unwrap();
        assert!(c.succs(brk).iter().any(|(t, _)| *t == g));
    }

    #[test]
    fn infinite_loop_still_reaches_exit() {
        // `while (1)` keeps its False edge (conditions are not folded), so
        // exit stays reachable without pseudo edges; the pseudo-edge
        // machinery is a backstop for graphs that lose that property.
        let c = cfg_of("void f() { while (1) { g(); } }", "f");
        let reaches = |start: NodeId| -> bool {
            let mut seen = vec![false; c.len()];
            let mut stack = vec![start];
            while let Some(n) = stack.pop() {
                if n == c.exit() {
                    return true;
                }
                if seen[n.index()] {
                    continue;
                }
                seen[n.index()] = true;
                stack.extend(c.succs(n).iter().map(|(t, _)| *t));
            }
            false
        };
        for id in c.node_ids() {
            assert!(reaches(id), "{id} must reach exit");
        }
        let rpo = c.reverse_postorder();
        assert!(rpo.contains(&c.exit()));
    }

    #[test]
    fn exit_call_has_no_fallthrough() {
        let c = cfg_of("void f(int n) { if (n) { exit(1); } g(); }", "f");
        let ex = c
            .node_ids()
            .find(|id| c.node(*id).tokens.first().map(String::as_str) == Some("exit"))
            .unwrap();
        assert_eq!(c.succs(ex).len(), 1);
        assert_eq!(c.succs(ex)[0].0, c.exit());
    }

    #[test]
    fn entry_defines_params() {
        let c = cfg_of("void f(char *dest, int n) { g(dest, n); }", "f");
        assert_eq!(c.node(c.entry()).defs, vec!["dest", "n"]);
    }

    #[test]
    fn continue_jumps_to_step_in_for() {
        let c = cfg_of(
            "void f(int n) { for (int i = 0; i < n; i++) { if (i == 2) { continue; } g(); } }",
            "f",
        );
        let cont = c
            .node_ids()
            .find(|id| c.node(*id).tokens.first().map(String::as_str) == Some("continue"))
            .unwrap();
        let step = c
            .node_ids()
            .find(|id| c.node(*id).role == NodeRole::ForStep)
            .unwrap();
        assert!(c.succs(cont).iter().any(|(t, _)| *t == step));
    }
}
