//! Models of C standard library / API functions.
//!
//! Mini-C has no headers, so dataflow through library calls is driven by this
//! table: for each known function we record which argument positions are
//! *outputs* (the call defines the pointed-to object), which are *inputs*,
//! and whether the function is considered dangerous by the classical
//! detectors (Flawfinder/RATS rules, reused by `sevuldet-static`).

/// Dataflow summary of a library function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LibFunc {
    /// Function name as it appears in source.
    pub name: &'static str,
    /// Argument indices (0-based) whose pointee is written by the call.
    pub out_params: &'static [usize],
    /// Whether the function allocates (returns fresh heap memory).
    pub allocates: bool,
    /// Whether the function frees its first pointer argument.
    pub frees: bool,
    /// Risk level assigned by lexical scanners (0 = benign, up to 5).
    pub risk: u8,
}

/// The library model table.
///
/// `out_params` follow the C standard: e.g. `strncpy(dest, src, n)` writes
/// through `dest` (index 0); `fgets(buf, n, f)` writes `buf`.
pub const LIB_FUNCS: &[LibFunc] = &[
    LibFunc {
        name: "strcpy",
        out_params: &[0],
        allocates: false,
        frees: false,
        risk: 5,
    },
    LibFunc {
        name: "strncpy",
        out_params: &[0],
        allocates: false,
        frees: false,
        risk: 3,
    },
    LibFunc {
        name: "strcat",
        out_params: &[0],
        allocates: false,
        frees: false,
        risk: 5,
    },
    LibFunc {
        name: "strncat",
        out_params: &[0],
        allocates: false,
        frees: false,
        risk: 3,
    },
    LibFunc {
        name: "sprintf",
        out_params: &[0],
        allocates: false,
        frees: false,
        risk: 5,
    },
    LibFunc {
        name: "snprintf",
        out_params: &[0],
        allocates: false,
        frees: false,
        risk: 2,
    },
    LibFunc {
        name: "gets",
        out_params: &[0],
        allocates: false,
        frees: false,
        risk: 5,
    },
    LibFunc {
        name: "fgets",
        out_params: &[0],
        allocates: false,
        frees: false,
        risk: 1,
    },
    LibFunc {
        name: "memcpy",
        out_params: &[0],
        allocates: false,
        frees: false,
        risk: 4,
    },
    LibFunc {
        name: "memmove",
        out_params: &[0],
        allocates: false,
        frees: false,
        risk: 3,
    },
    LibFunc {
        name: "memset",
        out_params: &[0],
        allocates: false,
        frees: false,
        risk: 2,
    },
    LibFunc {
        name: "bcopy",
        out_params: &[1],
        allocates: false,
        frees: false,
        risk: 4,
    },
    LibFunc {
        name: "scanf",
        out_params: &[1, 2, 3, 4],
        allocates: false,
        frees: false,
        risk: 4,
    },
    LibFunc {
        name: "sscanf",
        out_params: &[2, 3, 4, 5],
        allocates: false,
        frees: false,
        risk: 3,
    },
    LibFunc {
        name: "fscanf",
        out_params: &[2, 3, 4, 5],
        allocates: false,
        frees: false,
        risk: 3,
    },
    LibFunc {
        name: "read",
        out_params: &[1],
        allocates: false,
        frees: false,
        risk: 3,
    },
    LibFunc {
        name: "recv",
        out_params: &[1],
        allocates: false,
        frees: false,
        risk: 3,
    },
    LibFunc {
        name: "fread",
        out_params: &[0],
        allocates: false,
        frees: false,
        risk: 2,
    },
    LibFunc {
        name: "malloc",
        out_params: &[],
        allocates: true,
        frees: false,
        risk: 2,
    },
    LibFunc {
        name: "calloc",
        out_params: &[],
        allocates: true,
        frees: false,
        risk: 1,
    },
    LibFunc {
        name: "realloc",
        out_params: &[],
        allocates: true,
        frees: true,
        risk: 3,
    },
    LibFunc {
        name: "free",
        out_params: &[],
        allocates: false,
        frees: true,
        risk: 2,
    },
    LibFunc {
        name: "strlen",
        out_params: &[],
        allocates: false,
        frees: false,
        risk: 1,
    },
    LibFunc {
        name: "strcmp",
        out_params: &[],
        allocates: false,
        frees: false,
        risk: 0,
    },
    LibFunc {
        name: "strncmp",
        out_params: &[],
        allocates: false,
        frees: false,
        risk: 0,
    },
    LibFunc {
        name: "strchr",
        out_params: &[],
        allocates: false,
        frees: false,
        risk: 0,
    },
    LibFunc {
        name: "strdup",
        out_params: &[],
        allocates: true,
        frees: false,
        risk: 2,
    },
    LibFunc {
        name: "atoi",
        out_params: &[],
        allocates: false,
        frees: false,
        risk: 2,
    },
    LibFunc {
        name: "atol",
        out_params: &[],
        allocates: false,
        frees: false,
        risk: 2,
    },
    LibFunc {
        name: "getenv",
        out_params: &[],
        allocates: false,
        frees: false,
        risk: 3,
    },
    LibFunc {
        name: "printf",
        out_params: &[],
        allocates: false,
        frees: false,
        risk: 1,
    },
    LibFunc {
        name: "fprintf",
        out_params: &[],
        allocates: false,
        frees: false,
        risk: 1,
    },
    LibFunc {
        name: "puts",
        out_params: &[],
        allocates: false,
        frees: false,
        risk: 0,
    },
    LibFunc {
        name: "exit",
        out_params: &[],
        allocates: false,
        frees: false,
        risk: 0,
    },
    LibFunc {
        name: "abort",
        out_params: &[],
        allocates: false,
        frees: false,
        risk: 0,
    },
    LibFunc {
        name: "rand",
        out_params: &[],
        allocates: false,
        frees: false,
        risk: 1,
    },
    LibFunc {
        name: "memcmp",
        out_params: &[],
        allocates: false,
        frees: false,
        risk: 0,
    },
    LibFunc {
        name: "alloca",
        out_params: &[],
        allocates: true,
        frees: false,
        risk: 4,
    },
];

/// Looks up a library function model by name.
pub fn lib_func(name: &str) -> Option<&'static LibFunc> {
    LIB_FUNCS.iter().find(|f| f.name == name)
}

/// Whether `name` is a modelled library/API function.
pub fn is_lib_func(name: &str) -> bool {
    lib_func(name).is_some()
}

/// Whether the function terminates the program (CFG should treat the call as
/// having no fallthrough successor). Kept conservative: only `exit`/`abort`.
pub fn is_noreturn(name: &str) -> bool {
    matches!(name, "exit" | "abort")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_known_and_unknown() {
        assert!(is_lib_func("strncpy"));
        assert!(!is_lib_func("my_helper"));
        assert_eq!(lib_func("strncpy").unwrap().out_params, &[0]);
        assert!(lib_func("malloc").unwrap().allocates);
        assert!(lib_func("free").unwrap().frees);
    }

    #[test]
    fn risk_ordering_gets_worse_than_fgets() {
        assert!(lib_func("gets").unwrap().risk > lib_func("fgets").unwrap().risk);
    }

    #[test]
    fn table_has_no_duplicates() {
        let mut names: Vec<_> = LIB_FUNCS.iter().map(|f| f.name).collect();
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n);
    }
}
