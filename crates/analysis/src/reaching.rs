//! Reaching definitions and data dependence (Definition 2 of the paper).
//!
//! A statement `s_b` is data dependent on `s_a` when a definition of some
//! variable at `s_a` reaches a use of that variable at `s_b`. Computed with a
//! classic forward may-analysis over the CFG.

use crate::cfg::{Cfg, NodeId};
use std::collections::{HashMap, HashSet};

/// A data-dependence edge: `from` defines `var`, which `to` uses.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DataDep {
    /// Defining node.
    pub from: NodeId,
    /// Using node.
    pub to: NodeId,
    /// The variable carried by the dependence.
    pub var: String,
}

/// Computes all data-dependence edges of a CFG.
pub fn data_deps(cfg: &Cfg) -> Vec<DataDep> {
    // IN/OUT: var -> set of defining nodes.
    type Defs = HashMap<String, HashSet<NodeId>>;
    let n = cfg.len();
    let mut out: Vec<Defs> = vec![Defs::new(); n];
    let order = cfg.reverse_postorder();

    let transfer = |cfg: &Cfg, node: NodeId, input: &Defs| -> Defs {
        let data = cfg.node(node);
        let mut o = input.clone();
        for d in &data.defs {
            let e = o.entry(d.clone()).or_default();
            e.clear();
            e.insert(node);
        }
        o
    };

    let mut changed = true;
    while changed {
        changed = false;
        for &node in &order {
            // Meet: union of predecessor OUTs.
            let mut input = Defs::new();
            for &(p, _) in cfg.preds(node) {
                for (var, defs) in &out[p.index()] {
                    input.entry(var.clone()).or_default().extend(defs.iter());
                }
            }
            let new_out = transfer(cfg, node, &input);
            if new_out != out[node.index()] {
                out[node.index()] = new_out;
                changed = true;
            }
        }
    }

    // Edges: for each node's uses, the defs reaching its input.
    let mut edges = HashSet::new();
    for node in cfg.node_ids() {
        let data = cfg.node(node);
        if data.uses.is_empty() {
            continue;
        }
        let mut input = Defs::new();
        for &(p, _) in cfg.preds(node) {
            for (var, defs) in &out[p.index()] {
                input.entry(var.clone()).or_default().extend(defs.iter());
            }
        }
        for u in &data.uses {
            if let Some(defs) = input.get(u) {
                for &d in defs {
                    if d != node {
                        edges.insert(DataDep {
                            from: d,
                            to: node,
                            var: u.clone(),
                        });
                    }
                }
            }
        }
        // Self-loop dependences (e.g. `n--` in a loop) matter for slices of
        // loop-carried state: a node that both defs and uses a var inside a
        // cycle depends on itself via the back edge. Detect by checking the
        // node's own OUT reaching back around; covered above when d != node
        // is relaxed for cyclic paths — keep it simple and skip self-edges.
    }
    let mut v: Vec<_> = edges.into_iter().collect();
    v.sort_by_key(|e| (e.from, e.to, e.var.clone()));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use sevuldet_lang::parse;

    fn analyze(src: &str) -> (Cfg, Vec<DataDep>) {
        let p = parse(src).unwrap();
        let cfg = Cfg::build(p.functions().next().unwrap());
        let deps = data_deps(&cfg);
        (cfg, deps)
    }

    fn node_with(cfg: &Cfg, tok: &str) -> NodeId {
        cfg.node_ids()
            .find(|id| cfg.node(*id).tokens.first().map(String::as_str) == Some(tok))
            .unwrap_or_else(|| panic!("no node starting with {tok}"))
    }

    #[test]
    fn def_reaches_use() {
        let (cfg, deps) = analyze("void f() { int x = 1; g(x); }");
        let def = node_with(&cfg, "int");
        let use_ = node_with(&cfg, "g");
        assert!(deps.contains(&DataDep {
            from: def,
            to: use_,
            var: "x".into()
        }));
    }

    #[test]
    fn redefinition_kills() {
        let (cfg, deps) = analyze("void f() { int x = 1; x = 2; g(x); }");
        let first = node_with(&cfg, "int");
        let use_ = node_with(&cfg, "g");
        assert!(
            !deps.iter().any(|d| d.from == first && d.to == use_),
            "killed def must not reach"
        );
    }

    #[test]
    fn both_branches_reach_join() {
        let (cfg, deps) =
            analyze("void f(int c) { int x; if (c) { x = 1; } else { x = 2; } g(x); }");
        let use_ = node_with(&cfg, "g");
        let sources: Vec<_> = deps
            .iter()
            .filter(|d| d.to == use_ && d.var == "x")
            .collect();
        assert_eq!(sources.len(), 2, "defs from both arms reach the join use");
    }

    #[test]
    fn param_def_flows_from_entry() {
        let (cfg, deps) = analyze("void f(int n) { g(n); }");
        let use_ = node_with(&cfg, "g");
        assert!(deps
            .iter()
            .any(|d| d.from == cfg.entry() && d.to == use_ && d.var == "n"));
    }

    #[test]
    fn loop_carried_dependence() {
        let (cfg, deps) = analyze("void f(int n) { while (n > 0) { n = n - 1; } g(n); }");
        let dec = node_with(&cfg, "n");
        let head = cfg
            .node_ids()
            .find(|id| cfg.node(*id).tokens.first().map(String::as_str) == Some("while"))
            .unwrap();
        // The decrement feeds the loop condition around the back edge.
        assert!(deps
            .iter()
            .any(|d| d.from == dec && d.to == head && d.var == "n"));
    }

    #[test]
    fn strncpy_def_feeds_return() {
        let (cfg, deps) = analyze(
            "char *f(char *dest, char *data, int n) { strncpy(dest, data, n); return dest; }",
        );
        let cp = node_with(&cfg, "strncpy");
        let ret = node_with(&cfg, "return");
        assert!(deps
            .iter()
            .any(|d| d.from == cp && d.to == ret && d.var == "dest"));
    }
}
