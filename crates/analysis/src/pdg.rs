//! Program Dependence Graphs (Definition 6 of the paper).
//!
//! A [`Pdg`] packages a function's CFG with its data-dependence edges and
//! control-dependence relation — the standard Ferrante-Ottenstein-Warren
//! construction the paper obtains from Joern.

use crate::cfg::{Cfg, EdgeKind, NodeId};
use crate::control_dep::ControlDeps;
use crate::postdom::PostDom;
use crate::reaching::{data_deps, DataDep};
use sevuldet_lang::ast::Function;
use std::collections::HashMap;

/// The program dependence graph of one function.
#[derive(Debug, Clone)]
pub struct Pdg {
    /// The underlying CFG (owns node text, lines, def/use sets, calls).
    pub cfg: Cfg,
    /// All data-dependence edges.
    pub data: Vec<DataDep>,
    /// The control-dependence relation.
    pub control: ControlDeps,
    data_succs: HashMap<NodeId, Vec<(NodeId, String)>>,
    data_preds: HashMap<NodeId, Vec<(NodeId, String)>>,
}

impl Pdg {
    /// Builds the PDG of a function: CFG → post-dominators → control deps →
    /// reaching definitions.
    pub fn build(f: &Function) -> Pdg {
        let cfg = Cfg::build(f);
        Self::from_cfg(cfg)
    }

    /// Builds a PDG from an already-constructed CFG.
    pub fn from_cfg(cfg: Cfg) -> Pdg {
        let pd = PostDom::compute(&cfg);
        let control = ControlDeps::compute(&cfg, &pd);
        let data = data_deps(&cfg);
        let mut data_succs: HashMap<NodeId, Vec<(NodeId, String)>> = HashMap::new();
        let mut data_preds: HashMap<NodeId, Vec<(NodeId, String)>> = HashMap::new();
        for d in &data {
            data_succs
                .entry(d.from)
                .or_default()
                .push((d.to, d.var.clone()));
            data_preds
                .entry(d.to)
                .or_default()
                .push((d.from, d.var.clone()));
        }
        Pdg {
            cfg,
            data,
            control,
            data_succs,
            data_preds,
        }
    }

    /// Nodes whose value flows *from* `n` (forward data dependence).
    pub fn data_succs(&self, n: NodeId) -> &[(NodeId, String)] {
        self.data_succs.get(&n).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Nodes whose value flows *into* `n` (backward data dependence).
    pub fn data_preds(&self, n: NodeId) -> &[(NodeId, String)] {
        self.data_preds.get(&n).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The branch nodes `n` is control dependent on.
    pub fn control_preds(&self, n: NodeId) -> Vec<NodeId> {
        self.control.deps_of(n).iter().map(|(a, _)| *a).collect()
    }

    /// Nodes control dependent on `n`.
    pub fn control_succs(&self, n: NodeId) -> Vec<NodeId> {
        self.cfg
            .node_ids()
            .filter(|m| self.control.depends(*m, n))
            .collect()
    }

    /// All dependence successors (data + control) of `n`.
    pub fn succs_all(&self, n: NodeId) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.data_succs(n).iter().map(|(m, _)| *m).collect();
        v.extend(self.control_succs(n));
        v.sort_unstable();
        v.dedup();
        v
    }

    /// All dependence predecessors (data + control) of `n`.
    pub fn preds_all(&self, n: NodeId) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.data_preds(n).iter().map(|(m, _)| *m).collect();
        v.extend(self.control_preds(n));
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Whether branch `a` guards `b` and with which branch kinds.
    pub fn control_edge_kinds(&self, b: NodeId, a: NodeId) -> Vec<EdgeKind> {
        self.control
            .deps_of(b)
            .iter()
            .filter(|(n, _)| *n == a)
            .map(|(_, k)| *k)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sevuldet_lang::parse;

    fn pdg_of(src: &str) -> Pdg {
        let p = parse(src).unwrap();
        let pdg = Pdg::build(p.functions().next().unwrap());
        pdg
    }

    fn node_with(pdg: &Pdg, tok: &str) -> NodeId {
        pdg.cfg
            .node_ids()
            .find(|id| pdg.cfg.node(*id).tokens.first().map(String::as_str) == Some(tok))
            .unwrap_or_else(|| panic!("no node starting with {tok}"))
    }

    #[test]
    fn fig1_guarded_strncpy_pdg_shape() {
        // The motivating example: strncpy guarded by `if (n < 10)`.
        let src = r#"
void copy(char *dest, char *data, int n) {
    if (n < 10) {
        strncpy(dest, data, n);
    }
}
"#;
        let pdg = pdg_of(src);
        let guard = node_with(&pdg, "if");
        let copy = node_with(&pdg, "strncpy");
        // strncpy is control dependent on the guard...
        assert!(pdg.control_preds(copy).contains(&guard));
        // ...and data dependent on the parameters (entry).
        assert!(pdg
            .data_preds(copy)
            .iter()
            .any(|(n, v)| *n == pdg.cfg.entry() && v == "n"));
    }

    #[test]
    fn succs_and_preds_are_inverse() {
        let src = "void f(int n) { int x = n; if (x > 0) { g(x); } }";
        let pdg = pdg_of(src);
        for a in pdg.cfg.node_ids() {
            for b in pdg.succs_all(a) {
                assert!(pdg.preds_all(b).contains(&a), "succ/pred must be symmetric");
            }
        }
    }

    #[test]
    fn control_edge_kind_of_else_arm() {
        let pdg = pdg_of("void f(int n) { if (n) { a(); } else { b(); } }");
        let head = node_with(&pdg, "if");
        let b = node_with(&pdg, "b");
        assert_eq!(pdg.control_edge_kinds(b, head), vec![EdgeKind::False]);
    }
}
