//! Post-dominator computation (Cooper-Harvey-Kennedy on the reverse CFG).
//!
//! Post-dominance underpins control dependence (Ferrante-Ottenstein-Warren):
//! node `b` is control dependent on branch `a` exactly when `a` has one
//! successor that `b` post-dominates and another it does not.

use crate::cfg::{Cfg, NodeId};

/// The immediate-post-dominator tree of a CFG.
#[derive(Debug, Clone)]
pub struct PostDom {
    /// `ipdom[n]` = immediate post-dominator of node `n` (`None` only for the
    /// exit node).
    ipdom: Vec<Option<NodeId>>,
}

impl PostDom {
    /// Computes post-dominators for `cfg`.
    ///
    /// The CFG guarantees every node reaches exit (pseudo edges are added for
    /// infinite loops), so the iteration converges with all nodes assigned.
    pub fn compute(cfg: &Cfg) -> PostDom {
        // Reverse post-order on the *reverse* graph = post-order from exit.
        let order = reverse_graph_rpo(cfg);
        let mut index_of = vec![usize::MAX; cfg.len()];
        for (i, n) in order.iter().enumerate() {
            index_of[n.index()] = i;
        }
        let mut ipdom: Vec<Option<usize>> = vec![None; cfg.len()];
        ipdom[cfg.exit().index()] = Some(index_of[cfg.exit().index()]);

        let intersect = |ipdom: &[Option<usize>], mut a: usize, mut b: usize| -> usize {
            // Walk up by RPO index; smaller index = closer to exit.
            while a != b {
                while a > b {
                    a = ipdom[order[a].index()].expect("processed");
                }
                while b > a {
                    b = ipdom[order[b].index()].expect("processed");
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for (i, &n) in order.iter().enumerate() {
                if n == cfg.exit() {
                    continue;
                }
                // "Predecessors" in the reverse graph = successors in the CFG.
                let mut new_idom: Option<usize> = None;
                for &(s, _) in cfg.succs(n) {
                    let si = index_of[s.index()];
                    if si == usize::MAX {
                        continue; // successor not on any exit path (shouldn't happen)
                    }
                    if ipdom[s.index()].is_some() {
                        new_idom = Some(match new_idom {
                            None => si,
                            Some(cur) => intersect(&ipdom, cur, si),
                        });
                    }
                }
                if let Some(nd) = new_idom {
                    if ipdom[n.index()] != Some(nd) {
                        ipdom[n.index()] = Some(nd);
                        changed = true;
                    }
                }
                let _ = i;
            }
        }

        let ipdom = (0..cfg.len())
            .map(|n| {
                if n == cfg.exit().index() {
                    None
                } else {
                    ipdom[n].map(|i| order[i])
                }
            })
            .collect();
        PostDom { ipdom }
    }

    /// Immediate post-dominator of `n` (`None` for the exit node).
    pub fn ipdom(&self, n: NodeId) -> Option<NodeId> {
        self.ipdom[n.index()]
    }

    /// Whether `a` post-dominates `b` (reflexive).
    pub fn post_dominates(&self, a: NodeId, b: NodeId) -> bool {
        let mut cur = Some(b);
        while let Some(n) = cur {
            if n == a {
                return true;
            }
            cur = self.ipdom(n);
        }
        false
    }
}

/// Reverse post-order of the reverse graph, starting from exit. Nodes that
/// cannot reach exit are omitted (the CFG prevents this by construction).
fn reverse_graph_rpo(cfg: &Cfg) -> Vec<NodeId> {
    let mut visited = vec![false; cfg.len()];
    let mut post = Vec::with_capacity(cfg.len());
    let mut stack: Vec<(NodeId, usize)> = vec![(cfg.exit(), 0)];
    visited[cfg.exit().index()] = true;
    while let Some(top) = stack.last_mut() {
        let (n, i) = (top.0, top.1);
        if i < cfg.preds(n).len() {
            top.1 += 1;
            let (m, _) = cfg.preds(n)[i];
            if !visited[m.index()] {
                visited[m.index()] = true;
                stack.push((m, 0));
            }
        } else {
            post.push(n);
            stack.pop();
        }
    }
    post.reverse();
    post
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::NodeRole;
    use sevuldet_lang::parse;

    fn cfg_of(src: &str) -> Cfg {
        let p = parse(src).unwrap();
        let cfg = Cfg::build(p.functions().next().unwrap());
        cfg
    }

    #[test]
    fn straight_line_ipdom_is_successor() {
        let c = cfg_of("void f() { a(); b(); }");
        let pd = PostDom::compute(&c);
        let a = c
            .node_ids()
            .find(|id| c.node(*id).tokens.first().map(String::as_str) == Some("a"))
            .unwrap();
        let b = c
            .node_ids()
            .find(|id| c.node(*id).tokens.first().map(String::as_str) == Some("b"))
            .unwrap();
        assert_eq!(pd.ipdom(a), Some(b));
        assert_eq!(pd.ipdom(b), Some(c.exit()));
        assert!(pd.post_dominates(c.exit(), c.entry()));
    }

    #[test]
    fn join_point_post_dominates_branch() {
        let c = cfg_of("void f(int n) { if (n) { a(); } else { b(); } j(); }");
        let pd = PostDom::compute(&c);
        let head = c
            .node_ids()
            .find(|id| c.node(*id).role == NodeRole::IfCond)
            .unwrap();
        let j = c
            .node_ids()
            .find(|id| c.node(*id).tokens.first().map(String::as_str) == Some("j"))
            .unwrap();
        assert_eq!(pd.ipdom(head), Some(j));
        let a = c
            .node_ids()
            .find(|id| c.node(*id).tokens.first().map(String::as_str) == Some("a"))
            .unwrap();
        assert!(!pd.post_dominates(a, head));
        assert!(pd.post_dominates(j, head));
    }

    #[test]
    fn loop_body_does_not_postdominate_condition() {
        let c = cfg_of("void f(int n) { while (n) { n--; } g(); }");
        let pd = PostDom::compute(&c);
        let head = c
            .node_ids()
            .find(|id| c.node(*id).role == NodeRole::LoopCond)
            .unwrap();
        let body = c
            .node_ids()
            .find(|id| c.node(*id).tokens.first().map(String::as_str) == Some("n"))
            .unwrap();
        assert!(!pd.post_dominates(body, head));
    }

    #[test]
    fn every_non_exit_node_has_ipdom() {
        let src = "void f(int n) { for (int i = 0; i < n; i++) { if (i % 2) { continue; } g(i); } while (1) { h(); } }";
        let c = cfg_of(src);
        let pd = PostDom::compute(&c);
        for id in c.node_ids() {
            if id != c.exit() {
                assert!(pd.ipdom(id).is_some(), "node {id} lacks ipdom");
            }
        }
    }
}
