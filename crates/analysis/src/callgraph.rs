//! Call graph over a mini-C program.
//!
//! Used by inter-procedural slicing (Step I.3/I.4): when a sliced statement
//! calls a user-defined function, the slicer descends into the callee; when a
//! function's parameter is in a slice, the slicer ascends to call sites.

use crate::cfg::{Cfg, NodeId};
use sevuldet_lang::ast::Program;
use std::collections::HashMap;

/// One call site in the program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Calling function's name.
    pub caller: String,
    /// Called function's name.
    pub callee: String,
    /// CFG node of the calling statement (within the caller's CFG).
    pub node: NodeId,
    /// Identifiers appearing in each argument.
    pub arg_idents: Vec<Vec<String>>,
    /// 1-based source line of the call.
    pub line: u32,
}

/// Call graph: all call sites plus caller/callee indices.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    sites: Vec<CallSite>,
    by_caller: HashMap<String, Vec<usize>>,
    by_callee: HashMap<String, Vec<usize>>,
    params: HashMap<String, Vec<String>>,
}

impl CallGraph {
    /// Builds the call graph from a program and its per-function CFGs.
    pub fn build(program: &Program, cfgs: &HashMap<String, Cfg>) -> CallGraph {
        let mut g = CallGraph::default();
        for f in program.functions() {
            g.params.insert(
                f.name.clone(),
                f.params.iter().map(|p| p.name.clone()).collect(),
            );
        }
        for (fname, cfg) in cfgs {
            for id in cfg.node_ids() {
                for call in &cfg.node(id).calls {
                    let idx = g.sites.len();
                    g.sites.push(CallSite {
                        caller: fname.clone(),
                        callee: call.callee.clone(),
                        node: id,
                        arg_idents: call.arg_idents.clone(),
                        line: call.line,
                    });
                    g.by_caller.entry(fname.clone()).or_default().push(idx);
                    g.by_callee
                        .entry(call.callee.clone())
                        .or_default()
                        .push(idx);
                }
            }
        }
        g
    }

    /// All call sites.
    pub fn sites(&self) -> &[CallSite] {
        &self.sites
    }

    /// Call sites within `caller`.
    pub fn calls_from(&self, caller: &str) -> impl Iterator<Item = &CallSite> {
        self.by_caller
            .get(caller)
            .into_iter()
            .flatten()
            .map(move |&i| &self.sites[i])
    }

    /// Call sites that invoke `callee`.
    pub fn calls_to(&self, callee: &str) -> impl Iterator<Item = &CallSite> {
        self.by_callee
            .get(callee)
            .into_iter()
            .flatten()
            .map(move |&i| &self.sites[i])
    }

    /// Parameter names of a user-defined function, if it exists.
    pub fn params_of(&self, func: &str) -> Option<&[String]> {
        self.params.get(func).map(Vec::as_slice)
    }

    /// Whether `name` is a user-defined function in this program.
    pub fn is_user_func(&self, name: &str) -> bool {
        self.params.contains_key(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::build_all;
    use sevuldet_lang::parse;

    #[test]
    fn builds_sites_and_indices() {
        let src = r#"
void leaf(char *buf, int n) { memset(buf, 0, n); }
void mid(char *buf, int n) { leaf(buf, n); leaf(buf, n + 1); }
int main() { char b[8]; mid(b, 8); return 0; }
"#;
        let p = parse(src).unwrap();
        let cfgs = build_all(&p);
        let g = CallGraph::build(&p, &cfgs);
        assert_eq!(g.calls_to("leaf").count(), 2);
        assert_eq!(g.calls_from("mid").count(), 2);
        assert_eq!(g.calls_to("mid").count(), 1);
        assert_eq!(g.params_of("leaf").unwrap(), &["buf", "n"]);
        assert!(g.is_user_func("mid"));
        assert!(!g.is_user_func("memset"));
        // Library calls are still recorded as sites.
        assert_eq!(g.calls_to("memset").count(), 1);
        let site = g.calls_to("mid").next().unwrap();
        assert_eq!(site.caller, "main");
        assert_eq!(site.arg_idents[0], vec!["b"]);
    }
}
