//! Control dependence (Ferrante-Ottenstein-Warren).
//!
//! For each CFG edge `(a → b)` where `b` does not post-dominate `a`, every
//! node on the post-dominator-tree path from `b` up to (but excluding)
//! `ipdom(a)` is control dependent on `a`. This is Definition 3 of the paper
//! made precise.

use crate::cfg::{Cfg, EdgeKind, NodeId};
use crate::postdom::PostDom;
use std::collections::HashSet;

/// The control-dependence relation of one CFG.
#[derive(Debug, Clone)]
pub struct ControlDeps {
    /// `deps[n]` = the branch nodes `n` is control dependent on, with the
    /// branch edge kind that leads to `n`.
    deps: Vec<Vec<(NodeId, EdgeKind)>>,
}

impl ControlDeps {
    /// Computes control dependences from a CFG and its post-dominator tree.
    pub fn compute(cfg: &Cfg, pd: &PostDom) -> ControlDeps {
        let mut deps: Vec<HashSet<(NodeId, EdgeKind)>> = vec![HashSet::new(); cfg.len()];
        for a in cfg.node_ids() {
            for &(b, kind) in cfg.succs(a) {
                if pd.post_dominates(b, a) {
                    continue;
                }
                // Walk up from b to ipdom(a), exclusive.
                let stop = pd.ipdom(a);
                let mut cur = Some(b);
                while let Some(n) = cur {
                    if Some(n) == stop {
                        break;
                    }
                    deps[n.index()].insert((a, kind));
                    cur = pd.ipdom(n);
                }
            }
        }
        ControlDeps {
            deps: deps
                .into_iter()
                .map(|s| {
                    let mut v: Vec<_> = s.into_iter().collect();
                    v.sort_by_key(|(n, _)| *n);
                    v
                })
                .collect(),
        }
    }

    /// The branch nodes `n` is control dependent on.
    pub fn deps_of(&self, n: NodeId) -> &[(NodeId, EdgeKind)] {
        &self.deps[n.index()]
    }

    /// Whether `n` is control dependent on `on`.
    pub fn depends(&self, n: NodeId, on: NodeId) -> bool {
        self.deps[n.index()].iter().any(|(a, _)| *a == on)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::NodeRole;
    use sevuldet_lang::parse;

    fn analyze(src: &str) -> (Cfg, ControlDeps) {
        let p = parse(src).unwrap();
        let cfg = Cfg::build(p.functions().next().unwrap());
        let pd = PostDom::compute(&cfg);
        let cd = ControlDeps::compute(&cfg, &pd);
        (cfg, cd)
    }

    fn find(cfg: &Cfg, tok: &str) -> NodeId {
        cfg.node_ids()
            .find(|id| cfg.node(*id).tokens.first().map(String::as_str) == Some(tok))
            .unwrap_or_else(|| panic!("no node starting with {tok}"))
    }

    #[test]
    fn then_branch_depends_on_if() {
        let (cfg, cd) = analyze("void f(int n) { if (n) { a(); } j(); }");
        let head = cfg
            .node_ids()
            .find(|id| cfg.node(*id).role == NodeRole::IfCond)
            .unwrap();
        let a = find(&cfg, "a");
        let j = find(&cfg, "j");
        assert!(cd.depends(a, head));
        assert_eq!(
            cd.deps_of(a)[0].1,
            EdgeKind::True,
            "then-arm is the true edge"
        );
        assert!(!cd.depends(j, head), "join point is not control dependent");
    }

    #[test]
    fn else_branch_has_false_edge_kind() {
        let (cfg, cd) = analyze("void f(int n) { if (n) { a(); } else { b(); } }");
        let head = cfg
            .node_ids()
            .find(|id| cfg.node(*id).role == NodeRole::IfCond)
            .unwrap();
        let b = find(&cfg, "b");
        let dep = cd
            .deps_of(b)
            .iter()
            .find(|(n, _)| *n == head)
            .expect("b depends on if head");
        assert_eq!(dep.1, EdgeKind::False);
    }

    #[test]
    fn loop_body_depends_on_loop_cond_and_cond_on_itself() {
        let (cfg, cd) = analyze("void f(int n) { while (n) { n--; } }");
        let head = cfg
            .node_ids()
            .find(|id| cfg.node(*id).role == NodeRole::LoopCond)
            .unwrap();
        let body = find(&cfg, "n");
        assert!(cd.depends(body, head));
        // Classic FOW result: a loop condition is control dependent on itself.
        assert!(cd.depends(head, head));
    }

    #[test]
    fn nested_if_dependencies_chain() {
        let (cfg, cd) = analyze("void f(int a, int b) { if (a) { if (b) { x(); } } }");
        let heads: Vec<_> = cfg
            .node_ids()
            .filter(|id| cfg.node(*id).role == NodeRole::IfCond)
            .collect();
        assert_eq!(heads.len(), 2);
        let x = find(&cfg, "x");
        // x depends on the inner if; the inner if depends on the outer.
        assert!(cd.depends(x, heads[1]));
        assert!(cd.depends(heads[1], heads[0]));
        assert!(!cd.depends(x, heads[0]) || cd.depends(x, heads[0]));
    }

    #[test]
    fn switch_case_depends_on_head() {
        let (cfg, cd) =
            analyze("void f(int x) { switch (x) { case 1: a(); break; default: b(); } j(); }");
        let head = cfg
            .node_ids()
            .find(|id| cfg.node(*id).role == NodeRole::SwitchHead)
            .unwrap();
        let a = find(&cfg, "a");
        let b = find(&cfg, "b");
        let j = find(&cfg, "j");
        assert!(cd.depends(a, head));
        assert!(cd.depends(b, head));
        assert!(!cd.depends(j, head));
    }

    #[test]
    fn else_if_arm_depends_on_its_own_condition() {
        let (cfg, cd) = analyze(
            "void f(int n) { if (n < 0) { a(); } else if (n > 10) { b(); } else { c(); } }",
        );
        let ei = cfg
            .node_ids()
            .find(|id| matches!(cfg.node(*id).role, NodeRole::ElseIfCond(_)))
            .unwrap();
        let b = find(&cfg, "b");
        let c = find(&cfg, "c");
        assert!(cd.depends(b, ei));
        assert!(cd.depends(c, ei), "else arm depends on last else-if cond");
    }
}
