//! Control ranges of key nodes (Algorithm 1, lines 4-18).
//!
//! A *key node* is one of the eight control statements (`if`, `else if`,
//! `else`, `for`, `while`, `do while`, `switch`, `case`); its *control range*
//! is the `[min line, max line]` interval of the AST subtree it roots.
//! Ranges in one `if`/`else if`/`else` chain (or one `switch` and its cases)
//! are *bound* together (lines 9-11): when the gadget needs one arm's range
//! it also keeps the chain's delimiters so scopes never overlap vaguely.
//!
//! Lines 15-18 of Algorithm 1 repair wrong start/end correspondences with a
//! symbol stack; [`symbolic_ranges`] reimplements that brace-matching pass on
//! raw source text, and [`reconcile`] merges it with the AST-derived ranges.

use sevuldet_lang::ast::{CaseLabel, Function, Stmt, StmtKind};
use std::fmt;

/// The eight key-node kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RangeKind {
    /// `if`
    If,
    /// `else if`
    ElseIf,
    /// `else`
    Else,
    /// `for`
    For,
    /// `while`
    While,
    /// `do while`
    DoWhile,
    /// `switch`
    Switch,
    /// `case` / `default`
    Case,
}

impl fmt::Display for RangeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RangeKind::If => "if",
            RangeKind::ElseIf => "else if",
            RangeKind::Else => "else",
            RangeKind::For => "for",
            RangeKind::While => "while",
            RangeKind::DoWhile => "do while",
            RangeKind::Switch => "switch",
            RangeKind::Case => "case",
        };
        f.write_str(s)
    }
}

/// One key node's control range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControlRange {
    /// Which of the eight kinds this is.
    pub kind: RangeKind,
    /// Line of the key node's header (the `if (...)` line itself).
    pub header_line: u32,
    /// First line of the range.
    pub start_line: u32,
    /// Last line of the range (the closing delimiter).
    pub end_line: u32,
    /// Binding group: ranges of the same `if` chain / `switch` share an id,
    /// so inserting one arm keeps the chain's delimiters (Alg. 1 lines 9-11).
    pub group: u32,
    /// Nesting depth (0 = directly inside the function body).
    pub depth: u32,
}

impl ControlRange {
    /// Whether `line` lies inside the range (inclusive).
    pub fn contains(&self, line: u32) -> bool {
        self.start_line <= line && line <= self.end_line
    }
}

/// Collects the control ranges of every key node in a function, in
/// source order.
pub fn control_ranges(f: &Function) -> Vec<ControlRange> {
    let mut out = Vec::new();
    let mut group = 0u32;
    for s in &f.body.stmts {
        walk(s, 0, &mut group, &mut out);
    }
    out.sort_by_key(|r| (r.start_line, r.end_line));
    out
}

fn walk(s: &Stmt, depth: u32, group: &mut u32, out: &mut Vec<ControlRange>) {
    match &s.kind {
        StmtKind::If {
            then,
            else_ifs,
            else_block,
            ..
        } => {
            *group += 1;
            let g = *group;
            out.push(ControlRange {
                kind: RangeKind::If,
                header_line: s.span.start.line,
                start_line: s.span.start.line,
                end_line: then.span.end.line,
                group: g,
                depth,
            });
            for ei in else_ifs {
                out.push(ControlRange {
                    kind: RangeKind::ElseIf,
                    header_line: ei.span.start.line,
                    start_line: ei.span.start.line,
                    end_line: ei.body.span.end.line,
                    group: g,
                    depth,
                });
                for st in &ei.body.stmts {
                    walk(st, depth + 1, group, out);
                }
            }
            if let Some(eb) = else_block {
                out.push(ControlRange {
                    kind: RangeKind::Else,
                    header_line: eb.span.start.line,
                    start_line: eb.span.start.line,
                    end_line: eb.body.span.end.line,
                    group: g,
                    depth,
                });
                for st in &eb.body.stmts {
                    walk(st, depth + 1, group, out);
                }
            }
            for st in &then.stmts {
                walk(st, depth + 1, group, out);
            }
        }
        StmtKind::While { body, .. } => {
            *group += 1;
            out.push(ControlRange {
                kind: RangeKind::While,
                header_line: s.span.start.line,
                start_line: s.span.start.line,
                end_line: s.span.end.line,
                group: *group,
                depth,
            });
            for st in &body.stmts {
                walk(st, depth + 1, group, out);
            }
        }
        StmtKind::DoWhile { body, .. } => {
            *group += 1;
            out.push(ControlRange {
                kind: RangeKind::DoWhile,
                header_line: s.span.start.line,
                start_line: s.span.start.line,
                end_line: s.span.end.line,
                group: *group,
                depth,
            });
            for st in &body.stmts {
                walk(st, depth + 1, group, out);
            }
        }
        StmtKind::For { body, init, .. } => {
            *group += 1;
            out.push(ControlRange {
                kind: RangeKind::For,
                header_line: s.span.start.line,
                start_line: s.span.start.line,
                end_line: s.span.end.line,
                group: *group,
                depth,
            });
            if let Some(init) = init {
                walk(init, depth + 1, group, out);
            }
            for st in &body.stmts {
                walk(st, depth + 1, group, out);
            }
        }
        StmtKind::Switch { cases, .. } => {
            *group += 1;
            let g = *group;
            out.push(ControlRange {
                kind: RangeKind::Switch,
                header_line: s.span.start.line,
                start_line: s.span.start.line,
                end_line: s.span.end.line,
                group: g,
                depth,
            });
            for c in cases {
                let is_case = matches!(c.label, CaseLabel::Case(_) | CaseLabel::Default);
                if is_case {
                    out.push(ControlRange {
                        kind: RangeKind::Case,
                        header_line: c.span.start.line,
                        start_line: c.span.start.line,
                        end_line: c.span.end.line,
                        group: g,
                        depth,
                    });
                }
                for st in &c.body {
                    walk(st, depth + 1, group, out);
                }
            }
        }
        StmtKind::Block(b) => {
            for st in &b.stmts {
                walk(st, depth + 1, group, out);
            }
        }
        _ => {}
    }
}

/// Brace-matched `{`..`}` line ranges recovered from raw source with a symbol
/// stack — the "symbolic match via Stack" of Algorithm 1 line 15. Returned in
/// order of the opening brace.
pub fn symbolic_ranges(src: &str) -> Vec<(u32, u32)> {
    let mut stack: Vec<u32> = Vec::new();
    let mut out = Vec::new();
    let mut line: u32 = 1;
    let mut chars = src.chars().peekable();
    let mut in_str = false;
    let mut in_chr = false;
    let mut in_line_comment = false;
    let mut in_block_comment = false;
    while let Some(c) = chars.next() {
        match c {
            '\n' => {
                line += 1;
                in_line_comment = false;
            }
            _ if in_line_comment => {}
            '*' if in_block_comment && chars.peek() == Some(&'/') => {
                chars.next();
                in_block_comment = false;
            }
            _ if in_block_comment => {}
            '\\' if in_str || in_chr => {
                chars.next();
            }
            '"' if !in_chr => in_str = !in_str,
            '\'' if !in_str => in_chr = !in_chr,
            _ if in_str || in_chr => {}
            '/' if chars.peek() == Some(&'/') => in_line_comment = true,
            '/' if chars.peek() == Some(&'*') => {
                chars.next();
                in_block_comment = true;
            }
            '{' => stack.push(line),
            '}' => {
                if let Some(open) = stack.pop() {
                    out.push((open, line));
                }
            }
            _ => {}
        }
    }
    out.sort_unstable();
    out
}

/// Fixes wrong start/end correspondences (Algorithm 1 lines 16-18): for each
/// AST-derived range whose start line matches a symbolic brace range, extend
/// the end to the symbolic match (`m_a[1] ← Max(m_a[1], m_b[1])`).
pub fn reconcile(ranges: &mut [ControlRange], symbolic: &[(u32, u32)]) {
    for r in ranges.iter_mut() {
        for &(open, close) in symbolic {
            if open == r.start_line || open == r.header_line {
                r.end_line = r.end_line.max(close);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sevuldet_lang::parse;

    const SAMPLE: &str = r#"void f(char *dest, char *data, int n) {
    int m = n + 1;
    if (n < 0) {
        m = 0;
    } else if (n < 16) {
        m = n;
    } else {
        m = 16;
        strncpy(dest, data, m);
    }
    g(dest);
}"#;

    #[test]
    fn chain_ranges_bound_in_one_group() {
        let p = parse(SAMPLE).unwrap();
        let f = p.function("f").unwrap();
        let rs = control_ranges(f);
        assert_eq!(rs.len(), 3);
        assert_eq!(rs[0].kind, RangeKind::If);
        assert_eq!(rs[1].kind, RangeKind::ElseIf);
        assert_eq!(rs[2].kind, RangeKind::Else);
        assert_eq!(rs[0].group, rs[1].group);
        assert_eq!(rs[1].group, rs[2].group);
        // The paper's example shape: else-if covers its header..body-end,
        // else covers its header..body-end.
        assert_eq!(rs[0].start_line, 3);
        assert_eq!(rs[1].start_line, 5);
        assert_eq!(rs[2].start_line, 7);
        assert_eq!(rs[2].end_line, 10);
        assert!(rs[2].contains(9), "strncpy line inside else range");
    }

    #[test]
    fn nested_ranges_have_increasing_depth() {
        let src = "void f(int n) {\n  while (n) {\n    if (n > 2) {\n      n--;\n    }\n  }\n}";
        let p = parse(src).unwrap();
        let rs = control_ranges(p.function("f").unwrap());
        let w = rs.iter().find(|r| r.kind == RangeKind::While).unwrap();
        let i = rs.iter().find(|r| r.kind == RangeKind::If).unwrap();
        assert_eq!(w.depth, 0);
        assert_eq!(i.depth, 1);
        assert!(w.start_line <= i.start_line && i.end_line <= w.end_line);
    }

    #[test]
    fn switch_and_cases_share_group() {
        let src = "void f(int x) {\n  switch (x) {\n  case 1:\n    a();\n    break;\n  default:\n    b();\n  }\n}";
        let p = parse(src).unwrap();
        let rs = control_ranges(p.function("f").unwrap());
        let sw = rs.iter().find(|r| r.kind == RangeKind::Switch).unwrap();
        let cases: Vec<_> = rs.iter().filter(|r| r.kind == RangeKind::Case).collect();
        assert_eq!(cases.len(), 2);
        for c in cases {
            assert_eq!(c.group, sw.group);
        }
    }

    #[test]
    fn symbolic_ranges_match_braces() {
        let rs = symbolic_ranges(SAMPLE);
        // Function body 1..12, then 3..5, else-if 5..7, else 7..10.
        assert!(rs.contains(&(1, 12)));
        assert!(rs.contains(&(3, 5)));
        assert!(rs.contains(&(5, 7)));
        assert!(rs.contains(&(7, 10)));
    }

    #[test]
    fn symbolic_ranges_ignore_braces_in_strings_and_comments() {
        let src = "void f() {\n  g(\"{\");\n  // }\n  /* { */\n  h('{');\n}";
        let rs = symbolic_ranges(src);
        assert_eq!(rs, vec![(1, 6)]);
    }

    #[test]
    fn reconcile_extends_truncated_range() {
        let p = parse(SAMPLE).unwrap();
        let mut rs = control_ranges(p.function("f").unwrap());
        // Sabotage the else range's end, as a mis-parse would.
        let idx = rs.iter().position(|r| r.kind == RangeKind::Else).unwrap();
        rs[idx].end_line = rs[idx].start_line;
        let sym = symbolic_ranges(SAMPLE);
        reconcile(&mut rs, &sym);
        assert_eq!(rs[idx].end_line, 10);
    }
}
