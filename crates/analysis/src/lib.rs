//! # sevuldet-analysis
//!
//! Static-analysis substrate for the SEVulDet reproduction: per-function
//! control-flow graphs, post-dominators, control dependence
//! (Ferrante-Ottenstein-Warren), reaching definitions / data dependence,
//! program dependence graphs ([`Pdg`], Definition 6 of the paper), call
//! graphs, and the control-range table that Algorithm 1's path-sensitive
//! slicing consumes.
//!
//! The paper obtains PDGs from Joern; this crate is the from-scratch
//! replacement built directly on `sevuldet-lang`'s AST.
//!
//! ## Example
//!
//! ```
//! use sevuldet_analysis::{Pdg, ranges::control_ranges};
//!
//! let src = r#"
//! void copy(char *dest, char *data, int n) {
//!     if (n < 10) {
//!         strncpy(dest, data, n);
//!     }
//! }
//! "#;
//! let program = sevuldet_lang::parse(src).unwrap();
//! let f = program.function("copy").unwrap();
//! let pdg = Pdg::build(f);
//! assert!(pdg.data.len() > 0);
//! let ranges = control_ranges(f);
//! assert_eq!(ranges.len(), 1); // the `if`
//! ```

pub mod callgraph;
pub mod cfg;
pub mod control_dep;
pub mod defuse;
pub mod libmodel;
pub mod pdg;
pub mod postdom;
pub mod ranges;
pub mod reaching;

pub use callgraph::CallGraph;
pub use cfg::{Cfg, EdgeKind, Node, NodeId, NodeRole};
pub use control_dep::ControlDeps;
pub use defuse::DefUse;
pub use pdg::Pdg;
pub use postdom::PostDom;
pub use ranges::{control_ranges, ControlRange, RangeKind};
pub use reaching::{data_deps, DataDep};

use sevuldet_lang::ast::Program;
use std::collections::HashMap;

/// Whole-program analysis bundle: one [`Pdg`] per function plus the
/// [`CallGraph`].
#[derive(Debug, Clone)]
pub struct ProgramAnalysis {
    /// PDG per function name.
    pub pdgs: HashMap<String, Pdg>,
    /// The program's call graph.
    pub callgraph: CallGraph,
}

impl ProgramAnalysis {
    /// Analyzes every function of a program.
    pub fn analyze(program: &Program) -> ProgramAnalysis {
        let _t = sevuldet_trace::span!("analysis");
        let cfgs = {
            let _t = sevuldet_trace::span!("analysis.cfg");
            cfg::build_all(program)
        };
        let callgraph = {
            let _t = sevuldet_trace::span!("analysis.callgraph");
            CallGraph::build(program, &cfgs)
        };
        let pdgs = {
            let _t = sevuldet_trace::span!("analysis.pdg");
            cfgs.into_iter()
                .map(|(name, cfg)| (name, Pdg::from_cfg(cfg)))
                .collect()
        };
        ProgramAnalysis { pdgs, callgraph }
    }

    /// The PDG of `func`, if the function exists.
    pub fn pdg(&self, func: &str) -> Option<&Pdg> {
        self.pdgs.get(func)
    }
}
