//! Per-statement def/use extraction.
//!
//! Computes, for an expression or declaration, the set of variables it
//! *defines* (writes) and *uses* (reads), plus the calls it makes. Library
//! calls consult [`crate::libmodel`] so that e.g. `strncpy(dest, data, n)`
//! counts as a definition of `dest` and uses of `data` and `n` — exactly the
//! dataflow the paper's Fig. 1 slices rely on.

use crate::libmodel::lib_func;
use sevuldet_lang::ast::{Decl, Expr, ExprKind, SizeofArg, UnaryOp};

/// A call site observed inside one statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallInfo {
    /// Callee name.
    pub callee: String,
    /// For each argument, the identifiers appearing in it (in order).
    pub arg_idents: Vec<Vec<String>>,
    /// 1-based source line of the call.
    pub line: u32,
}

/// Accumulated defs/uses/calls of one statement-sized piece of AST.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DefUse {
    /// Variables written.
    pub defs: Vec<String>,
    /// Variables read.
    pub uses: Vec<String>,
    /// Calls made.
    pub calls: Vec<CallInfo>,
}

impl DefUse {
    /// Collects defs/uses/calls of an expression evaluated for its value
    /// (and side effects).
    pub fn of_expr(e: &Expr) -> DefUse {
        let mut du = DefUse::default();
        du.expr(e, false);
        du.dedup();
        du
    }

    /// Collects defs/uses of a declaration (`T x = init;` defines `x`).
    pub fn of_decl(d: &Decl) -> DefUse {
        let mut du = DefUse::default();
        if let Some(init) = &d.init {
            du.expr(init, false);
        }
        du.defs.push(d.name.clone());
        du.dedup();
        du
    }

    fn dedup(&mut self) {
        dedup_keep_order(&mut self.defs);
        dedup_keep_order(&mut self.uses);
    }

    /// Visits `e`. When `as_target` is true the expression is the target of
    /// an assignment: a bare identifier becomes a def; projections
    /// (`a[i]`, `p->f`, `*p`) become a def *and* use of the root variable
    /// (weak update) plus uses of any index subexpressions.
    fn expr(&mut self, e: &Expr, as_target: bool) {
        match &e.kind {
            ExprKind::IntLit(_) | ExprKind::CharLit(_) | ExprKind::StrLit(_) => {}
            ExprKind::Ident(n) => {
                if as_target {
                    self.defs.push(n.clone());
                } else {
                    self.uses.push(n.clone());
                }
            }
            ExprKind::Unary { op, expr } => {
                if *op == UnaryOp::Deref && as_target {
                    // `*p = v` writes through p: def pointee (modelled as p),
                    // and reads p itself.
                    if let Some(root) = expr.root_var() {
                        self.defs.push(root.to_string());
                    }
                    self.expr(expr, false);
                } else {
                    self.expr(expr, false);
                }
            }
            ExprKind::Binary { lhs, rhs, .. } => {
                self.expr(lhs, false);
                self.expr(rhs, false);
            }
            ExprKind::Assign { op, target, value } => {
                self.expr(value, false);
                self.expr(target, true);
                // Compound assignment also reads the target.
                if op.binary_op().is_some() {
                    self.expr(target, false);
                }
            }
            ExprKind::Ternary {
                cond,
                then_expr,
                else_expr,
            } => {
                self.expr(cond, false);
                self.expr(then_expr, false);
                self.expr(else_expr, false);
            }
            ExprKind::Call { callee, args } => {
                let model = lib_func(callee);
                let mut arg_idents = Vec::with_capacity(args.len());
                for (i, a) in args.iter().enumerate() {
                    arg_idents.push(collect_idents(a));
                    let is_out = model.is_some_and(|m| m.out_params.contains(&i));
                    if is_out {
                        if let Some(root) = a.root_var() {
                            self.defs.push(root.to_string());
                        }
                        self.expr(a, false);
                    } else if let ExprKind::Unary {
                        op: UnaryOp::AddrOf,
                        expr,
                    } = &a.kind
                    {
                        // `f(&x)`: x may be written by the callee.
                        if let Some(root) = expr.root_var() {
                            self.defs.push(root.to_string());
                            self.uses.push(root.to_string());
                        }
                    } else {
                        self.expr(a, false);
                    }
                }
                // `free(p)` both uses p and changes its state; model as
                // def+use so the PDG links the free to later uses.
                if model.is_some_and(|m| m.frees) {
                    if let Some(first) = args.first() {
                        if let Some(root) = first.root_var() {
                            self.defs.push(root.to_string());
                        }
                    }
                }
                self.calls.push(CallInfo {
                    callee: callee.clone(),
                    arg_idents,
                    line: e.span.start.line,
                });
            }
            ExprKind::Index { base, index } => {
                if as_target {
                    if let Some(root) = base.root_var() {
                        self.defs.push(root.to_string());
                    }
                    self.expr(base, false);
                } else {
                    self.expr(base, false);
                }
                self.expr(index, false);
            }
            ExprKind::Member { base, .. } => {
                if as_target {
                    if let Some(root) = base.root_var() {
                        self.defs.push(root.to_string());
                    }
                    self.expr(base, false);
                } else {
                    self.expr(base, false);
                }
            }
            ExprKind::Cast { expr, .. } => self.expr(expr, as_target),
            ExprKind::Sizeof(arg) => {
                // `sizeof e` does not evaluate e, but its identifiers are
                // still semantically linked; record them as uses.
                if let SizeofArg::Expr(e) = arg {
                    self.expr(e, false);
                }
            }
            ExprKind::PreIncDec { expr, .. } | ExprKind::PostIncDec { expr, .. } => {
                if let Some(root) = expr.root_var() {
                    self.defs.push(root.to_string());
                }
                self.expr(expr, false);
            }
            ExprKind::Comma { lhs, rhs } => {
                self.expr(lhs, false);
                self.expr(rhs, false);
            }
        }
    }
}

fn collect_idents(e: &Expr) -> Vec<String> {
    let mut v = sevuldet_lang::visit::expr_idents(e);
    dedup_keep_order(&mut v);
    v
}

fn dedup_keep_order(v: &mut Vec<String>) {
    let mut seen = std::collections::HashSet::new();
    v.retain(|s| seen.insert(s.clone()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use sevuldet_lang::ast::StmtKind;
    use sevuldet_lang::parse;

    fn expr_du(src: &str) -> DefUse {
        let full = format!("void t() {{ {src} }}");
        let p = parse(&full).unwrap();
        let f = p.function("t").unwrap();
        match &f.body.stmts[0].kind {
            StmtKind::Expr(e) => DefUse::of_expr(e),
            StmtKind::Decl(d) => DefUse::of_decl(d),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn simple_assignment() {
        let du = expr_du("x = y + z;");
        assert_eq!(du.defs, vec!["x"]);
        assert_eq!(du.uses, vec!["y", "z"]);
    }

    #[test]
    fn compound_assignment_reads_target() {
        let du = expr_du("x += y;");
        assert_eq!(du.defs, vec!["x"]);
        assert!(du.uses.contains(&"x".to_string()));
        assert!(du.uses.contains(&"y".to_string()));
    }

    #[test]
    fn array_store_is_weak_update() {
        let du = expr_du("buf[i] = v;");
        assert_eq!(du.defs, vec!["buf"]);
        assert!(du.uses.contains(&"buf".to_string()));
        assert!(du.uses.contains(&"i".to_string()));
        assert!(du.uses.contains(&"v".to_string()));
    }

    #[test]
    fn strncpy_defines_dest() {
        let du = expr_du("strncpy(dest, data, n);");
        assert_eq!(du.defs, vec!["dest"]);
        assert!(du.uses.contains(&"data".to_string()));
        assert!(du.uses.contains(&"n".to_string()));
        assert_eq!(du.calls.len(), 1);
        assert_eq!(du.calls[0].callee, "strncpy");
        assert_eq!(du.calls[0].arg_idents[0], vec!["dest"]);
    }

    #[test]
    fn addrof_arg_to_unknown_fn_is_def_and_use() {
        let du = expr_du("parse_header(&hdr, len);");
        assert!(du.defs.contains(&"hdr".to_string()));
        assert!(du.uses.contains(&"hdr".to_string()));
        assert!(du.uses.contains(&"len".to_string()));
    }

    #[test]
    fn free_defines_pointer_state() {
        let du = expr_du("free(p);");
        assert!(du.defs.contains(&"p".to_string()));
        assert!(du.uses.contains(&"p".to_string()));
    }

    #[test]
    fn decl_with_malloc_defines_name() {
        let du = expr_du("char *p = malloc(n);");
        assert_eq!(du.defs, vec!["p"]);
        assert!(du.uses.contains(&"n".to_string()));
        assert_eq!(du.calls[0].callee, "malloc");
    }

    #[test]
    fn deref_store() {
        let du = expr_du("*p = v;");
        assert!(du.defs.contains(&"p".to_string()));
        assert!(du.uses.contains(&"p".to_string()));
        assert!(du.uses.contains(&"v".to_string()));
    }

    #[test]
    fn incdec_defines_and_uses() {
        let du = expr_du("i++;");
        assert_eq!(du.defs, vec!["i"]);
        assert_eq!(du.uses, vec!["i"]);
    }
}
