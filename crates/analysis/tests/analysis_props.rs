//! Property-based tests of the dependence analyses over randomly generated
//! structured programs (a local generator — the dataset crate depends on
//! this one, so it cannot be used here).

use proptest::prelude::*;
use sevuldet_analysis::cfg::NodeRole;
use sevuldet_analysis::{Cfg, ControlDeps, Pdg, PostDom};

/// A tiny structured-program generator: nested if/while/for blocks over a
/// fixed variable pool.
#[derive(Debug, Clone)]
enum GenStmt {
    Assign(u8, u8, u8),
    Call(u8),
    If(Vec<GenStmt>, Vec<GenStmt>),
    While(u8, Vec<GenStmt>),
    For(Vec<GenStmt>),
    Return(u8),
    Break,
    Continue,
}

fn gen_stmt(depth: u32) -> BoxedStrategy<GenStmt> {
    let leaf = prop_oneof![
        (0u8..4, 0u8..4, 0u8..4).prop_map(|(a, b, c)| GenStmt::Assign(a, b, c)),
        (0u8..4).prop_map(GenStmt::Call),
        (0u8..4).prop_map(GenStmt::Return),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    prop_oneof![
        4 => leaf,
        1 => (
            proptest::collection::vec(gen_stmt(depth - 1), 1..3),
            proptest::collection::vec(gen_stmt(depth - 1), 0..3)
        )
            .prop_map(|(t, e)| GenStmt::If(t, e)),
        1 => (0u8..4, proptest::collection::vec(gen_stmt(depth - 1), 1..3))
            .prop_map(|(v, mut b)| {
                // Sprinkle loop-control statements so break/continue edges
                // are exercised too.
                if v % 3 == 0 {
                    b.push(GenStmt::Break);
                } else if v % 3 == 1 {
                    b.push(GenStmt::Continue);
                }
                GenStmt::While(v, b)
            }),
        1 => proptest::collection::vec(gen_stmt(depth - 1), 1..3).prop_map(GenStmt::For),
    ]
    .boxed()
}

fn render(stmts: &[GenStmt], indent: usize, out: &mut String, in_loop: bool) {
    let pad = "    ".repeat(indent);
    for s in stmts {
        match s {
            GenStmt::Assign(a, b, c) => {
                out.push_str(&format!("{pad}v{a} = v{b} + v{c} + 1;\n"));
            }
            GenStmt::Call(a) => out.push_str(&format!("{pad}printf(\"%d\", v{a});\n")),
            GenStmt::If(t, e) => {
                out.push_str(&format!("{pad}if (v0 > v1) {{\n"));
                render(t, indent + 1, out, in_loop);
                if e.is_empty() {
                    out.push_str(&format!("{pad}}}\n"));
                } else {
                    out.push_str(&format!("{pad}}} else {{\n"));
                    render(e, indent + 1, out, in_loop);
                    out.push_str(&format!("{pad}}}\n"));
                }
            }
            GenStmt::While(v, b) => {
                out.push_str(&format!("{pad}while (v{v} > 0) {{\n"));
                out.push_str(&format!("{pad}    v{v} = v{v} - 1;\n"));
                render(b, indent + 1, out, true);
                out.push_str(&format!("{pad}}}\n"));
            }
            GenStmt::For(b) => {
                out.push_str(&format!("{pad}for (int i = 0; i < v2; i++) {{\n"));
                render(b, indent + 1, out, true);
                out.push_str(&format!("{pad}}}\n"));
            }
            GenStmt::Return(v) => out.push_str(&format!("{pad}return v{v};\n")),
            GenStmt::Break if in_loop => out.push_str(&format!("{pad}break;\n")),
            GenStmt::Continue if in_loop => out.push_str(&format!("{pad}continue;\n")),
            _ => {}
        }
    }
}

fn program_source(stmts: &[GenStmt]) -> String {
    let mut out = String::from("int f(int v0, int v1, int v2, int v3) {\n");
    render(stmts, 1, &mut out, false);
    out.push_str("    return v0;\n}\n");
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Structural invariants over arbitrary structured CFGs.
    #[test]
    fn cfg_invariants(stmts in proptest::collection::vec(gen_stmt(3), 1..6)) {
        let src = program_source(&stmts);
        let p = sevuldet_lang::parse(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
        let f = p.functions().next().expect("one function");
        let cfg = Cfg::build(f);
        // Entry has no predecessors; exit no successors.
        prop_assert!(cfg.preds(cfg.entry()).is_empty());
        prop_assert!(cfg.succs(cfg.exit()).is_empty());
        // succ/pred symmetry.
        for a in cfg.node_ids() {
            for &(b, k) in cfg.succs(a) {
                prop_assert!(cfg.preds(b).contains(&(a, k)));
            }
        }
        // Reverse postorder starts at entry and covers exit.
        let rpo = cfg.reverse_postorder();
        prop_assert_eq!(rpo.first(), Some(&cfg.entry()));
        prop_assert!(rpo.contains(&cfg.exit()));
    }

    /// Every non-exit node has an immediate post-dominator, the ipdom chain
    /// reaches exit, and exit post-dominates everything.
    #[test]
    fn postdominators_well_formed(stmts in proptest::collection::vec(gen_stmt(3), 1..6)) {
        let src = program_source(&stmts);
        let p = sevuldet_lang::parse(&src).unwrap();
        let f = p.functions().next().expect("one function");
        let cfg = Cfg::build(f);
        let pd = PostDom::compute(&cfg);
        for n in cfg.node_ids() {
            if n == cfg.exit() {
                prop_assert!(pd.ipdom(n).is_none());
                continue;
            }
            let mut cur = n;
            let mut hops = 0;
            while let Some(next) = pd.ipdom(cur) {
                cur = next;
                hops += 1;
                prop_assert!(hops <= cfg.len(), "ipdom chain must be acyclic");
            }
            prop_assert_eq!(cur, cfg.exit(), "chain from {} ends at exit", n);
            prop_assert!(pd.post_dominates(cfg.exit(), n));
        }
    }

    /// Control dependence only ever points at branch nodes, and no node is
    /// control dependent on entry or exit.
    #[test]
    fn control_deps_point_at_branches(stmts in proptest::collection::vec(gen_stmt(3), 1..6)) {
        let src = program_source(&stmts);
        let p = sevuldet_lang::parse(&src).unwrap();
        let f = p.functions().next().expect("one function");
        let cfg = Cfg::build(f);
        let pd = PostDom::compute(&cfg);
        let cd = ControlDeps::compute(&cfg, &pd);
        for n in cfg.node_ids() {
            for &(a, _) in cd.deps_of(n) {
                let role = cfg.node(a).role;
                prop_assert!(role.is_branch(), "dep of {n} on non-branch {a} ({role:?})");
            }
        }
    }

    /// Data-dependence edges always connect a def of the variable to a use
    /// of it.
    #[test]
    fn data_deps_connect_defs_to_uses(stmts in proptest::collection::vec(gen_stmt(3), 1..6)) {
        let src = program_source(&stmts);
        let p = sevuldet_lang::parse(&src).unwrap();
        let f = p.functions().next().expect("one function");
        let pdg = Pdg::build(f);
        for d in &pdg.data {
            let from = pdg.cfg.node(d.from);
            let to = pdg.cfg.node(d.to);
            prop_assert!(from.defs.contains(&d.var), "{} not defined at source", d.var);
            prop_assert!(to.uses.contains(&d.var), "{} not used at sink", d.var);
            prop_assert!(!matches!(to.role, NodeRole::Entry | NodeRole::Exit));
        }
    }
}
