//! Integration tests of the dependence analyses on realistic shapes:
//! loops with guards, switch dispatch, interprocedural call graphs, and the
//! control-range table Algorithm 1 consumes.

use sevuldet_analysis::ranges::{control_ranges, reconcile, symbolic_ranges, RangeKind};
use sevuldet_analysis::{NodeId, Pdg, ProgramAnalysis};

fn pdg(src: &str, func: &str) -> Pdg {
    let p = sevuldet_lang::parse(src).unwrap();
    let built = Pdg::build(p.function(func).unwrap());
    built
}

fn node(pdg: &Pdg, first_token: &str) -> NodeId {
    pdg.cfg
        .node_ids()
        .find(|id| pdg.cfg.node(*id).tokens.first().map(String::as_str) == Some(first_token))
        .unwrap_or_else(|| panic!("no node starting with {first_token}"))
}

#[test]
fn guard_chain_controls_exactly_its_arms() {
    let src = r#"void f(int n) {
    if (n < 0) {
        a();
    } else if (n < 10) {
        b();
    } else {
        c();
    }
    d();
}"#;
    let pdg = pdg(src, "f");
    let d = node(&pdg, "d");
    assert!(
        pdg.control_preds(d).is_empty(),
        "post-chain statement is unconditional"
    );
    for arm in ["a", "b", "c"] {
        let n = node(&pdg, arm);
        assert!(!pdg.control_preds(n).is_empty(), "{arm} is guarded");
    }
}

#[test]
fn loop_carried_and_guard_dependences_compose() {
    let src = r#"void f(int n) {
    int sum = 0;
    for (int i = 0; i < n; i++) {
        if (i % 2 == 0) {
            sum = sum + i;
        }
    }
    g(sum);
}"#;
    let pdg = pdg(src, "f");
    let update = node(&pdg, "sum");
    let use_ = node(&pdg, "g");
    // The accumulated value reaches the final use...
    assert!(pdg
        .data_preds(use_)
        .iter()
        .any(|(n, v)| *n == update && v == "sum"));
    // ...and the guarding is *chained* (FOW control dependence is direct,
    // not transitive): the update depends on the parity test, which in turn
    // depends on the loop condition.
    let guards = pdg.control_preds(update);
    assert_eq!(guards.len(), 1, "direct guard only");
    let parity = guards[0];
    assert!(pdg.cfg.node(parity).tokens.contains(&"if".to_string()));
    let outer = pdg.control_preds(parity);
    assert!(outer
        .iter()
        .any(|&n| pdg.cfg.node(n).tokens.first().map(String::as_str) == Some("for")));
}

#[test]
fn interprocedural_call_graph_shape() {
    let src = r#"
int parse_len(char *s) { return atoi(s); }
void copy_out(char *d, char *s, int n) { memcpy(d, s, n); }
void route(char *d, char *s) {
    int n = parse_len(s);
    copy_out(d, s, n);
}
int main() { char d[8]; char s[8]; route(d, s); return 0; }
"#;
    let p = sevuldet_lang::parse(src).unwrap();
    let a = ProgramAnalysis::analyze(&p);
    assert_eq!(a.callgraph.calls_to("parse_len").count(), 1);
    assert_eq!(a.callgraph.calls_to("copy_out").count(), 1);
    assert_eq!(a.callgraph.calls_from("route").count(), 2);
    assert!(a.pdg("route").is_some());
    assert!(a.pdg("missing").is_none());
    let site = a.callgraph.calls_to("route").next().unwrap();
    assert_eq!(site.caller, "main");
}

#[test]
fn do_while_range_covers_cond_line() {
    let src = "void f(int n) {\n    do {\n        n--;\n    } while (n > 0);\n}";
    let p = sevuldet_lang::parse(src).unwrap();
    let rs = control_ranges(p.function("f").unwrap());
    let dw = rs.iter().find(|r| r.kind == RangeKind::DoWhile).unwrap();
    assert_eq!(dw.start_line, 2);
    assert_eq!(dw.end_line, 4, "the `}} while (...)` line closes the range");
}

#[test]
fn symbolic_reconcile_is_idempotent_on_correct_ranges() {
    let src = r#"void f(int n) {
    while (n > 0) {
        if (n == 3) {
            n = 0;
        }
        n--;
    }
}"#;
    let p = sevuldet_lang::parse(src).unwrap();
    let mut rs = control_ranges(p.function("f").unwrap());
    let before = rs.clone();
    let sym = symbolic_ranges(src);
    reconcile(&mut rs, &sym);
    assert_eq!(rs, before, "correct ranges unchanged by reconciliation");
}

#[test]
fn switch_head_guards_every_case_body() {
    let src = r#"void f(int x) {
    switch (x) {
    case 1:
        a();
        break;
    case 2:
        b();
        break;
    }
    after();
}"#;
    let pdg = pdg(src, "f");
    for arm in ["a", "b"] {
        let n = node(&pdg, arm);
        assert!(!pdg.control_preds(n).is_empty());
    }
    let after = node(&pdg, "after");
    assert!(pdg.control_preds(after).is_empty());
}

#[test]
fn entry_parameters_feed_first_uses_only_until_redefined() {
    let src = r#"void f(int n) {
    g(n);
    n = 5;
    h(n);
}"#;
    let pdg = pdg(src, "f");
    let g = node(&pdg, "g");
    let h = node(&pdg, "h");
    let entry = pdg.cfg.entry();
    assert!(pdg.data_preds(g).iter().any(|(s, _)| *s == entry));
    assert!(
        !pdg.data_preds(h).iter().any(|(s, _)| *s == entry),
        "redefinition kills the parameter def"
    );
}
