//! Common finding/report types for the classical detectors.

use std::fmt;

/// One detector finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// 1-based source line.
    pub line: u32,
    /// Rule identifier (tool-specific).
    pub rule: String,
    /// Risk level 1-5.
    pub risk: u8,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: [{}] risk {}", self.line, self.rule, self.risk)
    }
}

/// The interface shared by the Flawfinder/RATS/Checkmarx analogues. VUDDY
/// additionally needs a training corpus and has its own `fit` method.
pub trait StaticDetector {
    /// Tool name as reported in tables.
    fn name(&self) -> &'static str;
    /// Scans one source file, returning findings (possibly empty).
    fn scan(&self, source: &str) -> Vec<Finding>;

    /// Program-level verdict: any finding at or above the reporting
    /// threshold marks the program vulnerable.
    fn flags(&self, source: &str, min_risk: u8) -> bool {
        self.scan(source).iter().any(|f| f.risk >= min_risk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy;
    impl StaticDetector for Dummy {
        fn name(&self) -> &'static str {
            "dummy"
        }
        fn scan(&self, _source: &str) -> Vec<Finding> {
            vec![Finding {
                line: 3,
                rule: "X".into(),
                risk: 4,
            }]
        }
    }

    #[test]
    fn flags_respects_threshold() {
        let d = Dummy;
        assert!(d.flags("", 4));
        assert!(!d.flags("", 5));
        assert_eq!(d.scan("")[0].to_string(), "line 3: [X] risk 4");
    }
}
