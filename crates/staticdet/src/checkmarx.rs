//! A Checkmarx-like rule-based AST/dataflow analyzer.
//!
//! Commercial engines like Checkmarx beat pure lexical scanners by checking
//! whether a *sanitizer* (a validating condition) dominates the dangerous
//! operation — but the check is heuristic: the mere *existence* of a guard
//! over the right variable is accepted, without path sensitivity. That makes
//! it better than Flawfinder/RATS in Fig. 5 yet still blind to displaced
//! guards (vulnerable twin: miss) and still noisy on unrelated guards
//! (safe code with an unmatched guard: false positive).

use crate::report::{Finding, StaticDetector};
use sevuldet_analysis::cfg::NodeRole;
use sevuldet_analysis::libmodel::lib_func;
use sevuldet_analysis::{NodeId, Pdg, ProgramAnalysis};
use sevuldet_lang::parse;

/// The Checkmarx analogue.
#[derive(Debug, Clone, Default)]
pub struct Checkmarx;

impl StaticDetector for Checkmarx {
    fn name(&self) -> &'static str {
        "Checkmarx"
    }

    fn scan(&self, source: &str) -> Vec<Finding> {
        let Ok(program) = parse(source) else {
            return Vec::new();
        };
        let analysis = ProgramAnalysis::analyze(&program);
        let mut out = Vec::new();
        for (fname, pdg) in &analysis.pdgs {
            let _ = fname;
            scan_function(pdg, &mut out);
        }
        out.sort_by_key(|f| f.line);
        out.dedup();
        out
    }
}

fn scan_function(pdg: &Pdg, out: &mut Vec<Finding>) {
    let cfg = &pdg.cfg;
    for id in cfg.node_ids() {
        let node = cfg.node(id);
        // Rule 1: dangerous copy whose length operand is never guarded.
        for call in &node.calls {
            let Some(model) = lib_func(&call.callee) else {
                continue;
            };
            if model.risk >= 5 {
                // gets/strcpy/sprintf: unconditionally dangerous.
                out.push(Finding {
                    line: node.line,
                    rule: format!("dangerous-api:{}", call.callee),
                    risk: 5,
                });
                continue;
            }
            if matches!(
                call.callee.as_str(),
                "strncpy" | "memcpy" | "strncat" | "memmove"
            ) {
                let len_vars = call.arg_idents.get(2).cloned().unwrap_or_default();
                if !len_vars.is_empty() && !guarded_by_any(pdg, id, &len_vars) {
                    out.push(Finding {
                        line: node.line,
                        rule: format!("unchecked-length:{}", call.callee),
                        risk: 4,
                    });
                }
            }
        }
        // Rule 2: use after free / double free — a `free(p)` reaching a
        // later use of `p` in line order.
        for call in &node.calls {
            if call.callee == "free" {
                let Some(ptr) = call.arg_idents.first().and_then(|v| v.first()) else {
                    continue;
                };
                // Nodes created after this one — creation order matches
                // execution order for straight-line code.
                let later_nodes: Vec<NodeId> = cfg.node_ids().filter(|m| *m > id).collect();
                for later in later_nodes {
                    let ln = cfg.node(later);
                    if ln.calls.iter().any(|c| {
                        c.callee == "free"
                            && c.arg_idents.first().and_then(|v| v.first()) == Some(ptr)
                    }) {
                        out.push(Finding {
                            line: ln.line,
                            rule: "double-free".into(),
                            risk: 4,
                        });
                        break;
                    }
                    if ln.uses.contains(ptr) {
                        out.push(Finding {
                            line: ln.line,
                            rule: "use-after-free".into(),
                            risk: 4,
                        });
                        break;
                    }
                    // A pure re-assignment (`p = NULL`, `p = malloc(..)`)
                    // ends the freed lifetime.
                    if ln.defs.contains(ptr) {
                        break;
                    }
                }
            }
        }
        // Rule 3: division whose divisor variable is never guarded.
        if node.role == NodeRole::Plain {
            let toks = &node.tokens;
            for w in toks.windows(2) {
                if w[0] == "/" {
                    let divisor = &w[1];
                    if is_ident(divisor) && !guarded_by_any(pdg, id, std::slice::from_ref(divisor))
                    {
                        out.push(Finding {
                            line: node.line,
                            rule: "unchecked-division".into(),
                            risk: 3,
                        });
                    }
                }
            }
        }
        // Rule 4: loop bound `<=` over a literal (classic off-by-one smell).
        if node.role == NodeRole::LoopCond && node.tokens.contains(&"<=".to_string()) {
            out.push(Finding {
                line: node.line,
                rule: "suspicious-loop-bound".into(),
                risk: 3,
            });
        }
        // Rule 5: unchecked malloc result dereference.
        if node.calls.iter().any(|c| c.callee == "malloc") {
            let target = node.defs.first().cloned();
            if let Some(p) = target {
                let guarded = cfg.node_ids().any(|m| {
                    let nm = cfg.node(m);
                    nm.role.is_branch() && nm.uses.contains(&p)
                });
                let used_later = cfg.node_ids().any(|m| {
                    let nm = cfg.node(m);
                    nm.line > node.line && nm.uses.contains(&p) && nm.role == NodeRole::Plain
                });
                if !guarded && used_later {
                    out.push(Finding {
                        line: node.line,
                        rule: "unchecked-allocation".into(),
                        risk: 3,
                    });
                }
            }
        }
    }
}

/// Whether any branch node *anywhere in the function* tests one of `vars` —
/// deliberately path-insensitive (guard existence, not guard placement).
fn guarded_by_any(pdg: &Pdg, _use_site: NodeId, vars: &[String]) -> bool {
    pdg.cfg.node_ids().any(|id| {
        let n = pdg.cfg.node(id);
        n.role.is_branch() && vars.iter().any(|v| n.uses.contains(v))
    })
}

fn is_ident(s: &str) -> bool {
    s.chars()
        .next()
        .map(|c| c.is_ascii_alphabetic() || c == '_')
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unguarded_copy_flagged_guarded_not() {
        let vuln = r#"void f(char *d, char *s, int n) {
    char buf[16];
    strncpy(buf, s, n);
}"#;
        let safe = r#"void f(char *d, char *s, int n) {
    char buf[16];
    if (n < 16) {
        strncpy(buf, s, n);
    }
}"#;
        assert!(Checkmarx.flags(vuln, 4));
        assert!(!Checkmarx.flags(safe, 4));
    }

    #[test]
    fn displaced_guard_fools_checkmarx() {
        // The Fig.-1 vulnerable twin: the guard exists, the copy is outside
        // it. Guard-existence heuristics miss this — the reason learned
        // path-sensitive detection wins.
        let displaced = r#"void f(char *d, char *s, int n) {
    char buf[16];
    if (n < 16) {
        puts("ok");
    }
    strncpy(buf, s, n);
}"#;
        assert!(
            !Checkmarx.flags(displaced, 4),
            "heuristic is path-insensitive"
        );
    }

    #[test]
    fn uaf_and_double_free_found() {
        let uaf = r#"void f(int n) {
    char *p = malloc(n);
    if (p != NULL) {
        p[0] = 1;
    }
    free(p);
    p[0] = 2;
}"#;
        let findings = Checkmarx.scan(uaf);
        assert!(findings.iter().any(|f| f.rule == "use-after-free"));
        let df = "void f() { char *p = malloc(4); free(p); free(p); }";
        assert!(Checkmarx.scan(df).iter().any(|f| f.rule == "double-free"));
    }

    #[test]
    fn division_and_loop_rules() {
        let div = "void f(int n) { int x = 10 / n; }";
        assert!(Checkmarx
            .scan(div)
            .iter()
            .any(|f| f.rule == "unchecked-division"));
        let divg = "void f(int n) { if (n != 0) { int x = 10 / n; } }";
        assert!(!Checkmarx
            .scan(divg)
            .iter()
            .any(|f| f.rule == "unchecked-division"));
        let lp = "void f() { int a[4]; for (int i = 0; i <= 4; i++) { a[i] = 0; } }";
        assert!(Checkmarx
            .scan(lp)
            .iter()
            .any(|f| f.rule == "suspicious-loop-bound"));
    }

    #[test]
    fn gets_always_flagged() {
        let src = "void f() { char b[4]; gets(b); }";
        assert!(Checkmarx.flags(src, 5));
    }

    #[test]
    fn unparseable_source_yields_nothing() {
        assert!(Checkmarx.scan("not c at all {{{").is_empty());
    }
}
