//! A VUDDY-like clone detector.
//!
//! VUDDY (Kim et al., S&P'17) fingerprints *abstracted* vulnerable functions
//! (identifiers/types/literals normalized away) and reports exact fingerprint
//! matches. It is extremely precise — a match really is a clone of a known
//! vulnerable function — but recalls nothing it has never seen, which is the
//! low-FPR/high-FNR corner of Fig. 5.

use crate::report::Finding;
use sevuldet_lang::ast::Function;
use sevuldet_lang::parse;
use sevuldet_lang::printer::stmt_tokens;
use sevuldet_lang::token::Keyword;
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};

/// The VUDDY analogue: fingerprints of known-vulnerable functions.
#[derive(Debug, Clone, Default)]
pub struct Vuddy {
    fingerprints: HashSet<u64>,
}

impl Vuddy {
    /// Creates an empty (untrained) detector.
    pub fn new() -> Vuddy {
        Vuddy::default()
    }

    /// Number of stored fingerprints.
    pub fn len(&self) -> usize {
        self.fingerprints.len()
    }

    /// Whether no fingerprints are stored.
    pub fn is_empty(&self) -> bool {
        self.fingerprints.is_empty()
    }

    /// Adds every function of a known-vulnerable program to the fingerprint
    /// store (abstraction level 4: formal parameters, locals, and literals
    /// all normalized).
    ///
    /// Prefer [`Vuddy::fit_vulnerable_functions`] when flaw lines are known:
    /// the real VUDDY fingerprints the functions touched by the security
    /// patch, not every function in the file.
    pub fn fit_program(&mut self, source: &str) {
        let Ok(p) = parse(source) else { return };
        for f in p.functions() {
            if f.name == "main" {
                continue;
            }
            self.fingerprints.insert(fingerprint(f));
        }
    }

    /// Adds only the functions that contain one of `flaw_lines` — the
    /// faithful model of VUDDY's patch-derived vulnerable-function corpus.
    pub fn fit_vulnerable_functions(
        &mut self,
        source: &str,
        flaw_lines: &std::collections::HashSet<u32>,
    ) {
        let Ok(p) = parse(source) else { return };
        for f in p.functions() {
            let covers = flaw_lines
                .iter()
                .any(|&l| f.span.start.line <= l && l <= f.span.end.line);
            if covers {
                self.fingerprints.insert(fingerprint(f));
            }
        }
    }

    /// Scans a program: any function matching a stored fingerprint is
    /// reported.
    pub fn scan(&self, source: &str) -> Vec<Finding> {
        let Ok(p) = parse(source) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for f in p.functions() {
            if f.name == "main" {
                continue;
            }
            if self.fingerprints.contains(&fingerprint(f)) {
                out.push(Finding {
                    line: f.span.start.line,
                    rule: "vulnerable-clone".into(),
                    risk: 5,
                });
            }
        }
        out
    }

    /// Program-level verdict.
    pub fn flags(&self, source: &str) -> bool {
        !self.scan(source).is_empty()
    }
}

/// Abstraction + hashing of one function body: identifiers are replaced by
/// their first-appearance index, numeric literals by `N`, then the token
/// stream is hashed.
fn fingerprint(f: &Function) -> u64 {
    let mut map: HashMap<String, String> = HashMap::new();
    let mut abstracted: Vec<String> = Vec::new();
    let mut push_tok = |t: &str, map: &mut HashMap<String, String>| {
        let is_ident = t
            .chars()
            .next()
            .map(|c| c.is_ascii_alphabetic() || c == '_')
            .unwrap_or(false)
            && Keyword::from_word(t).is_none();
        if is_ident {
            let next = format!("ID{}", map.len());
            abstracted.push(map.entry(t.to_string()).or_insert(next).clone());
        } else if t.parse::<i64>().is_ok() {
            abstracted.push("N".into());
        } else {
            abstracted.push(t.to_string());
        }
    };
    for p in &f.params {
        push_tok(&p.name, &mut map);
    }
    collect(&f.body, &mut |s| {
        for t in stmt_tokens(s) {
            push_tok(&t, &mut map);
        }
    });
    let mut h = DefaultHasher::new();
    abstracted.hash(&mut h);
    h.finish()
}

fn collect(b: &sevuldet_lang::ast::Block, f: &mut impl FnMut(&sevuldet_lang::ast::Stmt)) {
    use sevuldet_lang::ast::StmtKind;
    for s in &b.stmts {
        f(s);
        match &s.kind {
            StmtKind::Block(inner) => collect(inner, f),
            StmtKind::If {
                then,
                else_ifs,
                else_block,
                ..
            } => {
                collect(then, f);
                for ei in else_ifs {
                    collect(&ei.body, f);
                }
                if let Some(eb) = else_block {
                    collect(&eb.body, f);
                }
            }
            StmtKind::While { body, .. }
            | StmtKind::DoWhile { body, .. }
            | StmtKind::For { body, .. } => collect(body, f),
            StmtKind::Switch { cases, .. } => {
                for c in cases {
                    for s in &c.body {
                        f(s);
                    }
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VULN: &str = r#"void copy_pkt(char *dst, char *src, int n) {
    char buf[16];
    strncpy(buf, src, n);
    puts(buf);
}
int main() { return 0; }"#;

    #[test]
    fn detects_renamed_clone() {
        let mut v = Vuddy::new();
        v.fit_program(VULN);
        // Identifiers and literals differ; structure is identical.
        let clone = r#"void handle_frame(char *out, char *in_, int len) {
    char tmp[64];
    strncpy(tmp, in_, len);
    puts(tmp);
}
int main() { return 0; }"#;
        assert!(v.flags(clone), "abstracted clone must match");
    }

    #[test]
    fn misses_structurally_changed_code() {
        let mut v = Vuddy::new();
        v.fit_program(VULN);
        let changed = r#"void copy_pkt(char *dst, char *src, int n) {
    char buf[16];
    if (n < 16) {
        strncpy(buf, src, n);
    }
    puts(buf);
}
int main() { return 0; }"#;
        assert!(!v.flags(changed), "one extra statement breaks the match");
    }

    #[test]
    fn untrained_detector_flags_nothing() {
        let v = Vuddy::new();
        assert!(v.is_empty());
        assert!(!v.flags(VULN));
    }

    #[test]
    fn fit_is_idempotent() {
        let mut v = Vuddy::new();
        v.fit_program(VULN);
        let n = v.len();
        v.fit_program(VULN);
        assert_eq!(v.len(), n);
    }
}
