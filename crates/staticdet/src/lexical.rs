//! Flawfinder- and RATS-like lexical scanners.
//!
//! Both real tools grep for dangerous API names with a risk ranking and no
//! dataflow reasoning — which is exactly why Fig. 5 shows them with high
//! false-positive *and* high false-negative rates: they flag every guarded,
//! perfectly safe `strncpy`, and they miss every vulnerability that does not
//! go through a listed API (array indexing, pointer misuse, arithmetic).

use crate::report::{Finding, StaticDetector};
use sevuldet_analysis::libmodel::{lib_func, LIB_FUNCS};

/// The Flawfinder analogue: full risk table, reports at risk ≥ 1.
#[derive(Debug, Clone, Default)]
pub struct Flawfinder;

impl StaticDetector for Flawfinder {
    fn name(&self) -> &'static str {
        "Flawfinder"
    }

    fn scan(&self, source: &str) -> Vec<Finding> {
        scan_calls(source, 2)
    }
}

/// The RATS analogue: a narrower ruleset (risk ≥ 3 APIs only) plus a static
/// buffer-declaration rule, mirroring RATS' `fixed size global buffer`
/// class.
#[derive(Debug, Clone, Default)]
pub struct Rats;

impl StaticDetector for Rats {
    fn name(&self) -> &'static str {
        "RATS"
    }

    fn scan(&self, source: &str) -> Vec<Finding> {
        let mut out = scan_calls(source, 3);
        // Fixed-size char buffers are reported as low-severity findings.
        for (i, line) in source.lines().enumerate() {
            let t = line.trim();
            if t.starts_with("char ") && t.contains('[') && t.ends_with("];") {
                out.push(Finding {
                    line: i as u32 + 1,
                    rule: "fixed-size-buffer".into(),
                    risk: 2,
                });
            }
        }
        out.sort_by_key(|f| f.line);
        out
    }
}

/// Scans for calls to modelled library functions with risk ≥ `min_risk`.
/// Purely lexical: a name followed by `(` counts as a call.
fn scan_calls(source: &str, min_risk: u8) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, line) in source.lines().enumerate() {
        let bytes = line.as_bytes();
        for f in LIB_FUNCS {
            if f.risk < min_risk {
                continue;
            }
            let mut start = 0usize;
            while let Some(pos) = line[start..].find(f.name) {
                let at = start + pos;
                let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
                let after = at + f.name.len();
                let after_ok = after < bytes.len()
                    && bytes[after..]
                        .iter()
                        .find(|b| !b.is_ascii_whitespace())
                        .map(|&b| b == b'(')
                        .unwrap_or(false);
                if before_ok && after_ok {
                    out.push(Finding {
                        line: i as u32 + 1,
                        rule: f.name.to_string(),
                        risk: lib_func(f.name).map(|m| m.risk).unwrap_or(1),
                    });
                    break;
                }
                start = after;
            }
        }
    }
    out
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    const GUARDED: &str = r#"void f(char *d, char *s, int n) {
    char buf[16];
    if (n < 16) {
        strncpy(buf, s, n);
    }
    puts(buf);
}"#;

    #[test]
    fn flawfinder_flags_guarded_copy_anyway() {
        // The defining weakness: no path reasoning, so a perfectly safe
        // guarded strncpy is still reported.
        let f = Flawfinder;
        let findings = f.scan(GUARDED);
        assert!(findings.iter().any(|x| x.rule == "strncpy" && x.line == 4));
    }

    #[test]
    fn flawfinder_misses_array_oob() {
        let src = "void f(int i) { int a[4]; a[i] = 1; }";
        assert!(Flawfinder.scan(src).is_empty());
    }

    #[test]
    fn rats_narrower_than_flawfinder() {
        let src = "void f(char *d) { char b[8]; memset(b, 0, 8); snprintf(b, 8, d); }";
        let ff = Flawfinder.scan(src);
        let rt = Rats
            .scan(src)
            .into_iter()
            .filter(|f| f.rule != "fixed-size-buffer")
            .collect::<Vec<_>>();
        assert!(ff.len() > rt.len(), "ff={ff:?} rats={rt:?}");
    }

    #[test]
    fn rats_flags_fixed_buffers() {
        let r = Rats.scan(GUARDED);
        assert!(r.iter().any(|f| f.rule == "fixed-size-buffer"));
    }

    #[test]
    fn no_false_match_inside_identifiers() {
        // `my_strncpy_wrapper` must not match `strncpy`.
        let src = "void f() { my_strncpy_wrapper(1); }";
        assert!(Flawfinder.scan(src).is_empty());
        // And a name without a following paren is not a call.
        let src = "int strncpy_count = 0;";
        assert!(Flawfinder.scan(src).is_empty());
    }

    #[test]
    fn gets_scores_maximum_risk() {
        let src = "void f() { char b[4]; gets(b); }";
        let f = Flawfinder.scan(src);
        assert_eq!(f.iter().find(|x| x.rule == "gets").unwrap().risk, 5);
    }
}
