//! # sevuldet-static
//!
//! Analogues of the classical static detectors SEVulDet is compared against
//! in Fig. 5, each reproducing the *mechanism* the paper attributes to the
//! tool:
//!
//! * [`Flawfinder`] / [`Rats`] — lexical dangerous-API scanners (high FPR
//!   and high FNR);
//! * [`Checkmarx`] — rule-based AST/dataflow analysis with guard-existence
//!   (but not path-sensitive) sanitizer matching;
//! * [`Vuddy`] — abstracted-function fingerprint clone matching (very low
//!   FPR, very high FNR).
//!
//! ## Example
//!
//! ```
//! use sevuldet_static::{Flawfinder, StaticDetector};
//!
//! let findings = Flawfinder.scan("void f(char *s) { char b[4]; strcpy(b, s); }");
//! assert!(findings.iter().any(|f| f.rule == "strcpy"));
//! ```

pub mod checkmarx;
pub mod lexical;
pub mod report;
pub mod vuddy;

pub use checkmarx::Checkmarx;
pub use lexical::{Flawfinder, Rats};
pub use report::{Finding, StaticDetector};
pub use vuddy::Vuddy;
