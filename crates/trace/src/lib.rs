#![deny(missing_docs)]

//! # sevuldet-trace
//!
//! A zero-dependency, thread-aware span/event instrumentation layer for the
//! SEVulDet pipeline. Every pipeline stage — lexing, parsing, PDG
//! construction, Algorithm-1 slicing, normalization, word2vec encoding, the
//! per-layer NN forward/backward passes, trainer epochs/batches, and the
//! serving request lifecycle — wraps itself in a [`span!`], and this crate
//! turns the resulting records into three sinks:
//!
//! * a per-stage **self/total profile table** ([`Trace::profile_table`],
//!   behind the CLI's `--profile` flag);
//! * a **Chrome `trace_event` JSON** export ([`Trace::chrome_json`], behind
//!   `--trace-out`, loadable in `chrome://tracing` or
//!   [Perfetto](https://ui.perfetto.dev));
//! * live **observer callbacks** on every span close
//!   ([`add_observer`], feeding the serve layer's per-stage Prometheus
//!   histograms).
//!
//! ## Design
//!
//! Tracing is off by default and costs **one relaxed atomic load** per
//! span when disabled — cheap enough to leave `span!` guards inside the
//! per-sample NN layer code (measured in `BENCH_trace.json`; well under the
//! 2% end-to-end budget). When recording is on, each thread appends to a
//! private buffer (no locks on the hot path); buffers flush into a global
//! sink when a thread exits, and [`take`] merges them into one
//! deterministically-ordered event list. Tracing never touches any RNG and
//! never reorders work, so **traced runs produce byte-identical models and
//! scan reports** — pinned by `crates/core/tests/trace_invariance.rs`.
//!
//! Self time is computed at record time: a per-thread span stack attributes
//! each span's duration to its parent, so the profile table can separate
//! "time in this stage" from "time in the stages it called".
//!
//! ## Enabling
//!
//! * programmatically: [`set_recording`]`(true)` (what `--profile` and
//!   `--trace-out` do);
//! * from the environment: `SEVULDET_TRACE=1` enables recording at the
//!   first span of the process.
//!
//! ## Example
//!
//! ```
//! use sevuldet_trace as trace;
//!
//! trace::set_recording(true);
//! {
//!     let _stage = trace::span!("parse");
//!     let _inner = trace::span!("lex");
//!     // ... work ...
//! }
//! trace::counter("tokens", 42.0);
//! let tr = trace::take();
//! trace::set_recording(false);
//!
//! assert_eq!(tr.spans.len(), 2);
//! let table = tr.profile_table();
//! assert!(table.contains("parse") && table.contains("lex"));
//! let json = tr.chrome_json();
//! assert!(json.starts_with('[') && json.contains("\"ph\":\"X\""));
//! ```

use std::cell::RefCell;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock, RwLock};
use std::time::Instant;

/// Bit: spans are recorded into thread-local buffers.
const RECORD: u8 = 1;
/// Bit: observers are notified on span close.
const OBSERVE: u8 = 2;
/// Sentinel: the environment has not been consulted yet.
const UNINIT: u8 = 0x80;

static STATE: AtomicU8 = AtomicU8::new(UNINIT);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static NEXT_LANE: AtomicU32 = AtomicU32::new(0);

/// The process-wide monotonic epoch all timestamps are relative to.
fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process trace epoch.
fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Current state bits, consulting `SEVULDET_TRACE` exactly once.
#[inline]
fn state() -> u8 {
    let s = STATE.load(Ordering::Relaxed);
    if s & UNINIT == 0 {
        return s;
    }
    init_from_env()
}

#[cold]
fn init_from_env() -> u8 {
    let on = std::env::var("SEVULDET_TRACE").is_ok_and(|v| !v.is_empty() && v != "0");
    let bits = if on { RECORD } else { 0 };
    if on {
        epoch();
    }
    match STATE.compare_exchange(UNINIT, bits, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => bits,
        // Someone else initialized (or set bits) concurrently; use theirs.
        Err(cur) => cur & !UNINIT,
    }
}

/// Turns span recording on or off. Turning it on pins the process trace
/// epoch; events recorded before the switch stay in their buffers and are
/// returned by the next [`take`].
pub fn set_recording(on: bool) {
    state(); // resolve UNINIT first so the bit ops below are meaningful
    if on {
        epoch();
        STATE.fetch_or(RECORD, Ordering::Relaxed);
    } else {
        STATE.fetch_and(!RECORD, Ordering::Relaxed);
    }
}

/// Whether spans are currently being recorded.
pub fn recording() -> bool {
    state() & RECORD != 0
}

// ---------------------------------------------------------------- events --

/// One closed span: a named, timed region on one thread lane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Stage name (static, from the `span!` site).
    pub name: &'static str,
    /// Thread lane the span ran on (dense ids in recording order).
    pub lane: u32,
    /// Start, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Total duration in nanoseconds.
    pub dur_ns: u64,
    /// Duration minus time spent in recorded child spans.
    pub self_ns: u64,
    /// Nesting depth on its lane (0 = top level).
    pub depth: u16,
}

/// One counter observation (e.g. "gadgets extracted: 34").
#[derive(Debug, Clone, PartialEq)]
pub struct CounterEvent {
    /// Counter name (static, from the call site).
    pub name: &'static str,
    /// Thread lane it was recorded on.
    pub lane: u32,
    /// Timestamp, nanoseconds since the process trace epoch.
    pub ts_ns: u64,
    /// The observed value.
    pub value: f64,
}

/// A thread's private event buffer. Flushed into the global sink when the
/// thread exits (or when [`take`] runs on this thread).
struct LocalBuf {
    lane: u32,
    spans: Vec<SpanEvent>,
    counters: Vec<CounterEvent>,
    /// One child-time accumulator per open span on this thread.
    stack: Vec<u64>,
}

impl LocalBuf {
    fn new() -> LocalBuf {
        LocalBuf {
            lane: NEXT_LANE.fetch_add(1, Ordering::Relaxed),
            spans: Vec::new(),
            counters: Vec::new(),
            stack: Vec::new(),
        }
    }

    fn flush(&mut self) {
        if self.spans.is_empty() && self.counters.is_empty() {
            return;
        }
        let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
        sink.spans.append(&mut self.spans);
        sink.counters.append(&mut self.counters);
    }
}

impl Drop for LocalBuf {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static LOCAL: RefCell<Option<LocalBuf>> = const { RefCell::new(None) };
}

fn with_local<R>(f: impl FnOnce(&mut LocalBuf) -> R) -> Option<R> {
    LOCAL
        .try_with(|l| {
            let mut b = l.borrow_mut();
            Some(f(b.get_or_insert_with(LocalBuf::new)))
        })
        // Thread teardown: the TLS slot is gone; drop the event.
        .unwrap_or(None)
}

#[derive(Default)]
struct Sink {
    spans: Vec<SpanEvent>,
    counters: Vec<CounterEvent>,
}

static SINK: Mutex<Sink> = Mutex::new(Sink {
    spans: Vec::new(),
    counters: Vec::new(),
});

// ----------------------------------------------------------------- spans --

/// RAII guard for one traced region; created by [`span!`] (or
/// [`SpanGuard::enter`]), recorded when dropped. Inert — a single atomic
/// load and no timestamp — while tracing is disabled.
#[must_use = "a span guard measures until it is dropped"]
pub struct SpanGuard {
    name: &'static str,
    /// `(start_ns, state bits at entry)`; `None` = tracing was off.
    armed: Option<(u64, u8)>,
}

impl SpanGuard {
    /// Opens a span. Prefer the [`span!`] macro.
    #[inline]
    pub fn enter(name: &'static str) -> SpanGuard {
        let s = state();
        if s == 0 {
            return SpanGuard { name, armed: None };
        }
        if s & RECORD != 0 {
            with_local(|b| b.stack.push(0));
        }
        SpanGuard {
            name,
            armed: Some((now_ns(), s)),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((start_ns, s)) = self.armed else {
            return;
        };
        let dur_ns = now_ns().saturating_sub(start_ns);
        if s & RECORD != 0 {
            with_local(|b| {
                let child_ns = b.stack.pop().unwrap_or(0);
                let depth = b.stack.len() as u16;
                if let Some(parent) = b.stack.last_mut() {
                    *parent += dur_ns;
                }
                b.spans.push(SpanEvent {
                    name: self.name,
                    lane: b.lane,
                    start_ns,
                    dur_ns,
                    self_ns: dur_ns.saturating_sub(child_ns),
                    depth,
                });
            });
        }
        if s & OBSERVE != 0 {
            notify_observers(self.name, dur_ns);
        }
    }
}

/// Opens a named RAII span: `let _g = span!("parse");`. The span closes —
/// and is timed — when the guard drops. Near-zero cost while tracing is
/// disabled.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name)
    };
}

/// Records a counter observation attached to the current lane and time
/// (rendered in the profile table and as a Chrome counter track). No-op
/// while recording is off.
pub fn counter(name: &'static str, value: f64) {
    if state() & RECORD == 0 {
        return;
    }
    let ts_ns = now_ns();
    with_local(|b| {
        let lane = b.lane;
        b.counters.push(CounterEvent {
            name,
            lane,
            ts_ns,
            value,
        });
    });
}

/// Records an already-measured duration as a completed span ending now, and
/// notifies observers. For stages whose start and end live on different
/// threads (e.g. serve queue wait: enqueued on a connection handler, popped
/// on a batch worker), where an RAII guard cannot span the gap.
pub fn observe_duration(name: &'static str, dur_ns: u64) {
    let s = state();
    if s == 0 {
        return;
    }
    if s & RECORD != 0 {
        let end = now_ns();
        with_local(|b| {
            let depth = b.stack.len() as u16;
            b.spans.push(SpanEvent {
                name,
                lane: b.lane,
                start_ns: end.saturating_sub(dur_ns),
                dur_ns,
                self_ns: dur_ns,
                depth,
            });
        });
    }
    if s & OBSERVE != 0 {
        notify_observers(name, dur_ns);
    }
}

// ------------------------------------------------------------- observers --

type Observer = Box<dyn Fn(&'static str, u64) + Send + Sync>;

static OBSERVERS: RwLock<Vec<(u64, Observer)>> = RwLock::new(Vec::new());
static NEXT_OBSERVER: AtomicU64 = AtomicU64::new(1);

/// Handle returned by [`add_observer`]; pass to [`remove_observer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObserverId(u64);

/// Registers a callback invoked with `(stage name, duration in ns)` on
/// every span close, process-wide, until removed. The serve layer uses this
/// to feed its per-stage Prometheus histograms without the pipeline crates
/// knowing anything about HTTP.
///
/// Observers fire even while recording is off — nothing is buffered:
///
/// ```
/// use sevuldet_trace as trace;
/// use std::sync::atomic::{AtomicU64, Ordering};
/// use std::sync::Arc;
///
/// let closes = Arc::new(AtomicU64::new(0));
/// let seen = Arc::clone(&closes);
/// let id = trace::add_observer(move |name, _dur_ns| {
///     if name == "stage" {
///         seen.fetch_add(1, Ordering::Relaxed);
///     }
/// });
///
/// {
///     let _g = trace::span!("stage");
/// }
/// assert_eq!(closes.load(Ordering::Relaxed), 1);
/// assert!(trace::take().is_empty(), "observing is not recording");
///
/// trace::remove_observer(id);
/// {
///     let _g = trace::span!("stage");
/// }
/// assert_eq!(closes.load(Ordering::Relaxed), 1, "removed = silent");
/// ```
pub fn add_observer(f: impl Fn(&'static str, u64) + Send + Sync + 'static) -> ObserverId {
    state();
    let id = ObserverId(NEXT_OBSERVER.fetch_add(1, Ordering::Relaxed));
    let mut obs = OBSERVERS.write().unwrap_or_else(|e| e.into_inner());
    obs.push((id.0, Box::new(f)));
    STATE.fetch_or(OBSERVE, Ordering::Relaxed);
    id
}

/// Unregisters an observer. The observe fast-path bit clears once the last
/// observer is gone.
pub fn remove_observer(id: ObserverId) {
    let mut obs = OBSERVERS.write().unwrap_or_else(|e| e.into_inner());
    obs.retain(|(i, _)| *i != id.0);
    if obs.is_empty() {
        STATE.fetch_and(!OBSERVE, Ordering::Relaxed);
    }
}

fn notify_observers(name: &'static str, dur_ns: u64) {
    let obs = OBSERVERS.read().unwrap_or_else(|e| e.into_inner());
    for (_, f) in obs.iter() {
        f(name, dur_ns);
    }
}

// ------------------------------------------------------------ collection --

/// A merged, deterministically-ordered recording: what [`take`] returns.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// All closed spans, ordered by `(start_ns, lane)`.
    pub spans: Vec<SpanEvent>,
    /// All counter observations, ordered by `(ts_ns, lane)`.
    pub counters: Vec<CounterEvent>,
}

/// Drains every recorded event into one [`Trace`], merged across threads in
/// a deterministic order (start time, then lane, with each lane's original
/// record order preserved by the stable sort). Flushes the calling thread's
/// buffer; other threads flush when they exit, so collect **after joining
/// worker threads** — which every pipeline entry point does (the
/// data-parallel engine in `core::par` uses scoped threads).
pub fn take() -> Trace {
    LOCAL.with(|l| {
        if let Some(b) = l.borrow_mut().as_mut() {
            b.flush();
        }
    });
    let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
    let mut spans = std::mem::take(&mut sink.spans);
    let mut counters = std::mem::take(&mut sink.counters);
    drop(sink);
    spans.sort_by_key(|e| (e.start_ns, e.lane));
    counters.sort_by_key(|e| (e.ts_ns, e.lane));
    Trace { spans, counters }
}

impl Trace {
    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.counters.is_empty()
    }

    /// Wall-clock time covered by the recording, in nanoseconds (last span
    /// end minus first span start).
    pub fn wall_ns(&self) -> u64 {
        let start = self.spans.iter().map(|s| s.start_ns).min().unwrap_or(0);
        let end = self
            .spans
            .iter()
            .map(|s| s.start_ns + s.dur_ns)
            .max()
            .unwrap_or(start);
        end - start
    }

    /// Renders the per-stage profile: one row per span name with call
    /// count, total (inclusive) time, self (exclusive) time, and self time
    /// as a share of all self time, sorted by self time descending.
    /// Counters are appended as a second block when present.
    ///
    /// ```
    /// use sevuldet_trace as trace;
    ///
    /// trace::set_recording(true);
    /// for _ in 0..3 {
    ///     let _outer = trace::span!("outer");
    ///     let _inner = trace::span!("inner");
    /// }
    /// let table = trace::take().profile_table();
    /// trace::set_recording(false);
    ///
    /// let outer_row = table.lines().find(|l| l.starts_with("outer")).unwrap();
    /// assert!(outer_row.contains('3'), "3 calls: {outer_row}");
    /// // `outer`'s self time excludes `inner`, so the self% column sums
    /// // to ~100 across rows instead of double-counting nesting.
    /// assert!(table.lines().any(|l| l.starts_with("inner")));
    /// ```
    pub fn profile_table(&self) -> String {
        use std::fmt::Write as _;
        struct Agg {
            calls: u64,
            total_ns: u64,
            self_ns: u64,
        }
        // First-appearance order keyed separately so ties render stably.
        let mut order: Vec<&'static str> = Vec::new();
        let mut agg: std::collections::HashMap<&'static str, Agg> =
            std::collections::HashMap::new();
        for s in &self.spans {
            let e = agg.entry(s.name).or_insert_with(|| {
                order.push(s.name);
                Agg {
                    calls: 0,
                    total_ns: 0,
                    self_ns: 0,
                }
            });
            e.calls += 1;
            e.total_ns += s.dur_ns;
            e.self_ns += s.self_ns;
        }
        let self_sum: u64 = agg.values().map(|a| a.self_ns).sum();
        let mut rows: Vec<(&'static str, &Agg)> = order.iter().map(|&n| (n, &agg[n])).collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.1.self_ns));

        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<28} {:>9} {:>11} {:>11} {:>6}",
            "stage", "calls", "total", "self", "self%"
        );
        for (name, a) in rows {
            let pct = if self_sum > 0 {
                100.0 * a.self_ns as f64 / self_sum as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "{:<28} {:>9} {:>11} {:>11} {:>5.1}%",
                name,
                a.calls,
                fmt_ns(a.total_ns),
                fmt_ns(a.self_ns),
                pct
            );
        }
        let _ = writeln!(
            out,
            "({} spans on {} thread lane(s); {} wall)",
            self.spans.len(),
            self.spans
                .iter()
                .map(|s| s.lane)
                .collect::<std::collections::HashSet<_>>()
                .len(),
            fmt_ns(self.wall_ns()),
        );
        if !self.counters.is_empty() {
            let mut sums: Vec<(&'static str, f64, u64)> = Vec::new();
            for c in &self.counters {
                match sums.iter_mut().find(|(n, _, _)| *n == c.name) {
                    Some((_, sum, n)) => {
                        *sum += c.value;
                        *n += 1;
                    }
                    None => sums.push((c.name, c.value, 1)),
                }
            }
            let _ = writeln!(out, "{:<28} {:>9} {:>11}", "counter", "obs", "sum");
            for (name, sum, n) in sums {
                let _ = writeln!(out, "{name:<28} {n:>9} {sum:>11.0}");
            }
        }
        out
    }

    /// Serializes the recording in the Chrome `trace_event` JSON array
    /// format — open the file in `chrome://tracing` or Perfetto. Spans
    /// become complete (`"ph":"X"`) events with microsecond timestamps;
    /// counters become counter (`"ph":"C"`) tracks.
    ///
    /// ```
    /// use sevuldet_trace as trace;
    ///
    /// trace::set_recording(true);
    /// {
    ///     let _g = trace::span!("work");
    ///     trace::counter("items", 2.0);
    /// }
    /// let json = trace::take().chrome_json();
    /// trace::set_recording(false);
    ///
    /// assert!(json.starts_with('[') && json.trim_end().ends_with(']'));
    /// assert!(json.contains(r#""ph":"X""#), "span event: {json}");
    /// assert!(json.contains(r#""ph":"C""#), "counter track: {json}");
    /// assert!(json.contains(r#""name":"work""#));
    /// ```
    pub fn chrome_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(64 + self.spans.len() * 96);
        out.push('[');
        let mut first = true;
        let mut emit = |s: String, out: &mut String| {
            if !std::mem::take(&mut first) {
                out.push(',');
            }
            out.push('\n');
            out.push_str(&s);
        };
        emit(
            r#"{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"sevuldet"}}"#
                .to_string(),
            &mut out,
        );
        for s in &self.spans {
            emit(
                format!(
                    r#"{{"name":"{}","cat":"pipeline","ph":"X","pid":1,"tid":{},"ts":{:.3},"dur":{:.3}}}"#,
                    escape(s.name),
                    s.lane,
                    s.start_ns as f64 / 1e3,
                    s.dur_ns as f64 / 1e3,
                ),
                &mut out,
            );
        }
        for c in &self.counters {
            emit(
                format!(
                    r#"{{"name":"{}","ph":"C","pid":1,"tid":{},"ts":{:.3},"args":{{"value":{}}}}}"#,
                    escape(c.name),
                    c.lane,
                    c.ts_ns as f64 / 1e3,
                    c.value,
                ),
                &mut out,
            );
        }
        out.push_str("\n]\n");
        let _ = write!(out, ""); // keep `use fmt::Write` tidy under clippy
        out
    }
}

/// Human-friendly duration: ns → `1.23ms` / `4.56s`.
fn fmt_ns(ns: u64) -> String {
    let v = ns as f64;
    if v >= 1e9 {
        format!("{:.2}s", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}ms", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2}us", v / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Minimal JSON string escaping (names are static ASCII identifiers, but
/// stay safe anyway).
fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

// -------------------------------------------------------------- trace ids --

/// A short, unique-per-process request trace id (e.g. `a93f1c04-000017`),
/// surfaced by the serve layer in the `X-Trace-Id` response header. Not
/// cryptographic — a process-start fingerprint plus a monotonic counter.
pub fn next_trace_id() -> String {
    static SEED: OnceLock<u32> = OnceLock::new();
    static SEQ: AtomicU64 = AtomicU64::new(1);
    let seed = *SEED.get_or_init(|| {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos() ^ (d.as_secs() as u32))
            .unwrap_or(0);
        t ^ std::process::id().rotate_left(16)
    });
    format!("{seed:08x}-{:06x}", SEQ.fetch_add(1, Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that toggle the global recording switch.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        let g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_recording(true);
        let _ = take(); // drop anything a previous test left behind
        g
    }

    #[test]
    fn nested_spans_attribute_self_time() {
        let _g = locked();
        {
            let _outer = span!("outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = span!("inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let tr = take();
        set_recording(false);
        assert_eq!(tr.spans.len(), 2);
        let outer = tr.spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = tr.spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert!(outer.dur_ns >= inner.dur_ns);
        assert_eq!(outer.self_ns, outer.dur_ns - inner.dur_ns);
        assert_eq!(inner.self_ns, inner.dur_ns);
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = locked();
        set_recording(false);
        {
            let _s = span!("ghost");
            counter("ghost_count", 1.0);
        }
        assert!(take().is_empty());
    }

    #[test]
    fn threads_merge_deterministically() {
        let _g = locked();
        std::thread::scope(|scope| {
            for i in 0..4 {
                scope.spawn(move || {
                    let _s = span!(if i % 2 == 0 { "even" } else { "odd" });
                });
            }
        });
        let tr = take();
        set_recording(false);
        assert_eq!(tr.spans.len(), 4);
        assert!(tr
            .spans
            .windows(2)
            .all(|w| (w[0].start_ns, w[0].lane) <= (w[1].start_ns, w[1].lane)));
        let lanes: std::collections::HashSet<u32> = tr.spans.iter().map(|s| s.lane).collect();
        assert_eq!(lanes.len(), 4, "one lane per thread");
    }

    #[test]
    fn observers_fire_even_without_recording() {
        let _g = locked();
        set_recording(false);
        let hits = std::sync::Arc::new(AtomicU64::new(0));
        let h = hits.clone();
        let id = add_observer(move |name, dur| {
            assert_eq!(name, "watched");
            assert!(dur < u64::MAX);
            h.fetch_add(1, Ordering::Relaxed);
        });
        {
            let _s = span!("watched");
        }
        observe_duration("watched", 123);
        remove_observer(id);
        {
            let _s = span!("watched");
        }
        assert_eq!(hits.load(Ordering::Relaxed), 2);
        assert!(take().is_empty(), "observer-only mode records nothing");
    }

    #[test]
    fn chrome_json_has_complete_events_and_counters() {
        let _g = locked();
        {
            let _s = span!("stage_a");
        }
        counter("widgets", 7.0);
        let tr = take();
        set_recording(false);
        let json = tr.chrome_json();
        assert!(json.trim_start().starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains(r#""name":"stage_a","cat":"pipeline","ph":"X""#));
        assert!(json.contains(r#""ph":"C""#));
        assert!(json.contains(r#""value":7"#));
    }

    #[test]
    fn profile_table_reports_calls_and_counters() {
        let _g = locked();
        for _ in 0..3 {
            let _s = span!("repeated");
        }
        counter("items", 2.0);
        counter("items", 3.0);
        let tr = take();
        set_recording(false);
        let t = tr.profile_table();
        assert!(t.contains("repeated"), "{t}");
        assert!(t.lines().any(|l| l.contains("repeated") && l.contains("3")));
        assert!(t.contains("items"), "{t}");
        assert!(t.lines().any(|l| l.contains("items") && l.contains("5")));
    }

    #[test]
    fn observe_duration_backfills_start() {
        let _g = locked();
        observe_duration("queue_wait", 1_000_000);
        let tr = take();
        set_recording(false);
        assert_eq!(tr.spans.len(), 1);
        assert_eq!(tr.spans[0].dur_ns, 1_000_000);
    }

    #[test]
    fn trace_ids_are_unique() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, b);
        assert!(a.contains('-'));
    }
}
