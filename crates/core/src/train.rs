//! Training and evaluation loops (Step V), data-parallel and deterministic.
//!
//! Both loops shard samples across `cfg.jobs` worker threads while keeping
//! results **bit-identical for every thread count**:
//!
//! * each sample's dropout stream is seeded from `(run seed, epoch,
//!   position in the shuffled order)` — see [`crate::par::sample_seed`] —
//!   so randomness does not depend on which worker runs the sample or how
//!   many samples that worker has already processed;
//! * each worker computes per-sample gradients on its own model replica
//!   (weights are constant within a mini-batch, exactly as in sequential
//!   gradient accumulation) and the coordinator merges them in global
//!   sample order, so the floating-point summation tree never changes.
//!
//! The `jobs = 1` path runs through the same extract-and-merge code, which
//! is what makes the equivalence trivial rather than approximate.

use crate::checkpoint::{self, CheckpointError, CheckpointSpec};
use crate::config::TrainConfig;
use crate::corpus::{Encoded, GadgetCorpus};
use crate::faults;
use crate::metrics::Confusion;
use crate::par::{parallel_map_with_state, sample_seed};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sevuldet_nn::{bce_with_logits_weighted, save_params, Adam, SequenceClassifier};

/// Trains a model on the items selected by `train_idx`.
///
/// Gradients are accumulated over `cfg.batch` samples before each Adam step
/// (the paper's mini-batch of 16). The positive class is up-weighted by the
/// negative/positive ratio (capped at 10) unless `cfg.pos_weight` overrides
/// it — the paper keeps its corpora imbalanced, so unweighted training
/// collapses to the majority class.
///
/// With `cfg.jobs > 1` the samples of each mini-batch are processed on
/// worker threads; saved parameters are bit-identical to `cfg.jobs == 1`
/// at equal `cfg.seed` (see the module docs for why).
pub fn train_model<M>(
    model: &mut M,
    corpus: &GadgetCorpus,
    encoded: &Encoded,
    train_idx: &[usize],
    cfg: &TrainConfig,
) where
    M: SequenceClassifier + Clone + Send + Sync,
{
    train_model_checkpointed(model, corpus, encoded, train_idx, cfg, None)
        .expect("training without checkpoints cannot fail");
}

/// [`train_model`] with optional crash-safe checkpointing.
///
/// With a [`CheckpointSpec`], the run's state (parameters, Adam moments,
/// epoch/batch cursor) is snapshotted to `<dir>/checkpoint.svc` — atomically
/// and checksummed — every `spec.every` optimizer steps and at every epoch
/// boundary. With `spec.resume`, an existing checkpoint of the *same run*
/// (verified by fingerprint) is loaded and training continues from its
/// cursor; because every random stream is either position-seeded or
/// replayed (see [`crate::checkpoint`]), the resumed run's final parameters
/// are bit-identical to an uninterrupted run's, for every `cfg.jobs`.
///
/// # Errors
///
/// Checkpoint I/O failures, corrupt checkpoint files, and fingerprint
/// mismatches (resuming with different arguments or data). `None` never
/// fails.
pub fn train_model_checkpointed<M>(
    model: &mut M,
    corpus: &GadgetCorpus,
    encoded: &Encoded,
    train_idx: &[usize],
    cfg: &TrainConfig,
    spec: Option<&CheckpointSpec>,
) -> Result<(), CheckpointError>
where
    M: SequenceClassifier + Clone + Send + Sync,
{
    let mut shuffle_rng = StdRng::seed_from_u64(cfg.seed ^ 0x5151);
    let mut opt = Adam::new(cfg.lr);
    let pos = train_idx.iter().filter(|&&i| corpus.items[i].label).count();
    let neg = train_idx.len() - pos;
    let pos_weight = cfg
        .pos_weight
        .unwrap_or_else(|| ((neg.max(1) as f64) / (pos.max(1) as f64)).clamp(1.0, 10.0));

    let fp = spec.map(|_| checkpoint::fingerprint(cfg, train_idx, corpus.len()));
    let (mut start_epoch, mut start_cursor) = (0usize, 0usize);
    if let (Some(spec), Some(fp)) = (spec, fp.as_deref()) {
        if spec.resume {
            if let Some(ckpt) = checkpoint::load_for(&spec.path(), fp)? {
                sevuldet_nn::load_params(&mut model.params_mut(), &ckpt.params)
                    .map_err(|e| CheckpointError::Invalid(e.0))?;
                opt.import_state(&ckpt.adam)
                    .map_err(|e| CheckpointError::Invalid(e.0))?;
                start_epoch = ckpt.epoch;
                start_cursor = ckpt.cursor;
            }
        }
    }
    let save_ckpt = |model: &mut M, opt: &Adam, epoch: usize, cursor: usize| {
        let (Some(spec), Some(fp)) = (spec, fp.as_deref()) else {
            return Ok(());
        };
        let params: Vec<&sevuldet_nn::Param> =
            model.params_mut().into_iter().map(|p| &*p).collect();
        let params_text = save_params(&params);
        checkpoint::save(
            &spec.path(),
            fp,
            epoch,
            cursor,
            &opt.export_state(),
            &params_text,
        )
        .map_err(CheckpointError::Io)
    };

    let mut steps = 0usize;
    let mut order: Vec<usize> = train_idx.to_vec();
    for epoch in 0..cfg.epochs {
        // Shuffle even the epochs a resume skips: the shuffle RNG's stream
        // position must equal the epoch counter for the resumed order to
        // match the uninterrupted run's.
        order.shuffle(&mut shuffle_rng);
        if epoch < start_epoch {
            continue;
        }
        let _epoch_span = sevuldet_trace::span!("train.epoch");
        let mut start = if epoch == start_epoch {
            start_cursor
        } else {
            0
        };
        // A stale cursor beyond this epoch's length would silently skip an
        // epoch's tail; the fingerprint should prevent it, but check anyway.
        if start > order.len() {
            return Err(CheckpointError::Invalid(format!(
                "cursor {start} beyond epoch length {}",
                order.len()
            )));
        }
        while start < order.len() {
            let _batch_span = sevuldet_trace::span!("train.batch");
            let end = (start + cfg.batch).min(order.len());
            // (position in epoch order, corpus index) — the position keys
            // the sample's RNG and fixes its slot in the gradient merge.
            let batch: Vec<(usize, usize)> = (start..end).map(|pos| (pos, order[pos])).collect();
            // With one job the trainer's own model is the "replica": per-
            // sample gradients are extracted by `take_grads` before the
            // merge, so using it directly (no clone) leaves the math — and
            // the bits — unchanged while keeping its scratch buffers warm.
            let grads =
                parallel_map_with_state(&batch, cfg.jobs, model, |replica, _, &(pos, i)| {
                    let mut rng = StdRng::seed_from_u64(sample_seed(cfg.seed, epoch, pos));
                    let label = if corpus.items[i].label { 1.0 } else { 0.0 };
                    let logit = replica.forward_logit(&encoded.ids[i], true, &mut rng);
                    let (_, dlogit) = bce_with_logits_weighted(logit, label, pos_weight);
                    replica.backward(dlogit / cfg.batch as f64);
                    replica.take_grads()
                });
            // Fixed-order reduction: position 0's gradients first, always.
            for g in &grads {
                model.add_grads(g);
            }
            opt.step(&mut model.params_mut());
            start = end;
            steps += 1;
            // The kill point sits *before* the checkpoint save: dying here
            // loses this batch's snapshot and the resumed run must replay
            // it from the previous checkpoint — the harder invariant.
            faults::hit("batch_boundary");
            if let Some(spec) = spec {
                if spec.every > 0 && steps.is_multiple_of(spec.every) && start < order.len() {
                    let _t = sevuldet_trace::span!("train.checkpoint");
                    save_ckpt(model, &opt, epoch, start)?;
                }
            }
        }
        faults::hit("epoch_boundary");
        // Epoch-end checkpoint: next run starts the following epoch clean.
        if epoch + 1 < cfg.epochs && spec.is_some() {
            let _t = sevuldet_trace::span!("train.checkpoint");
            save_ckpt(model, &opt, epoch + 1, 0)?;
        }
    }
    Ok(())
}

/// Evaluates a model on the items selected by `test_idx`, thresholding the
/// sigmoid output at `cfg.threshold` (paper: 0.8). Inference is sharded
/// across `cfg.jobs` threads; the confusion matrix is independent of the
/// thread count (inference consumes no randomness, and verdicts are merged
/// in test order).
pub fn evaluate_model<M>(
    model: &mut M,
    corpus: &GadgetCorpus,
    encoded: &Encoded,
    test_idx: &[usize],
    cfg: &TrainConfig,
) -> Confusion
where
    M: SequenceClassifier + Clone + Send + Sync,
{
    let _t = sevuldet_trace::span!("train.eval");
    let z = cfg.logit_threshold();
    let verdicts = parallel_map_with_state(test_idx, cfg.jobs, model, |replica, pos, &i| {
        let mut rng = StdRng::seed_from_u64(sample_seed(cfg.seed ^ 0xe7a1, 0, pos));
        let logit = replica.forward_logit(&encoded.ids[i], false, &mut rng);
        (logit > z, corpus.items[i].label)
    });
    let mut confusion = Confusion::default();
    for (predicted, actual) in verdicts {
        confusion.record(predicted, actual);
    }
    confusion
}

/// Splits indices into stratified train/test partitions (preserving the
/// vulnerable/clean ratio on both sides).
pub fn stratified_split(
    corpus: &GadgetCorpus,
    idx: &[usize],
    test_fraction: f64,
    seed: u64,
) -> (Vec<usize>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pos: Vec<usize> = idx
        .iter()
        .copied()
        .filter(|&i| corpus.items[i].label)
        .collect();
    let mut neg: Vec<usize> = idx
        .iter()
        .copied()
        .filter(|&i| !corpus.items[i].label)
        .collect();
    pos.shuffle(&mut rng);
    neg.shuffle(&mut rng);
    let mut train = Vec::new();
    let mut test = Vec::new();
    for bucket in [pos, neg] {
        let n_test = ((bucket.len() as f64) * test_fraction).round() as usize;
        test.extend(&bucket[..n_test]);
        train.extend(&bucket[n_test..]);
    }
    train.shuffle(&mut rng);
    test.shuffle(&mut rng);
    (train, test)
}

/// Stratified subsampling of a gadget corpus to at most `max` items
/// (label ratio preserved) — the analogue of the paper's "randomly select
/// 30,000 path-sensitive code gadgets" per experiment.
pub fn subsample(corpus: &GadgetCorpus, max: usize, seed: u64) -> GadgetCorpus {
    if corpus.len() <= max {
        return corpus.clone();
    }
    let idx: Vec<usize> = (0..corpus.len()).collect();
    let keep_fraction = max as f64 / corpus.len() as f64;
    let (_, keep) = stratified_split(corpus, &idx, keep_fraction, seed);
    GadgetCorpus {
        items: keep.into_iter().map(|i| corpus.items[i].clone()).collect(),
    }
}

/// k-fold partitions of `idx` (the paper's five-fold cross-validation).
pub fn k_folds(idx: &[usize], k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut shuffled: Vec<usize> = idx.to_vec();
    shuffled.shuffle(&mut rng);
    let mut folds = Vec::with_capacity(k);
    for f in 0..k {
        let test: Vec<usize> = shuffled
            .iter()
            .copied()
            .enumerate()
            .filter(|(i, _)| i % k == f)
            .map(|(_, v)| v)
            .collect();
        let train: Vec<usize> = shuffled
            .iter()
            .copied()
            .enumerate()
            .filter(|(i, _)| i % k != f)
            .map(|(_, v)| v)
            .collect();
        folds.push((train, test));
    }
    folds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{encode, GadgetItem};
    use crate::zoo::{build_model, ModelKind};
    use std::path::PathBuf;

    use sevuldet_dataset::Origin;
    use sevuldet_gadget::Category;

    fn fake_corpus(n: usize) -> GadgetCorpus {
        let items = (0..n)
            .map(|i| GadgetItem {
                tokens: vec!["x".into()],
                label: i % 3 == 0,
                category: Category::Fc,
                program_id: format!("p{i}"),
                key_line: 1,
                origin: Origin::SardSim,
            })
            .collect();
        GadgetCorpus { items }
    }

    fn varied_corpus(n: usize) -> GadgetCorpus {
        let words = ["strcpy", "memcpy", "buf", "len", "if", "call"];
        let items = (0..n)
            .map(|i| GadgetItem {
                tokens: (0..4 + i % 5)
                    .map(|j| words[(i * 3 + j) % words.len()].to_string())
                    .collect(),
                label: i % 3 == 0,
                category: Category::Fc,
                program_id: format!("p{i}"),
                key_line: 1,
                origin: Origin::SardSim,
            })
            .collect();
        GadgetCorpus { items }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("svd-train-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn params_text<M: SequenceClassifier>(model: &mut M) -> String {
        let params: Vec<&sevuldet_nn::Param> =
            model.params_mut().into_iter().map(|p| &*p).collect();
        save_params(&params)
    }

    /// Resuming from a checkpoint — mid-epoch or at an epoch boundary, at
    /// any `jobs` — finishes with parameters bit-identical to the
    /// uninterrupted run. A full checkpointed run conveniently leaves its
    /// *last* snapshot on disk (the final batch is never followed by a
    /// save), which is exactly the state a killed run would resume from.
    #[test]
    fn checkpointed_resume_is_bit_identical() {
        let corpus = varied_corpus(24);
        let cfg = TrainConfig {
            embed_dim: 8,
            w2v_epochs: 1,
            epochs: 3,
            batch: 4,
            cnn_channels: 6,
            rnn_hidden: 6,
            rnn_steps: 20,
            ..TrainConfig::quick()
        };
        let encoded = encode(&corpus, &cfg);
        let idx: Vec<usize> = (0..corpus.len()).collect();

        let mut reference = build_model(ModelKind::SevulDet, encoded.table.clone(), &cfg);
        train_model(&mut reference, &corpus, &encoded, &idx, &cfg);
        let want = params_text(&mut reference);

        // `every` 1 leaves a mid-epoch snapshot; 0 leaves an epoch-boundary
        // one. Resume each at a different jobs count than it was written at.
        for (every, resume_jobs) in [(1usize, 2usize), (0, 1)] {
            let spec = CheckpointSpec {
                dir: tmpdir(&format!("resume-{every}")),
                every,
                resume: true,
            };
            let mut first = build_model(ModelKind::SevulDet, encoded.table.clone(), &cfg);
            train_model_checkpointed(&mut first, &corpus, &encoded, &idx, &cfg, Some(&spec))
                .unwrap();
            assert_eq!(params_text(&mut first), want, "checkpointing changed math");
            let ckpt = checkpoint::load(&spec.path()).unwrap();
            assert!(
                ckpt.epoch < cfg.epochs,
                "a resumable snapshot must precede the end"
            );

            let cfg2 = TrainConfig {
                jobs: resume_jobs,
                ..cfg.clone()
            };
            let mut resumed = build_model(ModelKind::SevulDet, encoded.table.clone(), &cfg2);
            train_model_checkpointed(&mut resumed, &corpus, &encoded, &idx, &cfg2, Some(&spec))
                .unwrap();
            assert_eq!(
                params_text(&mut resumed),
                want,
                "resume from (epoch {}, cursor {}) at jobs {resume_jobs} diverged",
                ckpt.epoch,
                ckpt.cursor
            );
            std::fs::remove_dir_all(&spec.dir).ok();
        }
    }

    /// A checkpoint from a run with different arguments is rejected, not
    /// silently resumed into a diverged model.
    #[test]
    fn resume_with_changed_args_is_rejected() {
        let corpus = varied_corpus(12);
        let cfg = TrainConfig {
            embed_dim: 8,
            w2v_epochs: 1,
            epochs: 2,
            batch: 4,
            cnn_channels: 6,
            rnn_hidden: 6,
            rnn_steps: 20,
            ..TrainConfig::quick()
        };
        let encoded = encode(&corpus, &cfg);
        let idx: Vec<usize> = (0..corpus.len()).collect();
        let spec = CheckpointSpec {
            dir: tmpdir("mismatch"),
            every: 1,
            resume: true,
        };
        let mut m = build_model(ModelKind::SevulDet, encoded.table.clone(), &cfg);
        train_model_checkpointed(&mut m, &corpus, &encoded, &idx, &cfg, Some(&spec)).unwrap();

        let cfg2 = TrainConfig {
            seed: cfg.seed ^ 7,
            ..cfg.clone()
        };
        let mut m2 = build_model(ModelKind::SevulDet, encoded.table.clone(), &cfg2);
        let err = train_model_checkpointed(&mut m2, &corpus, &encoded, &idx, &cfg2, Some(&spec))
            .unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch { .. }), "{err}");
        std::fs::remove_dir_all(&spec.dir).ok();
    }

    #[test]
    fn k_folds_partition_exactly() {
        let idx: Vec<usize> = (0..97).collect();
        let folds = k_folds(&idx, 5, 3);
        assert_eq!(folds.len(), 5);
        let mut seen = Vec::new();
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), 97);
            for t in test {
                assert!(!train.contains(t));
            }
            seen.extend(test.iter().copied());
        }
        seen.sort_unstable();
        assert_eq!(seen, idx, "every index tested exactly once");
    }

    #[test]
    fn stratified_split_preserves_ratio() {
        let corpus = fake_corpus(300);
        let idx: Vec<usize> = (0..300).collect();
        let (train, test) = stratified_split(&corpus, &idx, 0.2, 9);
        assert_eq!(train.len() + test.len(), 300);
        let ratio = |v: &[usize]| {
            v.iter().filter(|&&i| corpus.items[i].label).count() as f64 / v.len() as f64
        };
        assert!((ratio(&train) - ratio(&test)).abs() < 0.05);
    }
}
