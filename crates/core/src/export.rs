//! Gadget-corpus interchange in the VulDeePecker "code gadget file" style:
//!
//! ```text
//! <index> <program-id> <category> <key-line>
//! <gadget line>
//! <gadget line>
//! ...
//! <label 0|1>
//! ---------------------------------
//! ```
//!
//! The published VulDeePecker/SySeVR datasets ship in this shape; exporting
//! it lets the synthetic corpus be inspected with the same tooling (and
//! ingested back, which the tests rely on).

use crate::corpus::{GadgetCorpus, GadgetItem};
use sevuldet_dataset::Origin;
use sevuldet_gadget::Category;

const SEPARATOR: &str = "---------------------------------";

/// Serializes a gadget corpus to the gadget-file format.
pub fn to_gadget_file(corpus: &GadgetCorpus) -> String {
    let mut out = String::new();
    for (i, item) in corpus.items.iter().enumerate() {
        out.push_str(&format!(
            "{} {} {} {}\n",
            i + 1,
            item.program_id,
            item.category.abbrev(),
            item.key_line
        ));
        // One token-joined line per original gadget line is lost after
        // normalization flattening; emit the token stream in chunks of one
        // statement per line using `;`/`{`/`}` boundaries for readability.
        for line in split_statements(&item.tokens) {
            out.push_str(&line);
            out.push('\n');
        }
        out.push_str(if item.label { "1\n" } else { "0\n" });
        out.push_str(SEPARATOR);
        out.push('\n');
    }
    out
}

/// Splits a gadget-file line back into surface tokens. Whitespace separates
/// tokens except inside double-quoted string literals (which are single
/// tokens like `"%s %d"`; backslash escapes are honoured).
fn split_tokens(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    let mut escaped = false;
    for c in line.chars() {
        if in_str {
            cur.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => {
                cur.push(c);
                in_str = true;
            }
            c if c.is_whitespace() => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Splits a token stream back into statement-ish lines at `;`, `{`, `}`.
fn split_statements(tokens: &[String]) -> Vec<String> {
    let mut lines = Vec::new();
    let mut cur: Vec<&str> = Vec::new();
    for t in tokens {
        cur.push(t);
        if t == ";" || t == "{" || t == "}" {
            lines.push(cur.join(" "));
            cur.clear();
        }
    }
    if !cur.is_empty() {
        lines.push(cur.join(" "));
    }
    lines
}

/// A parse error for gadget files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GadgetFileError(pub String);

impl std::fmt::Display for GadgetFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "gadget file error: {}", self.0)
    }
}

impl std::error::Error for GadgetFileError {}

/// Parses a gadget file produced by [`to_gadget_file`].
///
/// # Errors
///
/// Returns [`GadgetFileError`] on malformed headers or labels.
pub fn from_gadget_file(text: &str) -> Result<GadgetCorpus, GadgetFileError> {
    let mut items = Vec::new();
    for block in text.split(SEPARATOR) {
        let lines: Vec<&str> = block.lines().filter(|l| !l.trim().is_empty()).collect();
        if lines.is_empty() {
            continue;
        }
        if lines.len() < 2 {
            return Err(GadgetFileError(format!("truncated block: {block:?}")));
        }
        let header: Vec<&str> = lines[0].split_whitespace().collect();
        if header.len() != 4 {
            return Err(GadgetFileError(format!("bad header `{}`", lines[0])));
        }
        let program_id = header[1].to_string();
        let category = match header[2] {
            "FC" => Category::Fc,
            "AU" => Category::Au,
            "PU" => Category::Pu,
            "AE" => Category::Ae,
            other => return Err(GadgetFileError(format!("bad category `{other}`"))),
        };
        let key_line: u32 = header[3]
            .parse()
            .map_err(|_| GadgetFileError(format!("bad key line `{}`", header[3])))?;
        let label = match *lines.last().expect("non-empty") {
            "1" => true,
            "0" => false,
            other => return Err(GadgetFileError(format!("bad label `{other}`"))),
        };
        let tokens: Vec<String> = lines[1..lines.len() - 1]
            .iter()
            .flat_map(|l| split_tokens(l))
            .collect();
        items.push(GadgetItem {
            tokens,
            label,
            category,
            program_id,
            key_line,
            origin: Origin::SardSim,
        });
    }
    Ok(GadgetCorpus { items })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::GadgetSpec;
    use sevuldet_dataset::{sard, SardConfig};

    #[test]
    fn roundtrip_preserves_tokens_labels_and_metadata() {
        let samples = sard::generate(&SardConfig {
            per_category: 4,
            ..SardConfig::default()
        });
        let corpus = GadgetSpec::path_sensitive().extract(&samples);
        let text = to_gadget_file(&corpus);
        let back = from_gadget_file(&text).expect("roundtrip parses");
        assert_eq!(back.len(), corpus.len());
        for (a, b) in corpus.items.iter().zip(&back.items) {
            assert_eq!(a.tokens, b.tokens, "tokens preserved");
            assert_eq!(a.label, b.label);
            assert_eq!(a.category, b.category);
            assert_eq!(a.program_id, b.program_id);
            assert_eq!(a.key_line, b.key_line);
        }
    }

    #[test]
    fn format_is_vuldeepecker_shaped() {
        let samples = sard::generate(&SardConfig {
            per_category: 2,
            ..SardConfig::default()
        });
        let corpus = GadgetSpec::path_sensitive().extract(&samples);
        let text = to_gadget_file(&corpus);
        assert!(text.contains(SEPARATOR));
        let first = text.lines().next().unwrap();
        assert!(first.starts_with("1 "), "1-based index: {first}");
        // Every block ends with a 0/1 label before the separator.
        for block in text.split(SEPARATOR) {
            if let Some(last) = block.lines().rfind(|l| !l.trim().is_empty()) {
                assert!(last == "0" || last == "1" || last.contains(' '));
            }
        }
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert!(from_gadget_file("garbage header\nx\n1\n").is_err());
        assert!(from_gadget_file("1 id FC notaline\ntok ;\n1\n").is_err());
        assert!(from_gadget_file("1 id XX 3\ntok ;\n1\n").is_err());
        assert!(from_gadget_file("1 id FC 3\ntok ;\n2\n").is_err());
    }
}
