//! Training hyper-parameters (paper Table IV) and environment scaling.

/// Hyper-parameters of one detector training run. Defaults follow the
/// paper's SEVulDet column of Table IV (dimension 30, batch 16, learning
/// rate 1e-4, dropout 0.2, 20 epochs, flexible length) — except that the
/// synthetic corpus converges well with Adam at 1e-3, which `quick()` uses.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Token-embedding dimension.
    pub embed_dim: usize,
    /// word2vec epochs.
    pub w2v_epochs: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size (gradient accumulation).
    pub batch: usize,
    /// Learning rate (Adam).
    pub lr: f64,
    /// Dropout probability.
    pub dropout: f64,
    /// Convolution channels of the CNN models.
    pub cnn_channels: usize,
    /// Hidden size of the BLSTM/BGRU baselines.
    pub rnn_hidden: usize,
    /// Predefined time steps τ of the RNN baselines (Definition 8; the
    /// paper fixes 500 tokens per gadget).
    pub rnn_steps: usize,
    /// Decision threshold on the sigmoid output (paper: 0.8).
    pub threshold: f64,
    /// Positive-class loss weight; `None` derives it from the class ratio.
    pub pos_weight: Option<f64>,
    /// RNG seed (init, shuffling, dropout).
    pub seed: u64,
    /// Worker threads for training, evaluation, and corpus processing.
    /// `1` = sequential, `0` = all available cores. Results are bit-identical
    /// for every value (see `par`); this is a runtime knob, not part of the
    /// model, so it is deliberately *not* persisted with a saved detector.
    pub jobs: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            embed_dim: 30,
            w2v_epochs: 2,
            epochs: 20,
            batch: 16,
            lr: 1e-4,
            dropout: 0.2,
            cnn_channels: 32,
            rnn_hidden: 32,
            rnn_steps: 500,
            threshold: 0.8,
            pos_weight: None,
            seed: 1,
            jobs: 1,
        }
    }
}

impl TrainConfig {
    /// A laptop-quick configuration used by the table harnesses at scale 1:
    /// fewer epochs, a higher Adam learning rate, smaller recurrent state,
    /// and a 0.5 decision threshold — a briefly-trained network is not
    /// calibrated enough for the paper's 0.8 cut-off.
    pub fn quick() -> TrainConfig {
        TrainConfig {
            embed_dim: 24,
            epochs: 24,
            lr: 1e-3,
            cnn_channels: 24,
            rnn_hidden: 24,
            rnn_steps: 300,
            threshold: 0.5,
            ..TrainConfig::default()
        }
    }

    /// The decision threshold expressed on the logit scale.
    pub fn logit_threshold(&self) -> f64 {
        (self.threshold / (1.0 - self.threshold)).ln()
    }
}

/// Reads the experiment scale factor from `SEVULDET_SCALE` (default 1).
/// Harness bins multiply corpus sizes and epochs by this.
pub fn scale_factor() -> usize {
    std::env::var("SEVULDET_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s: &usize| s >= 1)
        .unwrap_or(1)
}

/// Reads the global experiment seed from `SEVULDET_SEED` (default 42).
pub fn global_seed() -> u64 {
    std::env::var("SEVULDET_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = TrainConfig::default();
        assert_eq!(c.embed_dim, 30);
        assert_eq!(c.batch, 16);
        assert_eq!(c.epochs, 20);
        assert!((c.lr - 1e-4).abs() < 1e-12);
        assert!((c.dropout - 0.2).abs() < 1e-12);
        assert_eq!(c.rnn_steps, 500);
    }

    #[test]
    fn logit_threshold_matches_sigmoid_inverse() {
        let c = TrainConfig::default();
        let z = c.logit_threshold();
        let back = 1.0 / (1.0 + (-z).exp());
        assert!((back - 0.8).abs() < 1e-12);
    }
}
