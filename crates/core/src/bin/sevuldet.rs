//! The `sevuldet` command-line tool: train a detector on the synthetic
//! corpus, save/load it, and scan C files for vulnerabilities with
//! per-gadget verdicts and attention-ranked tokens.
//!
//! ```text
//! sevuldet train --out model.svd [--per-category 60] [--epochs 24] [--seed 42] [--jobs N]
//! sevuldet scan <file.c> --model model.svd [--top 5] [--jobs N]
//! sevuldet gadgets <file.c> [--classic]
//! ```

use sevuldet::{
    load_detector, save_detector, top_tokens, Detector, GadgetSpec, ModelKind, TrainConfig,
};
use sevuldet_analysis::ProgramAnalysis;
use sevuldet_dataset::{sard, SardConfig};
use sevuldet_gadget::{build_gadget, find_special_tokens, GadgetKind, Normalizer};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("train") => cmd_train(&args[1..]),
        Some("scan") => cmd_scan(&args[1..]),
        Some("gadgets") => cmd_gadgets(&args[1..]),
        _ => {
            eprintln!("usage:");
            eprintln!(
                "  sevuldet train --out <model> [--per-category N] [--epochs N] [--seed N] [--jobs N]"
            );
            eprintln!("  sevuldet scan <file.c> --model <model> [--top N] [--jobs N]");
            eprintln!("  sevuldet gadgets <file.c> [--classic]");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// One command-line flag: its name and whether a value follows it. The
/// single table drives [`flag`], [`has_flag`], [`positional`], and
/// [`check_args`], so a flag added here is automatically parsed, skipped
/// when hunting for positionals, and accepted by validation.
struct FlagSpec {
    name: &'static str,
    takes_value: bool,
}

const FLAGS: &[FlagSpec] = &[
    FlagSpec {
        name: "--out",
        takes_value: true,
    },
    FlagSpec {
        name: "--per-category",
        takes_value: true,
    },
    FlagSpec {
        name: "--epochs",
        takes_value: true,
    },
    FlagSpec {
        name: "--seed",
        takes_value: true,
    },
    FlagSpec {
        name: "--jobs",
        takes_value: true,
    },
    FlagSpec {
        name: "--model",
        takes_value: true,
    },
    FlagSpec {
        name: "--top",
        takes_value: true,
    },
    FlagSpec {
        name: "--classic",
        takes_value: false,
    },
];

fn spec(name: &str) -> Option<&'static FlagSpec> {
    FLAGS.iter().find(|s| s.name == name)
}

/// Rejects undeclared `--flags` and value-taking flags with no value.
fn check_args(args: &[String]) -> Result<(), String> {
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a.starts_with("--") {
            let s = spec(a).ok_or_else(|| format!("unknown flag `{a}`"))?;
            if s.takes_value {
                if i + 1 >= args.len() {
                    return Err(format!("flag `{a}` needs a value"));
                }
                i += 1;
            }
        }
        i += 1;
    }
    Ok(())
}

fn flag(args: &[String], name: &str) -> Option<String> {
    debug_assert!(
        spec(name).is_some_and(|s| s.takes_value),
        "{name} not declared as value flag"
    );
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn has_flag(args: &[String], name: &str) -> bool {
    debug_assert!(spec(name).is_some(), "{name} not declared");
    args.iter().any(|a| a == name)
}

fn positional(args: &[String]) -> Option<&String> {
    let mut skip_next = false;
    for a in args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a.starts_with("--") {
            skip_next = spec(a).is_none_or(|s| s.takes_value);
            continue;
        }
        return Some(a);
    }
    None
}

fn parse_flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag(args, name) {
        Some(v) => v.parse().map_err(|_| format!("bad {name} `{v}`")),
        None => Ok(default),
    }
}

fn cmd_train(args: &[String]) -> Result<(), String> {
    check_args(args)?;
    let out = flag(args, "--out").ok_or("train needs --out <path>")?;
    let per_category: usize = parse_flag(args, "--per-category", 60)?;
    let seed: u64 = parse_flag(args, "--seed", 42)?;
    let epochs: usize = parse_flag(args, "--epochs", 24)?;
    let jobs: usize = parse_flag(args, "--jobs", 1)?;

    let samples = sard::generate(&SardConfig {
        per_category,
        seed,
        ..SardConfig::default()
    });
    let gadget_spec = GadgetSpec::path_sensitive();
    let corpus = gadget_spec.extract_jobs(&samples, jobs);
    eprintln!(
        "training SEVulDet on {} path-sensitive gadgets ({} vulnerable), {} epochs, {} job(s) ...",
        corpus.len(),
        corpus.vulnerable(),
        epochs,
        jobs
    );
    let cfg = TrainConfig {
        seed,
        epochs,
        jobs,
        ..TrainConfig::quick()
    };
    let mut detector = Detector::train(&corpus, ModelKind::SevulDet, &cfg);
    let text = save_detector(&mut detector);
    std::fs::write(&out, text).map_err(|e| format!("writing {out}: {e}"))?;
    eprintln!("saved model to {out}");
    Ok(())
}

fn cmd_scan(args: &[String]) -> Result<(), String> {
    check_args(args)?;
    let file = positional(args).ok_or("scan needs a <file.c>")?.clone();
    let model_path = flag(args, "--model").ok_or("scan needs --model <path>")?;
    let top: usize = parse_flag(args, "--top", 0)?;
    let jobs: usize = parse_flag(args, "--jobs", 1)?;

    let source = std::fs::read_to_string(&file).map_err(|e| format!("reading {file}: {e}"))?;
    let model_text =
        std::fs::read_to_string(&model_path).map_err(|e| format!("reading {model_path}: {e}"))?;
    let mut detector = load_detector(&model_text).map_err(|e| e.to_string())?;

    let program = sevuldet_lang::parse(&source).map_err(|e| e.to_string())?;
    let analysis = ProgramAnalysis::analyze(&program);
    let specials = find_special_tokens(&program, &analysis);
    if specials.is_empty() {
        println!("{file}: no special tokens — nothing to scan");
        return Ok(());
    }
    let gadget_spec = GadgetSpec::path_sensitive();
    let slice = gadget_spec.slice_config();
    // Slice + normalize every gadget (parallel), then score the whole batch
    // (parallel); both stages return results in special-token order.
    let streams: Vec<Vec<String>> = sevuldet::parallel_map(&specials, jobs, |_, st| {
        let gadget = build_gadget(&program, &analysis, st, GadgetKind::PathSensitive, &slice);
        Normalizer::normalize_gadget(&gadget).tokens()
    });
    let probs = detector.predict_batch(&streams, jobs);
    // Decide at the threshold the model was trained and saved with — a
    // detector calibrated for the paper's 0.8 cut-off must not silently be
    // scanned at 0.5.
    let threshold = detector.threshold();
    let mut flagged = 0usize;
    for ((st, tokens), p) in specials.iter().zip(&streams).zip(&probs) {
        let p = *p;
        if p > threshold {
            flagged += 1;
            println!(
                "{file}:{}: [{}] `{}` p={p:.3}  ** potentially vulnerable **",
                st.line,
                st.category.abbrev(),
                st.name
            );
            if top > 0 {
                for r in top_tokens(&mut detector, tokens, top) {
                    println!("      attention {:>6.1}%  {}", r.percent, r.token);
                }
            }
        } else {
            println!(
                "{file}:{}: [{}] `{}` p={p:.3}",
                st.line,
                st.category.abbrev(),
                st.name
            );
        }
    }
    println!(
        "\n{flagged}/{} gadgets flagged in {file} (threshold {threshold})",
        specials.len()
    );
    Ok(())
}

fn cmd_gadgets(args: &[String]) -> Result<(), String> {
    check_args(args)?;
    let file = positional(args).ok_or("gadgets needs a <file.c>")?.clone();
    let kind = if has_flag(args, "--classic") {
        GadgetKind::Classic
    } else {
        GadgetKind::PathSensitive
    };
    let source = std::fs::read_to_string(&file).map_err(|e| format!("reading {file}: {e}"))?;
    let program = sevuldet_lang::parse(&source).map_err(|e| e.to_string())?;
    let analysis = ProgramAnalysis::analyze(&program);
    let specials = find_special_tokens(&program, &analysis);
    let gadget_spec = GadgetSpec::path_sensitive();
    for st in &specials {
        let gadget = build_gadget(&program, &analysis, st, kind, &gadget_spec.slice_config());
        println!("{gadget}\n");
    }
    println!("{} gadgets ({kind:?})", specials.len());
    Ok(())
}
