//! The `sevuldet` command-line tool: train a detector on the synthetic
//! corpus, save/load it, and scan C files for vulnerabilities with
//! per-gadget verdicts and attention-ranked tokens.
//!
//! ```text
//! sevuldet train --out model.svd [--per-category 60] [--epochs 24] [--seed 42]
//! sevuldet scan <file.c> --model model.svd [--top 5]
//! sevuldet gadgets <file.c> [--classic]
//! ```

use sevuldet::{
    load_detector, save_detector, top_tokens, Detector, GadgetSpec, ModelKind, TrainConfig,
};
use sevuldet_analysis::ProgramAnalysis;
use sevuldet_dataset::{sard, SardConfig};
use sevuldet_gadget::{build_gadget, find_special_tokens, GadgetKind, Normalizer};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("train") => cmd_train(&args[1..]),
        Some("scan") => cmd_scan(&args[1..]),
        Some("gadgets") => cmd_gadgets(&args[1..]),
        _ => {
            eprintln!("usage:");
            eprintln!("  sevuldet train --out <model> [--per-category N] [--epochs N] [--seed N]");
            eprintln!("  sevuldet scan <file.c> --model <model> [--top N]");
            eprintln!("  sevuldet gadgets <file.c> [--classic]");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn positional(args: &[String]) -> Option<&String> {
    let mut skip_next = false;
    for a in args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a.starts_with("--") {
            // Boolean flags take no value; everything else does.
            skip_next = a != "--classic";
            continue;
        }
        return Some(a);
    }
    None
}

fn cmd_train(args: &[String]) -> Result<(), String> {
    let out = flag(args, "--out").ok_or("train needs --out <path>")?;
    let per_category: usize = flag(args, "--per-category")
        .map(|v| v.parse().map_err(|_| "bad --per-category"))
        .transpose()?
        .unwrap_or(60);
    let seed: u64 = flag(args, "--seed")
        .map(|v| v.parse().map_err(|_| "bad --seed"))
        .transpose()?
        .unwrap_or(42);
    let epochs: usize = flag(args, "--epochs")
        .map(|v| v.parse().map_err(|_| "bad --epochs"))
        .transpose()?
        .unwrap_or(24);

    let samples = sard::generate(&SardConfig {
        per_category,
        seed,
        ..SardConfig::default()
    });
    let spec = GadgetSpec::path_sensitive();
    let corpus = spec.extract(&samples);
    eprintln!(
        "training SEVulDet on {} path-sensitive gadgets ({} vulnerable), {} epochs ...",
        corpus.len(),
        corpus.vulnerable(),
        epochs
    );
    let cfg = TrainConfig {
        seed,
        epochs,
        ..TrainConfig::quick()
    };
    let mut detector = Detector::train(&corpus, ModelKind::SevulDet, &cfg);
    let text = save_detector(&mut detector);
    std::fs::write(&out, text).map_err(|e| format!("writing {out}: {e}"))?;
    eprintln!("saved model to {out}");
    Ok(())
}

fn cmd_scan(args: &[String]) -> Result<(), String> {
    let file = positional(args).ok_or("scan needs a <file.c>")?.clone();
    let model_path = flag(args, "--model").ok_or("scan needs --model <path>")?;
    let top: usize = flag(args, "--top")
        .map(|v| v.parse().map_err(|_| "bad --top"))
        .transpose()?
        .unwrap_or(0);

    let source = std::fs::read_to_string(&file).map_err(|e| format!("reading {file}: {e}"))?;
    let model_text =
        std::fs::read_to_string(&model_path).map_err(|e| format!("reading {model_path}: {e}"))?;
    let mut detector = load_detector(&model_text).map_err(|e| e.to_string())?;

    let program = sevuldet_lang::parse(&source).map_err(|e| e.to_string())?;
    let analysis = ProgramAnalysis::analyze(&program);
    let specials = find_special_tokens(&program, &analysis);
    if specials.is_empty() {
        println!("{file}: no special tokens — nothing to scan");
        return Ok(());
    }
    let spec = GadgetSpec::path_sensitive();
    let mut flagged = 0usize;
    for st in &specials {
        let gadget = build_gadget(
            &program,
            &analysis,
            st,
            GadgetKind::PathSensitive,
            &spec.slice_config(),
        );
        let tokens = Normalizer::normalize_gadget(&gadget).tokens();
        let p = detector.predict(&tokens);
        let verdict = p > 0.5;
        if verdict {
            flagged += 1;
            println!(
                "{file}:{}: [{}] `{}` p={p:.3}  ** potentially vulnerable **",
                st.line,
                st.category.abbrev(),
                st.name
            );
            if top > 0 {
                for r in top_tokens(&mut detector, &tokens, top) {
                    println!("      attention {:>6.1}%  {}", r.percent, r.token);
                }
            }
        } else {
            println!(
                "{file}:{}: [{}] `{}` p={p:.3}",
                st.line,
                st.category.abbrev(),
                st.name
            );
        }
    }
    println!(
        "\n{flagged}/{} gadgets flagged in {file}",
        specials.len()
    );
    Ok(())
}

fn cmd_gadgets(args: &[String]) -> Result<(), String> {
    let file = positional(args).ok_or("gadgets needs a <file.c>")?.clone();
    let kind = if has_flag(args, "--classic") {
        GadgetKind::Classic
    } else {
        GadgetKind::PathSensitive
    };
    let source = std::fs::read_to_string(&file).map_err(|e| format!("reading {file}: {e}"))?;
    let program = sevuldet_lang::parse(&source).map_err(|e| e.to_string())?;
    let analysis = ProgramAnalysis::analyze(&program);
    let specials = find_special_tokens(&program, &analysis);
    let spec = GadgetSpec::path_sensitive();
    for st in &specials {
        let gadget = build_gadget(&program, &analysis, st, kind, &spec.slice_config());
        println!("{gadget}\n");
    }
    println!("{} gadgets ({kind:?})", specials.len());
    Ok(())
}
