//! Training checkpoints: crash-safe snapshots of a run's full state —
//! model parameters, Adam moments, and the epoch/batch cursor — from which
//! a killed run resumes to a **byte-identical** final model.
//!
//! ## Why resume is exact
//!
//! Everything the training loop consumes is either (a) re-derived
//! deterministically from the config and corpus (word2vec table, encoded
//! ids, pos-weight, the shuffle RNG — whose stream position is simply the
//! epoch counter, so the resumed loop replays the shuffles of completed
//! epochs before skipping them), or (b) persisted here in full precision
//! (`{v:e}` formatting round-trips every finite `f64` exactly, the same
//! guarantee `save_params` relies on). Per-sample dropout streams are
//! position-seeded (see [`crate::par::sample_seed`]), not drawn from a
//! shared stream, so skipping completed batches consumes nothing that later
//! batches need.
//!
//! ## File format
//!
//! One file, `checkpoint.svc`, overwritten atomically
//! ([`crate::integrity::atomic_write`]) and sealed with the CRC footer
//! ([`crate::integrity::seal`]):
//!
//! ```text
//! sevuldet-checkpoint v1
//! fingerprint <sha256 of the run's identity>
//! progress <epoch> <cursor>
//! adam <t> <n>        ┐ optimizer state
//! ...                 ┘ (3 lines per tensor)
//! params <n>          ┐ model parameters
//! ...                 ┘ (2 lines per param)
//! sevuldet-footer crc32=........ len=....
//! ```
//!
//! `progress epoch e cursor c` means: epochs `< e` are fully applied, and
//! within epoch `e` the first `c` positions of that epoch's shuffled order
//! are already consumed. The fingerprint binds the checkpoint to the run's
//! hyper-parameters and training set, so resuming with different arguments
//! is a typed error, not a silently-diverged model.

use crate::config::TrainConfig;
use crate::integrity::{self, SealError};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Checkpoints successfully written by this process (for `/metrics` and
/// progress reporting).
static CHECKPOINTS_WRITTEN: AtomicU64 = AtomicU64::new(0);

/// Number of checkpoints this process has written so far.
pub fn checkpoints_written() -> u64 {
    CHECKPOINTS_WRITTEN.load(Ordering::Relaxed)
}

/// Name of the checkpoint file inside `--checkpoint-dir`.
pub const CHECKPOINT_FILE: &str = "checkpoint.svc";

const MAGIC: &str = "sevuldet-checkpoint v1";

/// Where and how often the trainer checkpoints.
#[derive(Debug, Clone)]
pub struct CheckpointSpec {
    /// Directory holding `checkpoint.svc` (created if missing).
    pub dir: PathBuf,
    /// Checkpoint every N optimizer steps; epoch boundaries always
    /// checkpoint. `0` = epoch boundaries only.
    pub every: usize,
    /// Resume from an existing checkpoint when one is present (a missing
    /// file is a fresh start, not an error).
    pub resume: bool,
}

impl CheckpointSpec {
    /// Path of the checkpoint file this spec reads and writes.
    pub fn path(&self) -> PathBuf {
        self.dir.join(CHECKPOINT_FILE)
    }
}

/// A parsed checkpoint, ready to be loaded into a model and optimizer.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Identity of the run that wrote it (see [`fingerprint`]).
    pub fingerprint: String,
    /// First epoch that still has work.
    pub epoch: usize,
    /// Positions of `epoch`'s shuffled order already consumed.
    pub cursor: usize,
    /// Serialized Adam state ([`sevuldet_nn::Adam::export_state`]).
    pub adam: String,
    /// Serialized parameters ([`sevuldet_nn::save_params`]).
    pub params: String,
}

/// Why a checkpoint could not be used.
#[derive(Debug)]
pub enum CheckpointError {
    /// The file could not be read or written.
    Io(std::io::Error),
    /// The bytes are corrupt or structurally invalid (includes CRC
    /// failures from the sealed footer).
    Invalid(String),
    /// The checkpoint belongs to a different run (seed, hyper-parameters,
    /// or training set changed).
    Mismatch {
        /// Fingerprint the current run computes.
        expected: String,
        /// Fingerprint stored in the file.
        found: String,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Invalid(msg) => write!(f, "invalid checkpoint: {msg}"),
            CheckpointError::Mismatch { expected, found } => write!(
                f,
                "checkpoint fingerprint mismatch: run is {expected}, file is {found} — \
                 it was written by a run with different arguments or data"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<SealError> for CheckpointError {
    fn from(e: SealError) -> Self {
        CheckpointError::Invalid(e.to_string())
    }
}

/// The identity of a training run: every input that influences the final
/// parameters. Two runs with equal fingerprints walk identical parameter
/// trajectories, so resuming across them is sound; anything else must be
/// rejected.
pub fn fingerprint(cfg: &TrainConfig, train_idx: &[usize], corpus_len: usize) -> String {
    let mut id = format!(
        "seed={} epochs={} batch={} lr={:e} dropout={:e} embed={} w2v={} cnn={} rnnh={} rnns={} \
         posw={:?} corpus={corpus_len} train={}",
        cfg.seed,
        cfg.epochs,
        cfg.batch,
        cfg.lr,
        cfg.dropout,
        cfg.embed_dim,
        cfg.w2v_epochs,
        cfg.cnn_channels,
        cfg.rnn_hidden,
        cfg.rnn_steps,
        cfg.pos_weight,
        train_idx.len(),
    );
    for i in train_idx {
        id.push_str(&format!(" {i}"));
    }
    integrity::sha256_hex(id.as_bytes())
}

/// Writes a checkpoint atomically (temp file + fsync + rename): a crash at
/// any instant leaves either the previous checkpoint or the new one, never
/// a torn file.
///
/// # Errors
///
/// Any underlying I/O error (the directory is created if missing).
pub fn save(
    path: &Path,
    fp: &str,
    epoch: usize,
    cursor: usize,
    adam: &str,
    params: &str,
) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut out = String::new();
    out.push_str(MAGIC);
    out.push('\n');
    out.push_str(&format!("fingerprint {fp}\n"));
    out.push_str(&format!("progress {epoch} {cursor}\n"));
    out.push_str(adam);
    if !adam.ends_with('\n') {
        out.push('\n');
    }
    out.push_str(params);
    let sealed = integrity::seal(out);
    integrity::atomic_write(path, sealed.as_bytes())?;
    CHECKPOINTS_WRITTEN.fetch_add(1, Ordering::Relaxed);
    Ok(())
}

/// Loads and verifies a checkpoint file. The caller compares
/// [`Checkpoint::fingerprint`] against its own (or uses [`load_for`]).
///
/// # Errors
///
/// [`CheckpointError::Io`] when unreadable, [`CheckpointError::Invalid`]
/// when corrupt (truncated, bit-flipped, or malformed).
pub fn load(path: &Path) -> Result<Checkpoint, CheckpointError> {
    let text = std::fs::read_to_string(path).map_err(CheckpointError::Io)?;
    let payload = integrity::unseal(&text)?;
    let mut lines = payload.lines();
    if lines.next() != Some(MAGIC) {
        return Err(CheckpointError::Invalid("bad magic header".into()));
    }
    let fp = lines
        .next()
        .and_then(|l| l.strip_prefix("fingerprint "))
        .ok_or_else(|| CheckpointError::Invalid("missing fingerprint".into()))?
        .to_string();
    let progress = lines
        .next()
        .and_then(|l| l.strip_prefix("progress "))
        .ok_or_else(|| CheckpointError::Invalid("missing progress".into()))?;
    let (epoch, cursor) = progress
        .split_once(' ')
        .and_then(|(e, c)| Some((e.parse().ok()?, c.parse().ok()?)))
        .ok_or_else(|| CheckpointError::Invalid(format!("bad progress line `{progress}`")))?;
    // The Adam block is self-delimiting: its header states the tensor
    // count, and each tensor is exactly three lines.
    let adam_head = lines
        .next()
        .ok_or_else(|| CheckpointError::Invalid("missing adam state".into()))?;
    let n_tensors: usize = adam_head
        .strip_prefix("adam ")
        .and_then(|rest| rest.split_whitespace().nth(1))
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| CheckpointError::Invalid(format!("bad adam header `{adam_head}`")))?;
    let mut adam = String::from(adam_head);
    adam.push('\n');
    for _ in 0..n_tensors * 3 {
        let l = lines
            .next()
            .ok_or_else(|| CheckpointError::Invalid("truncated adam state".into()))?;
        adam.push_str(l);
        adam.push('\n');
    }
    let params: String = lines.collect::<Vec<_>>().join("\n");
    if !params.starts_with("params ") {
        return Err(CheckpointError::Invalid("missing params block".into()));
    }
    Ok(Checkpoint {
        fingerprint: fp,
        epoch,
        cursor,
        adam,
        params,
    })
}

/// [`load`] plus the fingerprint check, mapping a missing file to
/// `Ok(None)` (fresh start) and a mismatched run to a typed error.
///
/// # Errors
///
/// Everything [`load`] returns except not-found, plus
/// [`CheckpointError::Mismatch`].
pub fn load_for(path: &Path, expected_fp: &str) -> Result<Option<Checkpoint>, CheckpointError> {
    let ckpt = match load(path) {
        Ok(c) => c,
        Err(CheckpointError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    if ckpt.fingerprint != expected_fp {
        return Err(CheckpointError::Mismatch {
            expected: expected_fp.to_string(),
            found: ckpt.fingerprint,
        });
    }
    Ok(Some(ckpt))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("svd-ckpt-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn checkpoint_roundtrips() {
        let dir = tmpdir("rt");
        let path = dir.join(CHECKPOINT_FILE);
        let adam = "adam 7 1\nmoment 1 2\n1e0 -2.5e-1\n3e0 4e0\n";
        let params = "params 1\nparam 1 2\n1e0 2e0\n";
        save(&path, "fp-abc", 3, 17, adam, params).unwrap();
        let c = load(&path).unwrap();
        assert_eq!(c.fingerprint, "fp-abc");
        assert_eq!((c.epoch, c.cursor), (3, 17));
        assert_eq!(c.adam, adam);
        assert_eq!(c.params, params.trim_end_matches('\n'));
        assert!(load_for(&path, "fp-abc").unwrap().is_some());
        assert!(matches!(
            load_for(&path, "other-run").unwrap_err(),
            CheckpointError::Mismatch { .. }
        ));
        assert!(load_for(&dir.join("absent.svc"), "fp-abc")
            .unwrap()
            .is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_checkpoints_are_rejected() {
        let dir = tmpdir("corrupt");
        let path = dir.join(CHECKPOINT_FILE);
        let adam = "adam 1 0\n";
        let params = "params 0\n";
        save(&path, "fp", 0, 0, adam, params).unwrap();
        let good = std::fs::read_to_string(&path).unwrap();
        // Truncation loses the footer.
        std::fs::write(&path, &good[..good.len() / 2]).unwrap();
        assert!(matches!(
            load(&path).unwrap_err(),
            CheckpointError::Invalid(_)
        ));
        // Bit flip fails the CRC.
        let mut bytes = good.clone().into_bytes();
        bytes[good.len() / 3] ^= 0x01;
        std::fs::write(&path, bytes).unwrap();
        assert!(matches!(
            load(&path).unwrap_err(),
            CheckpointError::Invalid(_)
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_tracks_run_identity() {
        let cfg = TrainConfig::quick();
        let a = fingerprint(&cfg, &[0, 1, 2], 10);
        assert_eq!(a, fingerprint(&cfg, &[0, 1, 2], 10), "deterministic");
        let mut cfg2 = cfg.clone();
        cfg2.seed ^= 1;
        assert_ne!(a, fingerprint(&cfg2, &[0, 1, 2], 10), "seed matters");
        assert_ne!(a, fingerprint(&cfg, &[0, 2, 1], 10), "order matters");
        assert_ne!(a, fingerprint(&cfg, &[0, 1, 2], 11), "corpus matters");
        // jobs is a runtime knob, not identity: results are bit-identical
        // across thread counts, so resume across --jobs values is sound.
        let mut cfg3 = cfg.clone();
        cfg3.jobs = 4;
        assert_eq!(a, fingerprint(&cfg3, &[0, 1, 2], 10));
    }
}
