//! Attention-weight interpretation (RQ4 / Fig. 6).
//!
//! After a prediction, the token-attention weights are hooked and the top-k
//! tokens are reported with weights regularized against the maximum — the
//! exact presentation of the paper's Fig. 6 bar chart.

use crate::pipeline::Detector;

/// One attention-ranked token.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedToken {
    /// The surface token.
    pub token: String,
    /// Index in the gadget's token stream.
    pub position: usize,
    /// Weight as a percentage of the maximum weight (the top token = 100%).
    pub percent: f64,
}

/// Runs the detector on a gadget and returns the `k` most attended tokens,
/// sorted by descending weight.
///
/// Returns an empty vector when the model exposes no attention weights
/// (e.g. the plain-CNN ablation).
pub fn top_tokens(detector: &mut Detector, tokens: &[String], k: usize) -> Vec<RankedToken> {
    let _ = detector.predict(tokens);
    let Some(weights) = detector.token_weights() else {
        return Vec::new();
    };
    let max = weights.iter().copied().fold(f64::MIN, f64::max).max(1e-12);
    // One entry per *distinct* token text (max weight wins), matching the
    // paper's Fig. 6 presentation.
    let mut best: std::collections::HashMap<&String, (usize, f64)> = Default::default();
    for (i, &w) in weights.iter().enumerate().take(tokens.len()) {
        let e = best.entry(&tokens[i]).or_insert((i, w));
        if w > e.1 {
            *e = (i, w);
        }
    }
    let mut ranked: Vec<RankedToken> = best
        .into_iter()
        .map(|(tok, (i, w))| RankedToken {
            token: tok.clone(),
            position: i,
            percent: w / max * 100.0,
        })
        .collect();
    ranked.sort_by(|a, b| {
        b.percent
            .partial_cmp(&a.percent)
            .expect("no NaN")
            .then_with(|| a.position.cmp(&b.position))
    });
    ranked.truncate(k);
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainConfig;
    use crate::pipeline::GadgetSpec;
    use crate::zoo::ModelKind;
    use sevuldet_dataset::{sard, SardConfig};

    #[test]
    fn top_tokens_ranked_and_normalized() {
        let samples = sard::generate(&SardConfig {
            per_category: 4,
            ..SardConfig::default()
        });
        let corpus = GadgetSpec::path_sensitive().extract(&samples);
        let cfg = TrainConfig {
            embed_dim: 10,
            w2v_epochs: 1,
            epochs: 2,
            cnn_channels: 8,
            ..TrainConfig::quick()
        };
        let mut det = crate::pipeline::Detector::train(&corpus, ModelKind::SevulDet, &cfg);
        let tokens = corpus.items[0].tokens.clone();
        let ranked = top_tokens(&mut det, &tokens, 10);
        assert!(!ranked.is_empty());
        assert!(ranked.len() <= 10);
        assert!((ranked[0].percent - 100.0).abs() < 1e-9, "top token = 100%");
        for w in ranked.windows(2) {
            assert!(w[0].percent >= w[1].percent, "descending order");
        }
    }

    #[test]
    fn plain_cnn_has_no_attention_to_rank() {
        let samples = sard::generate(&SardConfig {
            per_category: 3,
            ..SardConfig::default()
        });
        let corpus = GadgetSpec::path_sensitive().extract(&samples);
        let cfg = TrainConfig {
            embed_dim: 8,
            w2v_epochs: 1,
            epochs: 1,
            cnn_channels: 8,
            ..TrainConfig::quick()
        };
        let mut det = crate::pipeline::Detector::train(&corpus, ModelKind::CnnPlain, &cfg);
        let tokens = corpus.items[0].tokens.clone();
        assert!(top_tokens(&mut det, &tokens, 5).is_empty());
    }
}
