//! Attention-weight interpretation (RQ4 / Fig. 6).
//!
//! After a prediction, the token-attention weights are hooked and the top-k
//! tokens are reported with weights regularized against the maximum — the
//! exact presentation of the paper's Fig. 6 bar chart.
//!
//! All explainability passes run on the detector's reference f64 path
//! ([`Detector::predict_reference`]): the f32/int8 fast engines never
//! capture attention state, so routing through them would silently return
//! nothing. Models that genuinely expose no relevance signal (the plain-CNN
//! ablation) produce a typed [`ExplainStatus::Unavailable`] instead.

use crate::pipeline::Detector;

/// One attention-ranked token.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedToken {
    /// The surface token.
    pub token: String,
    /// Index in the gadget's token stream.
    pub position: usize,
    /// Weight as a percentage of the maximum weight (the top token = 100%).
    pub percent: f64,
}

/// Whether an explanation could be produced for a model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExplainStatus {
    /// The model exposed per-token relevance weights.
    Ok,
    /// The model has no attention or saliency hook (e.g. the plain-CNN
    /// ablation) — never reported as a silently empty heatmap.
    Unavailable,
}

impl ExplainStatus {
    /// Wire label used in scan JSON.
    pub fn label(self) -> &'static str {
        match self {
            ExplainStatus::Ok => "ok",
            ExplainStatus::Unavailable => "explain_unavailable",
        }
    }
}

/// Summary statistics over one CBAM gate (channel or spatial).
#[derive(Debug, Clone, PartialEq)]
pub struct GateSummary {
    /// Gate length (channels, or sequence positions).
    pub len: usize,
    /// Mean gate activation.
    pub mean: f64,
    /// Maximum gate activation.
    pub max: f64,
    /// Index of the maximum activation.
    pub argmax: usize,
}

impl GateSummary {
    fn from_gate(gate: &[f64]) -> Option<GateSummary> {
        if gate.is_empty() {
            return None;
        }
        let mut max = f64::MIN;
        let mut argmax = 0;
        let mut sum = 0.0;
        for (i, &v) in gate.iter().enumerate() {
            sum += v;
            if v > max {
                max = v;
                argmax = i;
            }
        }
        Some(GateSummary {
            len: gate.len(),
            mean: sum / gate.len() as f64,
            max,
            argmax,
        })
    }
}

/// CBAM channel/spatial attention summaries for one prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct CbamSummary {
    /// Channel-gate statistics.
    pub channel: GateSummary,
    /// Spatial-gate statistics (positions are post-convolution).
    pub spatial: GateSummary,
}

/// A full explanation for one gadget: the Fig. 6 token heatmap plus CBAM
/// gate summaries when the model carries a CBAM block.
#[derive(Debug, Clone, PartialEq)]
pub struct Explanation {
    /// Whether the model produced relevance weights at all.
    pub status: ExplainStatus,
    /// Top-k tokens, descending percent-of-max. Empty iff `status` is
    /// [`ExplainStatus::Unavailable`].
    pub tokens: Vec<RankedToken>,
    /// CBAM gate summaries, when present on the model.
    pub cbam: Option<CbamSummary>,
}

/// Runs the detector on a gadget and returns the `k` most attended tokens,
/// sorted by descending weight.
///
/// The prediction runs on the reference f64 path regardless of the
/// detector's precision tier, so the weights always reflect this input.
/// Returns an empty vector when the model exposes no attention weights
/// (e.g. the plain-CNN ablation).
pub fn top_tokens(detector: &mut Detector, tokens: &[String], k: usize) -> Vec<RankedToken> {
    let _ = detector.predict_reference(tokens);
    let Some(weights) = detector.token_weights() else {
        return Vec::new();
    };
    rank_weights(&weights, tokens, k)
}

/// Runs the detector on a gadget on the reference f64 path and assembles the
/// full typed explanation: top-`k` token heatmap plus CBAM summaries.
pub fn explain_tokens(detector: &mut Detector, tokens: &[String], k: usize) -> Explanation {
    let _ = detector.predict_reference(tokens);
    let ranked = match detector.token_weights() {
        Some(w) => rank_weights(&w, tokens, k),
        None => Vec::new(),
    };
    let cbam = detector.cbam_gates().and_then(|(c, s)| {
        Some(CbamSummary {
            channel: GateSummary::from_gate(&c)?,
            spatial: GateSummary::from_gate(&s)?,
        })
    });
    let status = if ranked.is_empty() {
        ExplainStatus::Unavailable
    } else {
        ExplainStatus::Ok
    };
    Explanation {
        status,
        tokens: ranked,
        cbam,
    }
}

fn rank_weights(weights: &[f64], tokens: &[String], k: usize) -> Vec<RankedToken> {
    let max = weights.iter().copied().fold(f64::MIN, f64::max).max(1e-12);
    // One entry per *distinct* token text (max weight wins), matching the
    // paper's Fig. 6 presentation.
    let mut best: std::collections::HashMap<&String, (usize, f64)> = Default::default();
    for (i, &w) in weights.iter().enumerate().take(tokens.len()) {
        let e = best.entry(&tokens[i]).or_insert((i, w));
        if w > e.1 {
            *e = (i, w);
        }
    }
    let mut ranked: Vec<RankedToken> = best
        .into_iter()
        .map(|(tok, (i, w))| RankedToken {
            token: tok.clone(),
            position: i,
            percent: w / max * 100.0,
        })
        .collect();
    ranked.sort_by(|a, b| {
        b.percent
            .partial_cmp(&a.percent)
            .expect("no NaN")
            .then_with(|| a.position.cmp(&b.position))
    });
    ranked.truncate(k);
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainConfig;
    use crate::pipeline::GadgetSpec;
    use crate::zoo::ModelKind;
    use sevuldet_dataset::{sard, SardConfig};
    use sevuldet_nn::Precision;

    fn trained(kind: ModelKind, per_category: usize) -> (Detector, Vec<String>) {
        let samples = sard::generate(&SardConfig {
            per_category,
            ..SardConfig::default()
        });
        let corpus = GadgetSpec::path_sensitive().extract(&samples);
        let cfg = TrainConfig {
            embed_dim: 10,
            w2v_epochs: 1,
            epochs: 2,
            cnn_channels: 8,
            ..TrainConfig::quick()
        };
        let tokens = corpus.items[0].tokens.clone();
        (Detector::train(&corpus, kind, &cfg), tokens)
    }

    #[test]
    fn top_tokens_ranked_and_normalized() {
        let (mut det, tokens) = trained(ModelKind::SevulDet, 4);
        let ranked = top_tokens(&mut det, &tokens, 10);
        assert!(!ranked.is_empty());
        assert!(ranked.len() <= 10);
        assert!((ranked[0].percent - 100.0).abs() < 1e-9, "top token = 100%");
        for w in ranked.windows(2) {
            assert!(w[0].percent >= w[1].percent, "descending order");
        }
    }

    #[test]
    fn plain_cnn_has_no_attention_to_rank() {
        let (mut det, tokens) = trained(ModelKind::CnnPlain, 3);
        assert!(top_tokens(&mut det, &tokens, 5).is_empty());
        let exp = explain_tokens(&mut det, &tokens, 5);
        assert_eq!(exp.status, ExplainStatus::Unavailable);
        assert_eq!(exp.status.label(), "explain_unavailable");
        assert!(exp.tokens.is_empty());
        assert!(exp.cbam.is_none(), "plain CNN has no CBAM block");
    }

    #[test]
    fn fast_tier_explain_falls_back_to_reference_path() {
        let (mut det, tokens) = trained(ModelKind::SevulDet, 4);
        det.calibrate().expect("calibration for the int8 tier");
        let reference = top_tokens(&mut det, &tokens, 10);
        assert!(!reference.is_empty());
        for precision in [Precision::F32, Precision::Int8] {
            det.set_precision(precision)
                .expect("CNN supports fast tiers");
            let ranked = top_tokens(&mut det, &tokens, 10);
            assert_eq!(
                ranked, reference,
                "explain under {precision:?} must match the f64 reference"
            );
        }
    }

    #[test]
    fn rnn_saliency_produces_a_heatmap() {
        let (mut det, tokens) = trained(ModelKind::Bgru, 3);
        let exp = explain_tokens(&mut det, &tokens, 8);
        assert_eq!(exp.status, ExplainStatus::Ok);
        assert!(!exp.tokens.is_empty());
        assert!((exp.tokens[0].percent - 100.0).abs() < 1e-9);
        assert!(exp.cbam.is_none(), "RNNs carry no CBAM block");
    }

    #[test]
    fn cbam_summaries_present_on_full_model() {
        let (mut det, tokens) = trained(ModelKind::SevulDet, 4);
        let exp = explain_tokens(&mut det, &tokens, 5);
        assert_eq!(exp.status, ExplainStatus::Ok);
        let cbam = exp.cbam.expect("full SEVulDet has CBAM");
        assert!(cbam.channel.len > 0 && cbam.spatial.len > 0);
        assert!(cbam.spatial.max <= 1.0 + 1e-12, "spatial gate is sigmoid");
        assert!(cbam.channel.argmax < cbam.channel.len);
    }
}
