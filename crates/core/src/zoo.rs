//! The model zoo: every network the evaluation compares.

use crate::config::TrainConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sevuldet_nn::{
    CbamOrder, CellKind, CnnConfig, Param, RnnNet, SequenceClassifier, SevulDetCnn, Tensor,
};
use std::fmt;

/// Which network to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// The full SEVulDet network: token attention + CBAM + SPP.
    SevulDet,
    /// SEVulDet with inputs truncated/padded to `rnn_steps` tokens — the
    /// fixed-length ablation of Table II.
    SevulDetFixed,
    /// CNN without any attention (Table III "CNN").
    CnnPlain,
    /// CNN with token attention only (Table III "CNN-TokenATT").
    CnnTokenAtt,
    /// Full SEVulDet but with the CBAM gates in *parallel* arrangement —
    /// the ablation the paper mentions when noting sequential works better.
    SevulDetCbamParallel,
    /// Bidirectional LSTM with predefined time steps (VulDeePecker's net).
    Blstm,
    /// Bidirectional GRU with predefined time steps (SySeVR's best net).
    Bgru,
}

impl ModelKind {
    /// Paper-style display name.
    pub fn label(&self) -> &'static str {
        match self {
            ModelKind::SevulDet => "SEVulDet",
            ModelKind::SevulDetFixed => "SEVulDet (fixed-length)",
            ModelKind::CnnPlain => "CNN",
            ModelKind::CnnTokenAtt => "CNN-TokenATT",
            ModelKind::SevulDetCbamParallel => "SEVulDet (parallel CBAM)",
            ModelKind::Blstm => "BLSTM",
            ModelKind::Bgru => "BGRU",
        }
    }
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A zoo model behind one concrete type. `Clone` lets the data-parallel
/// trainer hand each worker thread its own replica. The variants differ in
/// size, but only a handful of models ever exist at once, so boxing the
/// large one would buy nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Clone)]
pub enum AnyModel {
    /// CNN family.
    Cnn(SevulDetCnn),
    /// RNN family.
    Rnn(RnnNet),
}

impl fmt::Debug for AnyModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnyModel::Cnn(_) => f.write_str("AnyModel::Cnn"),
            AnyModel::Rnn(_) => f.write_str("AnyModel::Rnn"),
        }
    }
}

impl AnyModel {
    /// The CBAM `(channel, spatial)` gates captured by the last forward
    /// pass, when the model is a CNN with a CBAM block that has run.
    pub fn cbam_gates(&self) -> Option<(Vec<f64>, Vec<f64>)> {
        match self {
            AnyModel::Cnn(m) => m.cbam_gates(),
            AnyModel::Rnn(_) => None,
        }
    }
}

impl SequenceClassifier for AnyModel {
    fn forward_logit(&mut self, ids: &[usize], train: bool, rng: &mut StdRng) -> f64 {
        match self {
            AnyModel::Cnn(m) => m.forward_logit(ids, train, rng),
            AnyModel::Rnn(m) => m.forward_logit(ids, train, rng),
        }
    }

    fn backward(&mut self, dlogit: f64) {
        match self {
            AnyModel::Cnn(m) => m.backward(dlogit),
            AnyModel::Rnn(m) => m.backward(dlogit),
        }
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        match self {
            AnyModel::Cnn(m) => m.params_mut(),
            AnyModel::Rnn(m) => m.params_mut(),
        }
    }

    fn token_weights(&self) -> Option<Vec<f64>> {
        match self {
            AnyModel::Cnn(m) => m.token_weights(),
            AnyModel::Rnn(m) => m.token_weights(),
        }
    }
}

/// Builds a model of the given kind on top of a pre-trained embedding table.
pub fn build_model(kind: ModelKind, table: Tensor, cfg: &TrainConfig) -> AnyModel {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xbeef);
    match kind {
        ModelKind::SevulDet => AnyModel::Cnn(SevulDetCnn::new(
            table,
            CnnConfig {
                channels: cfg.cnn_channels,
                dropout: cfg.dropout,
                ..CnnConfig::default()
            },
            &mut rng,
        )),
        ModelKind::SevulDetFixed => AnyModel::Cnn(SevulDetCnn::new(
            table,
            CnnConfig {
                channels: cfg.cnn_channels,
                dropout: cfg.dropout,
                fixed_len: Some(cfg.rnn_steps),
                ..CnnConfig::default()
            },
            &mut rng,
        )),
        ModelKind::CnnPlain => AnyModel::Cnn(SevulDetCnn::new(
            table,
            CnnConfig {
                channels: cfg.cnn_channels,
                dropout: cfg.dropout,
                ..CnnConfig::plain()
            },
            &mut rng,
        )),
        ModelKind::CnnTokenAtt => AnyModel::Cnn(SevulDetCnn::new(
            table,
            CnnConfig {
                channels: cfg.cnn_channels,
                dropout: cfg.dropout,
                ..CnnConfig::token_att_only()
            },
            &mut rng,
        )),
        ModelKind::SevulDetCbamParallel => AnyModel::Cnn(SevulDetCnn::new(
            table,
            CnnConfig {
                channels: cfg.cnn_channels,
                dropout: cfg.dropout,
                cbam_order: CbamOrder::Parallel,
                ..CnnConfig::default()
            },
            &mut rng,
        )),
        ModelKind::Blstm => AnyModel::Rnn(RnnNet::new(
            table,
            CellKind::Lstm,
            cfg.rnn_hidden,
            cfg.rnn_steps,
            cfg.dropout,
            &mut rng,
        )),
        ModelKind::Bgru => AnyModel::Rnn(RnnNet::new(
            table,
            CellKind::Gru,
            cfg.rnn_hidden,
            cfg.rnn_steps,
            cfg.dropout,
            &mut rng,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_builds_and_runs() {
        let cfg = TrainConfig {
            embed_dim: 8,
            cnn_channels: 8,
            rnn_hidden: 8,
            rnn_steps: 16,
            ..TrainConfig::quick()
        };
        let mut rng = StdRng::seed_from_u64(0);
        for kind in [
            ModelKind::SevulDet,
            ModelKind::SevulDetFixed,
            ModelKind::CnnPlain,
            ModelKind::CnnTokenAtt,
            ModelKind::SevulDetCbamParallel,
            ModelKind::Blstm,
            ModelKind::Bgru,
        ] {
            let table = Tensor::zeros(&[10, 8]);
            let mut m = build_model(kind, table, &cfg);
            let logit = m.forward_logit(&[1, 2, 3], false, &mut rng);
            assert!(logit.is_finite(), "{kind}");
            assert!(!m.params_mut().is_empty());
        }
    }

    #[test]
    fn labels_are_paper_names() {
        assert_eq!(ModelKind::SevulDet.label(), "SEVulDet");
        assert_eq!(ModelKind::Bgru.to_string(), "BGRU");
    }
}
