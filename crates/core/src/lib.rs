//! # sevuldet
//!
//! The end-to-end SEVulDet pipeline (DSN 2022, Tang et al.): program corpus
//! → special tokens → inter-procedural slices → **path-sensitive code
//! gadgets** (Algorithm 1) → labeling & normalization → word2vec embedding →
//! the **CNN with spatial pyramid pooling and multilayer attention** → the
//! five paper metrics. The module layout follows the paper's Fig. 2:
//!
//! * [`pipeline::GadgetSpec`] — Step I variants (SEVulDet / SySeVR-style /
//!   VulDeePecker-style gadget generation);
//! * [`corpus`] — Steps II-III (labeling, normalization) + Step IV's
//!   word2vec encoding;
//! * [`zoo`] — every network of the evaluation (SEVulDet and ablations,
//!   BLSTM, BGRU);
//! * [`train`] — Step V training loops, stratified splits, k-fold CV;
//! * [`par`] — the deterministic data-parallel execution layer beneath
//!   them (bit-identical results for every `jobs` count);
//! * [`metrics`] — FPR/FNR/A/P/F1 exactly as §IV-A defines them;
//! * [`explain`] — the Fig. 6 attention-weight ranking.
//!
//! ## Example
//!
//! ```no_run
//! use sevuldet::{Detector, GadgetSpec, ModelKind, TrainConfig};
//! use sevuldet_dataset::{sard, SardConfig};
//!
//! let samples = sard::generate(&SardConfig::default());
//! let corpus = GadgetSpec::path_sensitive().extract(&samples);
//! let mut detector = Detector::train(&corpus, ModelKind::SevulDet,
//!                                    &TrainConfig::quick());
//! let verdict = detector.is_vulnerable(&corpus.items[0].tokens);
//! println!("vulnerable: {verdict}");
//! ```

pub mod checkpoint;
pub mod config;
pub mod corpus;
pub mod explain;
pub mod export;
pub mod faults;
pub mod integrity;
pub mod json;
pub mod metrics;
pub mod par;
pub mod persist;
pub mod pipeline;
#[deny(missing_docs)]
pub mod scan;
pub mod train;
pub mod zoo;

/// Span/event tracing for the whole pipeline — re-exported so `sevuldet`
/// users reach it as `sevuldet::trace` (it lives in its own bottom-of-stack
/// crate, `sevuldet-trace`, so every layer below `core` can emit spans too).
pub use sevuldet_trace as trace;

pub use checkpoint::{CheckpointError, CheckpointSpec};
pub use config::{global_seed, scale_factor, TrainConfig};
pub use corpus::{
    encode, extract_gadgets, extract_gadgets_jobs, Encoded, GadgetCorpus, GadgetItem,
};
pub use explain::{
    explain_tokens, top_tokens, CbamSummary, ExplainStatus, Explanation, GateSummary, RankedToken,
};
pub use export::{from_gadget_file, to_gadget_file};
pub use integrity::{atomic_write, crc32, sha256_hex};
pub use json::{Json, JsonError};
pub use metrics::Confusion;
pub use par::{
    effective_jobs, parallel_map, parallel_map_with, parallel_map_with_state, sample_seed,
};
pub use persist::{
    load_detector, load_detector_file, save_detector, save_detector_file, DetectorFileError,
    PersistError,
};
pub use pipeline::{cross_validate, run_split, Detector, GadgetSpec, PrecisionError};
pub use scan::{
    attach_explanations, combine_ensemble, error_json, prepare_source, score_prepared,
    score_prepared_mut, score_source, Finding, FindingStatus, MemberScore, PreparedGadget,
    PreparedSource, ScanError, ScanReport, EXPLAIN_TOP_K,
};
pub use sevuldet_nn::{simd_level, workspace_counters, Precision};
pub use train::{
    evaluate_model, k_folds, stratified_split, subsample, train_model, train_model_checkpointed,
};
pub use zoo::{build_model, AnyModel, ModelKind};
