//! Test-only fault injection: named failpoints compiled into the binary but
//! inert unless armed.
//!
//! A failpoint is a named call site — [`hit`] or [`hit_hint`] — that does
//! nothing until armed via the `SEVULDET_FAILPOINTS` environment variable
//! (read once at first use) or programmatically with [`arm`]. The
//! fault-injection suite uses them to kill a trainer at exact batch
//! boundaries, crash a save mid-write, and panic a serve worker on a chosen
//! request, then assert the recovery invariants.
//!
//! ## Spec grammar
//!
//! Comma-separated `name[:N]=action` clauses:
//!
//! * `action` is `abort` (SIGABRT, no unwinding — a stand-in for SIGKILL at
//!   a precise program point), `panic` (unwinds, for `catch_unwind`
//!   isolation), `panic@SUBSTR` (panics only when the call's hint string
//!   contains `SUBSTR`; hitless for plain [`hit`] calls), or `sleep:MS`
//!   (blocks the hitting thread for `MS` milliseconds — a small value makes
//!   a *slow* component, a huge one a *frozen* component that accepts work
//!   but never finishes it; the chaos suite builds both shard personalities
//!   from this one action).
//! * `:N` (1-based) delays the trigger until the Nth matching hit, so a
//!   trainer can be killed at the 7th batch boundary exactly.
//!
//! Example: `SEVULDET_FAILPOINTS="batch_boundary:5=abort"`.
//!
//! Overhead when nothing is armed: one relaxed atomic load per hit.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

#[derive(Debug, Clone, PartialEq, Eq)]
enum Action {
    Abort,
    Panic,
    PanicIfHint(String),
    Sleep(u64),
}

#[derive(Debug)]
struct FailPoint {
    action: Action,
    /// Matching hits remaining before the trigger fires (1 = fire on the
    /// next matching hit).
    remaining: u64,
    /// Total matching hits observed (for test assertions).
    hits: u64,
}

/// Arming state, checked on every hit before touching the registry lock:
/// `UNKNOWN` until the environment variable has been parsed (the first hit
/// pays for initialization), then `ARMED` or `UNARMED`. [`arm`] flips it to
/// `ARMED` directly. It never returns to `UNARMED` — a fully [`disarm`]ed
/// registry just matches nothing.
const STATE_UNKNOWN: u8 = 0;
const STATE_UNARMED: u8 = 1;
const STATE_ARMED: u8 = 2;
static STATE: AtomicU8 = AtomicU8::new(STATE_UNKNOWN);

fn registry() -> &'static Mutex<HashMap<String, FailPoint>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, FailPoint>>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let map = Mutex::new(HashMap::new());
        let mut armed = false;
        if let Ok(spec) = std::env::var("SEVULDET_FAILPOINTS") {
            if !spec.trim().is_empty() {
                let mut guard = map.lock().unwrap_or_else(|e| e.into_inner());
                for clause in spec.split(',') {
                    match parse_clause(clause.trim()) {
                        Ok((name, fp)) => {
                            guard.insert(name, fp);
                            armed = true;
                        }
                        Err(msg) => eprintln!("SEVULDET_FAILPOINTS: ignoring `{clause}`: {msg}"),
                    }
                }
            }
        }
        // `ARMED` may already have been stored by a concurrent `arm()`;
        // never downgrade it.
        let _ = STATE.compare_exchange(
            STATE_UNKNOWN,
            if armed { STATE_ARMED } else { STATE_UNARMED },
            Ordering::AcqRel,
            Ordering::Acquire,
        );
        map
    })
}

fn parse_clause(clause: &str) -> Result<(String, FailPoint), String> {
    let (target, action) = clause
        .split_once('=')
        .ok_or_else(|| "expected name=action".to_string())?;
    let (name, nth) = match target.split_once(':') {
        Some((n, count)) => (
            n,
            count
                .parse::<u64>()
                .ok()
                .filter(|&c| c >= 1)
                .ok_or_else(|| format!("bad hit count `{count}`"))?,
        ),
        None => (target, 1),
    };
    let action = if action == "abort" {
        Action::Abort
    } else if action == "panic" {
        Action::Panic
    } else if let Some(sub) = action.strip_prefix("panic@") {
        Action::PanicIfHint(sub.to_string())
    } else if let Some(ms) = action.strip_prefix("sleep:") {
        Action::Sleep(
            ms.parse::<u64>()
                .map_err(|_| format!("bad sleep duration `{ms}`"))?,
        )
    } else {
        return Err(format!("unknown action `{action}`"));
    };
    Ok((
        name.to_string(),
        FailPoint {
            action,
            remaining: nth,
            hits: 0,
        },
    ))
}

/// Arms failpoints from a spec string (same grammar as the environment
/// variable), merging over any already armed. Test-support API.
///
/// # Panics
///
/// Panics on a malformed spec — arming is test code, and a typo should fail
/// loudly.
pub fn arm(spec: &str) {
    let mut guard = registry().lock().unwrap_or_else(|e| e.into_inner());
    for clause in spec.split(',') {
        let (name, fp) = parse_clause(clause.trim()).expect("valid failpoint spec");
        guard.insert(name, fp);
    }
    STATE.store(STATE_ARMED, Ordering::Release);
}

/// Disarms one failpoint. Test-support API.
pub fn disarm(name: &str) {
    let mut guard = registry().lock().unwrap_or_else(|e| e.into_inner());
    guard.remove(name);
}

/// Matching hits a failpoint has observed so far (0 when never armed).
pub fn hits(name: &str) -> u64 {
    let guard = registry().lock().unwrap_or_else(|e| e.into_inner());
    guard.get(name).map_or(0, |fp| fp.hits)
}

/// A failpoint with no context; `panic@` clauses never fire here.
pub fn hit(name: &str) {
    hit_hint(name, "");
}

/// A failpoint carrying a context hint (e.g. the request names in a serve
/// batch), so `panic@SUBSTR` can target a specific poison input.
///
/// # Panics
///
/// By design, when armed with a `panic` action whose conditions match.
/// `abort` terminates the process without unwinding.
pub fn hit_hint(name: &str, hint: &str) {
    match STATE.load(Ordering::Acquire) {
        STATE_UNARMED => return,
        // First hit in the process: parse the environment variable, then
        // re-check what it said.
        STATE_UNKNOWN => {
            let _ = registry();
            if STATE.load(Ordering::Acquire) == STATE_UNARMED {
                return;
            }
        }
        _ => {}
    }
    let fire = {
        let mut guard = registry().lock().unwrap_or_else(|e| e.into_inner());
        let Some(fp) = guard.get_mut(name) else {
            return;
        };
        let matches = match &fp.action {
            Action::Abort | Action::Panic | Action::Sleep(_) => true,
            Action::PanicIfHint(sub) => hint.contains(sub.as_str()),
        };
        if !matches {
            return;
        }
        fp.hits += 1;
        fp.remaining -= 1;
        if fp.remaining > 0 {
            return;
        }
        fp.remaining = 1; // keep firing on subsequent matching hits
        fp.action.clone()
    };
    match fire {
        Action::Abort => {
            eprintln!("failpoint `{name}`: aborting process");
            std::process::abort();
        }
        Action::Panic | Action::PanicIfHint(_) => {
            panic!("failpoint `{name}` fired (hint: {hint:?})");
        }
        Action::Sleep(ms) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test exercises the whole lifecycle: the registry is process-global,
    // so separate #[test]s would race each other's arm/disarm.
    #[test]
    fn failpoint_lifecycle() {
        // Unarmed: free to hit.
        hit("fp-test-unarmed");
        assert_eq!(hits("fp-test-unarmed"), 0);

        // Countdown: fires on the 2nd hit, then every later hit.
        arm("fp-test-count:2=panic");
        hit("fp-test-count");
        assert_eq!(hits("fp-test-count"), 1);
        let caught = std::panic::catch_unwind(|| hit("fp-test-count"));
        assert!(caught.is_err(), "second hit must panic");
        let caught = std::panic::catch_unwind(|| hit("fp-test-count"));
        assert!(caught.is_err(), "stays armed after firing");
        disarm("fp-test-count");
        hit("fp-test-count");

        // Hint matching: only hints containing the marker fire.
        arm("fp-test-hint=panic@poison");
        hit_hint("fp-test-hint", "clean request");
        assert_eq!(hits("fp-test-hint"), 0);
        let caught = std::panic::catch_unwind(|| hit_hint("fp-test-hint", "a poison pill"));
        assert!(caught.is_err(), "matching hint must panic");
        hit("fp-test-hint"); // plain hit never matches panic@
        disarm("fp-test-hint");

        // Sleep: delays the hitting thread, keeps the process alive, and
        // keeps firing on later hits.
        arm("fp-test-sleep=sleep:30");
        let t0 = std::time::Instant::now();
        hit("fp-test-sleep");
        hit("fp-test-sleep");
        assert!(
            t0.elapsed() >= std::time::Duration::from_millis(60),
            "sleep failpoint must delay every hit"
        );
        assert_eq!(hits("fp-test-sleep"), 2);
        disarm("fp-test-sleep");

        // Malformed specs are rejected.
        assert!(parse_clause("nonsense").is_err());
        assert!(parse_clause("x:0=abort").is_err());
        assert!(parse_clause("x=explode").is_err());
        assert!(parse_clause("x=sleep:fast").is_err());
        assert!(parse_clause("x:3=abort").is_ok());
        assert!(parse_clause("x=sleep:250").is_ok());
    }
}
