//! Detector persistence: a trained [`Detector`] (model weights, vocabulary,
//! and configuration, including the decision threshold) round-trips through
//! a line-oriented text format, so the CLI can train once and scan many
//! times.
//!
//! ## Integrity (formats v2/v3)
//!
//! [`save_detector`] emits format v3: the v1 payload plus a sealed footer
//! (see [`crate::integrity`]) carrying the payload length and a CRC-32,
//! and — for CNN-family models — an optional `calibration` section holding
//! the int8 activation scales recorded at export time. [`load_detector`]
//! verifies the footer before parsing, so truncated or bit-flipped files
//! are rejected with a typed [`PersistError`] instead of being
//! deserialized into a silently-wrong model. Legacy v1 files (no footer)
//! and v2 files (no calibration section) still load — a v2-era model just
//! cannot run the int8 tier until re-exported — but any file whose header
//! claims v2 or v3 **must** carry a valid footer.
//!
//! [`save_detector_file`] / [`load_detector_file`] add crash-safe atomic
//! writes on top (temp file + fsync + rename).

use crate::config::TrainConfig;
use crate::integrity::{self, SealError};
use crate::pipeline::Detector;
use crate::zoo::ModelKind;
use sevuldet_embedding::Vocab;
use std::path::Path;

/// Why a saved detector could not be loaded. Each variant is a distinct
/// failure class so callers (CLI exit codes, the serve reload endpoint) can
/// react differently to corruption vs. format drift.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The file does not start with a sevuldet detector header at all.
    BadMagic,
    /// A v2 file with no integrity footer — the tail was truncated away.
    MissingFooter,
    /// The integrity footer is present but malformed or inconsistent.
    BadFooter(String),
    /// The payload's CRC-32 disagrees with the footer (bit flip/tamper).
    Checksum {
        /// Checksum the footer claims.
        stated: u32,
        /// Checksum computed over the payload.
        computed: u32,
    },
    /// A structural error in the payload (bad line, bad field, truncation
    /// inside a legacy v1 file).
    Format(String),
    /// The parameters do not fit the architecture the header declares.
    Model(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::BadMagic => write!(f, "detector load error: bad magic header"),
            PersistError::MissingFooter => write!(
                f,
                "detector load error: integrity footer missing (truncated file?)"
            ),
            PersistError::BadFooter(msg) => {
                write!(f, "detector load error: bad integrity footer: {msg}")
            }
            PersistError::Checksum { stated, computed } => write!(
                f,
                "detector load error: checksum mismatch (footer {stated:08x}, payload {computed:08x}) — file is corrupt"
            ),
            PersistError::Format(msg) => write!(f, "detector load error: {msg}"),
            PersistError::Model(msg) => write!(f, "detector load error: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<sevuldet_nn::LoadError> for PersistError {
    fn from(e: sevuldet_nn::LoadError) -> Self {
        PersistError::Model(e.0)
    }
}

impl From<SealError> for PersistError {
    fn from(e: SealError) -> Self {
        match e {
            SealError::MissingFooter => PersistError::MissingFooter,
            SealError::Checksum { stated, computed } => PersistError::Checksum { stated, computed },
            other => PersistError::BadFooter(other.to_string()),
        }
    }
}

/// Loading a detector from disk can fail before the bytes are even parsed.
#[derive(Debug)]
pub enum DetectorFileError {
    /// The file could not be read at all.
    Io(std::io::Error),
    /// The bytes were read but are not a valid saved detector.
    Invalid(PersistError),
}

impl std::fmt::Display for DetectorFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DetectorFileError::Io(e) => write!(f, "reading model file: {e}"),
            DetectorFileError::Invalid(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DetectorFileError {}

const MAGIC_V1: &str = "sevuldet-detector v1";
const MAGIC_V2: &str = "sevuldet-detector v2";
const MAGIC_V3: &str = "sevuldet-detector v3";

fn kind_tag(kind: ModelKind) -> &'static str {
    match kind {
        ModelKind::SevulDet => "sevuldet",
        ModelKind::SevulDetFixed => "sevuldet-fixed",
        ModelKind::CnnPlain => "cnn-plain",
        ModelKind::CnnTokenAtt => "cnn-tokenatt",
        ModelKind::SevulDetCbamParallel => "sevuldet-parallel-cbam",
        ModelKind::Blstm => "blstm",
        ModelKind::Bgru => "bgru",
    }
}

fn kind_from_tag(tag: &str) -> Option<ModelKind> {
    Some(match tag {
        "sevuldet" => ModelKind::SevulDet,
        "sevuldet-fixed" => ModelKind::SevulDetFixed,
        "cnn-plain" => ModelKind::CnnPlain,
        "cnn-tokenatt" => ModelKind::CnnTokenAtt,
        "sevuldet-parallel-cbam" => ModelKind::SevulDetCbamParallel,
        "blstm" => ModelKind::Blstm,
        "bgru" => ModelKind::Bgru,
        _ => return None,
    })
}

fn hex(s: &str) -> String {
    s.bytes().map(|b| format!("{b:02x}")).collect()
}

fn unhex(s: &str) -> Option<String> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let bytes: Option<Vec<u8>> = (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).ok())
        .collect();
    String::from_utf8(bytes?).ok()
}

/// Serializes a trained detector (format v3: payload + integrity footer,
/// plus the int8 calibration section for CNN-family models — computed here
/// from the deterministic calibration batch when not already present).
pub fn save_detector(detector: &mut Detector) -> String {
    if detector.supports_fast_tiers() && detector.calibration().is_none() {
        detector
            .calibrate()
            .expect("calibrating a CNN-family model is infallible");
    }
    let calibration: Option<Vec<f64>> = detector.calibration().map(<[f64]>::to_vec);
    let (kind, cfg, vocab, params_text) = detector.persist_parts();
    let mut out = String::new();
    out.push_str(MAGIC_V3);
    out.push('\n');
    out.push_str(&format!("kind {}\n", kind_tag(kind)));
    out.push_str(&format!(
        "config {} {} {} {} {} {} {} {}\n",
        cfg.embed_dim,
        cfg.cnn_channels,
        cfg.rnn_hidden,
        cfg.rnn_steps,
        cfg.dropout,
        cfg.threshold,
        cfg.seed,
        cfg.lr,
    ));
    out.push_str(&format!("vocab {}\n", vocab.len().saturating_sub(2)));
    for (tok, count) in vocab.entries() {
        out.push_str(&format!("{} {count}\n", hex(tok)));
    }
    if let Some(scales) = calibration {
        out.push_str(&format!("calibration {}", scales.len()));
        for s in scales {
            out.push_str(&format!(" {s:e}"));
        }
        out.push('\n');
    }
    out.push_str(&params_text);
    integrity::seal(out)
}

/// Restores a detector saved by [`save_detector`].
///
/// v2 input is checksum-verified before parsing; legacy v1 input (no
/// footer) is parsed structurally, keeping old saved models loadable.
///
/// # Errors
///
/// Returns a typed [`PersistError`]: integrity failures for corrupt v2
/// files, [`PersistError::Format`] for structural mismatches,
/// [`PersistError::Model`] when parameters do not fit the architecture.
pub fn load_detector(text: &str) -> Result<Detector, PersistError> {
    let payload = if integrity::has_footer(text) {
        integrity::unseal(text)?
    } else {
        // No footer: only the legacy v1 format may omit it. A v2/v3 header
        // without a footer means the file lost its tail.
        if matches!(text.lines().next(), Some(MAGIC_V2) | Some(MAGIC_V3)) {
            return Err(PersistError::MissingFooter);
        }
        text
    };
    let mut lines = payload.lines();
    match lines.next() {
        Some(MAGIC_V1) | Some(MAGIC_V2) | Some(MAGIC_V3) => {}
        _ => return Err(PersistError::BadMagic),
    }
    let kind_line = lines
        .next()
        .ok_or_else(|| PersistError::Format("missing kind".into()))?;
    let kind = kind_line
        .strip_prefix("kind ")
        .and_then(kind_from_tag)
        .ok_or_else(|| PersistError::Format(format!("bad kind line `{kind_line}`")))?;
    let cfg_line = lines
        .next()
        .and_then(|l| l.strip_prefix("config "))
        .ok_or_else(|| PersistError::Format("missing config".into()))?;
    let f: Vec<&str> = cfg_line.split_whitespace().collect();
    if f.len() != 8 {
        return Err(PersistError::Format(format!(
            "bad config line `{cfg_line}`"
        )));
    }
    let parse_err = |what: &str| PersistError::Format(format!("bad config field {what}"));
    let cfg = TrainConfig {
        embed_dim: f[0].parse().map_err(|_| parse_err("embed_dim"))?,
        cnn_channels: f[1].parse().map_err(|_| parse_err("cnn_channels"))?,
        rnn_hidden: f[2].parse().map_err(|_| parse_err("rnn_hidden"))?,
        rnn_steps: f[3].parse().map_err(|_| parse_err("rnn_steps"))?,
        dropout: f[4].parse().map_err(|_| parse_err("dropout"))?,
        threshold: f[5].parse().map_err(|_| parse_err("threshold"))?,
        seed: f[6].parse().map_err(|_| parse_err("seed"))?,
        lr: f[7].parse().map_err(|_| parse_err("lr"))?,
        ..TrainConfig::default()
    };
    let vocab_line = lines
        .next()
        .and_then(|l| l.strip_prefix("vocab "))
        .ok_or_else(|| PersistError::Format("missing vocab".into()))?;
    let n: usize = vocab_line
        .parse()
        .map_err(|_| PersistError::Format(format!("bad vocab count `{vocab_line}`")))?;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let l = lines
            .next()
            .ok_or_else(|| PersistError::Format("truncated vocab".into()))?;
        let (tok_hex, count) = l
            .split_once(' ')
            .ok_or_else(|| PersistError::Format(format!("bad vocab line `{l}`")))?;
        let tok = unhex(tok_hex)
            .ok_or_else(|| PersistError::Format(format!("bad token hex `{tok_hex}`")))?;
        let count: u64 = count
            .parse()
            .map_err(|_| PersistError::Format(format!("bad count in `{l}`")))?;
        entries.push((tok, count));
    }
    let vocab = Vocab::from_entries(entries);
    // Optional v3 section between vocab and parameters: `calibration N s…`.
    // Tolerated under any header so a hand-downgraded file keeps loading.
    let mut calibration: Option<Vec<f64>> = None;
    let mut peek = lines.clone();
    if let Some(rest) = peek.next().and_then(|l| l.strip_prefix("calibration ")) {
        let fields: Vec<&str> = rest.split_whitespace().collect();
        let count: usize = fields
            .first()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| PersistError::Format(format!("bad calibration count `{rest}`")))?;
        if fields.len() != count + 1 {
            return Err(PersistError::Format(format!(
                "calibration section claims {count} scales, has {}",
                fields.len().saturating_sub(1)
            )));
        }
        let scales: Result<Vec<f64>, _> = fields[1..].iter().map(|s| s.parse()).collect();
        calibration = Some(
            scales
                .map_err(|_| PersistError::Format(format!("bad calibration scale in `{rest}`")))?,
        );
        lines = peek;
    }
    let params_text: String = lines.collect::<Vec<_>>().join("\n");
    let mut det =
        Detector::from_persisted(kind, cfg, vocab, &params_text).map_err(PersistError::from)?;
    if let Some(scales) = calibration {
        det.set_calibration(scales);
    }
    Ok(det)
}

/// Saves a detector to `path` crash-safely ([`integrity::atomic_write`]):
/// a crash mid-save leaves the previous file intact, never a torn one.
///
/// # Errors
///
/// Any underlying I/O error.
pub fn save_detector_file(detector: &mut Detector, path: &Path) -> std::io::Result<()> {
    let text = save_detector(detector);
    integrity::atomic_write(path, text.as_bytes())
}

/// Loads a detector from `path`, distinguishing I/O failures from corrupt
/// or invalid content.
///
/// # Errors
///
/// [`DetectorFileError::Io`] when the file cannot be read,
/// [`DetectorFileError::Invalid`] when its bytes are rejected.
pub fn load_detector_file(path: &Path) -> Result<Detector, DetectorFileError> {
    let text = std::fs::read_to_string(path).map_err(DetectorFileError::Io)?;
    load_detector(&text).map_err(DetectorFileError::Invalid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::GadgetSpec;
    use sevuldet_dataset::{sard, SardConfig};

    fn tiny_detector() -> Detector {
        let samples = sard::generate(&SardConfig {
            per_category: 6,
            ..SardConfig::default()
        });
        let corpus = GadgetSpec::path_sensitive().extract(&samples);
        let cfg = TrainConfig {
            embed_dim: 10,
            w2v_epochs: 1,
            epochs: 2,
            cnn_channels: 8,
            ..TrainConfig::quick()
        };
        Detector::train(&corpus, ModelKind::SevulDet, &cfg)
    }

    #[test]
    fn detector_roundtrips_with_identical_predictions() {
        let samples = sard::generate(&SardConfig {
            per_category: 6,
            ..SardConfig::default()
        });
        let corpus = GadgetSpec::path_sensitive().extract(&samples);
        let cfg = TrainConfig {
            embed_dim: 10,
            w2v_epochs: 1,
            epochs: 2,
            cnn_channels: 8,
            ..TrainConfig::quick()
        };
        let mut det = Detector::train(&corpus, ModelKind::SevulDet, &cfg);
        let saved = save_detector(&mut det);
        let mut restored = load_detector(&saved).expect("roundtrip");
        for item in corpus.items.iter().take(10) {
            let a = det.predict(&item.tokens);
            let b = restored.predict(&item.tokens);
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn tokens_with_spaces_and_quotes_survive() {
        let entries = vec![
            ("\"hello world\"".to_string(), 3u64),
            ("var1".to_string(), 9),
        ];
        let v = Vocab::from_entries(entries.clone());
        assert_eq!(v.id("\"hello world\""), 2);
        let h = hex("\"hello world\"");
        assert_eq!(unhex(&h).unwrap(), "\"hello world\"");
    }

    #[test]
    fn corrupted_input_is_rejected() {
        assert_eq!(
            load_detector("not a model").unwrap_err(),
            PersistError::BadMagic
        );
        assert!(matches!(
            load_detector(&format!("{MAGIC_V1}\nkind unknown\n")).unwrap_err(),
            PersistError::Format(_)
        ));
        assert!(matches!(
            load_detector(&format!("{MAGIC_V1}\nkind sevuldet\nconfig 1 2\n")).unwrap_err(),
            PersistError::Format(_)
        ));
    }

    #[test]
    fn truncated_v2_file_is_rejected_with_typed_error() {
        let saved = save_detector(&mut tiny_detector());
        // Truncating anywhere loses the footer: MissingFooter, not garbage.
        for frac in [0.2, 0.5, 0.9] {
            let cut = &saved[..(saved.len() as f64 * frac) as usize];
            assert_eq!(
                load_detector(cut).unwrap_err(),
                PersistError::MissingFooter,
                "truncated at {frac}"
            );
        }
    }

    #[test]
    fn bitflipped_v2_file_is_rejected_with_checksum_error() {
        let saved = save_detector(&mut tiny_detector());
        let mut bytes = saved.clone().into_bytes();
        // Flip a bit in the middle of the payload (an ASCII digit of some
        // weight), keeping the text valid UTF-8.
        let i = bytes.len() / 2;
        bytes[i] ^= 0x01;
        let flipped = String::from_utf8(bytes).expect("still UTF-8");
        if flipped == saved {
            panic!("flip was a no-op");
        }
        assert!(matches!(
            load_detector(&flipped).unwrap_err(),
            PersistError::Checksum { .. }
        ));
    }

    #[test]
    fn legacy_v1_file_without_footer_still_loads() {
        let mut det = tiny_detector();
        let v2 = save_detector(&mut det);
        let payload = integrity::unseal(&v2).expect("sealed");
        // Rewrite the header to v1 and drop the footer — exactly what a
        // pre-footer save looked like.
        let legacy = payload.replacen(MAGIC_V3, MAGIC_V1, 1);
        let mut restored = load_detector(&legacy).expect("legacy load");
        let tokens = vec!["strcpy".to_string()];
        assert!((det.predict(&tokens) - restored.predict(&tokens)).abs() < 1e-12);
        // But a current header with its footer stripped is a truncation error.
        assert_eq!(
            load_detector(payload).unwrap_err(),
            PersistError::MissingFooter
        );
    }

    #[test]
    fn calibration_rides_v3_and_int8_requires_it() {
        use sevuldet_nn::Precision;
        let mut det = tiny_detector();
        let saved = save_detector(&mut det);
        let mut restored = load_detector(&saved).expect("v3 load");
        assert!(restored.calibration().is_some(), "v3 carries calibration");
        restored
            .set_precision(Precision::Int8)
            .expect("int8 after a v3 load");
        // Strip the calibration line — what a v2-era save looks like: the
        // model still loads, f32 still works, int8 is a typed error telling
        // the operator to re-export.
        let payload = integrity::unseal(&saved).expect("sealed");
        let stripped: String = payload
            .lines()
            .filter(|l| !l.starts_with("calibration "))
            .collect::<Vec<_>>()
            .join("\n");
        let mut old = load_detector(&integrity::seal(stripped)).expect("v2-era load");
        assert!(old.calibration().is_none());
        assert!(old.set_precision(Precision::Int8).is_err());
        old.set_precision(Precision::F32)
            .expect("f32 needs no calibration");
        // Fast-tier predictions stay close to the f64 reference.
        let tokens = vec!["strcpy".to_string(), "buf".to_string()];
        let reference = det.predict(&tokens);
        assert!((old.predict(&tokens) - reference).abs() < 1e-3);
    }

    #[test]
    fn file_roundtrip_is_atomic_and_typed() {
        let dir = std::env::temp_dir().join(format!("svd-persist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.svd");
        let mut det = tiny_detector();
        save_detector_file(&mut det, &path).expect("save");
        let mut restored = load_detector_file(&path).expect("load");
        let tokens = vec!["strcpy".to_string()];
        assert!((det.predict(&tokens) - restored.predict(&tokens)).abs() < 1e-12);
        // Missing file: Io, not Invalid.
        assert!(matches!(
            load_detector_file(&dir.join("nope.svd")).unwrap_err(),
            DetectorFileError::Io(_)
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
