//! Detector persistence: a trained [`Detector`] (model weights, vocabulary,
//! and configuration, including the decision threshold) round-trips through
//! a line-oriented text format, so the CLI can train once and scan many
//! times.

use crate::config::TrainConfig;
use crate::pipeline::Detector;
use crate::zoo::ModelKind;
use sevuldet_embedding::Vocab;

/// Error produced when loading a saved detector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistError(pub String);

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "detector load error: {}", self.0)
    }
}

impl std::error::Error for PersistError {}

impl From<sevuldet_nn::LoadError> for PersistError {
    fn from(e: sevuldet_nn::LoadError) -> Self {
        PersistError(e.0)
    }
}

const MAGIC: &str = "sevuldet-detector v1";

fn kind_tag(kind: ModelKind) -> &'static str {
    match kind {
        ModelKind::SevulDet => "sevuldet",
        ModelKind::SevulDetFixed => "sevuldet-fixed",
        ModelKind::CnnPlain => "cnn-plain",
        ModelKind::CnnTokenAtt => "cnn-tokenatt",
        ModelKind::SevulDetCbamParallel => "sevuldet-parallel-cbam",
        ModelKind::Blstm => "blstm",
        ModelKind::Bgru => "bgru",
    }
}

fn kind_from_tag(tag: &str) -> Option<ModelKind> {
    Some(match tag {
        "sevuldet" => ModelKind::SevulDet,
        "sevuldet-fixed" => ModelKind::SevulDetFixed,
        "cnn-plain" => ModelKind::CnnPlain,
        "cnn-tokenatt" => ModelKind::CnnTokenAtt,
        "sevuldet-parallel-cbam" => ModelKind::SevulDetCbamParallel,
        "blstm" => ModelKind::Blstm,
        "bgru" => ModelKind::Bgru,
        _ => return None,
    })
}

fn hex(s: &str) -> String {
    s.bytes().map(|b| format!("{b:02x}")).collect()
}

fn unhex(s: &str) -> Option<String> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let bytes: Option<Vec<u8>> = (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).ok())
        .collect();
    String::from_utf8(bytes?).ok()
}

/// Serializes a trained detector.
pub fn save_detector(detector: &mut Detector) -> String {
    let (kind, cfg, vocab, params_text) = detector.persist_parts();
    let mut out = String::new();
    out.push_str(MAGIC);
    out.push('\n');
    out.push_str(&format!("kind {}\n", kind_tag(kind)));
    out.push_str(&format!(
        "config {} {} {} {} {} {} {} {}\n",
        cfg.embed_dim,
        cfg.cnn_channels,
        cfg.rnn_hidden,
        cfg.rnn_steps,
        cfg.dropout,
        cfg.threshold,
        cfg.seed,
        cfg.lr,
    ));
    out.push_str(&format!("vocab {}\n", vocab.len().saturating_sub(2)));
    for (tok, count) in vocab.entries() {
        out.push_str(&format!("{} {count}\n", hex(tok)));
    }
    out.push_str(&params_text);
    out
}

/// Restores a detector saved by [`save_detector`].
///
/// # Errors
///
/// Returns [`PersistError`] on any structural mismatch.
pub fn load_detector(text: &str) -> Result<Detector, PersistError> {
    let mut lines = text.lines();
    if lines.next() != Some(MAGIC) {
        return Err(PersistError("bad magic header".into()));
    }
    let kind_line = lines
        .next()
        .ok_or_else(|| PersistError("missing kind".into()))?;
    let kind = kind_line
        .strip_prefix("kind ")
        .and_then(kind_from_tag)
        .ok_or_else(|| PersistError(format!("bad kind line `{kind_line}`")))?;
    let cfg_line = lines
        .next()
        .and_then(|l| l.strip_prefix("config "))
        .ok_or_else(|| PersistError("missing config".into()))?;
    let f: Vec<&str> = cfg_line.split_whitespace().collect();
    if f.len() != 8 {
        return Err(PersistError(format!("bad config line `{cfg_line}`")));
    }
    let parse_err = |what: &str| PersistError(format!("bad config field {what}"));
    let cfg = TrainConfig {
        embed_dim: f[0].parse().map_err(|_| parse_err("embed_dim"))?,
        cnn_channels: f[1].parse().map_err(|_| parse_err("cnn_channels"))?,
        rnn_hidden: f[2].parse().map_err(|_| parse_err("rnn_hidden"))?,
        rnn_steps: f[3].parse().map_err(|_| parse_err("rnn_steps"))?,
        dropout: f[4].parse().map_err(|_| parse_err("dropout"))?,
        threshold: f[5].parse().map_err(|_| parse_err("threshold"))?,
        seed: f[6].parse().map_err(|_| parse_err("seed"))?,
        lr: f[7].parse().map_err(|_| parse_err("lr"))?,
        ..TrainConfig::default()
    };
    let vocab_line = lines
        .next()
        .and_then(|l| l.strip_prefix("vocab "))
        .ok_or_else(|| PersistError("missing vocab".into()))?;
    let n: usize = vocab_line
        .parse()
        .map_err(|_| PersistError(format!("bad vocab count `{vocab_line}`")))?;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let l = lines
            .next()
            .ok_or_else(|| PersistError("truncated vocab".into()))?;
        let (tok_hex, count) = l
            .split_once(' ')
            .ok_or_else(|| PersistError(format!("bad vocab line `{l}`")))?;
        let tok =
            unhex(tok_hex).ok_or_else(|| PersistError(format!("bad token hex `{tok_hex}`")))?;
        let count: u64 = count
            .parse()
            .map_err(|_| PersistError(format!("bad count in `{l}`")))?;
        entries.push((tok, count));
    }
    let vocab = Vocab::from_entries(entries);
    let params_text: String = lines.collect::<Vec<_>>().join("\n");
    Detector::from_persisted(kind, cfg, vocab, &params_text).map_err(PersistError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::GadgetSpec;
    use sevuldet_dataset::{sard, SardConfig};

    #[test]
    fn detector_roundtrips_with_identical_predictions() {
        let samples = sard::generate(&SardConfig {
            per_category: 6,
            ..SardConfig::default()
        });
        let corpus = GadgetSpec::path_sensitive().extract(&samples);
        let cfg = TrainConfig {
            embed_dim: 10,
            w2v_epochs: 1,
            epochs: 2,
            cnn_channels: 8,
            ..TrainConfig::quick()
        };
        let mut det = Detector::train(&corpus, ModelKind::SevulDet, &cfg);
        let saved = save_detector(&mut det);
        let mut restored = load_detector(&saved).expect("roundtrip");
        for item in corpus.items.iter().take(10) {
            let a = det.predict(&item.tokens);
            let b = restored.predict(&item.tokens);
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn tokens_with_spaces_and_quotes_survive() {
        let entries = vec![
            ("\"hello world\"".to_string(), 3u64),
            ("var1".to_string(), 9),
        ];
        let v = Vocab::from_entries(entries.clone());
        assert_eq!(v.id("\"hello world\""), 2);
        let h = hex("\"hello world\"");
        assert_eq!(unhex(&h).unwrap(), "\"hello world\"");
    }

    #[test]
    fn corrupted_input_is_rejected() {
        assert!(load_detector("not a model").is_err());
        assert!(load_detector(&format!("{MAGIC}\nkind unknown\n")).is_err());
        assert!(load_detector(&format!("{MAGIC}\nkind sevuldet\nconfig 1 2\n")).is_err());
    }
}
