//! A minimal JSON tree: parse, build, and serialize.
//!
//! The serving subsystem and the CLI's `--json` output share this encoder,
//! so a scan report rendered by `sevuldet scan --json` is byte-identical to
//! the body `sevuldet serve` returns for the same source — the determinism
//! the integration suite asserts. Hand-rolled because the container has no
//! network access and the repository vendors no serde; the subset implemented
//! here is the full JSON grammar minus nothing we emit or accept.

use std::collections::VecDeque;
use std::fmt;

/// A JSON value. Objects preserve insertion order so serialization is
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; serialized via Rust's shortest-roundtrip `f64` formatting.
    Num(f64),
    /// A string (unescaped form).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

/// Error from [`Json::parse`]: a message and the byte offset it refers to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset in the input.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Convenience constructor for an object.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed, trailing
    /// garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on any syntax violation.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.is_finite() {
                    write!(f, "{n}")
                } else {
                    // JSON has no Inf/NaN; null is the conventional fallback.
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_char(c)?,
        }
    }
    f.write_str("\"")
}

use std::fmt::Write as _;

const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            msg: msg.to_string(),
            at: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{', "expected `{`")?;
        self.depth += 1;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected `:` after object key")?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[', "expected `[`")?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected `\"`")?;
        let mut out = String::new();
        // Pending high surrogate from a `\uD800`-`\uDBFF` escape.
        let mut pending: VecDeque<u16> = VecDeque::new();
        loop {
            let flush = |pending: &mut VecDeque<u16>, out: &mut String| {
                if !pending.is_empty() {
                    let units: Vec<u16> = pending.drain(..).collect();
                    out.extend(char::decode_utf16(units).map(|r| r.unwrap_or('\u{fffd}')));
                }
            };
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    flush(&mut pending, &mut out);
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    if esc == b'u' {
                        if self.pos + 4 > self.bytes.len() {
                            return Err(self.err("truncated \\u escape"));
                        }
                        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                            .map_err(|_| self.err("bad \\u escape"))?;
                        let unit =
                            u16::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
                        self.pos += 4;
                        pending.push_back(unit);
                        // Keep accumulating only while a surrogate pair may
                        // still complete; otherwise decode eagerly.
                        if !(0xd800..0xdc00).contains(&unit) {
                            flush(&mut pending, &mut out);
                        }
                        continue;
                    }
                    flush(&mut pending, &mut out);
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    flush(&mut pending, &mut out);
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars_and_containers() {
        for src in [
            "null",
            "true",
            "false",
            "0",
            "-12.5",
            "1e3",
            "\"hi\"",
            "[]",
            "[1,2,3]",
            "{}",
            "{\"a\":1,\"b\":[true,null]}",
        ] {
            let v = Json::parse(src).unwrap_or_else(|e| panic!("{src}: {e}"));
            let re = Json::parse(&v.to_string()).unwrap();
            assert_eq!(v, re, "{src}");
        }
    }

    #[test]
    fn strings_with_escapes_roundtrip() {
        let nasty = "line1\nline2\t\"quoted\\\" \u{1}\u{1f980} unicode";
        let v = Json::Str(nasty.to_string());
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
        // C source is the realistic payload: braces, quotes, newlines.
        let c_src = "int main() {\n  char buf[8];\n  strcpy(buf, \"x\\n\");\n}";
        let doc = Json::obj(vec![("source", Json::str(c_src))]);
        let parsed = Json::parse(&doc.to_string()).unwrap();
        assert_eq!(parsed.get("source").unwrap().as_str().unwrap(), c_src);
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(
            Json::parse("\"\\u0041\\u00e9\"").unwrap(),
            Json::Str("Aé".to_string())
        );
        // Surrogate pair (🦀).
        assert_eq!(
            Json::parse("\"\\ud83e\\udd80\"").unwrap(),
            Json::Str("\u{1f980}".to_string())
        );
        // Lone high surrogate degrades to the replacement character.
        assert_eq!(
            Json::parse("\"\\ud83e!\"").unwrap(),
            Json::Str("\u{fffd}!".to_string())
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\"}",
            "{\"a\":}",
            "\"unterminated",
            "nul",
            "1 2",
            "{\"a\":1} x",
            "[\"\\q\"]",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn accessors_navigate_objects() {
        let v = Json::parse("{\"source\":\"abc\",\"n\":3,\"ok\":true,\"xs\":[1]}").unwrap();
        assert_eq!(v.get("source").unwrap().as_str(), Some("abc"));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(3.0));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("xs").unwrap().as_array().unwrap().len(), 1);
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
    }
}
