//! Program corpus → labeled, normalized gadget corpus (Steps I–III end to
//! end), plus encoding into token ids over a trained word2vec vocabulary.

use crate::config::TrainConfig;
use crate::par::parallel_map;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sevuldet_analysis::ProgramAnalysis;
use sevuldet_dataset::{Origin, ProgramSample};
use sevuldet_embedding::{SkipGram, SkipGramConfig, Vocab};
use sevuldet_gadget::{
    build_gadget, find_special_tokens, label_gadget, Category, GadgetKind, Normalizer, SliceConfig,
};
use sevuldet_nn::Tensor;
use std::collections::HashSet;

/// One labeled, normalized gadget ready for embedding.
#[derive(Debug, Clone)]
pub struct GadgetItem {
    /// Normalized surface tokens.
    pub tokens: Vec<String>,
    /// Ground-truth label.
    pub label: bool,
    /// Special-token category.
    pub category: Category,
    /// Originating program id.
    pub program_id: String,
    /// Line of the seeding special token.
    pub key_line: u32,
    /// Corpus of origin.
    pub origin: Origin,
}

/// A gadget corpus.
#[derive(Debug, Clone, Default)]
pub struct GadgetCorpus {
    /// All gadget items.
    pub items: Vec<GadgetItem>,
}

impl GadgetCorpus {
    /// Number of gadgets.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of vulnerable gadgets.
    pub fn vulnerable(&self) -> usize {
        self.items.iter().filter(|i| i.label).count()
    }

    /// Indices of gadgets of a category (`None` = all).
    pub fn indices_of(&self, category: Option<Category>) -> Vec<usize> {
        (0..self.items.len())
            .filter(|&i| category.is_none_or(|c| self.items[i].category == c))
            .collect()
    }
}

/// Extracts the gadget corpus of a program set: Step I (slice + assemble,
/// classic or path-sensitive), Step II (manifest labeling), Step III
/// (normalization). Exact `(token stream, label)` duplicates are merged,
/// like the paper's de-duplication — conflicting-label duplicates (the
/// Fig.-1 pairs) are *kept*, preserving the ambiguity that pins classifiers
/// at 50% on them.
pub fn extract_gadgets(
    samples: &[ProgramSample],
    kind: GadgetKind,
    slice: &SliceConfig,
) -> GadgetCorpus {
    extract_gadgets_jobs(samples, kind, slice, 1)
}

/// [`extract_gadgets`] with an explicit worker-thread count. The per-program
/// work (parse, analyze, slice, label, normalize) runs in parallel; the
/// duplicate merge walks the per-program results **in input order**, so the
/// corpus is identical for every `jobs` value.
pub fn extract_gadgets_jobs(
    samples: &[ProgramSample],
    kind: GadgetKind,
    slice: &SliceConfig,
    jobs: usize,
) -> GadgetCorpus {
    let _t = sevuldet_trace::span!("core.extract");
    let per_sample: Vec<Vec<(String, GadgetItem)>> = parallel_map(samples, jobs, |_, sample| {
        let mut items = Vec::new();
        let Ok(program) = sevuldet_lang::parse(&sample.source) else {
            return items;
        };
        let analysis = ProgramAnalysis::analyze(&program);
        for st in &find_special_tokens(&program, &analysis) {
            let gadget = build_gadget(&program, &analysis, st, kind, slice);
            if gadget.lines.is_empty() {
                continue;
            }
            let labeled = label_gadget(&gadget, &sample.flaw_lines);
            let normalized = Normalizer::normalize_gadget(&gadget);
            let tokens = normalized.tokens();
            items.push((
                tokens.join(" "),
                GadgetItem {
                    tokens,
                    label: labeled.vulnerable,
                    category: st.category,
                    program_id: sample.id.clone(),
                    key_line: st.line,
                    origin: sample.origin,
                },
            ));
        }
        items
    });
    let mut corpus = GadgetCorpus::default();
    // Dedup key includes the category: the paper builds *per-category*
    // datasets, so the same statement sequence seeded by an FC token and a
    // PU token counts once in each category.
    let mut seen: HashSet<(Category, String, bool)> = HashSet::new();
    for items in per_sample {
        for (joined, item) in items {
            if seen.insert((item.category, joined, item.label)) {
                corpus.items.push(item);
            }
        }
    }
    sevuldet_trace::counter("gadgets", corpus.items.len() as f64);
    corpus
}

/// A gadget corpus encoded to token ids, with its vocabulary and word2vec
/// embedding table.
#[derive(Debug, Clone)]
pub struct Encoded {
    /// Token-id sequences, parallel to `corpus.items`.
    pub ids: Vec<Vec<usize>>,
    /// The vocabulary.
    pub vocab: Vocab,
    /// The `(V × D)` pre-trained embedding table.
    pub table: Tensor,
}

/// Trains word2vec on the corpus and encodes every gadget (Step IV's
/// pre-trained embedding).
pub fn encode(corpus: &GadgetCorpus, config: &TrainConfig) -> Encoded {
    let _t = sevuldet_trace::span!("core.encode");
    let token_refs: Vec<&[String]> = corpus.items.iter().map(|i| i.tokens.as_slice()).collect();
    let vocab = Vocab::build(token_refs.iter().copied(), 1);
    // Per-gadget id lookup is embarrassingly parallel; outputs come back in
    // corpus order, so the encoding is independent of `config.jobs`.
    let sequences: Vec<Vec<usize>> =
        parallel_map(&corpus.items, config.jobs, |_, i| vocab.encode(&i.tokens));
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x77);
    let sg_cfg = SkipGramConfig {
        dim: config.embed_dim,
        epochs: config.w2v_epochs,
        ..SkipGramConfig::default()
    };
    let model = SkipGram::train(&vocab, &sequences, &sg_cfg, &mut rng);
    let t = model.table();
    let table = Tensor::from_vec(&[t.rows, t.cols], t.data);
    Encoded {
        ids: sequences,
        vocab,
        table,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sevuldet_dataset::{sard, SardConfig};

    fn tiny_corpus() -> Vec<ProgramSample> {
        sard::generate(&SardConfig {
            per_category: 6,
            ..SardConfig::default()
        })
    }

    #[test]
    fn extraction_produces_labeled_gadgets_in_all_categories() {
        let samples = tiny_corpus();
        let corpus = extract_gadgets(&samples, GadgetKind::PathSensitive, &SliceConfig::default());
        assert!(corpus.len() > samples.len(), "several gadgets per program");
        assert!(corpus.vulnerable() > 0);
        assert!(corpus.vulnerable() < corpus.len());
        for c in Category::ALL {
            assert!(
                !corpus.indices_of(Some(c)).is_empty(),
                "category {c} missing"
            );
        }
    }

    #[test]
    fn gadget_tokens_are_normalized() {
        let corpus = extract_gadgets(
            &tiny_corpus(),
            GadgetKind::PathSensitive,
            &SliceConfig::default(),
        );
        let has_var = corpus
            .items
            .iter()
            .any(|i| i.tokens.iter().any(|t| t.starts_with("var")));
        assert!(has_var, "normalized variable names expected");
    }

    #[test]
    fn path_sensitive_gadgets_never_lose_statements() {
        // Pairwise invariant: for the same special token, the path-sensitive
        // gadget's line set is a superset of the classic gadget's (Algorithm
        // 1 only *adds* range delimiters).
        use sevuldet_analysis::ProgramAnalysis;
        use sevuldet_gadget::{build_gadget, find_special_tokens};
        for sample in tiny_corpus().iter().take(12) {
            let program = sevuldet_lang::parse(&sample.source).unwrap();
            let analysis = ProgramAnalysis::analyze(&program);
            for st in find_special_tokens(&program, &analysis) {
                let cg = build_gadget(
                    &program,
                    &analysis,
                    &st,
                    GadgetKind::Classic,
                    &SliceConfig::default(),
                );
                let ps = build_gadget(
                    &program,
                    &analysis,
                    &st,
                    GadgetKind::PathSensitive,
                    &SliceConfig::default(),
                );
                assert!(ps.lines.len() >= cg.lines.len());
                let ps_lines: std::collections::HashSet<(String, u32)> =
                    ps.lines.iter().map(|l| (l.func.clone(), l.line)).collect();
                for l in &cg.lines {
                    assert!(
                        ps_lines.contains(&(l.func.clone(), l.line)),
                        "PS gadget must cover every classic line ({}:{})",
                        l.func,
                        l.line
                    );
                }
            }
        }
    }

    #[test]
    fn extraction_is_identical_for_every_job_count() {
        let samples = tiny_corpus();
        let slice = SliceConfig::default();
        let base = extract_gadgets_jobs(&samples, GadgetKind::PathSensitive, &slice, 1);
        for jobs in [2, 4, 7] {
            let par = extract_gadgets_jobs(&samples, GadgetKind::PathSensitive, &slice, jobs);
            assert_eq!(par.len(), base.len(), "jobs={jobs}");
            for (a, b) in par.items.iter().zip(&base.items) {
                assert_eq!(a.tokens, b.tokens);
                assert_eq!(a.label, b.label);
                assert_eq!(a.category, b.category);
                assert_eq!(a.program_id, b.program_id);
            }
        }
    }

    #[test]
    fn encoding_is_identical_for_every_job_count() {
        let corpus = extract_gadgets(
            &tiny_corpus(),
            GadgetKind::PathSensitive,
            &SliceConfig::default(),
        );
        let cfg = TrainConfig {
            embed_dim: 12,
            w2v_epochs: 1,
            ..TrainConfig::quick()
        };
        let base = encode(&corpus, &cfg);
        let par = encode(&corpus, &TrainConfig { jobs: 4, ..cfg });
        assert_eq!(base.ids, par.ids);
        assert_eq!(base.table.data(), par.table.data());
    }

    #[test]
    fn encode_builds_consistent_ids() {
        let corpus = extract_gadgets(
            &tiny_corpus(),
            GadgetKind::PathSensitive,
            &SliceConfig::default(),
        );
        let enc = encode(
            &corpus,
            &TrainConfig {
                embed_dim: 12,
                w2v_epochs: 1,
                ..TrainConfig::quick()
            },
        );
        assert_eq!(enc.ids.len(), corpus.len());
        assert_eq!(enc.table.cols(), 12);
        assert_eq!(enc.table.rows(), enc.vocab.len());
        for (ids, item) in enc.ids.iter().zip(&corpus.items) {
            assert_eq!(ids.len(), item.tokens.len());
        }
    }
}
