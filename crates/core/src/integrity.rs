//! File-integrity primitives shared by detector persistence and training
//! checkpoints: CRC-32 / SHA-256 digests, crash-safe atomic writes, and a
//! sealed-footer format that turns silent corruption into typed errors.
//!
//! ## The crash-safety argument
//!
//! * [`atomic_write`] stages the bytes in a temp file **in the same
//!   directory** as the target, `fsync`s it, and `rename`s it over the
//!   target. POSIX rename is atomic within a filesystem, so a crash at any
//!   instant leaves either the complete old file or the complete new file —
//!   never a torn mix. The directory is fsynced afterwards so the rename
//!   itself survives a power cut.
//! * [`seal`] appends a footer line carrying the payload byte length and a
//!   CRC-32 over the payload. [`unseal`] refuses to hand back a payload
//!   whose footer is missing (truncation), whose length disagrees
//!   (truncation that kept a stale footer), or whose checksum disagrees
//!   (bit flips, tampering) — each with a distinct [`SealError`] variant.
//!
//! Together: a reader either sees bytes the writer finished and checksummed,
//! or a typed error. It never silently consumes garbage.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::Path;

/// The footer line prefix; the full line is
/// `sevuldet-footer crc32=XXXXXXXX len=NNNN`.
const FOOTER_PREFIX: &str = "sevuldet-footer ";

/// Why a sealed payload was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SealError {
    /// No footer line at the end of the file — the tail was truncated away.
    MissingFooter,
    /// A footer line is present but does not parse.
    BadFooter(String),
    /// The footer's recorded payload length disagrees with the bytes
    /// actually present (truncation or concatenation).
    LengthMismatch {
        /// Length the footer claims.
        stated: usize,
        /// Length actually present.
        actual: usize,
    },
    /// The payload's CRC-32 disagrees with the footer (bit flip/tamper).
    Checksum {
        /// Checksum the footer claims.
        stated: u32,
        /// Checksum computed over the payload.
        computed: u32,
    },
}

impl std::fmt::Display for SealError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SealError::MissingFooter => write!(f, "integrity footer missing (truncated file?)"),
            SealError::BadFooter(line) => write!(f, "malformed integrity footer `{line}`"),
            SealError::LengthMismatch { stated, actual } => write!(
                f,
                "payload length mismatch: footer says {stated} bytes, file has {actual}"
            ),
            SealError::Checksum { stated, computed } => write!(
                f,
                "checksum mismatch: footer says crc32 {stated:08x}, payload is {computed:08x}"
            ),
        }
    }
}

impl std::error::Error for SealError {}

/// CRC-32 (IEEE 802.3, the zlib/PNG polynomial) over `data`.
pub fn crc32(data: &[u8]) -> u32 {
    // The 256-entry table costs 1KB and is built on first use.
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xedb8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        t
    });
    let mut crc = !0u32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xff) as usize] ^ (crc >> 8);
    }
    !crc
}

/// SHA-256 of `data`, as a lowercase hex string. Used by the fault-injection
/// harness to prove resumed training runs byte-identical to uninterrupted
/// ones.
pub fn sha256_hex(data: &[u8]) -> String {
    const K: [u32; 64] = [
        0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
        0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
        0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
        0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
        0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
        0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
        0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
        0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
        0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
        0xc67178f2,
    ];
    let mut h: [u32; 8] = [
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
        0x5be0cd19,
    ];
    let mut msg = data.to_vec();
    let bit_len = (data.len() as u64).wrapping_mul(8);
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_be_bytes());
    for chunk in msg.chunks_exact(64) {
        let mut w = [0u32; 64];
        for (i, word) in chunk.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([word[0], word[1], word[2], word[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = h;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = hh
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (slot, v) in h.iter_mut().zip([a, b, c, d, e, f, g, hh]) {
            *slot = slot.wrapping_add(v);
        }
    }
    h.iter().map(|x| format!("{x:08x}")).collect()
}

/// Appends the integrity footer to a payload, producing the on-disk form.
/// The payload must end with a newline (every line-oriented writer here
/// does); one is added if missing so the footer always starts a fresh line.
pub fn seal(mut payload: String) -> String {
    if !payload.ends_with('\n') {
        payload.push('\n');
    }
    let crc = crc32(payload.as_bytes());
    let len = payload.len();
    payload.push_str(&format!("{FOOTER_PREFIX}crc32={crc:08x} len={len}\n"));
    payload
}

/// Whether `text` ends with something that looks like an integrity footer
/// (used to tell sealed files from legacy unsealed ones).
pub fn has_footer(text: &str) -> bool {
    last_line(text).is_some_and(|l| l.starts_with(FOOTER_PREFIX))
}

fn last_line(text: &str) -> Option<&str> {
    let stripped = text.strip_suffix('\n').unwrap_or(text);
    if stripped.is_empty() {
        return None;
    }
    Some(match stripped.rsplit_once('\n') {
        Some((_, last)) => last,
        None => stripped,
    })
}

/// Verifies the footer and returns the payload (footer stripped).
///
/// # Errors
///
/// A [`SealError`] naming exactly what is wrong: missing footer, malformed
/// footer, length mismatch, or checksum mismatch.
pub fn unseal(text: &str) -> Result<&str, SealError> {
    let footer = last_line(text)
        .filter(|l| l.starts_with(FOOTER_PREFIX))
        .ok_or(SealError::MissingFooter)?;
    let bad = || SealError::BadFooter(footer.to_string());
    let mut stated_crc: Option<u32> = None;
    let mut stated_len: Option<usize> = None;
    for field in footer[FOOTER_PREFIX.len()..].split_whitespace() {
        if let Some(v) = field.strip_prefix("crc32=") {
            stated_crc = Some(u32::from_str_radix(v, 16).map_err(|_| bad())?);
        } else if let Some(v) = field.strip_prefix("len=") {
            stated_len = Some(v.parse().map_err(|_| bad())?);
        }
    }
    let (stated_crc, stated_len) = match (stated_crc, stated_len) {
        (Some(c), Some(l)) => (c, l),
        _ => return Err(bad()),
    };
    // Everything before the footer line (including its trailing newline).
    let actual = text.len() - footer.len() - text.ends_with('\n') as usize;
    if stated_len != actual {
        return Err(SealError::LengthMismatch {
            stated: stated_len,
            actual,
        });
    }
    let payload = &text[..actual];
    let computed = crc32(payload.as_bytes());
    if computed != stated_crc {
        return Err(SealError::Checksum {
            stated: stated_crc,
            computed,
        });
    }
    Ok(payload)
}

/// Writes `data` to `path` crash-safely: same-directory temp file, fsync,
/// atomic rename, directory fsync. A crash at any point leaves the target
/// either untouched or fully written — never torn.
///
/// The `save_midwrite` failpoint (see [`crate::faults`]) fires after half
/// the bytes are staged, so the fault-injection suite can prove the target
/// survives a crash mid-write.
///
/// # Errors
///
/// Any underlying I/O error; on failure the temp file is removed.
pub fn atomic_write(path: &Path, data: &[u8]) -> io::Result<()> {
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let tmp = dir.join(format!(".{file_name}.tmp.{}", std::process::id()));
    let staged = (|| -> io::Result<()> {
        let mut f = File::create(&tmp)?;
        let mid = data.len() / 2;
        f.write_all(&data[..mid])?;
        crate::faults::hit("save_midwrite");
        f.write_all(&data[mid..])?;
        f.sync_all()?;
        Ok(())
    })();
    if let Err(e) = staged {
        let _ = fs::remove_file(&tmp);
        return Err(e);
    }
    if let Err(e) = fs::rename(&tmp, path) {
        let _ = fs::remove_file(&tmp);
        return Err(e);
    }
    // Persist the rename itself. Directory fsync can fail on exotic
    // filesystems; the data is already safe, so treat that as best-effort.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414f_a339
        );
    }

    #[test]
    fn sha256_known_vectors() {
        assert_eq!(
            sha256_hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            sha256_hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn seal_unseal_roundtrip() {
        let sealed = seal("hello\nworld\n".to_string());
        assert!(has_footer(&sealed));
        assert_eq!(unseal(&sealed).unwrap(), "hello\nworld\n");
        // Payload without a trailing newline gets one before sealing.
        let sealed = seal("x".to_string());
        assert_eq!(unseal(&sealed).unwrap(), "x\n");
    }

    #[test]
    fn truncation_and_bitflips_are_typed_errors() {
        let sealed = seal("line one\nline two\n".to_string());
        // Chop the footer off entirely: truncation.
        let footer_start = sealed.rfind("sevuldet-footer").unwrap();
        assert_eq!(
            unseal(&sealed[..footer_start]),
            Err(SealError::MissingFooter)
        );
        // Drop payload bytes but keep the footer: length mismatch.
        let mut cut = sealed.clone();
        cut.replace_range(5..14, "");
        assert!(matches!(
            unseal(&cut),
            Err(SealError::LengthMismatch { .. })
        ));
        // Flip one payload byte: checksum mismatch.
        let mut flipped = sealed.clone().into_bytes();
        flipped[3] ^= 0x20;
        let flipped = String::from_utf8(flipped).unwrap();
        assert!(matches!(unseal(&flipped), Err(SealError::Checksum { .. })));
        // Garbage footer fields: malformed.
        let garbled = format!(
            "{}sevuldet-footer crc32=zz len=oops\n",
            &sealed[..footer_start]
        );
        assert!(matches!(unseal(&garbled), Err(SealError::BadFooter(_))));
    }

    #[test]
    fn atomic_write_replaces_and_cleans_up() {
        let dir = std::env::temp_dir().join(format!("svd-atomic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("file.txt");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second version").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second version");
        // No stray temp files left behind.
        let strays: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(strays.is_empty(), "{strays:?}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
