//! Deterministic data-parallel execution helpers.
//!
//! Everything here is built on `std::thread::scope` — no extra dependencies
//! — and follows one rule: **thread count must never change results**. Work
//! is sharded round-robin by index, every worker writes into pre-assigned
//! slots, and results are reassembled in input order, so the caller observes
//! the same output for `jobs = 1` and `jobs = N`.

use std::num::NonZeroUsize;

/// Clamps a requested worker count to something sane: `0` means "ask the
/// OS for the available parallelism", anything else is used as-is but never
/// exceeds the number of items to process.
pub fn effective_jobs(requested: usize, items: usize) -> usize {
    let jobs = if requested == 0 {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        requested
    };
    jobs.clamp(1, items.max(1))
}

/// Applies `f` to every item, using up to `jobs` worker threads, and returns
/// the outputs **in input order** regardless of scheduling. With `jobs <= 1`
/// (or a single item) no threads are spawned at all.
pub fn parallel_map<T, U, F>(items: &[T], jobs: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let jobs = effective_jobs(jobs, items.len());
    if jobs <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let mut out: Vec<Option<U>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    // Hand each worker a disjoint set of &mut slots: chunk the output into
    // single-element windows and distribute them round-robin by index, the
    // same scheme used to shard the input.
    let mut slot_refs: Vec<Option<&mut Option<U>>> = out.iter_mut().map(Some).collect();
    std::thread::scope(|scope| {
        for w in 0..jobs {
            let worker_slots: Vec<(usize, &mut Option<U>)> = slot_refs
                .iter_mut()
                .enumerate()
                .filter(|(i, _)| i % jobs == w)
                .map(|(i, s)| (i, s.take().expect("slot handed out twice")))
                .collect();
            let f = &f;
            scope.spawn(move || {
                for (i, slot) in worker_slots {
                    *slot = Some(f(i, &items[i]));
                }
            });
        }
    });
    out.into_iter()
        .map(|s| s.expect("worker filled every assigned slot"))
        .collect()
}

/// Like [`parallel_map`], but each worker first builds a private state value
/// with `init` (e.g. a model replica) that is reused across all items the
/// worker processes. `init` runs once per worker, inside the worker thread.
pub fn parallel_map_with<T, U, S, I, F>(items: &[T], jobs: usize, init: I, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> U + Sync,
{
    let jobs = effective_jobs(jobs, items.len());
    if jobs <= 1 || items.len() <= 1 {
        let mut state = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| f(&mut state, i, t))
            .collect();
    }
    let mut out: Vec<Option<U>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    let mut slot_refs: Vec<Option<&mut Option<U>>> = out.iter_mut().map(Some).collect();
    std::thread::scope(|scope| {
        for w in 0..jobs {
            let worker_slots: Vec<(usize, &mut Option<U>)> = slot_refs
                .iter_mut()
                .enumerate()
                .filter(|(i, _)| i % jobs == w)
                .map(|(i, s)| (i, s.take().expect("slot handed out twice")))
                .collect();
            let (init, f) = (&init, &f);
            scope.spawn(move || {
                let mut state = init();
                for (i, slot) in worker_slots {
                    *slot = Some(f(&mut state, i, &items[i]));
                }
            });
        }
    });
    out.into_iter()
        .map(|s| s.expect("worker filled every assigned slot"))
        .collect()
}

/// Like [`parallel_map_with`], but the caller's own `state` is used directly
/// — without cloning — when the work runs on the calling thread (`jobs <= 1`
/// or a single item). Multi-threaded runs clone it once per worker, exactly
/// like `parallel_map_with`. This is the right shape for "model + reusable
/// scratch buffers" state: the sequential path keeps its buffers warm across
/// every call instead of rebuilding them from a cold clone each time.
///
/// Results are bit-identical to `parallel_map_with(items, jobs, || state.clone(), f)`
/// provided `f` leaves `state` observationally unchanged (e.g. gradients are
/// extracted with `take_grads`, caches are mere scratch).
pub fn parallel_map_with_state<T, U, S, F>(items: &[T], jobs: usize, state: &mut S, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    S: Clone + Sync,
    F: Fn(&mut S, usize, &T) -> U + Sync,
{
    let effective = effective_jobs(jobs, items.len());
    if effective <= 1 || items.len() <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| f(state, i, t))
            .collect();
    }
    let shared: &S = state;
    parallel_map_with(items, jobs, || shared.clone(), f)
}

/// Derives an independent RNG seed for one training sample from the run
/// seed, the epoch, and the sample's position in the (shuffled) epoch order.
/// Keying the dropout stream on the *position* rather than on how many
/// samples a thread has processed is what decouples randomness from the
/// execution schedule. SplitMix64-style finalizer: cheap, and scrambles
/// related inputs (epoch, epoch+1, …) into unrelated seeds.
pub fn sample_seed(run_seed: u64, epoch: usize, position: usize) -> u64 {
    let mut z = run_seed
        .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(1 + epoch as u64))
        .wrapping_add(0x6a09_e667_f3bc_c909u64.wrapping_mul(1 + position as u64));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn effective_jobs_clamps() {
        assert_eq!(effective_jobs(1, 100), 1);
        assert_eq!(effective_jobs(4, 100), 4);
        assert_eq!(effective_jobs(8, 3), 3);
        assert_eq!(effective_jobs(5, 0), 1);
        assert!(effective_jobs(0, 100) >= 1);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..37).collect();
        let seq = parallel_map(&items, 1, |i, &x| (i, x * 2));
        for jobs in [2, 3, 4, 8] {
            let par = parallel_map(&items, jobs, |i, &x| (i, x * 2));
            assert_eq!(par, seq, "jobs={jobs}");
        }
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[7u32], 4, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn parallel_map_with_initializes_once_per_worker() {
        let inits = AtomicUsize::new(0);
        let items: Vec<usize> = (0..64).collect();
        let out = parallel_map_with(
            &items,
            4,
            || {
                inits.fetch_add(1, Ordering::SeqCst);
                0usize
            },
            |count, _, &x| {
                *count += 1;
                x
            },
        );
        assert_eq!(out, items);
        // On a single-core host effective_jobs may reduce the worker count,
        // but never below one and never above the request.
        let n = inits.load(Ordering::SeqCst);
        assert!((1..=4).contains(&n), "init ran {n} times");
    }

    #[test]
    fn parallel_map_with_state_matches_clone_based_path() {
        let items: Vec<usize> = (0..41).collect();
        // State counts how many items the owning worker has seen; outputs
        // must not depend on jobs because f's result ignores the counter.
        #[derive(Clone)]
        struct Counter(usize);
        let mut state = Counter(0);
        let seq = parallel_map_with_state(&items, 1, &mut state, |s, i, &x| {
            s.0 += 1;
            (i, x * 3)
        });
        // jobs <= 1 must use the caller's state directly: every item
        // accumulates into the one counter the caller handed in.
        assert_eq!(state.0, items.len());
        for jobs in [2, 3, 8] {
            let mut st = Counter(0);
            let par = parallel_map_with_state(&items, jobs, &mut st, |s, i, &x| {
                s.0 += 1;
                (i, x * 3)
            });
            assert_eq!(par, seq, "jobs={jobs}");
            // Multi-threaded runs work on clones; the caller's state is
            // left untouched.
            assert_eq!(st.0, 0, "jobs={jobs}");
        }
    }

    #[test]
    fn sample_seeds_do_not_collide_in_practice() {
        let mut seen = HashSet::new();
        for epoch in 0..8 {
            for pos in 0..256 {
                seen.insert(sample_seed(42, epoch, pos));
            }
        }
        assert_eq!(seen.len(), 8 * 256, "distinct (epoch, position) seeds");
        assert_ne!(sample_seed(1, 0, 0), sample_seed(2, 0, 0));
    }
}
