//! Scanning raw C source with a trained detector, as a library.
//!
//! This is the single implementation behind both `sevuldet scan` and the
//! `sevuldet serve` HTTP endpoint, so the two can never drift: the CLI and
//! the server both call [`score_source`] (or its split form,
//! [`prepare_source`] + [`score_prepared`], which lets a batching server
//! coalesce the gadget streams of *many* requests into one forward pass).
//!
//! The phases mirror the detection half of the paper's Fig. 2: parse →
//! program analysis → special tokens → path-sensitive gadgets → normalize →
//! encode → SPP-CNN forward → threshold.
//!
//! The model-free half runs standalone — useful for inspecting what the
//! detector would actually look at:
//!
//! ```
//! let src = r#"
//! void copy(char *dest, char *data) {
//!     int n = atoi(data);
//!     strncpy(dest, data, n);
//! }"#;
//! let prepared = sevuldet::prepare_source(src, 1).expect("parses");
//! // `strncpy` is a function-call (FC) special token, so at least one
//! // gadget comes back, carrying its normalized token stream.
//! assert!(!prepared.gadgets.is_empty());
//! let g = prepared
//!     .gadgets
//!     .iter()
//!     .find(|g| g.name == "strncpy")
//!     .expect("strncpy gadget");
//! assert_eq!(g.category, "FC");
//! assert!(g.tokens.iter().any(|t| t == "strncpy"));
//! // Unparseable input is a typed error, not a silent empty result.
//! assert!(sevuldet::prepare_source("int }{", 1).is_err());
//! ```

use crate::explain::{explain_tokens, Explanation, GateSummary};
use crate::json::Json;
use crate::par::parallel_map;
use crate::pipeline::{Detector, GadgetSpec};
use sevuldet_analysis::ProgramAnalysis;
use sevuldet_gadget::{build_gadget, find_special_tokens, Normalizer};

/// Why a source could not be scanned at all (as opposed to scanning clean).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScanError {
    /// The source did not parse as mini-C.
    Parse(String),
    /// The scoring backend broke an internal invariant (e.g. returned a
    /// mismatched score count). A bug report, not a property of the input —
    /// callers should surface it as an internal error, not reject the
    /// request.
    Internal(String),
}

impl std::fmt::Display for ScanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScanError::Parse(msg) => write!(f, "parse error: {msg}"),
            ScanError::Internal(msg) => write!(f, "internal scan error: {msg}"),
        }
    }
}

impl std::error::Error for ScanError {}

/// One gadget extracted from a source, ready to be scored: where it came
/// from plus its normalized token stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreparedGadget {
    /// 1-based source line of the special token.
    pub line: u32,
    /// Special-token category abbreviation (FC/AU/PU/AE).
    pub category: &'static str,
    /// The special token itself (callee, array, pointer, or variable name).
    pub name: String,
    /// The normalized gadget token stream the model consumes.
    pub tokens: Vec<String>,
}

/// A parsed-and-sliced source: everything that can be computed without the
/// model. Produced by [`prepare_source`], consumed by [`score_prepared`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PreparedSource {
    /// One entry per special token, in source order.
    pub gadgets: Vec<PreparedGadget>,
}

/// How a gadget's score came out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingStatus {
    /// The model produced a finite probability; `flagged` is meaningful.
    Scored,
    /// The model produced a non-finite score (NaN/±∞ — more reachable on
    /// the f32/int8 tiers). Reported as a per-gadget error, never as
    /// "clean": `flagged` is forced `false` and the JSON score is `null`.
    InvalidScore,
}

impl FindingStatus {
    /// The JSON spelling of the status.
    pub fn as_str(&self) -> &'static str {
        match self {
            FindingStatus::Scored => "scored",
            FindingStatus::InvalidScore => "invalid_score",
        }
    }
}

/// One ensemble member's verdict on a gadget (inside
/// [`Finding::members`] after [`combine_ensemble`]).
#[derive(Debug, Clone)]
pub struct MemberScore {
    /// The member model's registry name.
    pub model: String,
    /// That model's sigmoid probability (NaN when invalid).
    pub score: f64,
    /// That model's verdict at its own threshold.
    pub flagged: bool,
    /// Whether that model's score is trustworthy.
    pub status: FindingStatus,
}

/// One scored gadget in a [`ScanReport`].
#[derive(Debug, Clone)]
pub struct Finding {
    /// 1-based source line of the special token.
    pub line: u32,
    /// Special-token category abbreviation (FC/AU/PU/AE).
    pub category: &'static str,
    /// The special token's name.
    pub name: String,
    /// Sigmoid probability the gadget is vulnerable (NaN when
    /// `status == InvalidScore`).
    pub score: f64,
    /// `score > threshold` — always `false` for an invalid score.
    pub flagged: bool,
    /// Whether the score is trustworthy.
    pub status: FindingStatus,
    /// The normalized gadget tokens (kept for attention ranking).
    pub tokens: Vec<String>,
    /// Per-member verdicts, non-empty only for ensemble reports. Serialized
    /// as a `members` array when present; plain scans omit the key, so the
    /// single-model JSON is byte-identical to previous releases.
    pub members: Vec<MemberScore>,
    /// Fig. 6 explanation, attached only when the caller asked for one
    /// ([`attach_explanations`]). Serialized as an `explain` object when
    /// present; omitted otherwise.
    pub explain: Option<Explanation>,
}

/// The result of scanning one source. An empty `findings` list with
/// `gadgets == 0` means the source scanned *clean* (no special tokens) —
/// distinct from a [`ScanError`], which means it was not scanned at all.
#[derive(Debug, Clone)]
pub struct ScanReport {
    /// Per-gadget verdicts, in source order.
    pub findings: Vec<Finding>,
    /// The decision threshold the scores were cut at.
    pub threshold: f64,
    /// Which registry model produced the report, when the caller selected
    /// one by name (or via a split/ensemble). `None` — the default for
    /// anonymous single-model scans — omits the key from the JSON, keeping
    /// those responses byte-identical to previous releases.
    pub model: Option<String>,
}

impl ScanReport {
    /// Number of gadgets scored.
    pub fn gadgets(&self) -> usize {
        self.findings.len()
    }

    /// Number of findings over the threshold.
    pub fn flagged(&self) -> usize {
        self.findings.iter().filter(|f| f.flagged).count()
    }

    /// Number of findings whose score came back non-finite.
    pub fn invalid(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.status == FindingStatus::InvalidScore)
            .count()
    }

    /// The report as a JSON tree. `name` labels the source (file path or
    /// request name); the shape is the serving API's response schema:
    ///
    /// ```json
    /// {"name":"x.c","status":"scanned","gadgets":2,"flagged":1,"invalid":0,
    ///  "threshold":0.8,
    ///  "findings":[{"line":3,"category":"FC","name":"strcpy",
    ///               "score":0.93,"flagged":true,"status":"scored"}]}
    /// ```
    ///
    /// A finding with a non-finite score serializes `"score":null` and
    /// `"status":"invalid_score"` — JSON has no NaN, and a silent `false`
    /// flag would misreport the gadget as clean.
    ///
    /// The `model`, per-finding `members`, and per-finding `explain` keys
    /// appear only when the corresponding report fields are populated, so a
    /// plain single-model scan serializes byte-identically to previous
    /// releases.
    pub fn to_json(&self, name: &str) -> Json {
        let mut top = vec![("name", Json::str(name)), ("status", Json::str("scanned"))];
        if let Some(model) = &self.model {
            top.push(("model", Json::str(&**model)));
        }
        top.push(("gadgets", Json::Num(self.gadgets() as f64)));
        top.push(("flagged", Json::Num(self.flagged() as f64)));
        top.push(("invalid", Json::Num(self.invalid() as f64)));
        top.push(("threshold", Json::Num(self.threshold)));
        top.push((
            "findings",
            Json::Arr(self.findings.iter().map(finding_json).collect()),
        ));
        Json::obj(top)
    }
}

fn score_json(score: f64, status: FindingStatus) -> Json {
    if status == FindingStatus::Scored {
        Json::Num(score)
    } else {
        Json::Null
    }
}

fn finding_json(f: &Finding) -> Json {
    let mut obj = vec![
        ("line", Json::Num(f.line as f64)),
        ("category", Json::str(f.category)),
        ("name", Json::str(&*f.name)),
        ("score", score_json(f.score, f.status)),
        ("flagged", Json::Bool(f.flagged)),
        ("status", Json::str(f.status.as_str())),
    ];
    if !f.members.is_empty() {
        obj.push((
            "members",
            Json::Arr(
                f.members
                    .iter()
                    .map(|m| {
                        Json::obj(vec![
                            ("model", Json::str(&*m.model)),
                            ("score", score_json(m.score, m.status)),
                            ("flagged", Json::Bool(m.flagged)),
                            ("status", Json::str(m.status.as_str())),
                        ])
                    })
                    .collect(),
            ),
        ));
    }
    if let Some(exp) = &f.explain {
        obj.push(("explain", explain_json(exp)));
    }
    Json::obj(obj)
}

fn gate_summary_json(g: &GateSummary) -> Json {
    Json::obj(vec![
        ("len", Json::Num(g.len as f64)),
        ("mean", Json::Num(g.mean)),
        ("max", Json::Num(g.max)),
        ("argmax", Json::Num(g.argmax as f64)),
    ])
}

fn explain_json(exp: &Explanation) -> Json {
    let mut obj = vec![
        ("status", Json::str(exp.status.label())),
        (
            "tokens",
            Json::Arr(
                exp.tokens
                    .iter()
                    .map(|t| {
                        Json::obj(vec![
                            ("token", Json::str(&*t.token)),
                            ("position", Json::Num(t.position as f64)),
                            ("percent", Json::Num(t.percent)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ];
    if let Some(cbam) = &exp.cbam {
        obj.push((
            "cbam",
            Json::obj(vec![
                ("channel", gate_summary_json(&cbam.channel)),
                ("spatial", gate_summary_json(&cbam.spatial)),
            ]),
        ));
    }
    Json::obj(obj)
}

/// The JSON shape for a source that could *not* be scanned, so callers can
/// distinguish "clean" (`status: "scanned"`, empty findings) from "error".
pub fn error_json(name: &str, error: &ScanError) -> Json {
    Json::obj(vec![
        ("name", Json::str(name)),
        ("status", Json::str("error")),
        ("error", Json::str(error.to_string())),
    ])
}

/// Parses and slices a source into scoreable gadget streams, extracting
/// path-sensitive gadgets across up to `jobs` threads. Model-free; the
/// companion [`score_prepared`] runs the network.
///
/// # Errors
///
/// [`ScanError::Parse`] when the source is not valid mini-C.
pub fn prepare_source(source: &str, jobs: usize) -> Result<PreparedSource, ScanError> {
    let _t = sevuldet_trace::span!("scan.prepare");
    let program = sevuldet_lang::parse(source).map_err(|e| ScanError::Parse(e.to_string()))?;
    let analysis = ProgramAnalysis::analyze(&program);
    let specials = find_special_tokens(&program, &analysis);
    let spec = GadgetSpec::path_sensitive();
    let slice = spec.slice_config();
    let gadgets = parallel_map(&specials, jobs, |_, st| {
        let gadget = build_gadget(&program, &analysis, st, spec.kind, &slice);
        PreparedGadget {
            line: st.line,
            category: st.category.abbrev(),
            name: st.name.clone(),
            tokens: Normalizer::normalize_gadget(&gadget).tokens(),
        }
    });
    sevuldet_trace::counter("scan.gadgets", gadgets.len() as f64);
    Ok(PreparedSource { gadgets })
}

/// Scores a batch of prepared sources in **one** batched forward pass: the
/// gadget streams of every source are concatenated, pushed through
/// [`Detector::predict_batch`] together (sharded across `jobs` threads by
/// `par`), and split back per source. Reports are in input order and
/// identical for every `jobs` value and every way of batching the same
/// sources — the invariant the serving layer's determinism test pins down.
///
/// # Errors
///
/// [`ScanError::Internal`] when the model returns a score count that does
/// not match the gadget count — an invariant violation surfaced as a clean
/// error instead of a panic.
pub fn score_prepared(
    detector: &Detector,
    prepared: &[PreparedSource],
    jobs: usize,
) -> Result<Vec<ScanReport>, ScanError> {
    let _t = sevuldet_trace::span!("scan.score");
    let streams = gadget_streams(prepared);
    let scores = detector.predict_batch(&streams, jobs);
    assemble_reports(prepared, scores, detector.threshold())
}

/// Like [`score_prepared`], but for callers that *own* the detector (the
/// CLI, a server worker's private replica): the forward pass goes through
/// [`Detector::predict_batch_mut`], which at an effective thread count of
/// one computes on the detector's own model — no replica clone per call, so
/// its kernel workspace stays warm. Reports are bit-identical to
/// [`score_prepared`] for every `jobs` value.
///
/// # Errors
///
/// [`ScanError::Internal`] on a score-count mismatch, as in
/// [`score_prepared`].
pub fn score_prepared_mut(
    detector: &mut Detector,
    prepared: &[PreparedSource],
    jobs: usize,
) -> Result<Vec<ScanReport>, ScanError> {
    let _t = sevuldet_trace::span!("scan.score");
    let streams = gadget_streams(prepared);
    let scores = detector.predict_batch_mut(&streams, jobs);
    assemble_reports(prepared, scores, detector.threshold())
}

/// Concatenates the gadget token streams of every prepared source, in order.
fn gadget_streams(prepared: &[PreparedSource]) -> Vec<Vec<String>> {
    prepared
        .iter()
        .flat_map(|p| p.gadgets.iter().map(|g| g.tokens.clone()))
        .collect()
}

/// Splits a flat score vector back into per-source reports (the inverse of
/// [`gadget_streams`]'s concatenation).
fn assemble_reports(
    prepared: &[PreparedSource],
    scores: Vec<f64>,
    threshold: f64,
) -> Result<Vec<ScanReport>, ScanError> {
    let expected: usize = prepared.iter().map(|p| p.gadgets.len()).sum();
    if scores.len() != expected {
        return Err(ScanError::Internal(format!(
            "model returned {} scores for {expected} gadgets",
            scores.len()
        )));
    }
    let mut cursor = scores.into_iter();
    Ok(prepared
        .iter()
        .map(|p| ScanReport {
            threshold,
            model: None,
            findings: p
                .gadgets
                .iter()
                .map(|g| {
                    // The count was validated above, so the cursor cannot run
                    // dry; the NaN fallback keeps even that impossible case a
                    // reported error instead of a panic.
                    let score = cursor.next().unwrap_or(f64::NAN);
                    let status = if score.is_finite() {
                        FindingStatus::Scored
                    } else {
                        FindingStatus::InvalidScore
                    };
                    Finding {
                        line: g.line,
                        category: g.category,
                        name: g.name.clone(),
                        score,
                        flagged: status == FindingStatus::Scored && score > threshold,
                        status,
                        tokens: g.tokens.clone(),
                        members: Vec::new(),
                        explain: None,
                    }
                })
                .collect(),
        })
        .collect())
}

/// How many tokens an attached explanation ranks (the Fig. 6 bar count).
pub const EXPLAIN_TOP_K: usize = 10;

/// Attaches a Fig. 6 explanation to every finding of a report, running each
/// gadget back through the detector's reference f64 path. Heavier than the
/// scoring pass (one extra forward per gadget), which is why it is opt-in
/// per request rather than always on.
pub fn attach_explanations(detector: &mut Detector, report: &mut ScanReport) {
    let _t = sevuldet_trace::span!("scan.explain");
    for f in &mut report.findings {
        f.explain = Some(explain_tokens(detector, &f.tokens, EXPLAIN_TOP_K));
    }
}

/// Combines per-model reports over the *same* prepared source into one
/// ensemble report: per finding, the ensemble score is the mean of the
/// members' scores and the verdict is a strict majority vote of the
/// members' flags; each member's own score/flag rides along in
/// [`Finding::members`]. A finding where any member produced a non-finite
/// score is conservatively reported as `invalid_score` — averaging around a
/// NaN would silently misweight the vote. The ensemble threshold is the
/// mean of the member thresholds (informational: the vote, not the mean
/// score against it, decides `flagged`).
///
/// Deterministic in member order, and member reports are themselves
/// byte-stable across `--jobs` — so ensemble output is too.
///
/// # Errors
///
/// [`ScanError::Internal`] when the member reports disagree on the gadget
/// count (they must come from one prepared source) or no members are given.
pub fn combine_ensemble(members: &[(String, ScanReport)]) -> Result<ScanReport, ScanError> {
    let Some((_, first)) = members.first() else {
        return Err(ScanError::Internal("ensemble with no members".into()));
    };
    let n = first.findings.len();
    if let Some((name, r)) = members.iter().find(|(_, r)| r.findings.len() != n) {
        return Err(ScanError::Internal(format!(
            "ensemble member `{name}` scored {} gadgets, expected {n}",
            r.findings.len()
        )));
    }
    let threshold = members.iter().map(|(_, r)| r.threshold).sum::<f64>() / members.len() as f64;
    let findings = (0..n)
        .map(|i| {
            let per_member: Vec<MemberScore> = members
                .iter()
                .map(|(name, r)| {
                    let f = &r.findings[i];
                    MemberScore {
                        model: name.clone(),
                        score: f.score,
                        flagged: f.flagged,
                        status: f.status,
                    }
                })
                .collect();
            let all_valid = per_member.iter().all(|m| m.status == FindingStatus::Scored);
            let (score, status) = if all_valid {
                let mean =
                    per_member.iter().map(|m| m.score).sum::<f64>() / per_member.len() as f64;
                (mean, FindingStatus::Scored)
            } else {
                (f64::NAN, FindingStatus::InvalidScore)
            };
            let votes = per_member.iter().filter(|m| m.flagged).count();
            let flagged = status == FindingStatus::Scored && 2 * votes > per_member.len();
            let base = &first.findings[i];
            Finding {
                line: base.line,
                category: base.category,
                name: base.name.clone(),
                score,
                flagged,
                status,
                tokens: base.tokens.clone(),
                members: per_member,
                explain: None,
            }
        })
        .collect();
    Ok(ScanReport {
        findings,
        threshold,
        model: None,
    })
}

/// Scans one source end to end: [`prepare_source`] + [`score_prepared`].
///
/// # Errors
///
/// [`ScanError::Parse`] when the source is not valid mini-C;
/// [`ScanError::Internal`] when scoring breaks an internal invariant.
pub fn score_source(
    detector: &Detector,
    source: &str,
    jobs: usize,
) -> Result<ScanReport, ScanError> {
    let prepared = prepare_source(source, jobs)?;
    score_prepared(detector, &[prepared], jobs)?
        .pop()
        .ok_or_else(|| ScanError::Internal("no report produced".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainConfig;
    use crate::pipeline::{Detector, GadgetSpec};
    use crate::zoo::ModelKind;
    use sevuldet_dataset::{sard, SardConfig};

    const LEAKY: &str = r#"void process(char *dest, char *data) {
    int n = atoi(data);
    if (n < 16) {
        puts("small");
    }
    strncpy(dest, data, n);
}"#;

    fn tiny_detector() -> Detector {
        let samples = sard::generate(&SardConfig {
            per_category: 6,
            ..SardConfig::default()
        });
        let corpus = GadgetSpec::path_sensitive().extract(&samples);
        let cfg = TrainConfig {
            embed_dim: 10,
            w2v_epochs: 1,
            epochs: 2,
            cnn_channels: 8,
            ..TrainConfig::quick()
        };
        Detector::train(&corpus, ModelKind::SevulDet, &cfg)
    }

    #[test]
    fn score_source_reports_every_gadget() {
        let det = tiny_detector();
        let report = score_source(&det, LEAKY, 1).expect("scans");
        assert!(
            report.gadgets() > 0,
            "motivating example has special tokens"
        );
        assert_eq!(report.threshold, det.threshold());
        for f in &report.findings {
            assert!(f.line >= 1);
            assert!((0.0..=1.0).contains(&f.score));
            assert_eq!(f.status, FindingStatus::Scored);
            assert_eq!(f.flagged, f.score > report.threshold);
            assert!(!f.tokens.is_empty());
        }
        assert_eq!(report.invalid(), 0);
        // Source order: lines never decrease out of special-token order.
        let json = report.to_json("leaky.c").to_string();
        assert!(json.contains("\"status\":\"scanned\""));
        assert!(json.contains("\"findings\":["));
    }

    #[test]
    fn clean_source_is_scanned_not_error() {
        let det = tiny_detector();
        let report = score_source(&det, "int three() { return 3; }", 1).expect("scans");
        assert_eq!(report.gadgets(), 0);
        assert_eq!(report.flagged(), 0);
        let json = report.to_json("clean.c").to_string();
        assert!(json.contains("\"status\":\"scanned\""));
        assert!(json.contains("\"gadgets\":0"));
        assert!(json.contains("\"findings\":[]"));
    }

    #[test]
    fn parse_failure_is_a_scan_error() {
        let det = tiny_detector();
        let err = score_source(&det, "this is not C at all {{{", 1).unwrap_err();
        assert!(matches!(err, ScanError::Parse(_)));
        let json = error_json("bad.c", &err).to_string();
        assert!(json.contains("\"status\":\"error\""));
    }

    #[test]
    fn non_finite_scores_become_typed_errors_not_clean() {
        let prepared = prepare_source(LEAKY, 1).expect("parses");
        let n = prepared.gadgets.len();
        assert!(n >= 2, "motivating example has at least two gadgets");
        // Hand the assembler a NaN in slot 0 and confident scores elsewhere.
        let mut scores = vec![0.9; n];
        scores[0] = f64::NAN;
        let prepared = [prepared];
        let reports = assemble_reports(&prepared, scores, 0.5).expect("count matches");
        let report = &reports[0];
        let bad = &report.findings[0];
        assert_eq!(bad.status, FindingStatus::InvalidScore);
        assert!(
            !bad.flagged,
            "a NaN score must never read as clean-or-flagged"
        );
        assert_eq!(report.invalid(), 1);
        assert_eq!(report.flagged(), n - 1);
        for f in &report.findings[1..] {
            assert_eq!(f.status, FindingStatus::Scored);
            assert!(f.flagged);
        }
        let json = report.to_json("nan.c").to_string();
        assert!(json.contains("\"status\":\"invalid_score\""));
        assert!(json.contains("\"score\":null"));
        assert!(json.contains("\"invalid\":1"));
    }

    #[test]
    fn score_count_mismatch_is_internal_error_not_panic() {
        let prepared = [prepare_source(LEAKY, 1).expect("parses")];
        let err = assemble_reports(&prepared, vec![0.5], 0.5).unwrap_err();
        assert!(matches!(err, ScanError::Internal(_)));
        assert!(err.to_string().contains("internal scan error"));
    }

    #[test]
    fn batched_scoring_matches_one_by_one() {
        let det = tiny_detector();
        let sources = [LEAKY, "int three() { return 3; }", LEAKY];
        let prepared: Vec<PreparedSource> = sources
            .iter()
            .map(|s| prepare_source(s, 1).expect("parses"))
            .collect();
        let batched = score_prepared(&det, &prepared, 1).expect("scores");
        for (src, batch_report) in sources.iter().zip(&batched) {
            let solo = score_source(&det, src, 1).expect("scans");
            assert_eq!(
                solo.to_json("x").to_string(),
                batch_report.to_json("x").to_string(),
                "batching must not change scores"
            );
        }
        // And thread count must not either.
        for jobs in [2, 4] {
            let par = score_prepared(&det, &prepared, jobs).expect("scores");
            for (a, b) in batched.iter().zip(&par) {
                assert_eq!(a.to_json("x").to_string(), b.to_json("x").to_string());
            }
        }
    }

    #[test]
    fn owned_detector_scoring_matches_shared() {
        let mut det = tiny_detector();
        let sources = [LEAKY, "int three() { return 3; }", LEAKY];
        let prepared: Vec<PreparedSource> = sources
            .iter()
            .map(|s| prepare_source(s, 1).expect("parses"))
            .collect();
        let shared = score_prepared(&det, &prepared, 1).expect("scores");
        for jobs in [1, 2, 4] {
            // Repeated calls reuse the detector's warm buffers; every call
            // must still reproduce the clone-based path bit for bit.
            let owned = score_prepared_mut(&mut det, &prepared, jobs).expect("scores");
            for (a, b) in shared.iter().zip(&owned) {
                assert_eq!(
                    a.to_json("x").to_string(),
                    b.to_json("x").to_string(),
                    "jobs={jobs}"
                );
            }
        }
    }
}
