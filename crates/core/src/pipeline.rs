//! End-to-end pipeline: corpus → gadgets → embedding → model → metrics,
//! with a reusable trained [`Detector`] for the detection phase (Fig. 2b).

use crate::config::TrainConfig;
use crate::corpus::{encode, extract_gadgets_jobs, GadgetCorpus};
use crate::metrics::Confusion;
use crate::par::parallel_map;
use crate::train::{evaluate_model, train_model};
use crate::zoo::{build_model, AnyModel, ModelKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sevuldet_dataset::ProgramSample;
use sevuldet_embedding::Vocab;
use sevuldet_gadget::{GadgetKind, SliceConfig};
use sevuldet_nn::{sigmoid, FastCnn, Precision, SequenceClassifier};

/// How gadgets are produced for an experiment. VulDeePecker-style runs use
/// data-dependence-only classic gadgets; SySeVR-style runs use classic
/// gadgets with control dependence; SEVulDet uses path-sensitive gadgets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GadgetSpec {
    /// Classic vs path-sensitive assembly.
    pub kind: GadgetKind,
    /// Follow control dependence while slicing.
    pub control_dep: bool,
}

impl GadgetSpec {
    /// SEVulDet's path-sensitive gadgets.
    pub fn path_sensitive() -> GadgetSpec {
        GadgetSpec {
            kind: GadgetKind::PathSensitive,
            control_dep: true,
        }
    }

    /// SySeVR-style classic gadgets (data + control dependence).
    pub fn classic() -> GadgetSpec {
        GadgetSpec {
            kind: GadgetKind::Classic,
            control_dep: true,
        }
    }

    /// VulDeePecker-style gadgets (data dependence only).
    pub fn data_only() -> GadgetSpec {
        GadgetSpec {
            kind: GadgetKind::Classic,
            control_dep: false,
        }
    }

    /// The slice configuration this spec implies.
    pub fn slice_config(&self) -> SliceConfig {
        if self.control_dep {
            SliceConfig::default()
        } else {
            SliceConfig::data_only()
        }
    }

    /// Extracts the gadget corpus of a program set under this spec.
    pub fn extract(&self, samples: &[ProgramSample]) -> GadgetCorpus {
        self.extract_jobs(samples, 1)
    }

    /// [`GadgetSpec::extract`] across `jobs` worker threads. The corpus is
    /// identical for every `jobs` value.
    pub fn extract_jobs(&self, samples: &[ProgramSample], jobs: usize) -> GadgetCorpus {
        extract_gadgets_jobs(samples, self.kind, &self.slice_config(), jobs)
    }
}

/// Trains a model on a train split and evaluates on a test split, returning
/// the confusion matrix. The embedding is trained on the *whole* corpus
/// (word2vec is unsupervised; the paper pre-trains it the same way).
pub fn run_split(
    corpus: &GadgetCorpus,
    model_kind: ModelKind,
    cfg: &TrainConfig,
    train_idx: &[usize],
    test_idx: &[usize],
) -> Confusion {
    let encoded = encode(corpus, cfg);
    let mut model = build_model(model_kind, encoded.table.clone(), cfg);
    train_model(&mut model, corpus, &encoded, train_idx, cfg);
    evaluate_model(&mut model, corpus, &encoded, test_idx, cfg)
}

/// The paper's five-fold cross-validation protocol: trains `k` models, each
/// tested on its held-out fold. Returns the per-fold confusion matrices and
/// the merged one.
pub fn cross_validate(
    corpus: &GadgetCorpus,
    model_kind: ModelKind,
    cfg: &TrainConfig,
    k: usize,
) -> (Vec<Confusion>, Confusion) {
    let idx: Vec<usize> = (0..corpus.len()).collect();
    let folds = crate::train::k_folds(&idx, k, cfg.seed ^ 0xf01d);
    let mut per_fold = Vec::with_capacity(k);
    let mut merged = Confusion::default();
    for (train_idx, test_idx) in folds {
        let c = run_split(corpus, model_kind, cfg, &train_idx, &test_idx);
        merged.merge(&c);
        per_fold.push(c);
    }
    (per_fold, merged)
}

/// Why a detector could not switch to a requested precision tier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrecisionError {
    /// The fast tiers only exist for the CNN family; RNN baselines stay f64.
    UnsupportedModel(ModelKind),
    /// The engine refused to build (e.g. int8 without persisted calibration).
    Engine(sevuldet_nn::EngineError),
}

impl std::fmt::Display for PrecisionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrecisionError::UnsupportedModel(kind) => {
                write!(
                    f,
                    "{kind} has no fast-tier engine; only the CNN family does"
                )
            }
            PrecisionError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PrecisionError {}

/// A trained detector bundling the model with its vocabulary, usable on new
/// programs (the detection phase, and the Table VI transfer experiment).
/// `Clone` gives the batch-prediction path its per-worker replicas.
#[derive(Clone)]
pub struct Detector {
    model: AnyModel,
    kind: ModelKind,
    vocab: Vocab,
    cfg: TrainConfig,
    rng: StdRng,
    precision: Precision,
    engine: Option<FastCnn>,
    calibration: Option<Vec<f64>>,
}

impl std::fmt::Debug for Detector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Detector(vocab={} tokens)", self.vocab.len())
    }
}

impl Detector {
    /// Trains a detector of the given kind on an entire gadget corpus.
    pub fn train(corpus: &GadgetCorpus, model_kind: ModelKind, cfg: &TrainConfig) -> Detector {
        Self::train_with_checkpoints(corpus, model_kind, cfg, None)
            .expect("training without checkpoints cannot fail")
    }

    /// [`Detector::train`] with crash-safe checkpointing (see
    /// [`crate::train::train_model_checkpointed`]). The word2vec embedding
    /// and corpus encoding are deterministic functions of the config and
    /// corpus, so a resumed run re-derives them instead of persisting them
    /// — only the network parameters, optimizer moments, and cursor live in
    /// the checkpoint.
    ///
    /// # Errors
    ///
    /// Checkpoint I/O failures, corrupt checkpoints, and fingerprint
    /// mismatches. `None` never fails.
    pub fn train_with_checkpoints(
        corpus: &GadgetCorpus,
        model_kind: ModelKind,
        cfg: &TrainConfig,
        ckpt: Option<&crate::checkpoint::CheckpointSpec>,
    ) -> Result<Detector, crate::checkpoint::CheckpointError> {
        let encoded = encode(corpus, cfg);
        let mut model = build_model(model_kind, encoded.table.clone(), cfg);
        let all: Vec<usize> = (0..corpus.len()).collect();
        crate::train::train_model_checkpointed(&mut model, corpus, &encoded, &all, cfg, ckpt)?;
        Ok(Detector {
            model,
            kind: model_kind,
            vocab: encoded.vocab,
            cfg: cfg.clone(),
            rng: StdRng::seed_from_u64(cfg.seed ^ 0xdec0),
            precision: Precision::F64,
            engine: None,
            calibration: None,
        })
    }

    /// Decomposes the detector for persistence: `(kind, config, vocab,
    /// serialized parameters)`.
    pub fn persist_parts(&mut self) -> (ModelKind, TrainConfig, &Vocab, String) {
        let params: Vec<&sevuldet_nn::Param> =
            self.model.params_mut().into_iter().map(|p| &*p).collect();
        let text = sevuldet_nn::save_params(&params);
        (self.kind, self.cfg.clone(), &self.vocab, text)
    }

    /// Rebuilds a detector from persisted parts.
    ///
    /// # Errors
    ///
    /// Fails when the serialized parameters do not fit the architecture the
    /// `(kind, cfg, vocab)` triple implies.
    pub fn from_persisted(
        kind: ModelKind,
        cfg: TrainConfig,
        vocab: Vocab,
        params_text: &str,
    ) -> Result<Detector, sevuldet_nn::LoadError> {
        let table = sevuldet_nn::Tensor::zeros(&[vocab.len(), cfg.embed_dim]);
        let mut model = build_model(kind, table, &cfg);
        sevuldet_nn::load_params(&mut model.params_mut(), params_text)?;
        Ok(Detector {
            model,
            kind,
            vocab,
            cfg: cfg.clone(),
            rng: StdRng::seed_from_u64(cfg.seed ^ 0xdec0),
            precision: Precision::F64,
            engine: None,
            calibration: None,
        })
    }

    /// Switches the inference tier. `f64` restores the bit-exact reference
    /// path; `f32` and `int8` build a [`FastCnn`] engine from the current
    /// parameters (weights converted once, here). Training always runs f64
    /// regardless of this setting.
    ///
    /// # Errors
    ///
    /// [`PrecisionError::UnsupportedModel`] for the RNN baselines, and
    /// [`PrecisionError::Engine`] when int8 is requested on a model without
    /// persisted calibration scales (re-export the model to embed them).
    pub fn set_precision(&mut self, precision: Precision) -> Result<(), PrecisionError> {
        if precision == Precision::F64 {
            self.engine = None;
            self.precision = Precision::F64;
            return Ok(());
        }
        let cnn = match &mut self.model {
            AnyModel::Cnn(c) => c,
            AnyModel::Rnn(_) => return Err(PrecisionError::UnsupportedModel(self.kind)),
        };
        self.engine = Some(
            FastCnn::from_cnn(cnn, precision, self.calibration.as_deref())
                .map_err(PrecisionError::Engine)?,
        );
        self.precision = precision;
        Ok(())
    }

    /// The tier inference currently runs at.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Computes and stores the int8 activation scales from a deterministic
    /// calibration batch (id sequences spanning the vocabulary). Called at
    /// export time; the scales ride the v3 model format.
    ///
    /// # Errors
    ///
    /// [`PrecisionError::UnsupportedModel`] for the RNN baselines.
    pub fn calibrate(&mut self) -> Result<(), PrecisionError> {
        let vocab_len = self.vocab.len();
        let cnn = match &mut self.model {
            AnyModel::Cnn(c) => c,
            AnyModel::Rnn(_) => return Err(PrecisionError::UnsupportedModel(self.kind)),
        };
        let probes = calibration_probes(vocab_len);
        let scales = sevuldet_nn::calibrate(cnn, &probes).map_err(PrecisionError::Engine)?;
        self.calibration = Some(scales);
        Ok(())
    }

    /// The persisted int8 activation scales, if any.
    pub fn calibration(&self) -> Option<&[f64]> {
        self.calibration.as_deref()
    }

    /// Installs activation scales read back from a persisted model.
    pub(crate) fn set_calibration(&mut self, scales: Vec<f64>) {
        self.calibration = Some(scales);
    }

    /// Whether this detector's model family supports the f32/int8 engines.
    pub fn supports_fast_tiers(&self) -> bool {
        matches!(self.model, AnyModel::Cnn(_))
    }

    /// Probability that a normalized gadget token stream is vulnerable.
    pub fn predict(&mut self, tokens: &[String]) -> f64 {
        let ids = self.vocab.encode(tokens);
        match &mut self.engine {
            Some(eng) => sigmoid(eng.forward_logit(&ids)),
            None => sigmoid(self.model.forward_logit(&ids, false, &mut self.rng)),
        }
    }

    /// Binary verdict at the configured threshold (paper: sigmoid > 0.8).
    pub fn is_vulnerable(&mut self, tokens: &[String]) -> bool {
        self.predict(tokens) > self.cfg.threshold
    }

    /// The decision threshold this detector was trained with. Persisted in
    /// the saved model, so a loaded detector scans with the same cut-off it
    /// was calibrated for.
    pub fn threshold(&self) -> f64 {
        self.cfg.threshold
    }

    /// Probabilities for a batch of token streams, computed on up to `jobs`
    /// worker threads (`0` = all cores). The streams are encoded, sharded
    /// round-robin across the workers, and each worker pushes its whole
    /// shard through the model's batched entry point
    /// ([`SequenceClassifier::forward_logits`]) on a private replica.
    /// Outputs are in input order and identical for every `jobs` value and
    /// for the unbatched [`Detector::predict`] — inference consumes no
    /// randomness.
    pub fn predict_batch(&self, streams: &[Vec<String>], jobs: usize) -> Vec<f64> {
        if streams.is_empty() {
            return Vec::new();
        }
        let ids: Vec<Vec<usize>> = streams.iter().map(|t| self.vocab.encode(t)).collect();
        let jobs = crate::par::effective_jobs(jobs, ids.len());
        let workers: Vec<usize> = (0..jobs).collect();
        let per_worker: Vec<Vec<f64>> = parallel_map(&workers, jobs, |_, &w| {
            let shard: Vec<Vec<usize>> = ids.iter().skip(w).step_by(jobs).cloned().collect();
            let mut det = self.clone();
            match &mut det.engine {
                Some(eng) => shard
                    .iter()
                    .map(|s| sigmoid(eng.forward_logit(s)))
                    .collect(),
                None => det
                    .model
                    .forward_logits(&shard, false, &mut det.rng)
                    .into_iter()
                    .map(sigmoid)
                    .collect(),
            }
        });
        (0..ids.len())
            .map(|i| per_worker[i % jobs][i / jobs])
            .collect()
    }

    /// Like [`Detector::predict_batch`], but for callers that own the
    /// detector: when the work runs on the calling thread (`jobs` clamps to
    /// one) the detector's own model computes the batch directly — no
    /// replica clone per call — so its kernel workspace stays warm across
    /// calls. Multi-threaded runs delegate to `predict_batch` unchanged.
    /// Outputs are bit-identical either way: inference consumes no
    /// randomness, and the forward math is the same.
    pub fn predict_batch_mut(&mut self, streams: &[Vec<String>], jobs: usize) -> Vec<f64> {
        if streams.is_empty() {
            return Vec::new();
        }
        if crate::par::effective_jobs(jobs, streams.len()) > 1 {
            return self.predict_batch(streams, jobs);
        }
        let ids: Vec<Vec<usize>> = streams.iter().map(|t| self.vocab.encode(t)).collect();
        match &mut self.engine {
            Some(eng) => ids.iter().map(|s| sigmoid(eng.forward_logit(s))).collect(),
            None => self
                .model
                .forward_logits(&ids, false, &mut self.rng)
                .into_iter()
                .map(sigmoid)
                .collect(),
        }
    }

    /// Probability computed on the reference f64 path, bypassing any fast
    /// precision engine. The fast tiers never capture attention weights, so
    /// explainability passes use this entry point: after it returns,
    /// [`Detector::token_weights`] and [`Detector::cbam_gates`] reflect this
    /// exact input regardless of the configured precision tier.
    pub fn predict_reference(&mut self, tokens: &[String]) -> f64 {
        let ids = self.vocab.encode(tokens);
        sigmoid(self.model.forward_logit(&ids, false, &mut self.rng))
    }

    /// Per-token attention weights of the last prediction, if the model has
    /// token attention (Fig. 6's hook).
    pub fn token_weights(&self) -> Option<Vec<f64>> {
        self.model.token_weights()
    }

    /// The CBAM `(channel, spatial)` gates of the last reference-path
    /// prediction, when the model carries a CBAM block.
    pub fn cbam_gates(&self) -> Option<(Vec<f64>, Vec<f64>)> {
        self.model.cbam_gates()
    }

    /// Evaluates the detector on a fresh gadget corpus (e.g. the Xen-sim
    /// corpus after training on SARD-sim), sharding inference across the
    /// configured `cfg.jobs` worker threads.
    pub fn evaluate_corpus(&mut self, corpus: &GadgetCorpus) -> Confusion {
        let streams: Vec<Vec<String>> = corpus.items.iter().map(|i| i.tokens.clone()).collect();
        let probs = self.predict_batch(&streams, self.cfg.jobs);
        let mut confusion = Confusion::default();
        for (p, item) in probs.iter().zip(&corpus.items) {
            confusion.record(*p > self.cfg.threshold, item.label);
        }
        confusion
    }

    /// The encoded form of a token stream under this detector's vocabulary.
    pub fn encode(&self, tokens: &[String]) -> Vec<usize> {
        self.vocab.encode(tokens)
    }
}

/// Deterministic calibration batch: id sequences sweeping the vocabulary
/// with varying strides, so each quantized site sees representative
/// activation magnitudes without needing the training corpus at hand.
fn calibration_probes(vocab_len: usize) -> Vec<Vec<usize>> {
    let v = vocab_len.max(1);
    (0..8)
        .map(|i| (0..32).map(|j| (1 + i * 31 + j * 7) % v).collect())
        .collect()
}

/// Re-export for harnesses that need the raw encoding step.
pub use crate::corpus::encode as encode_corpus;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::stratified_split;
    use sevuldet_dataset::{sard, SardConfig};

    fn quick_cfg() -> TrainConfig {
        TrainConfig {
            embed_dim: 12,
            w2v_epochs: 1,
            epochs: 12,
            cnn_channels: 12,
            rnn_hidden: 10,
            rnn_steps: 60,
            lr: 1e-3,
            threshold: 0.5,
            ..TrainConfig::quick()
        }
    }

    #[test]
    fn sevuldet_learns_tiny_corpus() {
        let samples = sard::generate(&SardConfig {
            per_category: 20,
            displaced_fraction: 0.0,
            long_fraction: 0.0,
            ..SardConfig::default()
        });
        let corpus = GadgetSpec::path_sensitive().extract(&samples);
        let idx = corpus.indices_of(None);
        let (train, test) = stratified_split(&corpus, &idx, 0.25, 5);
        let c = run_split(&corpus, ModelKind::SevulDet, &quick_cfg(), &train, &test);
        assert!(
            c.accuracy() > 0.65,
            "tiny-corpus accuracy should beat chance comfortably: {c}"
        );
    }

    #[test]
    fn detector_transfers_to_unseen_programs() {
        let train_samples = sard::generate(&SardConfig {
            per_category: 12,
            displaced_fraction: 0.0,
            long_fraction: 0.0,
            ..SardConfig::default()
        });
        let test_samples = sard::generate(&SardConfig {
            per_category: 5,
            displaced_fraction: 0.0,
            long_fraction: 0.0,
            seed: 777,
            ..SardConfig::default()
        });
        let spec = GadgetSpec::path_sensitive();
        let train_corpus = spec.extract(&train_samples);
        let test_corpus = spec.extract(&test_samples);
        let mut det = Detector::train(&train_corpus, ModelKind::SevulDet, &quick_cfg());
        let c = det.evaluate_corpus(&test_corpus);
        assert_eq!(c.total(), test_corpus.len());
        assert!(c.accuracy() > 0.55, "transfer should beat chance: {c}");
    }

    #[test]
    fn token_weights_available_after_predict() {
        let samples = sard::generate(&SardConfig {
            per_category: 4,
            ..SardConfig::default()
        });
        let corpus = GadgetSpec::path_sensitive().extract(&samples);
        let mut det = Detector::train(&corpus, ModelKind::SevulDet, &quick_cfg());
        let tokens = corpus.items[0].tokens.clone();
        let _ = det.predict(&tokens);
        let w = det.token_weights().expect("attention weights");
        assert_eq!(w.len(), tokens.len());
    }
}
