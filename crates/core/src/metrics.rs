//! Evaluation metrics exactly as defined in §IV-A of the paper.

use std::fmt;

/// A binary confusion matrix.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Confusion {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Confusion {
    /// Records one prediction.
    pub fn record(&mut self, predicted: bool, actual: bool) {
        match (predicted, actual) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, false) => self.tn += 1,
            (false, true) => self.fn_ += 1,
        }
    }

    /// Total predictions.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Merges another confusion matrix into this one.
    pub fn merge(&mut self, other: &Confusion) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.tn += other.tn;
        self.fn_ += other.fn_;
    }

    /// False-positive rate: `FP / (FP + TN)`.
    pub fn fpr(&self) -> f64 {
        ratio(self.fp, self.fp + self.tn)
    }

    /// False-negative rate: `FN / (FN + TP)`.
    pub fn fnr(&self) -> f64 {
        ratio(self.fn_, self.fn_ + self.tp)
    }

    /// Accuracy: `(TP + TN) / all`.
    pub fn accuracy(&self) -> f64 {
        ratio(self.tp + self.tn, self.total())
    }

    /// Precision: `TP / (TP + FP)`.
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// Recall (`1 − FNR`).
    pub fn recall(&self) -> f64 {
        1.0 - self.fnr()
    }

    /// F1-measure: `2·P·(1 − FNR) / (P + (1 − FNR))` (the paper's form of
    /// the harmonic mean of precision and recall).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// The five paper metrics as percentages `(FPR, FNR, A, P, F1)`.
    pub fn percentages(&self) -> (f64, f64, f64, f64, f64) {
        (
            self.fpr() * 100.0,
            self.fnr() * 100.0,
            self.accuracy() * 100.0,
            self.precision() * 100.0,
            self.f1() * 100.0,
        )
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl fmt::Display for Confusion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (fpr, fnr, a, p, f1) = self.percentages();
        write!(
            f,
            "FPR {fpr:5.1}%  FNR {fnr:5.1}%  A {a:5.1}%  P {p:5.1}%  F1 {f1:5.1}%  (tp={} fp={} tn={} fn={})",
            self.tp, self.fp, self.tn, self.fn_
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Confusion {
        Confusion {
            tp: 80,
            fp: 10,
            tn: 90,
            fn_: 20,
        }
    }

    #[test]
    fn rates_match_hand_computation() {
        let c = sample();
        assert!((c.fpr() - 0.1).abs() < 1e-12);
        assert!((c.fnr() - 0.2).abs() < 1e-12);
        assert!((c.accuracy() - 0.85).abs() < 1e-12);
        assert!((c.precision() - 8.0 / 9.0).abs() < 1e-12);
        let p = 8.0 / 9.0;
        let r = 0.8;
        assert!((c.f1() - 2.0 * p * r / (p + r)).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_is_all_zero() {
        let c = Confusion::default();
        assert_eq!(c.accuracy(), 0.0);
        assert_eq!(c.f1(), 0.0);
        assert_eq!(c.total(), 0);
    }

    #[test]
    fn record_and_merge() {
        let mut c = Confusion::default();
        c.record(true, true);
        c.record(true, false);
        c.record(false, true);
        c.record(false, false);
        assert_eq!(
            c,
            Confusion {
                tp: 1,
                fp: 1,
                tn: 1,
                fn_: 1
            }
        );
        let mut d = c;
        d.merge(&c);
        assert_eq!(d.total(), 8);
    }

    #[test]
    fn motivating_example_yields_half_accuracy() {
        // The paper's §II-C observation: on an identical-gadget pair the
        // classifier is pinned at 50% whichever way it answers.
        let mut always_yes = Confusion::default();
        always_yes.record(true, true);
        always_yes.record(true, false);
        let mut always_no = Confusion::default();
        always_no.record(false, true);
        always_no.record(false, false);
        assert_eq!(always_yes.accuracy(), 0.5);
        assert_eq!(always_no.accuracy(), 0.5);
    }
}
