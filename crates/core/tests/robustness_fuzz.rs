//! Fuzz-smoke property tests: hostile inputs through the scanning pipeline
//! and the persistence loader must produce typed errors (or clean reports),
//! never panics, aborts, or stack overflows.
//!
//! Four input families:
//! * arbitrary byte soup (any bytes, control characters, unbalanced
//!   punctuation) through [`prepare_source`] and [`score_source`];
//! * syntactically plausible C truncated at an arbitrary character;
//! * pathologically nested sources (braces, parens, unary chains) deep
//!   enough to overflow the parser's stack without its recursion cap;
//! * saved detector files with bytes flipped, tails cut, or replaced by
//!   garbage, through [`load_detector`].

use proptest::prelude::*;
use sevuldet::{
    load_detector, prepare_source, save_detector, score_source, Detector, GadgetSpec, ModelKind,
    TrainConfig,
};
use sevuldet_dataset::{sard, SardConfig};
use std::sync::OnceLock;

/// A tiny trained detector, shared across cases (training dominates cost).
fn detector() -> &'static Detector {
    static CELL: OnceLock<Detector> = OnceLock::new();
    CELL.get_or_init(|| {
        let samples = sard::generate(&SardConfig {
            per_category: 3,
            ..SardConfig::default()
        });
        let corpus = GadgetSpec::path_sensitive().extract(&samples);
        let cfg = TrainConfig {
            embed_dim: 8,
            w2v_epochs: 1,
            epochs: 1,
            cnn_channels: 6,
            ..TrainConfig::quick()
        };
        Detector::train(&corpus, ModelKind::SevulDet, &cfg)
    })
}

fn saved_model() -> &'static str {
    static CELL: OnceLock<String> = OnceLock::new();
    CELL.get_or_init(|| save_detector(&mut detector().clone()))
}

/// Arbitrary byte soup decoded leniently — exercises non-ASCII, control
/// characters, and every unbalanced token the lexer can meet.
fn byte_soup(max: usize) -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<u8>(), 0..max)
        .prop_map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
}

/// A plausible-but-hostile C fragment: a valid skeleton with fuzzed name,
/// type, constant, and a printable noise string inside a literal.
fn c_ish_source() -> impl Strategy<Value = String> {
    (
        0usize..4,
        any::<u16>(),
        proptest::collection::vec(any::<u8>(), 0..40),
    )
        .prop_map(|(ty, n, noise)| {
            let ty = ["int", "char *", "void", "long"][ty];
            let noise: String = noise
                .into_iter()
                .map(|b| (b' ' + (b % 94)) as char)
                .filter(|&c| c != '"' && c != '\\')
                .collect();
            format!(
                "{ty} fuzzed(char *p) {{\n  int x = {n};\n  if (x > 0) {{ strcpy(p, \"{noise}\"); }}\n  return x;\n}}",
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_bytes_never_panic_the_scanner(input in byte_soup(200)) {
        // Any outcome is fine; any panic is the bug.
        let _ = prepare_source(&input, 1);
        let _ = score_source(detector(), &input, 1);
    }

    #[test]
    fn truncated_c_never_panics(src in c_ish_source(), cut in 0usize..200) {
        let boundaries: Vec<usize> = src
            .char_indices()
            .map(|(i, _)| i)
            .chain([src.len()])
            .collect();
        let cut = boundaries[cut % boundaries.len()];
        let _ = score_source(detector(), &src[..cut], 1);
    }

    #[test]
    fn deep_nesting_is_rejected_not_fatal(depth in 1usize..12, kind in 0usize..3) {
        // Exponential depths up to 2^11 = 2048, past the parser's cap of
        // 300: without the recursion guard these would overflow the stack
        // (an abort no test harness can catch).
        let n = 1usize << depth;
        let src = match kind {
            0 => format!("void f() {{ {} {} }}", "{".repeat(n), "}".repeat(n)),
            1 => format!("int g() {{ return {}1{}; }}", "(".repeat(n), ")".repeat(n)),
            _ => format!("int h(int x) {{ return {}x; }}", "!".repeat(n)),
        };
        match score_source(detector(), &src, 1) {
            Ok(_) => prop_assert!(n <= 300, "depth {n} should exceed the cap"),
            Err(e) => {
                let msg = e.to_string();
                prop_assert!(msg.contains("parse error"), "unexpected error: {msg}");
            }
        }
    }

    #[test]
    fn mutated_model_files_never_panic_the_loader(
        flip in 0usize..10_000,
        truncate in any::<bool>(),
        cut in 0usize..10_000,
    ) {
        let good = saved_model();
        let mut bytes = good.as_bytes().to_vec();
        bytes[flip % good.len()] ^= 0x20;
        if truncate {
            bytes.truncate(cut % good.len());
        }
        let mutated = String::from_utf8_lossy(&bytes).into_owned();
        // Almost always an error; on the rare no-op mutation a clean load
        // is fine. Either way: no panic.
        let _ = load_detector(&mutated);
    }

    #[test]
    fn garbage_model_bytes_are_rejected(input in byte_soup(300)) {
        prop_assert!(load_detector(&input).is_err());
    }
}
