//! End-to-end guarantees of the data-parallel engine: at an equal seed,
//! every `jobs` value must produce the *same bytes* — same trained
//! parameters, same saved model, same evaluation — and the degenerate
//! inputs the engine can meet in the wild (empty token streams) must not
//! panic anywhere in the stack.

use sevuldet::{save_detector, Detector, GadgetSpec, ModelKind, TrainConfig};
use sevuldet_dataset::{sard, SardConfig};

fn tiny_cfg(jobs: usize) -> TrainConfig {
    TrainConfig {
        embed_dim: 10,
        w2v_epochs: 1,
        epochs: 3,
        cnn_channels: 8,
        rnn_hidden: 8,
        rnn_steps: 40,
        seed: 42,
        jobs,
        ..TrainConfig::quick()
    }
}

fn tiny_corpus() -> sevuldet::GadgetCorpus {
    let samples = sard::generate(&SardConfig {
        per_category: 8,
        ..SardConfig::default()
    });
    GadgetSpec::path_sensitive().extract(&samples)
}

#[test]
fn saved_models_are_bit_identical_across_job_counts() {
    let corpus = tiny_corpus();
    let mut base = Detector::train(&corpus, ModelKind::SevulDet, &tiny_cfg(1));
    let base_text = save_detector(&mut base);
    for jobs in [2, 4] {
        let mut par = Detector::train(&corpus, ModelKind::SevulDet, &tiny_cfg(jobs));
        let par_text = save_detector(&mut par);
        assert!(
            base_text == par_text,
            "saved model with jobs={jobs} differs from jobs=1"
        );
    }
}

#[test]
fn rnn_training_is_job_count_invariant_too() {
    // The RNN branch of the zoo exercises a different backward path.
    let corpus = tiny_corpus();
    let mut base = Detector::train(&corpus, ModelKind::Bgru, &tiny_cfg(1));
    let mut par = Detector::train(&corpus, ModelKind::Bgru, &tiny_cfg(3));
    assert!(
        save_detector(&mut base) == save_detector(&mut par),
        "BGRU parameters diverged between jobs=1 and jobs=3"
    );
}

#[test]
fn evaluation_is_job_count_invariant() {
    let corpus = tiny_corpus();
    let mut det = Detector::train(&corpus, ModelKind::SevulDet, &tiny_cfg(1));
    let seq = det.evaluate_corpus(&corpus);
    let mut det_par = Detector::train(&corpus, ModelKind::SevulDet, &tiny_cfg(4));
    let par = det_par.evaluate_corpus(&corpus);
    assert_eq!(seq.to_string(), par.to_string());
}

#[test]
fn jobs_zero_means_all_cores_and_stays_deterministic() {
    let corpus = tiny_corpus();
    let mut base = Detector::train(&corpus, ModelKind::SevulDet, &tiny_cfg(1));
    let mut auto = Detector::train(&corpus, ModelKind::SevulDet, &tiny_cfg(0));
    assert!(save_detector(&mut base) == save_detector(&mut auto));
}

#[test]
fn empty_token_stream_predicts_without_panicking() {
    // Regression: Spp::forward used to compute `start.min(l - 1)` and
    // underflow on an empty sequence; the guard must hold end-to-end.
    let corpus = tiny_corpus();
    let mut det = Detector::train(&corpus, ModelKind::SevulDet, &tiny_cfg(1));
    let p = det.predict(&[]);
    assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
    let _ = det.is_vulnerable(&[]);
    let batch = det.predict_batch(&[Vec::new(), vec!["if".to_string()]], 2);
    assert_eq!(batch.len(), 2);
    assert!(batch.iter().all(|p| (0.0..=1.0).contains(p)));
}

#[test]
fn loaded_detector_keeps_its_training_threshold() {
    let corpus = tiny_corpus();
    let cfg = TrainConfig {
        threshold: 0.8,
        ..tiny_cfg(1)
    };
    let mut det = Detector::train(&corpus, ModelKind::SevulDet, &cfg);
    let text = save_detector(&mut det);
    let loaded = sevuldet::load_detector(&text).expect("roundtrip");
    assert!(
        (loaded.threshold() - 0.8).abs() < 1e-12,
        "threshold lost in persistence: {}",
        loaded.threshold()
    );
}
