//! Tracing must be a pure observer: turning span recording on changes
//! *nothing* about what the pipeline computes. This suite pins the
//! acceptance criterion byte-for-byte — the saved model text and the scan
//! report JSON are identical with recording off and on — and checks that
//! the traced run actually captured the pipeline (the invariance claim
//! would be vacuous if no spans fired).
//!
//! Everything lives in one `#[test]` because the recording switch is
//! process-global; parallel test threads toggling it would race.

use sevuldet::{save_detector, score_source, Detector, GadgetSpec, ModelKind, TrainConfig};
use sevuldet_dataset::{sard, SardConfig};

const LEAKY: &str = r#"void process(char *dest, char *data) {
    int n = atoi(data);
    if (n < 16) {
        puts("small");
    }
    strncpy(dest, data, n);
}"#;

fn tiny_cfg() -> TrainConfig {
    TrainConfig {
        embed_dim: 10,
        w2v_epochs: 1,
        epochs: 2,
        cnn_channels: 8,
        seed: 42,
        jobs: 1,
        ..TrainConfig::quick()
    }
}

fn train_and_scan() -> (String, String) {
    let samples = sard::generate(&SardConfig {
        per_category: 6,
        ..SardConfig::default()
    });
    let corpus = GadgetSpec::path_sensitive().extract(&samples);
    let mut det = Detector::train(&corpus, ModelKind::SevulDet, &tiny_cfg());
    let model = save_detector(&mut det);
    let report = score_source(&det, LEAKY, 1)
        .expect("scans")
        .to_json("leaky.c")
        .to_string();
    (model, report)
}

#[test]
fn recording_changes_no_output_bytes() {
    // Baseline: recording off (explicitly, in case the environment set it).
    sevuldet::trace::set_recording(false);
    let (model_off, report_off) = train_and_scan();
    assert!(
        sevuldet::trace::take().is_empty(),
        "spans recorded while recording was off"
    );

    // Same work, recording on.
    sevuldet::trace::set_recording(true);
    let (model_on, report_on) = train_and_scan();
    let trace = sevuldet::trace::take();
    sevuldet::trace::set_recording(false);

    assert!(
        model_off == model_on,
        "saved model differs with tracing enabled"
    );
    assert_eq!(report_off, report_on, "scan report differs with tracing");

    // The traced run really did cover the pipeline end to end.
    for stage in [
        "lang.parse",
        "analysis.pdg",
        "gadget.slice",
        "embed.w2v",
        "core.encode",
        "nn.forward",
        "nn.backward",
        "train.epoch",
        "scan.prepare",
        "scan.score",
    ] {
        assert!(
            trace.spans.iter().any(|s| s.name == stage),
            "no `{stage}` span in the traced run"
        );
    }
    assert!(
        trace.counters.iter().any(|c| c.name == "gadgets"),
        "gadget counter missing"
    );
}
