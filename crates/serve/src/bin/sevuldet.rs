//! The `sevuldet` command-line tool: train a detector on the synthetic
//! corpus, save/load it, scan C files for vulnerabilities (one warm model,
//! many files, one batched forward pass), and serve scans over HTTP.
//!
//! ```text
//! sevuldet train --out model.svd [--per-category 60] [--epochs 24] [--seed 42] [--jobs N]
//!                [--checkpoint-dir DIR] [--checkpoint-every N] [--resume]
//!                [--profile] [--trace-out trace.json]
//! sevuldet scan <file-or-dir> [...] --model [NAME=]model.svd [--model NAME=other.svd ...]
//!                [--model-name NAME|ensemble:a,b] [--explain] [--top 5] [--jobs N] [--json]
//!                [--precision f64|f32|int8] [--cache-dir DIR | --no-cache]
//!                [--cache-max-bytes N] [--profile] [--trace-out trace.json]
//! sevuldet serve --model [NAME=]model.svd [--model NAME=other.svd ...]
//!                [--split NAME=90,NAME=10] [--addr 127.0.0.1:8080] [--workers N]
//!                [--max-batch N] [--queue-cap N] [--deadline-ms N] [--jobs N]
//!                [--precision f64|f32|int8] [--cache-dir DIR | --no-cache]
//!                [--cache-max-bytes N]
//! sevuldet cache <stats|clear|verify> --cache-dir DIR
//! sevuldet gadgets <file.c> [--classic]
//! ```
//!
//! Scan positionals may be directories: each is walked recursively for
//! `*.c` files in sorted order, and the combined list is deduplicated by
//! canonical path so overlapping arguments cannot duplicate findings.
//! `--cache-dir` (or the `SEVULDET_CACHE_DIR` environment variable) turns
//! on the incremental artifact cache; reports are byte-identical with the
//! cache on, off, or damaged.
//!
//! ## Exit codes
//!
//! Failure classes map to distinct process exit codes so supervisors and
//! scripts can react without parsing stderr: `0` success, `1` scan findings
//! failed / generic failure, `2` usage (bad flags or arguments), `3` I/O
//! (unreadable or unwritable files), `4` corrupt or mismatched data (failed
//! checksum, bad model file, checkpoint from a different run), `5` network
//! bind failure.

use sevuldet::checkpoint::CheckpointSpec;
use sevuldet::{
    attach_explanations, combine_ensemble, load_detector_file, prepare_source, save_detector_file,
    score_prepared_mut, top_tokens, CheckpointError, Detector, DetectorFileError, GadgetSpec, Json,
    ModelKind, Precision, PreparedSource, ScanError, ScanReport, TrainConfig,
};
use sevuldet_analysis::ProgramAnalysis;
use sevuldet_dataset::{sard, SardConfig};
use sevuldet_gadget::{build_gadget, find_special_tokens, GadgetKind};
use sevuldet_query::{ArtifactStore, EntryStatus, QueryConfig, QueryEngine};
use sevuldet_serve::{
    registry::{MultiRegistry, RegistryError},
    server, signal, ServeConfig,
};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

/// A CLI failure, classified for its exit code.
enum CliError {
    /// Bad flags or arguments (exit 2).
    Usage(String),
    /// File I/O failure (exit 3).
    Io(String),
    /// Corrupt or mismatched data: failed checksum, invalid model or
    /// checkpoint, wrong-run resume (exit 4).
    Corrupt(String),
    /// Could not bind the serve address (exit 5).
    Bind(String),
    /// Everything else, e.g. some scanned files failed (exit 1).
    Other(String),
}

impl CliError {
    fn exit_code(&self) -> u8 {
        match self {
            CliError::Other(_) => 1,
            CliError::Usage(_) => 2,
            CliError::Io(_) => 3,
            CliError::Corrupt(_) => 4,
            CliError::Bind(_) => 5,
        }
    }

    fn message(&self) -> &str {
        match self {
            CliError::Usage(m)
            | CliError::Io(m)
            | CliError::Corrupt(m)
            | CliError::Bind(m)
            | CliError::Other(m) => m,
        }
    }
}

impl From<DetectorFileError> for CliError {
    fn from(e: DetectorFileError) -> Self {
        match e {
            DetectorFileError::Io(_) => CliError::Io(e.to_string()),
            DetectorFileError::Invalid(_) => CliError::Corrupt(e.to_string()),
        }
    }
}

impl From<CheckpointError> for CliError {
    fn from(e: CheckpointError) -> Self {
        match e {
            CheckpointError::Io(_) => CliError::Io(e.to_string()),
            CheckpointError::Invalid(_) | CheckpointError::Mismatch { .. } => {
                CliError::Corrupt(e.to_string())
            }
        }
    }
}

impl From<RegistryError> for CliError {
    fn from(e: RegistryError) -> Self {
        match e {
            RegistryError::Io(_) => CliError::Io(e.to_string()),
            RegistryError::Invalid(_)
            | RegistryError::SmokeTest(_)
            | RegistryError::Precision(_) => CliError::Corrupt(e.to_string()),
            // Bad registry configuration (duplicate names, unknown split
            // member) is an argument mistake, not a damaged model file.
            RegistryError::Config(_) => CliError::Usage(e.to_string()),
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("train") => cmd_train(&args[1..]),
        Some("scan") => cmd_scan(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("balance") => cmd_balance(&args[1..]),
        Some("cache") => cmd_cache(&args[1..]),
        Some("gadgets") => cmd_gadgets(&args[1..]),
        _ => {
            eprintln!("usage:");
            eprintln!(
                "  sevuldet train --out <model> [--per-category N] [--epochs N] [--seed N] [--jobs N] [--checkpoint-dir DIR] [--checkpoint-every N] [--resume] [--profile] [--trace-out FILE]"
            );
            eprintln!(
                "  sevuldet scan <file-or-dir> [...] --model [NAME=]<model> [--model NAME=<model> ...] [--model-name NAME|ensemble:a,b] [--explain] [--top N] [--jobs N] [--json] [--precision f64|f32|int8] [--cache-dir DIR | --no-cache] [--cache-max-bytes N] [--profile] [--trace-out FILE]"
            );
            eprintln!(
                "  sevuldet serve --model [NAME=]<model> [--model NAME=<model> ...] [--split NAME=W,NAME=W] [--addr host:port] [--workers N] [--max-batch N] [--queue-cap N] [--deadline-ms N] [--jobs N] [--precision f64|f32|int8] [--cache-dir DIR | --no-cache] [--cache-max-bytes N] [--io threads|eventloop] [--shard i/N] [--max-conns N] [--header-deadline-ms N] [--degraded-queue-pct N]"
            );
            eprintln!(
                "  sevuldet balance --shards a:p1,b:p2,... [--addr host:port] [--health-interval-ms N] [--fail-after N] [--recover-after N] [--forwarders N] [--connect-timeout-ms N] [--backend-timeout-ms N] [--max-conns N] [--header-deadline-ms N] [--hedge-after ms|pXX] [--shed-inflight N] [--retry-backoff-ms N]"
            );
            eprintln!("  sevuldet cache <stats|clear|verify> --cache-dir <dir>");
            eprintln!("  sevuldet gadgets <file.c> [--classic]");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e.message());
            ExitCode::from(e.exit_code())
        }
    }
}

/// One command-line flag: its name and whether a value follows it. The
/// single table drives [`flag`], [`has_flag`], [`positionals`], and
/// [`check_args`], so a flag added here is automatically parsed, skipped
/// when hunting for positionals, and accepted by validation.
struct FlagSpec {
    name: &'static str,
    takes_value: bool,
}

const FLAGS: &[FlagSpec] = &[
    FlagSpec {
        name: "--out",
        takes_value: true,
    },
    FlagSpec {
        name: "--per-category",
        takes_value: true,
    },
    FlagSpec {
        name: "--epochs",
        takes_value: true,
    },
    FlagSpec {
        name: "--seed",
        takes_value: true,
    },
    FlagSpec {
        name: "--jobs",
        takes_value: true,
    },
    FlagSpec {
        name: "--model",
        takes_value: true,
    },
    FlagSpec {
        name: "--model-name",
        takes_value: true,
    },
    FlagSpec {
        name: "--split",
        takes_value: true,
    },
    FlagSpec {
        name: "--explain",
        takes_value: false,
    },
    FlagSpec {
        name: "--top",
        takes_value: true,
    },
    FlagSpec {
        name: "--classic",
        takes_value: false,
    },
    FlagSpec {
        name: "--json",
        takes_value: false,
    },
    FlagSpec {
        name: "--addr",
        takes_value: true,
    },
    FlagSpec {
        name: "--workers",
        takes_value: true,
    },
    FlagSpec {
        name: "--max-batch",
        takes_value: true,
    },
    FlagSpec {
        name: "--queue-cap",
        takes_value: true,
    },
    FlagSpec {
        name: "--deadline-ms",
        takes_value: true,
    },
    FlagSpec {
        name: "--checkpoint-dir",
        takes_value: true,
    },
    FlagSpec {
        name: "--checkpoint-every",
        takes_value: true,
    },
    FlagSpec {
        name: "--resume",
        takes_value: false,
    },
    FlagSpec {
        name: "--profile",
        takes_value: false,
    },
    FlagSpec {
        name: "--trace-out",
        takes_value: true,
    },
    FlagSpec {
        name: "--precision",
        takes_value: true,
    },
    FlagSpec {
        name: "--cache-dir",
        takes_value: true,
    },
    FlagSpec {
        name: "--no-cache",
        takes_value: false,
    },
    FlagSpec {
        name: "--cache-max-bytes",
        takes_value: true,
    },
    FlagSpec {
        name: "--io",
        takes_value: true,
    },
    FlagSpec {
        name: "--shard",
        takes_value: true,
    },
    FlagSpec {
        name: "--max-conns",
        takes_value: true,
    },
    FlagSpec {
        name: "--header-deadline-ms",
        takes_value: true,
    },
    FlagSpec {
        name: "--shards",
        takes_value: true,
    },
    FlagSpec {
        name: "--health-interval-ms",
        takes_value: true,
    },
    FlagSpec {
        name: "--fail-after",
        takes_value: true,
    },
    FlagSpec {
        name: "--recover-after",
        takes_value: true,
    },
    FlagSpec {
        name: "--forwarders",
        takes_value: true,
    },
    FlagSpec {
        name: "--connect-timeout-ms",
        takes_value: true,
    },
    FlagSpec {
        name: "--backend-timeout-ms",
        takes_value: true,
    },
    FlagSpec {
        name: "--hedge-after",
        takes_value: true,
    },
    FlagSpec {
        name: "--shed-inflight",
        takes_value: true,
    },
    FlagSpec {
        name: "--retry-backoff-ms",
        takes_value: true,
    },
    FlagSpec {
        name: "--degraded-queue-pct",
        takes_value: true,
    },
];

fn spec(name: &str) -> Option<&'static FlagSpec> {
    FLAGS.iter().find(|s| s.name == name)
}

/// Rejects undeclared `--flags` and value-taking flags with no value.
fn check_args(args: &[String]) -> Result<(), String> {
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a.starts_with("--") {
            let s = spec(a).ok_or_else(|| format!("unknown flag `{a}`"))?;
            if s.takes_value {
                if i + 1 >= args.len() {
                    return Err(format!("flag `{a}` needs a value"));
                }
                i += 1;
            }
        }
        i += 1;
    }
    Ok(())
}

fn flag(args: &[String], name: &str) -> Option<String> {
    debug_assert!(
        spec(name).is_some_and(|s| s.takes_value),
        "{name} not declared as value flag"
    );
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Every value of a repeatable flag, in order of appearance.
fn flags_all(args: &[String], name: &str) -> Vec<String> {
    debug_assert!(
        spec(name).is_some_and(|s| s.takes_value),
        "{name} not declared as value flag"
    );
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == name {
            if let Some(v) = args.get(i + 1) {
                out.push(v.clone());
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    out
}

/// Collects every `--model` occurrence. `NAME=PATH` names a registry slot;
/// a bare `PATH` gets the name `default`. The first model listed is the
/// default one.
fn model_specs(args: &[String]) -> Result<Vec<(String, String)>, CliError> {
    let mut specs: Vec<(String, String)> = Vec::new();
    for v in flags_all(args, "--model") {
        let (name, path) = match v.split_once('=') {
            Some((n, p)) if !n.is_empty() && !p.is_empty() => (n.to_string(), p.to_string()),
            Some(_) => {
                return Err(CliError::Usage(format!(
                    "bad --model `{v}` (expected PATH or NAME=PATH)"
                )))
            }
            None => ("default".to_string(), v),
        };
        if specs.iter().any(|(n, _)| *n == name) {
            return Err(CliError::Usage(format!("duplicate model name `{name}`")));
        }
        specs.push((name, path));
    }
    Ok(specs)
}

/// Parses `--split name=weight,name=weight` A/B traffic weights.
fn split_flag(args: &[String]) -> Result<Option<Vec<(String, u32)>>, CliError> {
    let Some(v) = flag(args, "--split") else {
        return Ok(None);
    };
    let bad = |why: &str| CliError::Usage(format!("bad --split `{v}` ({why})"));
    let mut entries = Vec::new();
    for part in v.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (name, weight) = part
            .split_once('=')
            .ok_or_else(|| bad("expected NAME=WEIGHT,NAME=WEIGHT,..."))?;
        let weight: u32 = weight
            .trim()
            .parse()
            .map_err(|_| bad("weights are non-negative integers"))?;
        entries.push((name.trim().to_string(), weight));
    }
    if entries.is_empty() {
        return Err(bad("no entries"));
    }
    Ok(Some(entries))
}

fn has_flag(args: &[String], name: &str) -> bool {
    debug_assert!(spec(name).is_some(), "{name} not declared");
    args.iter().any(|a| a == name)
}

/// Every non-flag argument, in order.
fn positionals(args: &[String]) -> Vec<&String> {
    let mut out = Vec::new();
    let mut skip_next = false;
    for a in args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a.starts_with("--") {
            skip_next = spec(a).is_none_or(|s| s.takes_value);
            continue;
        }
        out.push(a);
    }
    out
}

fn parse_flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag(args, name) {
        Some(v) => v.parse().map_err(|_| format!("bad {name} `{v}`")),
        None => Ok(default),
    }
}

/// Parses `--precision` (default: the bit-exact f64 reference tier).
fn precision_flag(args: &[String]) -> Result<Precision, CliError> {
    match flag(args, "--precision") {
        None => Ok(Precision::F64),
        Some(v) => v
            .parse()
            .map_err(|e: String| CliError::Usage(format!("bad --precision: {e}"))),
    }
}

/// Reads the shared tracing flags and turns span recording on when either
/// is present. Returns `(--profile, --trace-out path)`.
fn trace_flags(args: &[String]) -> (bool, Option<String>) {
    let profile = has_flag(args, "--profile");
    let trace_out = flag(args, "--trace-out");
    if profile || trace_out.is_some() {
        sevuldet::trace::set_recording(true);
    }
    (profile, trace_out)
}

/// Collects the recording and emits the requested sinks: the per-stage
/// self/total table on stderr (`--profile`) and/or a Chrome `trace_event`
/// JSON file (`--trace-out`, loadable in `chrome://tracing` or Perfetto).
fn emit_trace(profile: bool, trace_out: Option<&str>) -> Result<(), CliError> {
    if !profile && trace_out.is_none() {
        return Ok(());
    }
    let tr = sevuldet::trace::take();
    sevuldet::trace::set_recording(false);
    if profile {
        eprint!("{}", tr.profile_table());
    }
    if let Some(path) = trace_out {
        std::fs::write(path, tr.chrome_json())
            .map_err(|e| CliError::Io(format!("writing {path}: {e}")))?;
        eprintln!("wrote Chrome trace to {path} (open in chrome://tracing or ui.perfetto.dev)");
    }
    Ok(())
}

fn cmd_train(args: &[String]) -> Result<(), CliError> {
    check_args(args).map_err(CliError::Usage)?;
    let (profile, trace_out) = trace_flags(args);
    let out =
        flag(args, "--out").ok_or_else(|| CliError::Usage("train needs --out <path>".into()))?;
    let per_category: usize = parse_flag(args, "--per-category", 60).map_err(CliError::Usage)?;
    let seed: u64 = parse_flag(args, "--seed", 42).map_err(CliError::Usage)?;
    let epochs: usize = parse_flag(args, "--epochs", 24).map_err(CliError::Usage)?;
    let jobs: usize = parse_flag(args, "--jobs", 1).map_err(CliError::Usage)?;
    let checkpoint_every: usize =
        parse_flag(args, "--checkpoint-every", 0).map_err(CliError::Usage)?;
    let resume = has_flag(args, "--resume");
    let ckpt = match flag(args, "--checkpoint-dir") {
        Some(dir) => Some(CheckpointSpec {
            dir: PathBuf::from(dir),
            every: checkpoint_every,
            resume,
        }),
        None if resume || checkpoint_every > 0 => {
            return Err(CliError::Usage(
                "--resume/--checkpoint-every need --checkpoint-dir <dir>".into(),
            ))
        }
        None => None,
    };

    let samples = sard::generate(&SardConfig {
        per_category,
        seed,
        ..SardConfig::default()
    });
    let gadget_spec = GadgetSpec::path_sensitive();
    let corpus = gadget_spec.extract_jobs(&samples, jobs);
    eprintln!(
        "training SEVulDet on {} path-sensitive gadgets ({} vulnerable), {} epochs, {} job(s) ...",
        corpus.len(),
        corpus.vulnerable(),
        epochs,
        jobs
    );
    let cfg = TrainConfig {
        seed,
        epochs,
        jobs,
        ..TrainConfig::quick()
    };
    let mut detector =
        Detector::train_with_checkpoints(&corpus, ModelKind::SevulDet, &cfg, ckpt.as_ref())?;
    save_detector_file(&mut detector, std::path::Path::new(&out))
        .map_err(|e| CliError::Io(format!("writing {out}: {e}")))?;
    eprintln!("saved model to {out}");
    emit_trace(profile, trace_out.as_deref())?;
    Ok(())
}

/// The per-file outcome of a multi-file scan.
enum FileScan {
    Scanned(ScanReport),
    Failed(ScanError),
    Unreadable(String),
}

/// Resolves the cache directory from `--cache-dir`, falling back to the
/// `SEVULDET_CACHE_DIR` environment variable. `--no-cache` wins over both
/// (and conflicts with an explicit `--cache-dir`).
fn cache_dir_setting(args: &[String]) -> Result<Option<PathBuf>, CliError> {
    let explicit = flag(args, "--cache-dir").map(PathBuf::from);
    if has_flag(args, "--no-cache") {
        if explicit.is_some() {
            return Err(CliError::Usage(
                "--no-cache conflicts with --cache-dir".into(),
            ));
        }
        return Ok(None);
    }
    Ok(explicit.or_else(|| {
        std::env::var_os("SEVULDET_CACHE_DIR")
            .filter(|v| !v.is_empty())
            .map(PathBuf::from)
    }))
}

/// Builds the scan's query engine when caching is configured.
fn scan_engine(args: &[String]) -> Result<Option<QueryEngine>, CliError> {
    let Some(dir) = cache_dir_setting(args)? else {
        return Ok(None);
    };
    let max_bytes: u64 = parse_flag(args, "--cache-max-bytes", 0).map_err(CliError::Usage)?;
    let config = QueryConfig {
        cache_dir: Some(dir.clone()),
        max_bytes,
        ..QueryConfig::default()
    };
    QueryEngine::open(&config)
        .map(Some)
        .map_err(|e| CliError::Io(format!("opening cache dir {}: {e}", dir.display())))
}

/// One-line cache summary for `--profile` (printed only when an engine ran).
fn profile_cache_summary() {
    let c = sevuldet_query::counters();
    eprintln!(
        "cache: {} hit(s) ({} mem, {} disk, {} fn-reuse), {} miss(es), {} eviction(s), {} bytes on disk",
        c.hits(),
        c.hits_mem,
        c.hits_disk,
        c.hits_func,
        c.misses,
        c.evictions,
        c.size_bytes
    );
}

fn cmd_scan(args: &[String]) -> Result<(), CliError> {
    check_args(args).map_err(CliError::Usage)?;
    let (profile, trace_out) = trace_flags(args);
    let raw: Vec<String> = positionals(args).into_iter().cloned().collect();
    if raw.is_empty() {
        return Err(CliError::Usage(
            "scan needs at least one <file-or-dir>".into(),
        ));
    }
    // Expand directories (recursive, sorted) and collapse overlapping
    // arguments by canonical path, so findings are deterministic however
    // the inputs are spelled.
    let files: Vec<String> = sevuldet_query::expand_paths(&raw)
        .map_err(|e| CliError::Io(e.to_string()))?
        .into_iter()
        .map(|p| p.display().to_string())
        .collect();
    if files.is_empty() {
        return Err(CliError::Other(
            "no .c files found under the given paths".into(),
        ));
    }
    let specs = model_specs(args)?;
    if specs.is_empty() {
        return Err(CliError::Usage(
            "scan needs --model <path> (repeatable as --model NAME=PATH)".into(),
        ));
    }
    let top: usize = parse_flag(args, "--top", 0).map_err(CliError::Usage)?;
    let jobs: usize = parse_flag(args, "--jobs", 1).map_err(CliError::Usage)?;
    let as_json = has_flag(args, "--json");
    let explain = has_flag(args, "--explain");
    let precision = precision_flag(args)?;
    let engine = scan_engine(args)?;

    // Resolve `--model-name` against the configured names: a single name
    // selects one model, `ensemble:a,b,c` votes across several. Without it
    // the first `--model` is used, and the report keeps its original
    // single-model shape (no `model` field).
    let resolve = |name: &str| -> Result<usize, CliError> {
        specs.iter().position(|(n, _)| n == name).ok_or_else(|| {
            let names: Vec<&str> = specs.iter().map(|(n, _)| n.as_str()).collect();
            CliError::Usage(format!(
                "unknown model `{name}` (available: {})",
                names.join(", ")
            ))
        })
    };
    let (member_idxs, model_label): (Vec<usize>, Option<String>) =
        match flag(args, "--model-name").as_deref() {
            None => (vec![0], None),
            Some(spec) => {
                let idxs = if let Some(list) = spec.strip_prefix("ensemble:") {
                    let members: Vec<usize> = list
                        .split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(resolve)
                        .collect::<Result<_, _>>()?;
                    if members.is_empty() {
                        return Err(CliError::Usage("ensemble with no members".into()));
                    }
                    members
                } else {
                    vec![resolve(spec)?]
                };
                (idxs, Some(spec.to_string()))
            }
        };

    // Load every selected member once and score every file in a single
    // batched forward pass per member — the same
    // `prepare_source`/`score_prepared_mut` path the server's batch workers
    // use, so CLI and server output cannot drift. An unreadable file and a
    // corrupt one exit with different codes.
    let mut detectors: Vec<(String, Detector)> = Vec::with_capacity(member_idxs.len());
    for &i in &member_idxs {
        let (name, path) = &specs[i];
        let mut d = load_detector_file(std::path::Path::new(path))?;
        d.set_precision(precision)
            .map_err(|e| CliError::Corrupt(format!("--precision {precision}: {e}")))?;
        detectors.push((name.clone(), d));
    }

    let mut outcomes: Vec<Option<FileScan>> = Vec::with_capacity(files.len());
    let mut prepared: Vec<PreparedSource> = Vec::new();
    for file in &files {
        match std::fs::read_to_string(file) {
            Err(e) => outcomes.push(Some(FileScan::Unreadable(format!("reading {file}: {e}")))),
            Ok(source) => {
                // Same front half either way; the engine just memoizes it.
                let result = match &engine {
                    Some(engine) => engine.prepare(&source, jobs),
                    None => prepare_source(&source, jobs),
                };
                match result {
                    Ok(p) => {
                        prepared.push(p);
                        outcomes.push(None);
                    }
                    Err(e) => outcomes.push(Some(FileScan::Failed(e))),
                }
            }
        }
    }
    if profile && engine.is_some() {
        profile_cache_summary();
    }
    // The CLI owns its detectors, so score on them directly: at jobs = 1
    // this skips the per-call model clone entirely (same scores either
    // way). A typed internal scoring error marks every prepared file failed
    // instead of panicking the process.
    let mut scored: Vec<Vec<ScanReport>> = Vec::with_capacity(detectors.len());
    let mut scoring_err: Option<ScanError> = None;
    for (_, det) in detectors.iter_mut() {
        match score_prepared_mut(det, &prepared, jobs) {
            Ok(reports) => scored.push(reports),
            Err(e) => {
                scoring_err = Some(e);
                break;
            }
        }
    }
    if let Some(e) = scoring_err {
        let outcomes: Vec<FileScan> = outcomes
            .into_iter()
            .map(|o| o.unwrap_or(FileScan::Failed(e.clone())))
            .collect();
        return finish_scan(
            &files,
            &outcomes,
            &mut detectors[0].1,
            as_json,
            top,
            profile,
            trace_out.as_deref(),
        );
    }
    // Per prepared file: a lone member's report passes straight through; an
    // ensemble combines the members' reports into one vote. The model label
    // and explanations attach afterwards, identically on both paths (the
    // ensemble explains through its first member, like the server).
    let mut per_file: Vec<Result<ScanReport, ScanError>> = Vec::with_capacity(prepared.len());
    if detectors.len() == 1 {
        per_file.extend(scored.remove(0).into_iter().map(Ok));
    } else {
        for pi in 0..prepared.len() {
            let members: Vec<(String, ScanReport)> = detectors
                .iter()
                .zip(&scored)
                .map(|((name, _), reports)| (name.clone(), reports[pi].clone()))
                .collect();
            per_file.push(combine_ensemble(&members));
        }
    }
    for report in per_file.iter_mut().flatten() {
        report.model = model_label.clone();
        if explain {
            attach_explanations(&mut detectors[0].1, report);
        }
    }
    let mut reports = per_file.into_iter();
    let outcomes: Vec<FileScan> = outcomes
        .into_iter()
        .map(|o| {
            o.unwrap_or_else(|| match reports.next() {
                Some(Ok(report)) => FileScan::Scanned(report),
                Some(Err(e)) => FileScan::Failed(e),
                None => FileScan::Failed(ScanError::Internal(
                    "no report produced for prepared file".into(),
                )),
            })
        })
        .collect();
    finish_scan(
        &files,
        &outcomes,
        &mut detectors[0].1,
        as_json,
        top,
        profile,
        trace_out.as_deref(),
    )
}

/// Prints scan outcomes (JSON or human), emits traces, and maps failures to
/// the exit code.
fn finish_scan(
    files: &[String],
    outcomes: &[FileScan],
    detector: &mut Detector,
    as_json: bool,
    top: usize,
    profile: bool,
    trace_out: Option<&str>,
) -> Result<(), CliError> {
    if as_json {
        // One JSON array, one element per file, same report schema as the
        // server; "clean" (scanned, no findings) is distinct from "error".
        let docs: Vec<Json> = files
            .iter()
            .zip(outcomes)
            .map(|(file, outcome)| match outcome {
                FileScan::Scanned(report) => report.to_json(file),
                FileScan::Failed(e) => sevuldet::error_json(file, e),
                FileScan::Unreadable(msg) => Json::obj(vec![
                    ("name", Json::str(file.as_str())),
                    ("status", Json::str("error")),
                    ("error", Json::str(msg.as_str())),
                ]),
            })
            .collect();
        println!("{}", Json::Arr(docs));
    } else {
        for (file, outcome) in files.iter().zip(outcomes) {
            match outcome {
                FileScan::Unreadable(msg) => eprintln!("{file}: not scanned: {msg}"),
                FileScan::Failed(e) => eprintln!("{file}: not scanned: {e}"),
                FileScan::Scanned(report) => print_human_report(file, report, detector, top),
            }
        }
    }

    emit_trace(profile, trace_out)?;
    let failures = outcomes
        .iter()
        .filter(|o| !matches!(o, FileScan::Scanned(_)))
        .count();
    if failures > 0 {
        return Err(CliError::Other(format!(
            "{failures}/{} file(s) could not be scanned",
            files.len()
        )));
    }
    Ok(())
}

fn print_human_report(file: &str, report: &ScanReport, detector: &mut Detector, top: usize) {
    if report.findings.is_empty() {
        // "Clean" is a scan result, not an error: keep the machine-greppable
        // `gadgets flagged` summary line even with nothing to report.
        println!("{file}: clean — no special tokens");
        println!(
            "\n0/0 gadgets flagged in {file} (threshold {})",
            report.threshold
        );
        return;
    }
    for f in &report.findings {
        if f.flagged {
            println!(
                "{file}:{}: [{}] `{}` p={:.3}  ** potentially vulnerable **",
                f.line, f.category, f.name, f.score
            );
            if top > 0 {
                for r in top_tokens(detector, &f.tokens, top) {
                    println!("      attention {:>6.1}%  {}", r.percent, r.token);
                }
            }
        } else {
            println!(
                "{file}:{}: [{}] `{}` p={:.3}",
                f.line, f.category, f.name, f.score
            );
        }
    }
    println!(
        "\n{}/{} gadgets flagged in {file} (threshold {})",
        report.flagged(),
        report.gadgets(),
        report.threshold
    );
}

/// Parses `--io threads|eventloop` (default: the platform default — the
/// epoll event loop on Linux, threads elsewhere).
fn io_model_flag(args: &[String]) -> Result<server::IoModel, CliError> {
    match flag(args, "--io").as_deref() {
        None => Ok(server::IoModel::default()),
        Some("threads") => Ok(server::IoModel::Threads),
        Some("eventloop") => Ok(server::IoModel::EventLoop),
        Some(other) => Err(CliError::Usage(format!(
            "bad --io `{other}` (expected threads or eventloop)"
        ))),
    }
}

/// Parses `--shard i/N` fleet identity (0-based index, total count).
fn shard_flag(args: &[String]) -> Result<Option<(u32, u32)>, CliError> {
    let Some(v) = flag(args, "--shard") else {
        return Ok(None);
    };
    let bad = || CliError::Usage(format!("bad --shard `{v}` (expected i/N with 0 <= i < N)"));
    let (i, n) = v.split_once('/').ok_or_else(bad)?;
    let i: u32 = i.parse().map_err(|_| bad())?;
    let n: u32 = n.parse().map_err(|_| bad())?;
    if i >= n || n == 0 {
        return Err(bad());
    }
    Ok(Some((i, n)))
}

fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    check_args(args).map_err(CliError::Usage)?;
    let specs = model_specs(args)?;
    if specs.is_empty() {
        return Err(CliError::Usage(
            "serve needs --model <path> (repeatable as --model NAME=PATH)".into(),
        ));
    }
    let defaults = ServeConfig::default();
    let cfg = ServeConfig {
        addr: flag(args, "--addr").unwrap_or_else(|| "127.0.0.1:8080".to_string()),
        workers: parse_flag(args, "--workers", 2).map_err(CliError::Usage)?,
        max_batch: parse_flag(args, "--max-batch", 8).map_err(CliError::Usage)?,
        queue_cap: parse_flag(args, "--queue-cap", 64).map_err(CliError::Usage)?,
        inner_jobs: parse_flag(args, "--jobs", 1).map_err(CliError::Usage)?,
        deadline: Duration::from_millis(
            parse_flag(args, "--deadline-ms", 10_000).map_err(CliError::Usage)?,
        ),
        cache_dir: cache_dir_setting(args)?,
        cache_max_bytes: parse_flag(args, "--cache-max-bytes", 0).map_err(CliError::Usage)?,
        io_model: io_model_flag(args)?,
        shard: shard_flag(args)?,
        max_connections: parse_flag(args, "--max-conns", defaults.max_connections)
            .map_err(CliError::Usage)?,
        header_deadline: Duration::from_millis(
            parse_flag(
                args,
                "--header-deadline-ms",
                defaults.header_deadline.as_millis() as u64,
            )
            .map_err(CliError::Usage)?,
        ),
        degraded_queue_pct: parse_flag(args, "--degraded-queue-pct", defaults.degraded_queue_pct)
            .map_err(CliError::Usage)?,
        ..defaults
    };
    let precision = precision_flag(args)?;
    let spec_paths: Vec<(String, PathBuf)> = specs
        .iter()
        .map(|(n, p)| (n.clone(), PathBuf::from(p)))
        .collect();
    let mut registry = MultiRegistry::open(&spec_paths, precision)?;
    if let Some(entries) = split_flag(args)? {
        registry.set_split(&entries)?;
    }
    let model_list = specs
        .iter()
        .map(|(n, p)| format!("{n}={p}"))
        .collect::<Vec<_>>()
        .join(", ");
    let handle =
        server::start(cfg, registry).map_err(|e| CliError::Bind(format!("binding server: {e}")))?;
    signal::install();
    eprintln!(
        "sevuldet-serve listening on http://{} (models {model_list}, precision {precision}; POST /scan, POST /reload, GET /metrics, GET /healthz)",
        handle.addr()
    );
    while !signal::termination_requested() {
        std::thread::sleep(Duration::from_millis(100));
    }
    eprintln!("shutdown requested — draining scan queue ...");
    handle.shutdown();
    eprintln!("drained; bye");
    Ok(())
}

/// `sevuldet balance --shards a,b,c` — the fleet front end: consistent-hash
/// routes `/scan` by source digest (keeping each shard's artifact cache
/// hot), round-robins everything else, broadcasts `/reload`, and ejects
/// shards whose `/healthz` stops answering.
#[cfg(target_os = "linux")]
fn cmd_balance(args: &[String]) -> Result<(), CliError> {
    use sevuldet_serve::balancer::{self, BalancerConfig};
    check_args(args).map_err(CliError::Usage)?;
    let shards: Vec<String> = flag(args, "--shards")
        .ok_or_else(|| CliError::Usage("balance needs --shards addr1,addr2,...".into()))?
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if shards.is_empty() {
        return Err(CliError::Usage("balance needs at least one shard".into()));
    }
    let defaults = BalancerConfig::default();
    let cfg = BalancerConfig {
        addr: flag(args, "--addr").unwrap_or_else(|| "127.0.0.1:8080".to_string()),
        shards,
        health_interval: Duration::from_millis(
            parse_flag(args, "--health-interval-ms", 500).map_err(CliError::Usage)?,
        ),
        fail_after: parse_flag(args, "--fail-after", defaults.fail_after)
            .map_err(CliError::Usage)?,
        recover_after: parse_flag(args, "--recover-after", defaults.recover_after)
            .map_err(CliError::Usage)?,
        forwarders: parse_flag(args, "--forwarders", defaults.forwarders)
            .map_err(CliError::Usage)?,
        connect_timeout: Duration::from_millis(
            parse_flag(args, "--connect-timeout-ms", 1_000).map_err(CliError::Usage)?,
        ),
        backend_timeout: Duration::from_millis(
            parse_flag(args, "--backend-timeout-ms", 30_000).map_err(CliError::Usage)?,
        ),
        header_deadline: Duration::from_millis(
            parse_flag(
                args,
                "--header-deadline-ms",
                defaults.header_deadline.as_millis() as u64,
            )
            .map_err(CliError::Usage)?,
        ),
        max_connections: parse_flag(args, "--max-conns", defaults.max_connections)
            .map_err(CliError::Usage)?,
        hedge_after: match flag(args, "--hedge-after") {
            Some(spec) => Some(spec.parse().map_err(CliError::Usage)?),
            None => defaults.hedge_after,
        },
        shed_inflight: parse_flag(args, "--shed-inflight", defaults.shed_inflight)
            .map_err(CliError::Usage)?,
        retry_backoff: Duration::from_millis(
            parse_flag(
                args,
                "--retry-backoff-ms",
                defaults.retry_backoff.as_millis() as u64,
            )
            .map_err(CliError::Usage)?,
        ),
    };
    let n = cfg.shards.len();
    let handle =
        balancer::start(cfg).map_err(|e| CliError::Bind(format!("starting balancer: {e}")))?;
    signal::install();
    eprintln!(
        "sevuldet-balance listening on http://{} fronting {n} shard(s) (hash-routed POST /scan, broadcast POST /reload, GET /metrics, GET /healthz)",
        handle.addr()
    );
    while !signal::termination_requested() {
        std::thread::sleep(Duration::from_millis(100));
    }
    eprintln!("shutdown requested — draining ...");
    handle.shutdown();
    eprintln!("drained; bye");
    Ok(())
}

#[cfg(not(target_os = "linux"))]
fn cmd_balance(_args: &[String]) -> Result<(), CliError> {
    Err(CliError::Usage(
        "balance requires Linux (the balancer fronts clients with the epoll event loop)".into(),
    ))
}

/// `sevuldet cache <stats|clear|verify> --cache-dir DIR` — inspect and
/// maintain the persistent artifact store. Exit codes follow the global
/// scheme: `2` for usage mistakes, `3` for I/O failures, and `verify`
/// exits `4` when any entry is damaged (after listing every one).
fn cmd_cache(args: &[String]) -> Result<(), CliError> {
    check_args(args).map_err(CliError::Usage)?;
    let subs = positionals(args);
    let sub = subs
        .first()
        .ok_or_else(|| CliError::Usage("cache needs a subcommand: stats, clear, or verify".into()))?
        .as_str();
    let dir = cache_dir_setting(args)?.ok_or_else(|| {
        CliError::Usage("cache needs --cache-dir <dir> (or SEVULDET_CACHE_DIR)".into())
    })?;
    let store = ArtifactStore::open(&dir, 0)
        .map_err(|e| CliError::Io(format!("opening cache dir {}: {e}", dir.display())))?;
    match sub {
        "stats" => {
            let s = store.stats();
            println!(
                "{}: {} entr{}, {} bytes",
                dir.display(),
                s.entries,
                if s.entries == 1 { "y" } else { "ies" },
                s.bytes
            );
            Ok(())
        }
        "clear" => {
            let s = store
                .clear()
                .map_err(|e| CliError::Io(format!("clearing {}: {e}", dir.display())))?;
            println!(
                "removed {} entr{} ({} bytes)",
                s.entries,
                if s.entries == 1 { "y" } else { "ies" },
                s.bytes
            );
            Ok(())
        }
        "verify" => {
            let results = store.verify();
            let mut bad = 0usize;
            for (name, status) in &results {
                match status {
                    EntryStatus::Ok => println!("{name}: ok"),
                    EntryStatus::Stale(why) => {
                        bad += 1;
                        println!("{name}: stale ({why})");
                    }
                    EntryStatus::Corrupt(why) => {
                        bad += 1;
                        println!("{name}: corrupt ({why})");
                    }
                    EntryStatus::Unreadable(why) => {
                        bad += 1;
                        println!("{name}: unreadable ({why})");
                    }
                }
            }
            println!(
                "{} entr{} checked, {bad} bad",
                results.len(),
                if results.len() == 1 { "y" } else { "ies" }
            );
            if bad > 0 {
                // Damaged entries are self-healing on the scan path (they
                // recompute); verify still reports them loudly.
                return Err(CliError::Corrupt(format!(
                    "{bad} damaged cache entr{} under {}",
                    if bad == 1 { "y" } else { "ies" },
                    dir.display()
                )));
            }
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown cache subcommand `{other}` (expected stats, clear, or verify)"
        ))),
    }
}

fn cmd_gadgets(args: &[String]) -> Result<(), CliError> {
    check_args(args).map_err(CliError::Usage)?;
    let files = positionals(args);
    let file = files
        .first()
        .ok_or_else(|| CliError::Usage("gadgets needs a <file.c>".into()))?
        .to_string();
    let kind = if has_flag(args, "--classic") {
        GadgetKind::Classic
    } else {
        GadgetKind::PathSensitive
    };
    let source =
        std::fs::read_to_string(&file).map_err(|e| CliError::Io(format!("reading {file}: {e}")))?;
    let program = sevuldet_lang::parse(&source).map_err(|e| CliError::Other(e.to_string()))?;
    let analysis = ProgramAnalysis::analyze(&program);
    let specials = find_special_tokens(&program, &analysis);
    let gadget_spec = GadgetSpec::path_sensitive();
    for st in &specials {
        let gadget = build_gadget(&program, &analysis, st, kind, &gadget_spec.slice_config());
        println!("{gadget}\n");
    }
    println!("{} gadgets ({kind:?})", specials.len());
    Ok(())
}
