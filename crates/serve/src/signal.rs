//! Minimal SIGINT/SIGTERM notification without any signal-handling crate:
//! the handler just sets a process-global atomic flag, which the CLI's
//! supervision loop polls to start a graceful drain.
//!
//! The handler body is a single relaxed atomic store — async-signal-safe.
//! On non-Unix targets installation is a no-op and shutdown happens via the
//! programmatic [`crate::ServerHandle::shutdown`] path only.

use std::sync::atomic::{AtomicBool, Ordering};

static TERMINATION_REQUESTED: AtomicBool = AtomicBool::new(false);

/// Whether SIGINT or SIGTERM arrived since [`install`].
pub fn termination_requested() -> bool {
    TERMINATION_REQUESTED.load(Ordering::Relaxed)
}

/// Test/support hook: request termination as if a signal had arrived.
pub fn request_termination() {
    TERMINATION_REQUESTED.store(true, Ordering::Relaxed);
}

/// Installs the SIGINT and SIGTERM handlers (idempotent).
#[cfg(unix)]
pub fn install() {
    use std::os::raw::c_int;
    // `signal(2)` from the C runtime Rust already links against; no crate.
    extern "C" {
        fn signal(signum: c_int, handler: extern "C" fn(c_int)) -> usize;
    }
    extern "C" fn on_signal(_signum: c_int) {
        TERMINATION_REQUESTED.store(true, Ordering::Relaxed);
    }
    const SIGINT: c_int = 2;
    const SIGTERM: c_int = 15;
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

/// No signals to install on non-Unix targets.
#[cfg(not(unix))]
pub fn install() {}
