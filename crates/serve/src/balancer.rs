//! The fleet front end: `sevuldet balance` runs one of these in front of N
//! `sevuldet serve --shard i/N` processes.
//!
//! Client connections ride the same epoll event loop as the single-process
//! server (`crate::eventloop`), so the balancer itself holds 10k+ open
//! connections on one thread. Completed requests are routed:
//!
//! * `POST /scan` — **consistent-hash** by the sha-256 digest of the
//!   request's `source` field, so repeated scans of the same file always
//!   land on the same shard and its `sevuldet-query` artifact cache stays
//!   hot (a request whose body does not parse falls back to round-robin;
//!   the shard answers it `400` exactly as it would have locally);
//! * `POST /reload` — **broadcast** to every healthy shard, with an
//!   aggregated JSON answer (`200` only when every shard reloads);
//! * `GET /healthz`, `GET /metrics` — answered by the balancer itself
//!   (fleet health summary and routing counters);
//! * everything else — **round-robin** over healthy shards, so probes and
//!   unknown paths get the shard's own byte-identical answer.
//!
//! ## Fault tolerance
//!
//! `/scan` is a pure function of its body, which makes retries safe by
//! construction; the forwarding plane exploits that everywhere:
//!
//! * **Per-request failover** — a connect failure, I/O error, backend
//!   timeout, `429`, or `5xx` from a shard re-routes the request to the
//!   next distinct healthy shard in ring order (round-robin order for
//!   unhashed requests), with jittered exponential backoff between the
//!   later attempts, always within the request's remaining deadline.
//! * **Deadline budget** — the client's `X-Deadline-Ms` (capped at
//!   `backend_timeout`, which is also the budget when the header is
//!   absent) is decremented by elapsed queue/connect/retry time before
//!   every forward; an exhausted budget answers `504` locally, so retries
//!   can never stack past the client's deadline.
//! * **Circuit breaking** — every request outcome (not just the probe
//!   loop) feeds a per-shard closed/open/half-open breaker: `fail_after`
//!   consecutive passive failures — or probe failures — open it and eject
//!   the shard from both rotations immediately; probe successes then walk
//!   it through half-open back to closed after `recover_after`. A probe
//!   success never masks passive failures, so a shard that accepts
//!   connections but stops answering (frozen worker) still gets ejected.
//! * **Hedged requests** — with `hedge_after` set, a `/scan` whose primary
//!   shard stays silent past the threshold (a fixed delay or a tracked
//!   latency percentile) races a second shard; the first answer wins and
//!   the loser is discarded, cutting tail latency under a slow shard.
//! * **Brownout** — past `shed_inflight` forwards in flight the balancer
//!   degrades instead of failing: requests marked `X-Sevuldet-Priority:
//!   low` are shed locally with a typed `503`, every `/scan` is shed past
//!   twice the threshold, and `/healthz` reports `"degraded"` (still
//!   `200`) so operators see the brownout before clients do.
//!
//! A health thread still polls each shard's `/healthz` on an interval as
//! the recovery path (and as a backstop for shards that never take
//! traffic). A draining shard (`503` from `/healthz`) counts as failed,
//! which is what makes rolling restarts invisible to clients.
//!
//! Forwarding is done by a small pool of blocking forwarder threads, each
//! holding one keep-alive connection per shard.

use crate::eventloop::{
    start_event_loop, Completer, CompleterSource, EventLoopHandle, Handler, LoopConfig, Response,
};
use crate::http::Request;
use crate::metrics::ConnCounters;
use sevuldet::{sha256_hex, Json};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Virtual nodes per shard on the consistent-hash ring. More points mean a
/// smoother keyspace split and smaller reshuffles on ejection.
const VNODES: usize = 64;

/// Recent `/scan` latencies kept for percentile-based hedging.
const LATENCY_WINDOW: usize = 512;

/// Fewest window samples before a percentile hedge threshold is trusted.
const LATENCY_MIN_SAMPLES: usize = 32;

/// When to launch a hedged second attempt for a silent `/scan` primary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HedgeAfter {
    /// A fixed silence budget.
    Fixed(Duration),
    /// A quantile (e.g. `0.99`) of the balancer's rolling latency window;
    /// hedging stays off until the window has enough samples.
    Percentile(f64),
}

impl std::str::FromStr for HedgeAfter {
    type Err = String;

    /// `"80"` → fixed 80 ms; `"p99"` / `"p99.9"` → that latency percentile.
    fn from_str(s: &str) -> Result<HedgeAfter, String> {
        if let Some(q) = s.strip_prefix('p') {
            let pct: f64 = q
                .parse()
                .map_err(|_| format!("bad hedge percentile `{s}`"))?;
            if !(0.0..100.0).contains(&pct) {
                return Err(format!("hedge percentile `{s}` outside (0, 100)"));
            }
            Ok(HedgeAfter::Percentile(pct / 100.0))
        } else {
            let ms: u64 = s
                .parse()
                .map_err(|_| format!("bad hedge delay `{s}` (want ms or pXX)"))?;
            Ok(HedgeAfter::Fixed(Duration::from_millis(ms)))
        }
    }
}

/// Balancer tunables.
#[derive(Debug, Clone)]
pub struct BalancerConfig {
    /// Bind address for the client-facing listener (`:0` picks a port).
    pub addr: String,
    /// Shard addresses, e.g. `["127.0.0.1:9001", "127.0.0.1:9002"]`.
    pub shards: Vec<String>,
    /// How often each shard's `/healthz` is polled.
    pub health_interval: Duration,
    /// Consecutive failures (probe or passive) before the breaker opens.
    pub fail_after: u32,
    /// Consecutive successes before an open breaker closes again.
    pub recover_after: u32,
    /// Blocking forwarder threads (each keeps one connection per shard).
    pub forwarders: usize,
    /// TCP connect timeout towards a shard.
    pub connect_timeout: Duration,
    /// Per-attempt read timeout towards a shard; also the deadline budget
    /// for requests that carry no `X-Deadline-Ms`.
    pub backend_timeout: Duration,
    /// Client header deadline (`408` past it), as on the serve loop.
    pub header_deadline: Duration,
    /// Open client connection cap.
    pub max_connections: usize,
    /// Hedged-request trigger for `/scan`; `None` disables hedging.
    pub hedge_after: Option<HedgeAfter>,
    /// In-flight forwards before the brownout starts shedding low-priority
    /// requests (`0` disables shedding).
    pub shed_inflight: usize,
    /// Base delay for jittered exponential backoff between failovers.
    pub retry_backoff: Duration,
}

impl Default for BalancerConfig {
    fn default() -> Self {
        BalancerConfig {
            addr: "127.0.0.1:8080".to_string(),
            shards: Vec::new(),
            health_interval: Duration::from_millis(500),
            fail_after: 2,
            recover_after: 2,
            forwarders: 8,
            connect_timeout: Duration::from_secs(1),
            backend_timeout: Duration::from_secs(30),
            header_deadline: Duration::from_secs(5),
            max_connections: 16_384,
            hedge_after: None,
            shed_inflight: 1024,
            retry_backoff: Duration::from_millis(10),
        }
    }
}

/// How a request was routed (the `mode` label on the routed counter).
#[derive(Debug, Clone, Copy)]
enum RouteMode {
    Hash,
    RoundRobin,
    Broadcast,
}

/// Circuit-breaker position; the numeric values are the
/// `sevuldet_balancer_breaker_state` gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    Closed = 0,
    Open = 1,
    HalfOpen = 2,
}

/// Per-shard breaker bookkeeping. Passive (real-traffic) and probe failure
/// streaks are tracked separately so a probe success cannot launder away
/// passive timeouts from a frozen shard, while a lone passive blip months
/// apart still cannot accumulate into an ejection.
#[derive(Debug)]
struct BreakerCore {
    state: BreakerState,
    passive_fails: u32,
    probe_fails: u32,
    oks: u32,
}

impl BreakerCore {
    fn new() -> BreakerCore {
        BreakerCore {
            state: BreakerState::Closed,
            passive_fails: 0,
            probe_fails: 0,
            oks: 0,
        }
    }
}

/// Per-shard routing/health counters.
struct ShardStats {
    addr: String,
    routed_hash: AtomicU64,
    routed_rr: AtomicU64,
    routed_broadcast: AtomicU64,
    ejections: AtomicU64,
    healthy: AtomicBool,
    breaker: Mutex<BreakerCore>,
}

impl ShardStats {
    fn new(addr: String) -> ShardStats {
        ShardStats {
            addr,
            routed_hash: AtomicU64::new(0),
            routed_rr: AtomicU64::new(0),
            routed_broadcast: AtomicU64::new(0),
            ejections: AtomicU64::new(0),
            // Optimistic start: shards are routable until the health thread
            // finds otherwise, so a balancer started moments before its
            // fleet does not blackhole the first interval.
            healthy: AtomicBool::new(true),
            breaker: Mutex::new(BreakerCore::new()),
        }
    }

    fn count_routed(&self, mode: RouteMode) {
        let c = match mode {
            RouteMode::Hash => &self.routed_hash,
            RouteMode::RoundRobin => &self.routed_rr,
            RouteMode::Broadcast => &self.routed_broadcast,
        };
        c.fetch_add(1, Ordering::Relaxed);
    }

    fn breaker_state(&self) -> BreakerState {
        self.breaker.lock().unwrap_or_else(|e| e.into_inner()).state
    }
}

/// Everything the handler, health thread, and forwarders share.
struct Fleet {
    cfg: BalancerConfig,
    shards: Vec<ShardStats>,
    /// Consistent-hash ring over *healthy* shards: `(point, shard index)`
    /// sorted by point. Rebuilt on every health transition.
    ring: RwLock<Vec<(u64, usize)>>,
    /// Round-robin cursor.
    rr_next: AtomicUsize,
    /// Client-facing response statuses (the balancer's own `/metrics`).
    responses: [AtomicU64; 6],
    conn: ConnCounters,
    draining: Arc<AtomicBool>,
    /// Forwards accepted but not yet answered (brownout signal).
    inflight: AtomicI64,
    /// Extra attempts of any kind (stale-conn reconnects + failovers).
    retries: AtomicU64,
    /// Attempts that moved the request to a different shard.
    failovers: AtomicU64,
    hedges_launched: AtomicU64,
    hedges_won: AtomicU64,
    /// Requests shed locally by the brownout.
    shed: AtomicU64,
    /// `504`s answered locally on an exhausted deadline budget.
    deadline_local: AtomicU64,
    /// Recent `/scan` latencies (nanos) for percentile hedging.
    latency_window: Mutex<VecDeque<u64>>,
    /// Where forwarders enqueue hedge legs — a dedicated channel with its
    /// own forwarder pool, so hedges never starve behind saturated primary
    /// forwarders. Cleared at shutdown so the channel can actually close
    /// (forwarders must not own a `Sender`).
    hedge_tx: Mutex<Option<Sender<ForwardJob>>>,
}

impl Fleet {
    fn healthy_indices(&self) -> Vec<usize> {
        (0..self.shards.len())
            .filter(|&i| self.shards[i].healthy.load(Ordering::SeqCst))
            .collect()
    }

    fn rebuild_ring(&self) {
        let mut ring = Vec::new();
        for i in self.healthy_indices() {
            for v in 0..VNODES {
                ring.push((hash_point(&format!("{}#{v}", self.shards[i].addr)), i));
            }
        }
        ring.sort_unstable();
        *self.ring.write().unwrap_or_else(|e| e.into_inner()) = ring;
    }

    /// The shard owning `key` on the ring, or `None` with no healthy shard.
    fn route_hash(&self, key: u64) -> Option<usize> {
        let ring = self.ring.read().unwrap_or_else(|e| e.into_inner());
        if ring.is_empty() {
            return None;
        }
        let at = ring.partition_point(|&(p, _)| p < key);
        Some(if at == ring.len() {
            ring[0].1
        } else {
            ring[at].1
        })
    }

    fn route_rr(&self) -> Option<usize> {
        let healthy = self.healthy_indices();
        if healthy.is_empty() {
            return None;
        }
        let n = self.rr_next.fetch_add(1, Ordering::Relaxed);
        Some(healthy[n % healthy.len()])
    }

    /// The next distinct healthy shard for a failover or hedge: ring-order
    /// successor of `key` (round-robin order without one) skipping shards
    /// already `tried`.
    fn next_candidate(&self, key: Option<u64>, tried: &[usize]) -> Option<usize> {
        match key {
            Some(k) => {
                let ring = self.ring.read().unwrap_or_else(|e| e.into_inner());
                if ring.is_empty() {
                    return None;
                }
                let start = ring.partition_point(|&(p, _)| p < k);
                for off in 0..ring.len() {
                    let (_, s) = ring[(start + off) % ring.len()];
                    if !tried.contains(&s) && self.shards[s].healthy.load(Ordering::SeqCst) {
                        return Some(s);
                    }
                }
                None
            }
            None => {
                let healthy = self.healthy_indices();
                if healthy.is_empty() {
                    return None;
                }
                let n = self.rr_next.fetch_add(1, Ordering::Relaxed) % healthy.len();
                (0..healthy.len())
                    .map(|off| healthy[(n + off) % healthy.len()])
                    .find(|s| !tried.contains(s))
            }
        }
    }

    /// Feeds one request or probe outcome into the shard's breaker,
    /// ejecting / readmitting and rebuilding the ring on transitions.
    fn record_outcome(&self, shard: usize, ok: bool, from_probe: bool) {
        let s = &self.shards[shard];
        let mut changed = false;
        {
            let mut b = s.breaker.lock().unwrap_or_else(|e| e.into_inner());
            if ok {
                match b.state {
                    BreakerState::Closed => {
                        // A probe success must not clear *passive* failures:
                        // a frozen shard keeps answering probes while real
                        // requests time out.
                        if from_probe {
                            b.probe_fails = 0;
                        } else {
                            b.passive_fails = 0;
                        }
                    }
                    BreakerState::Open | BreakerState::HalfOpen => {
                        b.state = BreakerState::HalfOpen;
                        b.oks += 1;
                        if b.oks >= self.cfg.recover_after {
                            *b = BreakerCore::new();
                            s.healthy.store(true, Ordering::SeqCst);
                            changed = true;
                        }
                    }
                }
            } else {
                b.oks = 0;
                match b.state {
                    BreakerState::Closed => {
                        if from_probe {
                            b.probe_fails += 1;
                        } else {
                            b.passive_fails += 1;
                        }
                        if b.probe_fails >= self.cfg.fail_after
                            || b.passive_fails >= self.cfg.fail_after
                        {
                            b.state = BreakerState::Open;
                            b.passive_fails = 0;
                            b.probe_fails = 0;
                            s.healthy.store(false, Ordering::SeqCst);
                            s.ejections.fetch_add(1, Ordering::Relaxed);
                            changed = true;
                        }
                    }
                    BreakerState::HalfOpen => b.state = BreakerState::Open,
                    BreakerState::Open => {}
                }
            }
        }
        if changed {
            self.rebuild_ring();
        }
    }

    fn observe_latency(&self, latency: Duration) {
        let mut w = self
            .latency_window
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if w.len() >= LATENCY_WINDOW {
            w.pop_front();
        }
        w.push_back(latency.as_nanos() as u64);
    }

    /// The silence budget before a hedge launches, or `None` when hedging
    /// is off (or a percentile threshold has too little signal yet).
    fn hedge_delay(&self) -> Option<Duration> {
        match self.cfg.hedge_after? {
            HedgeAfter::Fixed(d) => Some(d),
            HedgeAfter::Percentile(q) => {
                let w = self
                    .latency_window
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                if w.len() < LATENCY_MIN_SAMPLES {
                    return None;
                }
                let mut v: Vec<u64> = w.iter().copied().collect();
                drop(w);
                v.sort_unstable();
                let idx = ((v.len() as f64 * q) as usize).min(v.len() - 1);
                Some(Duration::from_nanos(v[idx]).max(Duration::from_millis(1)))
            }
        }
    }

    fn count_response(&self, status: u16) {
        let idx = match status {
            200..=299 => 0,
            400..=499 => 1,
            500..=599 => 2,
            _ => 3,
        };
        self.responses[idx].fetch_add(1, Ordering::Relaxed);
    }

    fn render_metrics(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "# HELP sevuldet_balancer_routed_total Requests routed to each shard, by routing mode.\n\
             # TYPE sevuldet_balancer_routed_total counter\n",
        );
        for s in &self.shards {
            for (mode, c) in [
                ("hash", &s.routed_hash),
                ("rr", &s.routed_rr),
                ("broadcast", &s.routed_broadcast),
            ] {
                out.push_str(&format!(
                    "sevuldet_balancer_routed_total{{shard=\"{}\",mode=\"{mode}\"}} {}\n",
                    s.addr,
                    c.load(Ordering::Relaxed)
                ));
            }
        }
        out.push_str(
            "# HELP sevuldet_balancer_ejections_total Breaker ejections per shard (probe or passive).\n\
             # TYPE sevuldet_balancer_ejections_total counter\n",
        );
        for s in &self.shards {
            out.push_str(&format!(
                "sevuldet_balancer_ejections_total{{shard=\"{}\"}} {}\n",
                s.addr,
                s.ejections.load(Ordering::Relaxed)
            ));
        }
        out.push_str(
            "# HELP sevuldet_balancer_shard_healthy Whether each shard is currently in rotation.\n\
             # TYPE sevuldet_balancer_shard_healthy gauge\n",
        );
        for s in &self.shards {
            out.push_str(&format!(
                "sevuldet_balancer_shard_healthy{{shard=\"{}\"}} {}\n",
                s.addr,
                if s.healthy.load(Ordering::SeqCst) {
                    1
                } else {
                    0
                }
            ));
        }
        out.push_str(
            "# HELP sevuldet_balancer_breaker_state Circuit breaker per shard (0 closed, 1 open, 2 half-open).\n\
             # TYPE sevuldet_balancer_breaker_state gauge\n",
        );
        for s in &self.shards {
            out.push_str(&format!(
                "sevuldet_balancer_breaker_state{{shard=\"{}\"}} {}\n",
                s.addr,
                s.breaker_state() as u8
            ));
        }
        out.push_str(
            "# HELP sevuldet_balancer_retries_total Extra forward attempts (stale reconnects + failovers).\n\
             # TYPE sevuldet_balancer_retries_total counter\n",
        );
        out.push_str(&format!(
            "sevuldet_balancer_retries_total {}\n",
            self.retries.load(Ordering::Relaxed)
        ));
        out.push_str(
            "# HELP sevuldet_balancer_failovers_total Attempts re-routed to a different shard.\n\
             # TYPE sevuldet_balancer_failovers_total counter\n",
        );
        out.push_str(&format!(
            "sevuldet_balancer_failovers_total {}\n",
            self.failovers.load(Ordering::Relaxed)
        ));
        out.push_str(
            "# HELP sevuldet_balancer_hedges_total Hedged second attempts, by outcome.\n\
             # TYPE sevuldet_balancer_hedges_total counter\n",
        );
        out.push_str(&format!(
            "sevuldet_balancer_hedges_total{{outcome=\"launched\"}} {}\n",
            self.hedges_launched.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "sevuldet_balancer_hedges_total{{outcome=\"won\"}} {}\n",
            self.hedges_won.load(Ordering::Relaxed)
        ));
        out.push_str(
            "# HELP sevuldet_balancer_shed_total Requests shed locally by the brownout.\n\
             # TYPE sevuldet_balancer_shed_total counter\n",
        );
        out.push_str(&format!(
            "sevuldet_balancer_shed_total {}\n",
            self.shed.load(Ordering::Relaxed)
        ));
        out.push_str(
            "# HELP sevuldet_balancer_deadline_local_total 504s answered locally on an exhausted deadline budget.\n\
             # TYPE sevuldet_balancer_deadline_local_total counter\n",
        );
        out.push_str(&format!(
            "sevuldet_balancer_deadline_local_total {}\n",
            self.deadline_local.load(Ordering::Relaxed)
        ));
        out.push_str(
            "# HELP sevuldet_balancer_inflight Forwards accepted but not yet answered.\n\
             # TYPE sevuldet_balancer_inflight gauge\n",
        );
        out.push_str(&format!(
            "sevuldet_balancer_inflight {}\n",
            self.inflight.load(Ordering::Relaxed)
        ));
        out.push_str(
            "# HELP sevuldet_balancer_responses_total Client-facing responses by status class.\n\
             # TYPE sevuldet_balancer_responses_total counter\n",
        );
        for (i, class) in ["2xx", "4xx", "5xx", "other"].iter().enumerate() {
            out.push_str(&format!(
                "sevuldet_balancer_responses_total{{class=\"{class}\"}} {}\n",
                self.responses[i].load(Ordering::Relaxed)
            ));
        }
        self.conn.render(&mut out);
        out
    }
}

/// A point on the ring: the first 16 hex digits of a sha-256, as u64.
fn hash_point(s: &str) -> u64 {
    u64::from_str_radix(&sha256_hex(s.as_bytes())[..16], 16).unwrap_or(0)
}

/// The slice of a client request the forwarders re-serialize per attempt
/// (the deadline header is recomputed each time, so it cannot be baked in).
#[derive(Clone)]
struct ForwardReq {
    method: String,
    path: String,
    content_type: Option<String>,
    body: Vec<u8>,
}

impl ForwardReq {
    fn from_request(req: &Request) -> ForwardReq {
        ForwardReq {
            method: req.method.clone(),
            path: req.path.clone(),
            content_type: req.header("content-type").map(str::to_string),
            body: req.body.clone(),
        }
    }
}

/// The one-shot response slot a request's primary and hedge legs race for.
type Winner = Arc<Mutex<Option<Completer>>>;

fn winner_taken(winner: &Winner) -> bool {
    winner.lock().unwrap_or_else(|e| e.into_inner()).is_none()
}

/// Takes the completer (first caller wins) and settles the inflight gauge.
fn claim(fleet: &Fleet, winner: &Winner) -> Option<Completer> {
    let c = winner.lock().unwrap_or_else(|e| e.into_inner()).take();
    if c.is_some() {
        fleet.inflight.fetch_sub(1, Ordering::Relaxed);
    }
    c
}

/// One forwarded request, handed to the forwarder pool.
struct ForwardJob {
    shard: usize,
    mode: RouteMode,
    /// Hash-ring key for `/scan` (failovers walk its successors).
    key: Option<u64>,
    req: ForwardReq,
    /// Absolute client deadline; every attempt, backoff, and hedge stays
    /// inside it.
    deadline: Instant,
    /// Shards already attempted by this leg (a hedge starts with the
    /// primary listed, so it never duplicates it).
    tried: Vec<usize>,
    winner: Winner,
    is_hedge: bool,
    enqueued: Instant,
}

/// A running balancer.
pub struct BalancerHandle {
    addr: SocketAddr,
    fleet: Arc<Fleet>,
    event_loop: Option<EventLoopHandle>,
    health_thread: Option<JoinHandle<()>>,
    forwarder_threads: Vec<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
    jobs_tx: Option<Sender<ForwardJob>>,
}

impl BalancerHandle {
    /// The actual bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stop accepting, answer in-flight forwards, stop
    /// the health thread and forwarders.
    pub fn shutdown(mut self) {
        self.fleet.draining.store(true, Ordering::SeqCst);
        self.stop.store(true, Ordering::SeqCst);
        if let Some(lh) = self.event_loop.take() {
            lh.wake.wake();
            let _ = lh.thread.join();
        }
        // Drop every sender — the fleet's hedge sender included — so the
        // channel closes and the forwarder loops end once drained; every
        // in-flight job still answers (into a dead loop, harmlessly).
        *self
            .fleet
            .hedge_tx
            .lock()
            .unwrap_or_else(|e| e.into_inner()) = None;
        drop(self.jobs_tx.take());
        for t in self.forwarder_threads.drain(..) {
            let _ = t.join();
        }
        if let Some(t) = self.health_thread.take() {
            let _ = t.join();
        }
    }
}

/// Binds the client listener and spawns the loop, health, and forwarder
/// threads.
///
/// # Errors
///
/// Propagates bind failures; an empty shard list is `InvalidInput`.
pub fn start(cfg: BalancerConfig) -> std::io::Result<BalancerHandle> {
    if cfg.shards.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "balancer needs at least one shard address",
        ));
    }
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let _ = crate::sys::raise_nofile_limit();

    let fleet = Arc::new(Fleet {
        shards: cfg.shards.iter().cloned().map(ShardStats::new).collect(),
        ring: RwLock::new(Vec::new()),
        rr_next: AtomicUsize::new(0),
        responses: Default::default(),
        conn: ConnCounters::default(),
        draining: Arc::new(AtomicBool::new(false)),
        inflight: AtomicI64::new(0),
        retries: AtomicU64::new(0),
        failovers: AtomicU64::new(0),
        hedges_launched: AtomicU64::new(0),
        hedges_won: AtomicU64::new(0),
        shed: AtomicU64::new(0),
        deadline_local: AtomicU64::new(0),
        latency_window: Mutex::new(VecDeque::new()),
        hedge_tx: Mutex::new(None),
        cfg,
    });
    fleet.rebuild_ring();

    let (jobs_tx, jobs_rx) = mpsc::channel::<ForwardJob>();
    let jobs_rx = Arc::new(Mutex::new(jobs_rx));
    let mut forwarder_threads: Vec<JoinHandle<()>> = (0..fleet.cfg.forwarders.max(1))
        .map(|i| {
            let fleet = fleet.clone();
            let rx = jobs_rx.clone();
            std::thread::Builder::new()
                .name(format!("svd-forward-{i}"))
                .spawn(move || forwarder_loop(&fleet, &rx))
                .expect("spawn forwarder")
        })
        .collect();

    // Hedge legs get their own channel and pool. Sharing the primary pool
    // would let a saturated fleet (every forwarder blocked reading a slow
    // shard) starve the very hedges meant to race those slow reads — the
    // hedge would only start once a primary finished, defeating it.
    let (hedge_jobs_tx, hedge_jobs_rx) = mpsc::channel::<ForwardJob>();
    *fleet.hedge_tx.lock().unwrap_or_else(|e| e.into_inner()) = Some(hedge_jobs_tx);
    let hedge_jobs_rx = Arc::new(Mutex::new(hedge_jobs_rx));
    forwarder_threads.extend((0..fleet.cfg.forwarders.max(1)).map(|i| {
        let fleet = fleet.clone();
        let rx = hedge_jobs_rx.clone();
        std::thread::Builder::new()
            .name(format!("svd-hedge-{i}"))
            .spawn(move || forwarder_loop(&fleet, &rx))
            .expect("spawn hedge forwarder")
    }));

    let stop = Arc::new(AtomicBool::new(false));
    let health_thread = {
        let fleet = fleet.clone();
        let stop = stop.clone();
        std::thread::Builder::new()
            .name("svd-health".to_string())
            .spawn(move || health_loop(&fleet, &stop))
            .expect("spawn health thread")
    };

    let handler = Arc::new(BalancerHandler {
        fleet: fleet.clone(),
        jobs_tx: jobs_tx.clone(),
    });
    let loop_cfg = LoopConfig {
        header_deadline: fleet.cfg.header_deadline,
        max_connections: fleet.cfg.max_connections,
        drain_grace: Duration::from_secs(30),
        sock_buf_bytes: None,
    };
    let lh = start_event_loop(listener, handler, fleet.draining.clone(), loop_cfg)?;

    Ok(BalancerHandle {
        addr,
        fleet,
        event_loop: Some(lh),
        health_thread: Some(health_thread),
        forwarder_threads,
        stop: stop.clone(),
        jobs_tx: Some(jobs_tx),
    })
}

/// The deadline budget a client request gets: its `X-Deadline-Ms`, capped
/// at twice `backend_timeout` (which is also the default without the
/// header). Two backend timeouts — not one — so that a request whose
/// first shard times out (the slow/frozen-shard scenario) still has a
/// full attempt's budget left to fail over with; each individual attempt
/// is still bounded by `backend_timeout`.
fn budget(req: &Request, cfg: &BalancerConfig) -> Duration {
    let cap = cfg.backend_timeout * 2;
    req.header("x-deadline-ms")
        .and_then(|v| v.trim().parse::<u64>().ok())
        .map(Duration::from_millis)
        .map_or(cap, |d| d.min(cap))
}

/// The event loop's view of the balancer.
struct BalancerHandler {
    fleet: Arc<Fleet>,
    jobs_tx: Sender<ForwardJob>,
}

impl BalancerHandler {
    /// Queues a forward towards `shard`, or answers 503 when the pool is
    /// gone (shutdown race).
    fn forward(
        &self,
        shard: usize,
        mode: RouteMode,
        key: Option<u64>,
        req: &Request,
        completer: Completer,
    ) {
        let now = Instant::now();
        self.fleet.shards[shard].count_routed(mode);
        self.fleet.inflight.fetch_add(1, Ordering::Relaxed);
        let job = ForwardJob {
            shard,
            mode,
            key,
            req: ForwardReq::from_request(req),
            deadline: now + budget(req, &self.fleet.cfg),
            tried: Vec::new(),
            winner: Arc::new(Mutex::new(Some(completer))),
            is_hedge: false,
            enqueued: now,
        };
        if let Err(mpsc::SendError(job)) = self.jobs_tx.send(job) {
            if let Some(c) = claim(&self.fleet, &job.winner) {
                c.complete(Response::error(503, "balancer draining"));
            }
        }
    }

    /// Brownout check: past `shed_inflight` forwards in flight, shed
    /// low-priority requests locally; past twice that, shed this request
    /// regardless. Returns the shed response, or `None` to proceed.
    fn maybe_shed(&self, req: &Request) -> Option<Response> {
        let threshold = self.fleet.cfg.shed_inflight;
        if threshold == 0 {
            return None;
        }
        let inflight = self.fleet.inflight.load(Ordering::Relaxed);
        if inflight < threshold as i64 {
            return None;
        }
        let low = req
            .header("x-sevuldet-priority")
            .is_some_and(|v| v.trim().eq_ignore_ascii_case("low"));
        if low || inflight >= 2 * threshold as i64 {
            self.fleet.shed.fetch_add(1, Ordering::Relaxed);
            return Some(Response::error(503, "shed under overload (brownout)"));
        }
        None
    }
}

impl Handler for BalancerHandler {
    fn handle(&self, req: &Request, completer: CompleterSource<'_>) -> Option<Response> {
        match (req.method.as_str(), req.path.as_str()) {
            ("POST", "/scan") => {
                if let Some(shed) = self.maybe_shed(req) {
                    return Some(shed);
                }
                // Hash-route by source digest so one file's repeat scans
                // always hit the same shard's warm cache. A body the
                // balancer cannot read falls back to round-robin: the
                // shard produces the byte-identical 400 the single-process
                // server would.
                let key = std::str::from_utf8(&req.body)
                    .ok()
                    .and_then(|text| Json::parse(text).ok())
                    .and_then(|doc| doc.get("source").and_then(Json::as_str).map(str::to_string))
                    .map(|source| hash_point(&sha256_hex(source.as_bytes())));
                let (shard, mode) = match key {
                    Some(key) => (self.fleet.route_hash(key), RouteMode::Hash),
                    None => (self.fleet.route_rr(), RouteMode::RoundRobin),
                };
                let Some(shard) = shard else {
                    return Some(Response::error(503, "no healthy shards"));
                };
                self.forward(shard, mode, key, req, completer.take());
                None
            }
            ("POST", "/reload") => {
                // Broadcast: every healthy shard reloads; the aggregate is
                // 200 only when all of them did.
                let healthy = self.fleet.healthy_indices();
                if healthy.is_empty() {
                    return Some(Response::error(503, "no healthy shards"));
                }
                let completer = completer.take();
                let fleet = self.fleet.clone();
                let freq = ForwardReq::from_request(req);
                for &i in &healthy {
                    fleet.shards[i].count_routed(RouteMode::Broadcast);
                }
                // Reloads take real time (model load + smoke test) and go
                // to several shards; run the fan-out off the loop thread.
                let spawned = std::thread::Builder::new()
                    .name("svd-broadcast".to_string())
                    .spawn(move || {
                        let resp = broadcast_reload(&fleet, &healthy, &freq);
                        completer.complete(resp);
                    });
                if spawned.is_err() {
                    // The dropped completer answers 503.
                }
                None
            }
            ("GET", "/healthz") => {
                if self.fleet.draining.load(Ordering::SeqCst) {
                    return Some(Response::json(
                        503,
                        Json::obj(vec![("status", Json::str("draining"))]).to_string(),
                    ));
                }
                let healthy = self.fleet.healthy_indices().len();
                let total = self.fleet.shards.len();
                let inflight = self.fleet.inflight.load(Ordering::Relaxed).max(0);
                let threshold = self.fleet.cfg.shed_inflight;
                // Degraded readiness: still serving (200), but either part
                // of the fleet is ejected or the brownout threshold is hit
                // — operators should look before clients notice.
                let browned_out = threshold > 0 && inflight >= threshold as i64;
                let (status, text) = if healthy == 0 {
                    (503, "no healthy shards")
                } else if healthy < total || browned_out {
                    (200, "degraded")
                } else {
                    (200, "ok")
                };
                Some(Response::json(
                    status,
                    Json::obj(vec![
                        ("status", Json::str(text)),
                        ("healthy_shards", Json::Num(healthy as f64)),
                        ("total_shards", Json::Num(total as f64)),
                        ("inflight", Json::Num(inflight as f64)),
                    ])
                    .to_string(),
                ))
            }
            ("GET", "/metrics") => Some(Response {
                status: 200,
                content_type: "text/plain; version=0.0.4".to_string(),
                body: self.fleet.render_metrics().into_bytes(),
                extra: Vec::new(),
            }),
            (_, "/healthz" | "/metrics") => Some(Response::error(405, "method not allowed")),
            _ => {
                // Unknown paths and probe traffic round-robin to a shard,
                // which answers exactly as it would have locally (404s
                // included).
                let Some(shard) = self.fleet.route_rr() else {
                    return Some(Response::error(503, "no healthy shards"));
                };
                self.forward(shard, RouteMode::RoundRobin, None, req, completer.take());
                None
            }
        }
    }

    fn count_response(&self, status: u16) {
        self.fleet.count_response(status);
    }

    fn conn_counters(&self) -> &ConnCounters {
        &self.fleet.conn
    }
}

/// Re-serializes a parsed client request for a shard, propagating the
/// request's *remaining* deadline budget (recomputed per attempt, so
/// retries can never stack past the client's deadline) and the headers
/// that matter, normalizing the rest.
fn serialize_request(req: &ForwardReq, host: &str, deadline_ms: Option<u64>) -> Vec<u8> {
    let mut out = format!(
        "{} {} HTTP/1.1\r\nHost: {host}\r\nContent-Length: {}\r\n",
        req.method,
        req.path,
        req.body.len()
    );
    if let Some(ms) = deadline_ms {
        out.push_str(&format!("X-Deadline-Ms: {ms}\r\n"));
    }
    if let Some(v) = &req.content_type {
        out.push_str(&format!("Content-Type: {v}\r\n"));
    }
    out.push_str("\r\n");
    let mut bytes = out.into_bytes();
    bytes.extend_from_slice(&req.body);
    bytes
}

/// A parsed shard response.
struct ShardResponse {
    status: u16,
    content_type: String,
    body: Vec<u8>,
    /// The shard asked to close the connection (honored by dropping it
    /// from the keep-alive cache).
    close: bool,
}

/// Tries to parse one complete HTTP/1.1 response out of the accumulated
/// buffer. `Ok(None)` means "need more bytes".
fn parse_shard_response(buf: &[u8]) -> std::io::Result<Option<(ShardResponse, usize)>> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") else {
        if buf.len() > 64 * 1024 {
            return Err(bad("shard response head too large"));
        }
        return Ok(None);
    };
    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| bad("non-utf8 response head"))?;
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let mut content_type = "application/json".to_string();
    let mut content_length = 0usize;
    let mut close = false;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-type") {
                content_type = value.to_string();
            } else if name.eq_ignore_ascii_case("content-length") {
                content_length = value.parse().map_err(|_| bad("bad content-length"))?;
            } else if name.eq_ignore_ascii_case("connection") && value.eq_ignore_ascii_case("close")
            {
                close = true;
            }
        }
    }
    if content_length > 16 * 1024 * 1024 {
        return Err(bad("shard response body too large"));
    }
    let total = head_end + 4 + content_length;
    if buf.len() < total {
        return Ok(None);
    }
    Ok(Some((
        ShardResponse {
            status,
            content_type,
            body: buf[head_end + 4..total].to_vec(),
            close,
        },
        total,
    )))
}

/// A pending hedge launch: fire `action` once the clock passes `at`.
struct HedgeFire<'a> {
    at: Instant,
    action: Box<dyn FnOnce() + 'a>,
}

/// Reads one response, accumulating into a buffer in short timeout slices
/// so the wait can observe the attempt deadline, fire a pending hedge, and
/// abandon early once the other leg has answered.
fn read_shard_response(
    conn: &mut TcpStream,
    attempt_deadline: Instant,
    winner: Option<&Winner>,
    hedge: &mut Option<HedgeFire<'_>>,
) -> std::io::Result<ShardResponse> {
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        if let Some(w) = winner {
            if winner_taken(w) {
                return Err(std::io::Error::other("superseded by the other leg"));
            }
        }
        let now = Instant::now();
        if now >= attempt_deadline {
            return Err(std::io::ErrorKind::TimedOut.into());
        }
        if let Some(h) = hedge.as_ref() {
            if now >= h.at {
                let h = hedge.take().expect("hedge present");
                (h.action)();
            }
        }
        let mut slice = (attempt_deadline - now).min(Duration::from_millis(50));
        if let Some(h) = hedge.as_ref() {
            slice = slice.min(h.at - now);
        }
        conn.set_read_timeout(Some(slice.max(Duration::from_millis(1))))?;
        match conn.read(&mut chunk) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "shard closed before responding",
                ))
            }
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if let Some((mut sr, consumed)) = parse_shard_response(&buf)? {
                    // Trailing bytes would desynchronize the keep-alive
                    // connection; never reuse it.
                    sr.close |= consumed != buf.len();
                    return Ok(sr);
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

fn connect(
    addr: &str,
    connect_timeout: Duration,
    read_timeout: Duration,
) -> std::io::Result<TcpStream> {
    let sock_addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "unresolvable shard")
    })?;
    let conn = TcpStream::connect_timeout(&sock_addr, connect_timeout)?;
    conn.set_read_timeout(Some(read_timeout))?;
    conn.set_nodelay(true)?;
    Ok(conn)
}

/// Writes one request and reads one response on a fresh, short-lived
/// connection (probes and reload broadcasts; no hedging, no winner race).
fn forward_blocking(
    conn: &mut TcpStream,
    request: &[u8],
    timeout: Duration,
) -> std::io::Result<ShardResponse> {
    conn.write_all(request)?;
    read_shard_response(conn, Instant::now() + timeout, None, &mut None)
}

/// One forwarder thread: pops jobs and runs each through the failover loop.
fn forwarder_loop(fleet: &Fleet, rx: &Mutex<Receiver<ForwardJob>>) {
    let mut conns: HashMap<usize, TcpStream> = HashMap::new();
    loop {
        let job = {
            let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
            guard.recv()
        };
        let Ok(job) = job else {
            return; // channel closed: shutdown
        };
        handle_job(fleet, &mut conns, job);
    }
}

/// How one forward attempt ended.
enum AttemptOutcome {
    /// The shard produced a complete HTTP response (any status).
    Answered(ShardResponse),
    /// Connect/write/read failure or timeout — failover-eligible.
    Failed,
    /// The other hedge leg already answered the client; stop silently.
    Superseded,
}

/// One attempt against one shard: cached keep-alive connection first, one
/// fresh reconnect when the cached one is stale — and, unlike a stale
/// pooled connection, a failure on the *fresh* connection is a real shard
/// failure that stays eligible for failover instead of surfacing as a
/// balancer error.
fn attempt(
    fleet: &Fleet,
    conns: &mut HashMap<usize, TcpStream>,
    shard: usize,
    request: &[u8],
    deadline: Instant,
    winner: &Winner,
    hedge: &mut Option<HedgeFire<'_>>,
) -> AttemptOutcome {
    let addr = &fleet.shards[shard].addr;
    let attempt_deadline = deadline.min(Instant::now() + fleet.cfg.backend_timeout);
    let try_once = |conn: &mut TcpStream, hedge: &mut Option<HedgeFire<'_>>| {
        conn.write_all(request)
            .and_then(|()| read_shard_response(conn, attempt_deadline, Some(winner), hedge))
    };
    if let Some(mut conn) = conns.remove(&shard) {
        match try_once(&mut conn, hedge) {
            Ok(sr) => {
                if !sr.close {
                    conns.insert(shard, conn);
                }
                return AttemptOutcome::Answered(sr);
            }
            Err(e) if e.kind() == std::io::ErrorKind::TimedOut => {
                // The shard is slow, not the connection stale; retrying the
                // same shard on a fresh socket would just burn the budget.
                return AttemptOutcome::Failed;
            }
            Err(_) if winner_taken(winner) => return AttemptOutcome::Superseded,
            Err(_) => {
                // Stale pooled connection (shard restarted between
                // requests): one fresh reconnect below.
                fleet.retries.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    let remaining = deadline.saturating_duration_since(Instant::now());
    if remaining.is_zero() {
        return AttemptOutcome::Failed;
    }
    let mut conn = match connect(
        addr,
        fleet.cfg.connect_timeout.min(remaining),
        fleet.cfg.backend_timeout,
    ) {
        Ok(c) => c,
        Err(_) => return AttemptOutcome::Failed,
    };
    match try_once(&mut conn, hedge) {
        Ok(sr) => {
            if !sr.close {
                conns.insert(shard, conn);
            }
            AttemptOutcome::Answered(sr)
        }
        Err(_) if winner_taken(winner) => AttemptOutcome::Superseded,
        Err(_) => AttemptOutcome::Failed,
    }
}

/// Cheap per-thread xorshift for backoff jitter (no RNG dependency; the
/// seed only has to differ across threads, not be unpredictable).
fn jitter_rand() -> u64 {
    use std::cell::Cell;
    thread_local! {
        static STATE: Cell<u64> = const { Cell::new(0) };
    }
    STATE.with(|s| {
        let mut x = s.get();
        if x == 0 {
            x = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.subsec_nanos() as u64 + d.as_secs())
                .unwrap_or(0x9e37_79b9)
                | 1;
        }
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        s.set(x);
        x
    })
}

/// Jittered exponential backoff before the `nth` failover (the first is
/// immediate — a reset shard should fail over instantly), never spending
/// more than a fraction of the remaining deadline budget.
fn failover_backoff(fleet: &Fleet, nth: u32, deadline: Instant) {
    if nth < 2 {
        return;
    }
    let base = fleet.cfg.retry_backoff.as_millis().max(1) as u64;
    let full = (base << (nth - 2).min(4)).min(200);
    let jittered = full / 2 + jitter_rand() % (full / 2 + 1);
    let remaining = deadline.saturating_duration_since(Instant::now());
    let sleep = Duration::from_millis(jittered).min(remaining / 4);
    if !sleep.is_zero() {
        std::thread::sleep(sleep);
    }
}

/// Queues the hedge leg for `job` towards the next distinct healthy shard.
fn launch_hedge(fleet: &Fleet, job: &ForwardJob, primary: usize) {
    let tried = vec![primary];
    let Some(shard) = fleet.next_candidate(job.key, &tried) else {
        return;
    };
    let guard = fleet.hedge_tx.lock().unwrap_or_else(|e| e.into_inner());
    let Some(tx) = guard.as_ref() else {
        return; // shutting down
    };
    fleet.hedges_launched.fetch_add(1, Ordering::Relaxed);
    let _ = tx.send(ForwardJob {
        shard,
        mode: job.mode,
        key: job.key,
        req: job.req.clone(),
        deadline: job.deadline,
        tried,
        winner: job.winner.clone(),
        is_hedge: true,
        enqueued: job.enqueued,
    });
}

/// Completes the client's response from a shard answer (first leg wins).
fn deliver(fleet: &Fleet, job: &ForwardJob, shard: usize, sr: ShardResponse) {
    let Some(completer) = claim(fleet, &job.winner) else {
        return;
    };
    if job.is_hedge {
        fleet.hedges_won.fetch_add(1, Ordering::Relaxed);
    }
    if job.req.path == "/scan" && sr.status == 200 {
        fleet.observe_latency(job.enqueued.elapsed());
    }
    let mut resp = Response {
        status: sr.status,
        content_type: sr.content_type,
        body: sr.body,
        extra: vec![(
            "X-Sevuldet-Shard".to_string(),
            fleet.shards[shard].addr.clone(),
        )],
    };
    if let RouteMode::Hash = job.mode {
        resp.extra
            .push(("X-Sevuldet-Route".to_string(), "hash".to_string()));
    }
    completer.complete(resp);
}

/// The failover loop for one request leg: attempt, record the outcome into
/// the breaker, and walk ring successors on retryable failures — all
/// inside the deadline budget, answering a typed local `504` once it is
/// exhausted.
fn handle_job(fleet: &Fleet, conns: &mut HashMap<usize, TcpStream>, mut job: ForwardJob) {
    // Hedging arms only on the primary leg's first attempt, for hashed
    // requests (a hedge of a hedge, or of a failover, would multiply load
    // exactly when the fleet is struggling).
    let hedge_delay = if job.is_hedge || job.key.is_none() {
        None
    } else {
        fleet.hedge_delay()
    };
    let mut shard = job.shard;
    let mut failovers = 0u32;
    loop {
        if winner_taken(&job.winner) {
            return;
        }
        let now = Instant::now();
        let remaining = job.deadline.saturating_duration_since(now);
        if remaining.is_zero() {
            fleet.deadline_local.fetch_add(1, Ordering::Relaxed);
            if let Some(c) = claim(fleet, &job.winner) {
                c.complete(Response::error(
                    504,
                    "deadline exhausted before a shard reply",
                ));
            }
            return;
        }
        let request = serialize_request(
            &job.req,
            &fleet.shards[shard].addr,
            Some((remaining.as_millis() as u64).max(1)),
        );
        let mut hedge = match hedge_delay {
            Some(d) if failovers == 0 => Some(HedgeFire {
                at: now + d,
                action: Box::new(|| launch_hedge(fleet, &job, shard)),
            }),
            _ => None,
        };
        let outcome = attempt(
            fleet,
            conns,
            shard,
            &request,
            job.deadline,
            &job.winner,
            &mut hedge,
        );
        drop(hedge);
        if !job.tried.contains(&shard) {
            job.tried.push(shard);
        }
        let retry_to = |tried: &[usize]| fleet.next_candidate(job.key, tried);
        match outcome {
            AttemptOutcome::Superseded => return,
            AttemptOutcome::Answered(sr) => {
                let server_err = sr.status >= 500;
                fleet.record_outcome(shard, !server_err, false);
                // 5xx and 429 (queue full) are worth another shard — /scan
                // is idempotent and another shard may have capacity; when
                // no failover target remains the shard's own answer goes
                // back to the client (it is a real, typed answer).
                if (server_err || sr.status == 429) && !winner_taken(&job.winner) {
                    if let Some(next) = retry_to(&job.tried) {
                        failovers += 1;
                        fleet.retries.fetch_add(1, Ordering::Relaxed);
                        fleet.failovers.fetch_add(1, Ordering::Relaxed);
                        failover_backoff(fleet, failovers, job.deadline);
                        shard = next;
                        continue;
                    }
                }
                deliver(fleet, &job, shard, sr);
                return;
            }
            AttemptOutcome::Failed => {
                fleet.record_outcome(shard, false, false);
                conns.remove(&shard);
                if let Some(next) = retry_to(&job.tried) {
                    failovers += 1;
                    fleet.retries.fetch_add(1, Ordering::Relaxed);
                    fleet.failovers.fetch_add(1, Ordering::Relaxed);
                    failover_backoff(fleet, failovers, job.deadline);
                    shard = next;
                    continue;
                }
                if let Some(c) = claim(fleet, &job.winner) {
                    c.complete(Response::error(
                        502,
                        "shard unavailable (no failover target)",
                    ));
                }
                return;
            }
        }
    }
}

/// Fans a reload out to every healthy shard (its own short-lived
/// connections; reloads are rare) and aggregates.
fn broadcast_reload(fleet: &Fleet, healthy: &[usize], req: &ForwardReq) -> Response {
    let mut results = Vec::new();
    let mut all_ok = true;
    for &i in healthy {
        let addr = &fleet.shards[i].addr;
        let request = serialize_request(req, addr, None);
        let outcome = connect(addr, fleet.cfg.connect_timeout, fleet.cfg.backend_timeout)
            .and_then(|mut conn| forward_blocking(&mut conn, &request, fleet.cfg.backend_timeout));
        let (status, body) = match outcome {
            Ok(sr) => (sr.status, String::from_utf8(sr.body).unwrap_or_default()),
            Err(e) => (0, format!("{{\"error\":\"{e}\"}}")),
        };
        if status != 200 {
            all_ok = false;
        }
        results.push(Json::obj(vec![
            ("shard", Json::str(addr.as_str())),
            ("status", Json::Num(status as f64)),
            (
                "body",
                Json::parse(&body).unwrap_or_else(|_| Json::str(body.as_str())),
            ),
        ]));
    }
    let status = if all_ok { 200 } else { 502 };
    Response::json(
        status,
        Json::obj(vec![
            ("reloaded", Json::Bool(all_ok)),
            ("shards", Json::Arr(results)),
        ])
        .to_string(),
    )
}

/// The health thread: probes every shard's `/healthz` each interval and
/// feeds the outcomes into the same breakers the forwarders use. Probes
/// are the recovery path for open breakers (an ejected shard takes no
/// traffic, so only probes can walk it back through half-open).
fn health_loop(fleet: &Fleet, stop: &AtomicBool) {
    while !stop.load(Ordering::SeqCst) {
        for (i, shard) in fleet.shards.iter().enumerate() {
            let ok = probe(&shard.addr, fleet.cfg.connect_timeout);
            fleet.record_outcome(i, ok, true);
        }
        // Sleep in small slices so shutdown is prompt.
        let mut slept = Duration::ZERO;
        while slept < fleet.cfg.health_interval && !stop.load(Ordering::SeqCst) {
            let slice = Duration::from_millis(50).min(fleet.cfg.health_interval - slept);
            std::thread::sleep(slice);
            slept += slice;
        }
    }
}

/// One `/healthz` probe. A draining shard (503) counts as down, which is
/// what routes traffic away during a rolling restart.
fn probe(addr: &str, timeout: Duration) -> bool {
    let Ok(mut conn) = connect(addr, timeout, timeout) else {
        return false;
    };
    let req = format!("GET /healthz HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    matches!(
        forward_blocking(&mut conn, req.as_bytes(), timeout),
        Ok(sr) if sr.status == 200
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_fleet(addrs: &[&str]) -> Fleet {
        let fleet = Fleet {
            cfg: BalancerConfig {
                shards: addrs.iter().map(|s| s.to_string()).collect(),
                ..BalancerConfig::default()
            },
            shards: addrs
                .iter()
                .map(|s| ShardStats::new(s.to_string()))
                .collect(),
            ring: RwLock::new(Vec::new()),
            rr_next: AtomicUsize::new(0),
            responses: Default::default(),
            conn: ConnCounters::default(),
            draining: Arc::new(AtomicBool::new(false)),
            inflight: AtomicI64::new(0),
            retries: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            hedges_launched: AtomicU64::new(0),
            hedges_won: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            deadline_local: AtomicU64::new(0),
            latency_window: Mutex::new(VecDeque::new()),
            hedge_tx: Mutex::new(None),
        };
        fleet.rebuild_ring();
        fleet
    }

    #[test]
    fn ring_routes_consistently_and_redistributes_on_ejection() {
        let fleet = test_fleet(&["a:1", "b:1", "c:1"]);

        let keys: Vec<u64> = (0..1000u64)
            .map(|i| hash_point(&format!("key-{i}")))
            .collect();
        let before: Vec<usize> = keys.iter().map(|&k| fleet.route_hash(k).unwrap()).collect();
        // Same key, same shard — every time.
        let again: Vec<usize> = keys.iter().map(|&k| fleet.route_hash(k).unwrap()).collect();
        assert_eq!(before, again);
        // All three shards own some keyspace.
        for shard in 0..3 {
            assert!(before.contains(&shard), "shard {shard} owns no keys");
        }

        // Ejecting shard 1 moves only its keys; everyone else's stay put.
        fleet.shards[1].healthy.store(false, Ordering::SeqCst);
        fleet.rebuild_ring();
        let after: Vec<usize> = keys.iter().map(|&k| fleet.route_hash(k).unwrap()).collect();
        for (i, (&b, &a)) in before.iter().zip(&after).enumerate() {
            if b != 1 {
                assert_eq!(b, a, "key {i} moved although its shard stayed healthy");
            } else {
                assert_ne!(a, 1, "key {i} still routed to the ejected shard");
            }
        }
    }

    #[test]
    fn round_robin_cycles_healthy_shards_only() {
        let fleet = test_fleet(&["a:1", "b:1", "c:1"]);
        fleet.shards[1].healthy.store(false, Ordering::SeqCst);
        let picks: Vec<usize> = (0..6).map(|_| fleet.route_rr().unwrap()).collect();
        assert_eq!(picks, vec![0, 2, 0, 2, 0, 2]);
        fleet.shards[0].healthy.store(false, Ordering::SeqCst);
        fleet.shards[2].healthy.store(false, Ordering::SeqCst);
        assert!(fleet.route_rr().is_none());
    }

    #[test]
    fn failover_candidates_walk_ring_successors_without_repeats() {
        let fleet = test_fleet(&["a:1", "b:1", "c:1", "d:1"]);
        let key = hash_point("some-source-digest");
        let primary = fleet.route_hash(key).unwrap();

        // Walking the ring with a growing `tried` list visits every shard
        // exactly once, starting from the primary.
        let mut tried = Vec::new();
        let mut order = Vec::new();
        while let Some(s) = fleet.next_candidate(Some(key), &tried) {
            order.push(s);
            tried.push(s);
        }
        assert_eq!(order[0], primary, "first candidate must be the ring owner");
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            vec![0, 1, 2, 3],
            "every shard visited once: {order:?}"
        );

        // Unhealthy shards are skipped even when untried.
        fleet.shards[order[1]]
            .healthy
            .store(false, Ordering::SeqCst);
        fleet.rebuild_ring();
        let next = fleet.next_candidate(Some(key), &[order[0]]).unwrap();
        assert_ne!(next, order[1], "ejected shard offered as failover target");

        // Round-robin candidates (no key) also skip tried shards.
        let rr = fleet.next_candidate(None, &[0, 2, 3]).unwrap();
        assert!(
            !fleet.shards[rr].healthy.load(Ordering::SeqCst) || ![0usize, 2, 3].contains(&rr),
            "rr candidate repeated a tried shard"
        );
    }

    #[test]
    fn breaker_opens_on_passive_failures_despite_probe_successes() {
        let fleet = test_fleet(&["a:1", "b:1"]);
        // Probe successes interleaved with passive failures: the frozen
        // shard pattern. Probes must not launder the passive streak.
        fleet.record_outcome(0, false, false);
        fleet.record_outcome(0, true, true);
        assert!(fleet.shards[0].healthy.load(Ordering::SeqCst));
        fleet.record_outcome(0, false, false);
        assert!(
            !fleet.shards[0].healthy.load(Ordering::SeqCst),
            "fail_after=2 passive failures must open the breaker"
        );
        assert_eq!(fleet.shards[0].breaker_state(), BreakerState::Open);
        assert_eq!(fleet.shards[0].ejections.load(Ordering::Relaxed), 1);
        // The ring no longer contains the ejected shard.
        let ring = fleet.ring.read().unwrap();
        assert!(ring.iter().all(|&(_, s)| s != 0));
        drop(ring);

        // Recovery: recover_after successes walk open -> half-open -> closed.
        fleet.record_outcome(0, true, true);
        assert_eq!(fleet.shards[0].breaker_state(), BreakerState::HalfOpen);
        assert!(!fleet.shards[0].healthy.load(Ordering::SeqCst));
        fleet.record_outcome(0, true, true);
        assert_eq!(fleet.shards[0].breaker_state(), BreakerState::Closed);
        assert!(fleet.shards[0].healthy.load(Ordering::SeqCst));

        // A failure while half-open snaps back to open.
        fleet.record_outcome(0, false, true);
        fleet.record_outcome(0, false, true);
        fleet.record_outcome(0, true, true);
        assert_eq!(fleet.shards[0].breaker_state(), BreakerState::HalfOpen);
        fleet.record_outcome(0, false, false);
        assert_eq!(fleet.shards[0].breaker_state(), BreakerState::Open);
    }

    #[test]
    fn breaker_passive_success_clears_passive_streak() {
        let fleet = test_fleet(&["a:1"]);
        // fail, success, fail — never two consecutive: stays closed.
        fleet.record_outcome(0, false, false);
        fleet.record_outcome(0, true, false);
        fleet.record_outcome(0, false, false);
        assert_eq!(fleet.shards[0].breaker_state(), BreakerState::Closed);
        // Same for the probe streak.
        fleet.record_outcome(0, false, true);
        fleet.record_outcome(0, true, true);
        fleet.record_outcome(0, false, true);
        assert_eq!(fleet.shards[0].breaker_state(), BreakerState::Closed);
    }

    #[test]
    fn serialized_requests_carry_remaining_deadline_and_content_type() {
        let freq = ForwardReq {
            method: "POST".to_string(),
            path: "/scan".to_string(),
            content_type: Some("application/json".to_string()),
            body: b"{\"source\":\"int main(){}\"}".to_vec(),
        };
        // The forwarder passes the *remaining* budget, not the client's
        // original header — a second attempt gets a smaller number.
        let bytes = serialize_request(&freq, "127.0.0.1:9001", Some(167));
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("POST /scan HTTP/1.1\r\n"), "{text}");
        assert!(text.contains("Host: 127.0.0.1:9001\r\n"));
        assert!(text.contains("X-Deadline-Ms: 167\r\n"));
        assert!(text.contains("Content-Length: 25\r\n"));
        assert!(text.ends_with("{\"source\":\"int main(){}\"}"));

        let without = String::from_utf8(serialize_request(&freq, "h", None)).unwrap();
        assert!(!without.contains("X-Deadline-Ms"), "{without}");
    }

    #[test]
    fn budget_caps_header_at_twice_backend_timeout() {
        let cfg = BalancerConfig {
            backend_timeout: Duration::from_millis(500),
            ..BalancerConfig::default()
        };
        let req = |headers: Vec<(&str, &str)>| Request {
            method: "POST".to_string(),
            path: "/scan".to_string(),
            headers: headers
                .into_iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            body: Vec::new(),
        };
        assert_eq!(
            budget(&req(vec![("x-deadline-ms", "250")]), &cfg),
            Duration::from_millis(250)
        );
        assert_eq!(
            budget(&req(vec![("x-deadline-ms", "99999")]), &cfg),
            Duration::from_millis(1000),
            "header can lower the budget, never raise it past 2x backend_timeout"
        );
        // Default (no header): room for one full slow attempt plus a
        // failover attempt.
        assert_eq!(budget(&req(vec![]), &cfg), Duration::from_millis(1000));
        assert_eq!(
            budget(&req(vec![("x-deadline-ms", "soon")]), &cfg),
            Duration::from_millis(1000),
            "unparseable header falls back to the default budget"
        );
    }

    #[test]
    fn hedge_after_parses_fixed_and_percentile() {
        assert_eq!(
            "80".parse::<HedgeAfter>().unwrap(),
            HedgeAfter::Fixed(Duration::from_millis(80))
        );
        assert_eq!(
            "p99".parse::<HedgeAfter>().unwrap(),
            HedgeAfter::Percentile(0.99)
        );
        match "p99.9".parse::<HedgeAfter>().unwrap() {
            HedgeAfter::Percentile(q) => assert!((q - 0.999).abs() < 1e-9),
            other => panic!("expected percentile, got {other:?}"),
        }
        assert!("fast".parse::<HedgeAfter>().is_err());
        assert!("p200".parse::<HedgeAfter>().is_err());
    }

    #[test]
    fn hedge_delay_tracks_percentile_window() {
        let mut fleet = test_fleet(&["a:1", "b:1"]);
        fleet.cfg.hedge_after = Some(HedgeAfter::Percentile(0.5));
        assert_eq!(
            fleet.hedge_delay(),
            None,
            "no hedging before the window has signal"
        );
        for i in 0..LATENCY_MIN_SAMPLES as u64 {
            fleet.observe_latency(Duration::from_millis(10 + i % 3));
        }
        let d = fleet.hedge_delay().expect("window primed");
        assert!(
            d >= Duration::from_millis(10) && d <= Duration::from_millis(13),
            "median of a 10-12ms window, got {d:?}"
        );
        fleet.cfg.hedge_after = Some(HedgeAfter::Fixed(Duration::from_millis(40)));
        assert_eq!(fleet.hedge_delay(), Some(Duration::from_millis(40)));
    }

    #[test]
    fn shard_responses_parse_incrementally() {
        let raw =
            b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 2\r\n\r\n{}";
        for cut in 0..raw.len() {
            let step = parse_shard_response(&raw[..cut]).expect("prefix parses");
            assert!(step.is_none(), "prefix of {cut} bytes declared complete");
        }
        let (sr, consumed) = parse_shard_response(raw).unwrap().expect("complete");
        assert_eq!((sr.status, consumed), (200, raw.len()));
        assert_eq!(sr.body, b"{}");
        assert!(!sr.close);
        assert!(parse_shard_response(b"junk\r\n\r\n").is_err());
    }
}
