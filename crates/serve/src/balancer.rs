//! The fleet front end: `sevuldet balance` runs one of these in front of N
//! `sevuldet serve --shard i/N` processes.
//!
//! Client connections ride the same epoll event loop as the single-process
//! server (`crate::eventloop`), so the balancer itself holds 10k+ open
//! connections on one thread. Completed requests are routed:
//!
//! * `POST /scan` — **consistent-hash** by the sha-256 digest of the
//!   request's `source` field, so repeated scans of the same file always
//!   land on the same shard and its `sevuldet-query` artifact cache stays
//!   hot (a request whose body does not parse falls back to round-robin;
//!   the shard answers it `400` exactly as it would have locally);
//! * `POST /reload` — **broadcast** to every healthy shard, with an
//!   aggregated JSON answer (`200` only when every shard reloads);
//! * `GET /healthz`, `GET /metrics` — answered by the balancer itself
//!   (fleet health summary and routing counters);
//! * everything else — **round-robin** over healthy shards, so probes and
//!   unknown paths get the shard's own byte-identical answer.
//!
//! A health thread polls each shard's `/healthz` on an interval:
//! `fail_after` consecutive failures eject a shard from both rotations
//! (consistent-hash points included — its keyspace redistributes), and
//! `recover_after` consecutive successes readmit it. A draining shard
//! (`503` from `/healthz`) counts as failed, which is what makes rolling
//! restarts invisible to clients.
//!
//! Forwarding is done by a small pool of blocking forwarder threads, each
//! holding one keep-alive connection per shard (reconnect-once on a stale
//! connection, then `502 shard unavailable`).

use crate::eventloop::{
    start_event_loop, Completer, CompleterSource, EventLoopHandle, Handler, LoopConfig, Response,
};
use crate::http::Request;
use crate::metrics::ConnCounters;
use sevuldet::{sha256_hex, Json};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Virtual nodes per shard on the consistent-hash ring. More points mean a
/// smoother keyspace split and smaller reshuffles on ejection.
const VNODES: usize = 64;

/// Balancer tunables.
#[derive(Debug, Clone)]
pub struct BalancerConfig {
    /// Bind address for the client-facing listener (`:0` picks a port).
    pub addr: String,
    /// Shard addresses, e.g. `["127.0.0.1:9001", "127.0.0.1:9002"]`.
    pub shards: Vec<String>,
    /// How often each shard's `/healthz` is polled.
    pub health_interval: Duration,
    /// Consecutive probe failures before a shard is ejected.
    pub fail_after: u32,
    /// Consecutive probe successes before an ejected shard is readmitted.
    pub recover_after: u32,
    /// Blocking forwarder threads (each keeps one connection per shard).
    pub forwarders: usize,
    /// TCP connect timeout towards a shard.
    pub connect_timeout: Duration,
    /// Read timeout while waiting for a shard's response.
    pub backend_timeout: Duration,
    /// Client header deadline (`408` past it), as on the serve loop.
    pub header_deadline: Duration,
    /// Open client connection cap.
    pub max_connections: usize,
}

impl Default for BalancerConfig {
    fn default() -> Self {
        BalancerConfig {
            addr: "127.0.0.1:8080".to_string(),
            shards: Vec::new(),
            health_interval: Duration::from_millis(500),
            fail_after: 2,
            recover_after: 2,
            forwarders: 8,
            connect_timeout: Duration::from_secs(1),
            backend_timeout: Duration::from_secs(30),
            header_deadline: Duration::from_secs(5),
            max_connections: 16_384,
        }
    }
}

/// How a request was routed (the `mode` label on the routed counter).
#[derive(Debug, Clone, Copy)]
enum RouteMode {
    Hash,
    RoundRobin,
    Broadcast,
}

/// Per-shard routing/health counters.
struct ShardStats {
    addr: String,
    routed_hash: AtomicU64,
    routed_rr: AtomicU64,
    routed_broadcast: AtomicU64,
    ejections: AtomicU64,
    healthy: AtomicBool,
}

impl ShardStats {
    fn new(addr: String) -> ShardStats {
        ShardStats {
            addr,
            routed_hash: AtomicU64::new(0),
            routed_rr: AtomicU64::new(0),
            routed_broadcast: AtomicU64::new(0),
            ejections: AtomicU64::new(0),
            // Optimistic start: shards are routable until the health thread
            // finds otherwise, so a balancer started moments before its
            // fleet does not blackhole the first interval.
            healthy: AtomicBool::new(true),
        }
    }

    fn count_routed(&self, mode: RouteMode) {
        let c = match mode {
            RouteMode::Hash => &self.routed_hash,
            RouteMode::RoundRobin => &self.routed_rr,
            RouteMode::Broadcast => &self.routed_broadcast,
        };
        c.fetch_add(1, Ordering::Relaxed);
    }
}

/// Everything the handler, health thread, and forwarders share.
struct Fleet {
    cfg: BalancerConfig,
    shards: Vec<ShardStats>,
    /// Consistent-hash ring over *healthy* shards: `(point, shard index)`
    /// sorted by point. Rebuilt on every health transition.
    ring: RwLock<Vec<(u64, usize)>>,
    /// Round-robin cursor.
    rr_next: AtomicUsize,
    /// Client-facing response statuses (the balancer's own `/metrics`).
    responses: [AtomicU64; 6],
    conn: ConnCounters,
    draining: Arc<AtomicBool>,
}

impl Fleet {
    fn healthy_indices(&self) -> Vec<usize> {
        (0..self.shards.len())
            .filter(|&i| self.shards[i].healthy.load(Ordering::SeqCst))
            .collect()
    }

    fn rebuild_ring(&self) {
        let mut ring = Vec::new();
        for i in self.healthy_indices() {
            for v in 0..VNODES {
                ring.push((hash_point(&format!("{}#{v}", self.shards[i].addr)), i));
            }
        }
        ring.sort_unstable();
        *self.ring.write().unwrap_or_else(|e| e.into_inner()) = ring;
    }

    /// The shard owning `key` on the ring, or `None` with no healthy shard.
    fn route_hash(&self, key: u64) -> Option<usize> {
        let ring = self.ring.read().unwrap_or_else(|e| e.into_inner());
        if ring.is_empty() {
            return None;
        }
        let at = ring.partition_point(|&(p, _)| p < key);
        Some(if at == ring.len() {
            ring[0].1
        } else {
            ring[at].1
        })
    }

    fn route_rr(&self) -> Option<usize> {
        let healthy = self.healthy_indices();
        if healthy.is_empty() {
            return None;
        }
        let n = self.rr_next.fetch_add(1, Ordering::Relaxed);
        Some(healthy[n % healthy.len()])
    }

    fn count_response(&self, status: u16) {
        let idx = match status {
            200..=299 => 0,
            400..=499 => 1,
            500..=599 => 2,
            _ => 3,
        };
        self.responses[idx].fetch_add(1, Ordering::Relaxed);
    }

    fn render_metrics(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "# HELP sevuldet_balancer_routed_total Requests routed to each shard, by routing mode.\n\
             # TYPE sevuldet_balancer_routed_total counter\n",
        );
        for s in &self.shards {
            for (mode, c) in [
                ("hash", &s.routed_hash),
                ("rr", &s.routed_rr),
                ("broadcast", &s.routed_broadcast),
            ] {
                out.push_str(&format!(
                    "sevuldet_balancer_routed_total{{shard=\"{}\",mode=\"{mode}\"}} {}\n",
                    s.addr,
                    c.load(Ordering::Relaxed)
                ));
            }
        }
        out.push_str(
            "# HELP sevuldet_balancer_ejections_total Health-check ejections per shard.\n\
             # TYPE sevuldet_balancer_ejections_total counter\n",
        );
        for s in &self.shards {
            out.push_str(&format!(
                "sevuldet_balancer_ejections_total{{shard=\"{}\"}} {}\n",
                s.addr,
                s.ejections.load(Ordering::Relaxed)
            ));
        }
        out.push_str(
            "# HELP sevuldet_balancer_shard_healthy Whether each shard is currently in rotation.\n\
             # TYPE sevuldet_balancer_shard_healthy gauge\n",
        );
        for s in &self.shards {
            out.push_str(&format!(
                "sevuldet_balancer_shard_healthy{{shard=\"{}\"}} {}\n",
                s.addr,
                if s.healthy.load(Ordering::SeqCst) {
                    1
                } else {
                    0
                }
            ));
        }
        out.push_str(
            "# HELP sevuldet_balancer_responses_total Client-facing responses by status class.\n\
             # TYPE sevuldet_balancer_responses_total counter\n",
        );
        for (i, class) in ["2xx", "4xx", "5xx", "other"].iter().enumerate() {
            out.push_str(&format!(
                "sevuldet_balancer_responses_total{{class=\"{class}\"}} {}\n",
                self.responses[i].load(Ordering::Relaxed)
            ));
        }
        self.conn.render(&mut out);
        out
    }
}

/// A point on the ring: the first 16 hex digits of a sha-256, as u64.
fn hash_point(s: &str) -> u64 {
    u64::from_str_radix(&sha256_hex(s.as_bytes())[..16], 16).unwrap_or(0)
}

/// One forwarded request, handed to the forwarder pool.
struct ForwardJob {
    shard: usize,
    mode: RouteMode,
    request: Vec<u8>,
    completer: Completer,
}

/// A running balancer.
pub struct BalancerHandle {
    addr: SocketAddr,
    fleet: Arc<Fleet>,
    event_loop: Option<EventLoopHandle>,
    health_thread: Option<JoinHandle<()>>,
    forwarder_threads: Vec<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
    jobs_tx: Option<Sender<ForwardJob>>,
}

impl BalancerHandle {
    /// The actual bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stop accepting, answer in-flight forwards, stop
    /// the health thread and forwarders.
    pub fn shutdown(mut self) {
        self.fleet.draining.store(true, Ordering::SeqCst);
        self.stop.store(true, Ordering::SeqCst);
        if let Some(lh) = self.event_loop.take() {
            lh.wake.wake();
            let _ = lh.thread.join();
        }
        // Closing the channel ends the forwarder loops once drained; every
        // in-flight job still answers (into a dead loop, harmlessly).
        drop(self.jobs_tx.take());
        for t in self.forwarder_threads.drain(..) {
            let _ = t.join();
        }
        if let Some(t) = self.health_thread.take() {
            let _ = t.join();
        }
    }
}

/// Binds the client listener and spawns the loop, health, and forwarder
/// threads.
///
/// # Errors
///
/// Propagates bind failures; an empty shard list is `InvalidInput`.
pub fn start(cfg: BalancerConfig) -> std::io::Result<BalancerHandle> {
    if cfg.shards.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "balancer needs at least one shard address",
        ));
    }
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let _ = crate::sys::raise_nofile_limit();

    let fleet = Arc::new(Fleet {
        shards: cfg.shards.iter().cloned().map(ShardStats::new).collect(),
        ring: RwLock::new(Vec::new()),
        rr_next: AtomicUsize::new(0),
        responses: Default::default(),
        conn: ConnCounters::default(),
        draining: Arc::new(AtomicBool::new(false)),
        cfg,
    });
    fleet.rebuild_ring();

    let (jobs_tx, jobs_rx) = mpsc::channel::<ForwardJob>();
    let jobs_rx = Arc::new(Mutex::new(jobs_rx));
    let forwarder_threads: Vec<JoinHandle<()>> = (0..fleet.cfg.forwarders.max(1))
        .map(|i| {
            let fleet = fleet.clone();
            let rx = jobs_rx.clone();
            std::thread::Builder::new()
                .name(format!("svd-forward-{i}"))
                .spawn(move || forwarder_loop(&fleet, &rx))
                .expect("spawn forwarder")
        })
        .collect();

    let stop = Arc::new(AtomicBool::new(false));
    let health_thread = {
        let fleet = fleet.clone();
        let stop = stop.clone();
        std::thread::Builder::new()
            .name("svd-health".to_string())
            .spawn(move || health_loop(&fleet, &stop))
            .expect("spawn health thread")
    };

    let handler = Arc::new(BalancerHandler {
        fleet: fleet.clone(),
        jobs_tx: jobs_tx.clone(),
    });
    let loop_cfg = LoopConfig {
        header_deadline: fleet.cfg.header_deadline,
        max_connections: fleet.cfg.max_connections,
        drain_grace: Duration::from_secs(30),
        sock_buf_bytes: None,
    };
    let lh = start_event_loop(listener, handler, fleet.draining.clone(), loop_cfg)?;

    Ok(BalancerHandle {
        addr,
        fleet,
        event_loop: Some(lh),
        health_thread: Some(health_thread),
        forwarder_threads,
        stop: stop.clone(),
        jobs_tx: Some(jobs_tx),
    })
}

/// The event loop's view of the balancer.
struct BalancerHandler {
    fleet: Arc<Fleet>,
    jobs_tx: Sender<ForwardJob>,
}

impl BalancerHandler {
    /// Queues a forward towards `shard`, or answers 503 when the pool is
    /// gone (shutdown race).
    fn forward(&self, shard: usize, mode: RouteMode, req: &Request, completer: Completer) {
        self.fleet.shards[shard].count_routed(mode);
        let job = ForwardJob {
            shard,
            mode,
            request: serialize_request(req, &self.fleet.shards[shard].addr),
            completer,
        };
        if let Err(mpsc::SendError(job)) = self.jobs_tx.send(job) {
            job.completer
                .complete(Response::error(503, "balancer draining"));
        }
    }
}

impl Handler for BalancerHandler {
    fn handle(&self, req: &Request, completer: CompleterSource<'_>) -> Option<Response> {
        match (req.method.as_str(), req.path.as_str()) {
            ("POST", "/scan") => {
                // Hash-route by source digest so one file's repeat scans
                // always hit the same shard's warm cache. A body the
                // balancer cannot read falls back to round-robin: the
                // shard produces the byte-identical 400 the single-process
                // server would.
                let key = std::str::from_utf8(&req.body)
                    .ok()
                    .and_then(|text| Json::parse(text).ok())
                    .and_then(|doc| doc.get("source").and_then(Json::as_str).map(str::to_string))
                    .map(|source| hash_point(&sha256_hex(source.as_bytes())));
                let (shard, mode) = match key {
                    Some(key) => (self.fleet.route_hash(key), RouteMode::Hash),
                    None => (self.fleet.route_rr(), RouteMode::RoundRobin),
                };
                let Some(shard) = shard else {
                    return Some(Response::error(503, "no healthy shards"));
                };
                self.forward(shard, mode, req, completer.take());
                None
            }
            ("POST", "/reload") => {
                // Broadcast: every healthy shard reloads; the aggregate is
                // 200 only when all of them did.
                let healthy = self.fleet.healthy_indices();
                if healthy.is_empty() {
                    return Some(Response::error(503, "no healthy shards"));
                }
                let completer = completer.take();
                let fleet = self.fleet.clone();
                let request = serialize_request(req, "broadcast");
                for &i in &healthy {
                    fleet.shards[i].count_routed(RouteMode::Broadcast);
                }
                // Reloads take real time (model load + smoke test) and go
                // to several shards; run the fan-out off the loop thread.
                let spawned = std::thread::Builder::new()
                    .name("svd-broadcast".to_string())
                    .spawn(move || {
                        let resp = broadcast_reload(&fleet, &healthy, &request);
                        completer.complete(resp);
                    });
                if spawned.is_err() {
                    // The dropped completer answers 503.
                }
                None
            }
            ("GET", "/healthz") => {
                if self.fleet.draining.load(Ordering::SeqCst) {
                    return Some(Response::json(
                        503,
                        Json::obj(vec![("status", Json::str("draining"))]).to_string(),
                    ));
                }
                let healthy = self.fleet.healthy_indices().len();
                let total = self.fleet.shards.len();
                let status = if healthy > 0 { 200 } else { 503 };
                Some(Response::json(
                    status,
                    Json::obj(vec![
                        (
                            "status",
                            Json::str(if healthy > 0 {
                                "ok"
                            } else {
                                "no healthy shards"
                            }),
                        ),
                        ("healthy_shards", Json::Num(healthy as f64)),
                        ("total_shards", Json::Num(total as f64)),
                    ])
                    .to_string(),
                ))
            }
            ("GET", "/metrics") => Some(Response {
                status: 200,
                content_type: "text/plain; version=0.0.4".to_string(),
                body: self.fleet.render_metrics().into_bytes(),
                extra: Vec::new(),
            }),
            (_, "/healthz" | "/metrics") => Some(Response::error(405, "method not allowed")),
            _ => {
                // Unknown paths and probe traffic round-robin to a shard,
                // which answers exactly as it would have locally (404s
                // included).
                let Some(shard) = self.fleet.route_rr() else {
                    return Some(Response::error(503, "no healthy shards"));
                };
                self.forward(shard, RouteMode::RoundRobin, req, completer.take());
                None
            }
        }
    }

    fn count_response(&self, status: u16) {
        self.fleet.count_response(status);
    }

    fn conn_counters(&self) -> &ConnCounters {
        &self.fleet.conn
    }
}

/// Re-serializes a parsed client request for a shard, preserving the
/// headers that matter (deadline propagation) and normalizing the rest.
fn serialize_request(req: &Request, host: &str) -> Vec<u8> {
    let mut out = format!(
        "{} {} HTTP/1.1\r\nHost: {host}\r\nContent-Length: {}\r\n",
        req.method,
        req.path,
        req.body.len()
    );
    if let Some(v) = req.header("x-deadline-ms") {
        out.push_str(&format!("X-Deadline-Ms: {v}\r\n"));
    }
    if let Some(v) = req.header("content-type") {
        out.push_str(&format!("Content-Type: {v}\r\n"));
    }
    out.push_str("\r\n");
    let mut bytes = out.into_bytes();
    bytes.extend_from_slice(&req.body);
    bytes
}

/// A parsed shard response.
struct ShardResponse {
    status: u16,
    content_type: String,
    body: Vec<u8>,
    /// The shard asked to close the connection (honored by dropping it
    /// from the keep-alive cache).
    close: bool,
}

/// One forwarder thread: pops jobs, forwards over cached keep-alive
/// connections (reconnect-once on stale), answers through the completer.
fn forwarder_loop(fleet: &Fleet, rx: &Mutex<Receiver<ForwardJob>>) {
    let mut conns: HashMap<usize, TcpStream> = HashMap::new();
    loop {
        let job = {
            let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
            guard.recv()
        };
        let Ok(job) = job else {
            return; // channel closed: shutdown
        };
        let addr = &fleet.shards[job.shard].addr;
        match forward_with_retry(fleet, &mut conns, job.shard, &job.request) {
            Ok(sr) => {
                let mut resp = Response {
                    status: sr.status,
                    content_type: sr.content_type,
                    body: sr.body,
                    extra: vec![("X-Sevuldet-Shard".to_string(), addr.clone())],
                };
                if let RouteMode::Hash = job.mode {
                    resp.extra
                        .push(("X-Sevuldet-Route".to_string(), "hash".to_string()));
                }
                if sr.close {
                    conns.remove(&job.shard);
                }
                job.completer.complete(resp);
            }
            Err(_) => {
                conns.remove(&job.shard);
                job.completer
                    .complete(Response::error(502, "shard unavailable"));
            }
        }
    }
}

/// Forwards over the cached connection, reconnecting once if the cached one
/// turns out stale (shard restarted between requests).
fn forward_with_retry(
    fleet: &Fleet,
    conns: &mut HashMap<usize, TcpStream>,
    shard: usize,
    request: &[u8],
) -> std::io::Result<ShardResponse> {
    let addr = &fleet.shards[shard].addr;
    if let Some(conn) = conns.get_mut(&shard) {
        if let Ok(resp) = forward_once(conn, request) {
            return Ok(resp);
        }
        conns.remove(&shard);
    }
    let mut conn = connect(addr, fleet.cfg.connect_timeout, fleet.cfg.backend_timeout)?;
    let resp = forward_once(&mut conn, request)?;
    conns.insert(shard, conn);
    Ok(resp)
}

fn connect(
    addr: &str,
    connect_timeout: Duration,
    read_timeout: Duration,
) -> std::io::Result<TcpStream> {
    let sock_addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "unresolvable shard")
    })?;
    let conn = TcpStream::connect_timeout(&sock_addr, connect_timeout)?;
    conn.set_read_timeout(Some(read_timeout))?;
    conn.set_nodelay(true)?;
    Ok(conn)
}

/// Writes one request and reads one response (blocking, bounded by the
/// stream's read timeout).
fn forward_once(conn: &mut TcpStream, request: &[u8]) -> std::io::Result<ShardResponse> {
    conn.write_all(request)?;
    read_response(conn)
}

/// Minimal HTTP/1.1 response reader: status line, headers, content-length
/// body.
fn read_response(conn: &mut TcpStream) -> std::io::Result<ShardResponse> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let mut reader = BufReader::new(conn);
    let mut status_line = String::new();
    if reader.read_line(&mut status_line)? == 0 {
        return Err(bad("shard closed before responding"));
    }
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let mut content_type = "application/json".to_string();
    let mut content_length = 0usize;
    let mut close = false;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(bad("shard closed mid-headers"));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-type") {
                content_type = value.to_string();
            } else if name.eq_ignore_ascii_case("content-length") {
                content_length = value.parse().map_err(|_| bad("bad content-length"))?;
            } else if name.eq_ignore_ascii_case("connection") && value.eq_ignore_ascii_case("close")
            {
                close = true;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(ShardResponse {
        status,
        content_type,
        body,
        close,
    })
}

/// Fans a reload out to every healthy shard (its own short-lived
/// connections; reloads are rare) and aggregates.
fn broadcast_reload(fleet: &Fleet, healthy: &[usize], request: &[u8]) -> Response {
    let mut results = Vec::new();
    let mut all_ok = true;
    for &i in healthy {
        let addr = &fleet.shards[i].addr;
        let outcome = connect(addr, fleet.cfg.connect_timeout, fleet.cfg.backend_timeout)
            .and_then(|mut conn| forward_once(&mut conn, request));
        let (status, body) = match outcome {
            Ok(sr) => (sr.status, String::from_utf8(sr.body).unwrap_or_default()),
            Err(e) => (0, format!("{{\"error\":\"{e}\"}}")),
        };
        if status != 200 {
            all_ok = false;
        }
        results.push(Json::obj(vec![
            ("shard", Json::str(addr.as_str())),
            ("status", Json::Num(status as f64)),
            (
                "body",
                Json::parse(&body).unwrap_or_else(|_| Json::str(body.as_str())),
            ),
        ]));
    }
    let status = if all_ok { 200 } else { 502 };
    Response::json(
        status,
        Json::obj(vec![
            ("reloaded", Json::Bool(all_ok)),
            ("shards", Json::Arr(results)),
        ])
        .to_string(),
    )
}

/// The health thread: probes every shard's `/healthz` each interval and
/// flips rotation membership on `fail_after`/`recover_after` streaks.
fn health_loop(fleet: &Fleet, stop: &AtomicBool) {
    let mut fail_streak = vec![0u32; fleet.shards.len()];
    let mut ok_streak = vec![0u32; fleet.shards.len()];
    while !stop.load(Ordering::SeqCst) {
        let mut changed = false;
        for (i, shard) in fleet.shards.iter().enumerate() {
            let ok = probe(&shard.addr, fleet.cfg.connect_timeout);
            if ok {
                ok_streak[i] += 1;
                fail_streak[i] = 0;
            } else {
                fail_streak[i] += 1;
                ok_streak[i] = 0;
            }
            let healthy = shard.healthy.load(Ordering::SeqCst);
            if healthy && fail_streak[i] >= fleet.cfg.fail_after {
                shard.healthy.store(false, Ordering::SeqCst);
                shard.ejections.fetch_add(1, Ordering::Relaxed);
                changed = true;
            } else if !healthy && ok_streak[i] >= fleet.cfg.recover_after {
                shard.healthy.store(true, Ordering::SeqCst);
                changed = true;
            }
        }
        if changed {
            fleet.rebuild_ring();
        }
        // Sleep in small slices so shutdown is prompt.
        let mut slept = Duration::ZERO;
        while slept < fleet.cfg.health_interval && !stop.load(Ordering::SeqCst) {
            let slice = Duration::from_millis(50).min(fleet.cfg.health_interval - slept);
            std::thread::sleep(slice);
            slept += slice;
        }
    }
}

/// One `/healthz` probe. A draining shard (503) counts as down, which is
/// what routes traffic away during a rolling restart.
fn probe(addr: &str, timeout: Duration) -> bool {
    let Ok(mut conn) = connect(addr, timeout, timeout) else {
        return false;
    };
    let req = format!("GET /healthz HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    if conn.write_all(req.as_bytes()).is_err() {
        return false;
    }
    matches!(read_response(&mut conn), Ok(sr) if sr.status == 200)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_routes_consistently_and_redistributes_on_ejection() {
        let fleet = Fleet {
            cfg: BalancerConfig {
                shards: vec!["a:1".into(), "b:1".into(), "c:1".into()],
                ..BalancerConfig::default()
            },
            shards: vec![
                ShardStats::new("a:1".into()),
                ShardStats::new("b:1".into()),
                ShardStats::new("c:1".into()),
            ],
            ring: RwLock::new(Vec::new()),
            rr_next: AtomicUsize::new(0),
            responses: Default::default(),
            conn: ConnCounters::default(),
            draining: Arc::new(AtomicBool::new(false)),
        };
        fleet.rebuild_ring();

        let keys: Vec<u64> = (0..1000u64)
            .map(|i| hash_point(&format!("key-{i}")))
            .collect();
        let before: Vec<usize> = keys.iter().map(|&k| fleet.route_hash(k).unwrap()).collect();
        // Same key, same shard — every time.
        let again: Vec<usize> = keys.iter().map(|&k| fleet.route_hash(k).unwrap()).collect();
        assert_eq!(before, again);
        // All three shards own some keyspace.
        for shard in 0..3 {
            assert!(before.contains(&shard), "shard {shard} owns no keys");
        }

        // Ejecting shard 1 moves only its keys; everyone else's stay put.
        fleet.shards[1].healthy.store(false, Ordering::SeqCst);
        fleet.rebuild_ring();
        let after: Vec<usize> = keys.iter().map(|&k| fleet.route_hash(k).unwrap()).collect();
        for (i, (&b, &a)) in before.iter().zip(&after).enumerate() {
            if b != 1 {
                assert_eq!(b, a, "key {i} moved although its shard stayed healthy");
            } else {
                assert_ne!(a, 1, "key {i} still routed to the ejected shard");
            }
        }
    }

    #[test]
    fn round_robin_cycles_healthy_shards_only() {
        let fleet = Fleet {
            cfg: BalancerConfig {
                shards: vec!["a:1".into(), "b:1".into(), "c:1".into()],
                ..BalancerConfig::default()
            },
            shards: vec![
                ShardStats::new("a:1".into()),
                ShardStats::new("b:1".into()),
                ShardStats::new("c:1".into()),
            ],
            ring: RwLock::new(Vec::new()),
            rr_next: AtomicUsize::new(0),
            responses: Default::default(),
            conn: ConnCounters::default(),
            draining: Arc::new(AtomicBool::new(false)),
        };
        fleet.shards[1].healthy.store(false, Ordering::SeqCst);
        let picks: Vec<usize> = (0..6).map(|_| fleet.route_rr().unwrap()).collect();
        assert_eq!(picks, vec![0, 2, 0, 2, 0, 2]);
        fleet.shards[0].healthy.store(false, Ordering::SeqCst);
        fleet.shards[2].healthy.store(false, Ordering::SeqCst);
        assert!(fleet.route_rr().is_none());
    }

    #[test]
    fn serialized_requests_carry_deadline_and_content_type() {
        let req = Request {
            method: "POST".to_string(),
            path: "/scan".to_string(),
            headers: vec![
                ("x-deadline-ms".to_string(), "250".to_string()),
                ("content-type".to_string(), "application/json".to_string()),
            ],
            body: b"{\"source\":\"int main(){}\"}".to_vec(),
        };
        let bytes = serialize_request(&req, "127.0.0.1:9001");
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("POST /scan HTTP/1.1\r\n"), "{text}");
        assert!(text.contains("Host: 127.0.0.1:9001\r\n"));
        assert!(text.contains("X-Deadline-Ms: 250\r\n"));
        assert!(text.contains("Content-Length: 25\r\n"));
        assert!(text.ends_with("{\"source\":\"int main(){}\"}"));
    }
}
