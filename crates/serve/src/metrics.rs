//! Server observability: lock-light counters, gauges, and histograms
//! rendered in the Prometheus text exposition format (version 0.0.4) by
//! `GET /metrics`.
//!
//! Everything is updated with relaxed atomics on the hot path; the only
//! lock is around the (tiny, cold) per-status-code response map.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// A fixed-bucket histogram. Observed values are accumulated as cumulative
/// bucket counts at render time; the running sum is kept in fixed-point
/// micro-units so it fits an atomic integer.
#[derive(Debug)]
pub struct Histogram {
    bounds: &'static [f64],
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_micros: AtomicU64,
}

impl Histogram {
    /// A histogram over the given upper bounds (an implicit `+Inf` bucket
    /// is always appended).
    pub fn new(bounds: &'static [f64]) -> Histogram {
        Histogram {
            bounds,
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros
            .fetch_add((v.max(0.0) * 1e6) as u64, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    fn render(&self, out: &mut String, name: &str, help: &str) {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} histogram");
        self.render_series(out, name, None);
    }

    /// One histogram's series, optionally carrying an extra label (e.g.
    /// `stage="nn.conv1"`) merged before `le` — lets several histograms
    /// share one metric name, as the per-stage family does.
    fn render_series(&self, out: &mut String, name: &str, label: Option<&str>) {
        let le = |b: &str| match label {
            Some(l) => format!("{{{l},le=\"{b}\"}}"),
            None => format!("{{le=\"{b}\"}}"),
        };
        let mut cumulative = 0u64;
        for (i, bound) in self.bounds.iter().enumerate() {
            cumulative += self.buckets[i].load(Ordering::Relaxed);
            let _ = writeln!(out, "{name}_bucket{} {cumulative}", le(&bound.to_string()));
        }
        cumulative += self.buckets[self.bounds.len()].load(Ordering::Relaxed);
        let _ = writeln!(out, "{name}_bucket{} {cumulative}", le("+Inf"));
        let sum = self.sum_micros.load(Ordering::Relaxed) as f64 / 1e6;
        let suffix = label.map(|l| format!("{{{l}}}")).unwrap_or_default();
        let _ = writeln!(out, "{name}_sum{suffix} {sum}");
        let _ = writeln!(out, "{name}_count{suffix} {}", self.count());
    }
}

/// The endpoints the request counter is labeled with.
pub const ENDPOINTS: &[&str] = &["scan", "metrics", "reload", "healthz", "other"];

/// Why a connection was closed — the label set of
/// `sevuldet_connections_closed_total`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloseReason {
    /// The peer closed (or reset) the connection.
    PeerClosed,
    /// The server closed after a `Connection: close` response.
    ResponseComplete,
    /// A malformed or unsupported request forced a close after the error
    /// response.
    ProtocolError,
    /// The per-connection header deadline expired mid-request (slow client,
    /// answered 408).
    HeaderTimeout,
    /// The connection was refused because the server was at its
    /// `max_connections` cap.
    OverCapacity,
    /// The server was draining for shutdown.
    Drain,
    /// A socket read or write failed.
    IoError,
}

impl CloseReason {
    /// The metric label value.
    pub fn as_str(self) -> &'static str {
        match self {
            CloseReason::PeerClosed => "peer_closed",
            CloseReason::ResponseComplete => "response_complete",
            CloseReason::ProtocolError => "protocol_error",
            CloseReason::HeaderTimeout => "header_timeout",
            CloseReason::OverCapacity => "over_capacity",
            CloseReason::Drain => "drain",
            CloseReason::IoError => "io_error",
        }
    }

    /// Every reason, in render order.
    pub const ALL: &'static [CloseReason] = &[
        CloseReason::PeerClosed,
        CloseReason::ResponseComplete,
        CloseReason::ProtocolError,
        CloseReason::HeaderTimeout,
        CloseReason::OverCapacity,
        CloseReason::Drain,
        CloseReason::IoError,
    ];
}

/// Connection lifecycle counters, shared by the serving paths (threaded and
/// event loop) and the balancer front end.
#[derive(Debug, Default)]
pub struct ConnCounters {
    /// Currently open connections.
    pub open: AtomicI64,
    /// Connections accepted since startup.
    pub accepted: AtomicU64,
    closed: [AtomicU64; 7],
}

impl ConnCounters {
    /// Counts one accepted connection (and opens the gauge).
    pub fn on_accept(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
        self.open.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one closed connection under `reason` (and closes the gauge).
    pub fn on_close(&self, reason: CloseReason) {
        self.open.fetch_sub(1, Ordering::Relaxed);
        let idx = CloseReason::ALL
            .iter()
            .position(|r| *r == reason)
            .expect("reason in ALL");
        self.closed[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Closed-connection count for one reason.
    pub fn closed(&self, reason: CloseReason) -> u64 {
        let idx = CloseReason::ALL
            .iter()
            .position(|r| *r == reason)
            .expect("reason in ALL");
        self.closed[idx].load(Ordering::Relaxed)
    }

    /// Renders the three `sevuldet_*connection*` series.
    pub fn render(&self, out: &mut String) {
        let _ = writeln!(
            out,
            "# HELP sevuldet_open_connections Currently open client connections."
        );
        let _ = writeln!(out, "# TYPE sevuldet_open_connections gauge");
        let _ = writeln!(
            out,
            "sevuldet_open_connections {}",
            self.open.load(Ordering::Relaxed).max(0)
        );
        let _ = writeln!(
            out,
            "# HELP sevuldet_connections_accepted_total Client connections accepted."
        );
        let _ = writeln!(out, "# TYPE sevuldet_connections_accepted_total counter");
        let _ = writeln!(
            out,
            "sevuldet_connections_accepted_total {}",
            self.accepted.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "# HELP sevuldet_connections_closed_total Client connections closed, by reason."
        );
        let _ = writeln!(out, "# TYPE sevuldet_connections_closed_total counter");
        for (i, reason) in CloseReason::ALL.iter().enumerate() {
            let _ = writeln!(
                out,
                "sevuldet_connections_closed_total{{reason=\"{}\"}} {}",
                reason.as_str(),
                self.closed[i].load(Ordering::Relaxed)
            );
        }
    }
}

/// Per-model serving counters, created lazily the first time a model scores
/// a request (see [`Metrics::model_stats`]).
#[derive(Debug)]
pub struct ModelStats {
    /// Scan requests scored by this model (each ensemble member counts its
    /// own share).
    pub scans: AtomicU64,
    /// Model-forward time of this model's batch groups, seconds.
    pub forward_duration: Histogram,
}

impl Default for ModelStats {
    fn default() -> Self {
        ModelStats {
            scans: AtomicU64::new(0),
            forward_duration: Histogram::new(LATENCY_BOUNDS),
        }
    }
}

/// All server metrics, shared via `Arc` between the accept loop, connection
/// handlers, and batch workers.
#[derive(Debug)]
pub struct Metrics {
    requests: Vec<AtomicU64>,
    responses: Mutex<BTreeMap<u16, u64>>,
    /// Scans rejected because the queue was full (answered 429).
    pub rejected_queue_full: AtomicU64,
    /// Scans whose deadline expired while queued (answered 504).
    pub rejected_deadline: AtomicU64,
    /// Successful model reloads.
    pub reloads: AtomicU64,
    /// Rejected model reloads (missing, corrupt, or invalid candidate); the
    /// previous model kept serving.
    pub reload_failures: AtomicU64,
    /// Forward passes that panicked inside a batch worker and were isolated
    /// by bisection (counted once per caught panic, so a single poison
    /// request in a batch of N increments this ~log2(N) times).
    pub worker_panics: AtomicU64,
    /// Jobs currently waiting in the scan queue.
    pub queue_depth: AtomicI64,
    /// Connection lifecycle counters (accept/open/close-by-reason).
    pub conn: ConnCounters,
    /// Enqueue→scored latency of scan requests, seconds.
    pub scan_latency: Histogram,
    /// Model-forward time of non-empty batches, seconds (the compute slice
    /// of `scan_latency`, without queueing or parsing).
    pub forward_duration: Histogram,
    /// Number of requests coalesced per forward batch.
    pub batch_size: Histogram,
    /// Per-pipeline-stage durations, one histogram per span name, fed by
    /// the trace layer's observer hook (see [`Metrics::observe_stage`]).
    /// Series appear lazily as stages first fire.
    stage_durations: RwLock<BTreeMap<&'static str, Arc<Histogram>>>,
    /// Per-model serving counters, keyed by registry name. Series appear
    /// lazily as models first score.
    per_model: RwLock<BTreeMap<String, Arc<ModelStats>>>,
}

const LATENCY_BOUNDS: &[f64] = &[
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
];
const BATCH_BOUNDS: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];
/// Stage durations range from microseconds (lexing a small source) to
/// seconds (a full forward batch), so the buckets start far below
/// [`LATENCY_BOUNDS`].
const STAGE_BOUNDS: &[f64] = &[0.000001, 0.00001, 0.0001, 0.001, 0.01, 0.1, 1.0, 10.0];

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            requests: ENDPOINTS.iter().map(|_| AtomicU64::new(0)).collect(),
            responses: Mutex::new(BTreeMap::new()),
            rejected_queue_full: AtomicU64::new(0),
            rejected_deadline: AtomicU64::new(0),
            reloads: AtomicU64::new(0),
            reload_failures: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            queue_depth: AtomicI64::new(0),
            conn: ConnCounters::default(),
            scan_latency: Histogram::new(LATENCY_BOUNDS),
            forward_duration: Histogram::new(LATENCY_BOUNDS),
            batch_size: Histogram::new(BATCH_BOUNDS),
            stage_durations: RwLock::new(BTreeMap::new()),
            per_model: RwLock::new(BTreeMap::new()),
        }
    }
}

impl Metrics {
    /// Counts a request against its endpoint label (unknown paths go to
    /// `other`).
    pub fn count_request(&self, endpoint: &str) {
        let idx = ENDPOINTS
            .iter()
            .position(|e| *e == endpoint)
            .unwrap_or(ENDPOINTS.len() - 1);
        self.requests[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one pipeline-stage duration (nanoseconds) against the
    /// stage's histogram, creating it on first sight. This is the trace
    /// observer's target: `server::start` registers
    /// `sevuldet::trace::add_observer` to call it on every span close, so
    /// `/metrics` exports stage costs without span recording being on.
    pub fn observe_stage(&self, stage: &'static str, dur_ns: u64) {
        let secs = dur_ns as f64 / 1e9;
        let existing = {
            let map = self
                .stage_durations
                .read()
                .unwrap_or_else(|e| e.into_inner());
            map.get(stage).cloned()
        };
        match existing {
            Some(h) => h.observe(secs),
            None => self
                .stage_durations
                .write()
                .unwrap_or_else(|e| e.into_inner())
                .entry(stage)
                .or_insert_with(|| Arc::new(Histogram::new(STAGE_BOUNDS)))
                .observe(secs),
        }
    }

    /// The per-model counter block for `name`, created on first use. Batch
    /// workers bump `scans` and observe `forward_duration` through the
    /// returned handle.
    pub fn model_stats(&self, name: &str) -> Arc<ModelStats> {
        {
            let map = self.per_model.read().unwrap_or_else(|e| e.into_inner());
            if let Some(s) = map.get(name) {
                return s.clone();
            }
        }
        self.per_model
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Counts a response by status code.
    pub fn count_response(&self, status: u16) {
        let mut map = self.responses.lock().unwrap_or_else(|e| e.into_inner());
        *map.entry(status).or_insert(0) += 1;
    }

    /// Renders the Prometheus text exposition. `precision` is the serving
    /// precision tier's name (`f64`/`f32`/`int8`), exported as a labeled
    /// info-style gauge so dashboards can tell fast-tier replicas apart.
    /// `models` lists the registry's `(name, version)` pairs in slot order;
    /// they drive the `{model=...}` series (`sevuldet_requests_total`,
    /// `sevuldet_model_version`, `sevuldet_model_forward_duration_seconds`).
    pub fn render(&self, model_version: u64, precision: &str, models: &[(String, u64)]) -> String {
        let mut out = String::with_capacity(2048);
        let w = &mut out;
        let _ = writeln!(
            w,
            "# HELP sevuldet_requests_total HTTP requests received, by endpoint."
        );
        let _ = writeln!(w, "# TYPE sevuldet_requests_total counter");
        for (i, ep) in ENDPOINTS.iter().enumerate() {
            let n = self.requests[i].load(Ordering::Relaxed);
            let _ = writeln!(w, "sevuldet_requests_total{{endpoint=\"{ep}\"}} {n}");
        }
        for (name, _) in models {
            let n = self.model_stats(name).scans.load(Ordering::Relaxed);
            let _ = writeln!(w, "sevuldet_requests_total{{model=\"{name}\"}} {n}");
        }
        let _ = writeln!(
            w,
            "# HELP sevuldet_responses_total HTTP responses sent, by status code."
        );
        let _ = writeln!(w, "# TYPE sevuldet_responses_total counter");
        {
            let map = self.responses.lock().unwrap_or_else(|e| e.into_inner());
            for (code, n) in map.iter() {
                let _ = writeln!(w, "sevuldet_responses_total{{code=\"{code}\"}} {n}");
            }
        }
        let _ = writeln!(
            w,
            "# HELP sevuldet_rejected_total Scan requests rejected before scoring, by reason."
        );
        let _ = writeln!(w, "# TYPE sevuldet_rejected_total counter");
        let _ = writeln!(
            w,
            "sevuldet_rejected_total{{reason=\"queue_full\"}} {}",
            self.rejected_queue_full.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            w,
            "sevuldet_rejected_total{{reason=\"deadline\"}} {}",
            self.rejected_deadline.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            w,
            "# HELP sevuldet_model_reloads_total Successful model hot-reloads."
        );
        let _ = writeln!(w, "# TYPE sevuldet_model_reloads_total counter");
        let _ = writeln!(
            w,
            "sevuldet_model_reloads_total {}",
            self.reloads.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            w,
            "# HELP sevuldet_reload_failures_total Model reloads rejected (old model kept serving)."
        );
        let _ = writeln!(w, "# TYPE sevuldet_reload_failures_total counter");
        let _ = writeln!(
            w,
            "sevuldet_reload_failures_total {}",
            self.reload_failures.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            w,
            "# HELP sevuldet_worker_panics_total Forward passes that panicked in a batch worker and were isolated."
        );
        let _ = writeln!(w, "# TYPE sevuldet_worker_panics_total counter");
        let _ = writeln!(
            w,
            "sevuldet_worker_panics_total {}",
            self.worker_panics.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            w,
            "# HELP sevuldet_checkpoints_written_total Training checkpoints written by this process."
        );
        let _ = writeln!(w, "# TYPE sevuldet_checkpoints_written_total counter");
        let _ = writeln!(
            w,
            "sevuldet_checkpoints_written_total {}",
            sevuldet::checkpoint::checkpoints_written()
        );
        let _ = writeln!(
            w,
            "# HELP sevuldet_model_version Monotonic version of the currently served model."
        );
        let _ = writeln!(w, "# TYPE sevuldet_model_version gauge");
        let _ = writeln!(w, "sevuldet_model_version {model_version}");
        for (name, version) in models {
            let _ = writeln!(w, "sevuldet_model_version{{model=\"{name}\"}} {version}");
        }
        let _ = writeln!(
            w,
            "# HELP sevuldet_precision_tier Serving precision tier (info gauge, always 1)."
        );
        let _ = writeln!(w, "# TYPE sevuldet_precision_tier gauge");
        let _ = writeln!(w, "sevuldet_precision_tier{{tier=\"{precision}\"}} 1");
        let _ = writeln!(w, "# HELP sevuldet_queue_depth Scan jobs currently queued.");
        let _ = writeln!(w, "# TYPE sevuldet_queue_depth gauge");
        let _ = writeln!(
            w,
            "sevuldet_queue_depth {}",
            self.queue_depth.load(Ordering::Relaxed).max(0)
        );
        self.conn.render(w);
        let (ws_hits, ws_misses) = sevuldet::workspace_counters();
        let _ = writeln!(
            w,
            "# HELP sevuldet_workspace_acquires_total Kernel workspace buffer acquisitions, by pool outcome (process-wide)."
        );
        let _ = writeln!(w, "# TYPE sevuldet_workspace_acquires_total counter");
        let _ = writeln!(
            w,
            "sevuldet_workspace_acquires_total{{result=\"hit\"}} {ws_hits}"
        );
        let _ = writeln!(
            w,
            "sevuldet_workspace_acquires_total{{result=\"miss\"}} {ws_misses}"
        );
        let qc = sevuldet_query::counters();
        let _ = writeln!(
            w,
            "# HELP sevuldet_query_cache_hits_total Incremental-query cache hits, by tier (process-wide)."
        );
        let _ = writeln!(w, "# TYPE sevuldet_query_cache_hits_total counter");
        let _ = writeln!(
            w,
            "sevuldet_query_cache_hits_total{{tier=\"memory\"}} {}",
            qc.hits_mem
        );
        let _ = writeln!(
            w,
            "sevuldet_query_cache_hits_total{{tier=\"disk\"}} {}",
            qc.hits_disk
        );
        let _ = writeln!(
            w,
            "sevuldet_query_cache_hits_total{{tier=\"function\"}} {}",
            qc.hits_func
        );
        let _ = writeln!(
            w,
            "# HELP sevuldet_query_cache_misses_total Incremental-query cache misses (full recomputes, process-wide)."
        );
        let _ = writeln!(w, "# TYPE sevuldet_query_cache_misses_total counter");
        let _ = writeln!(w, "sevuldet_query_cache_misses_total {}", qc.misses);
        let _ = writeln!(
            w,
            "# HELP sevuldet_query_cache_evictions_total Cache entries evicted for size pressure (process-wide)."
        );
        let _ = writeln!(w, "# TYPE sevuldet_query_cache_evictions_total counter");
        let _ = writeln!(w, "sevuldet_query_cache_evictions_total {}", qc.evictions);
        let _ = writeln!(
            w,
            "# HELP sevuldet_cache_size_bytes Persistent artifact store size on disk."
        );
        let _ = writeln!(w, "# TYPE sevuldet_cache_size_bytes gauge");
        let _ = writeln!(w, "sevuldet_cache_size_bytes {}", qc.size_bytes);
        self.scan_latency.render(
            w,
            "sevuldet_scan_latency_seconds",
            "Enqueue-to-scored latency of scan requests.",
        );
        self.forward_duration.render(
            w,
            "sevuldet_forward_duration_seconds",
            "Model-forward time of non-empty scan batches.",
        );
        self.batch_size.render(
            w,
            "sevuldet_batch_size",
            "Requests coalesced per forward batch.",
        );
        let _ = writeln!(
            w,
            "# HELP sevuldet_model_forward_duration_seconds Model-forward time per registry model."
        );
        let _ = writeln!(
            w,
            "# TYPE sevuldet_model_forward_duration_seconds histogram"
        );
        {
            let map = self.per_model.read().unwrap_or_else(|e| e.into_inner());
            for (name, _) in models {
                if let Some(stats) = map.get(name) {
                    stats.forward_duration.render_series(
                        w,
                        "sevuldet_model_forward_duration_seconds",
                        Some(&format!("model=\"{name}\"")),
                    );
                }
            }
        }
        let _ = writeln!(
            w,
            "# HELP sevuldet_stage_duration_seconds Pipeline stage durations by trace span name."
        );
        let _ = writeln!(w, "# TYPE sevuldet_stage_duration_seconds histogram");
        {
            let map = self
                .stage_durations
                .read()
                .unwrap_or_else(|e| e.into_inner());
            for (stage, h) in map.iter() {
                h.render_series(
                    w,
                    "sevuldet_stage_duration_seconds",
                    Some(&format!("stage=\"{stage}\"")),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_cumulative() {
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        for v in [0.5, 1.5, 3.0, 100.0] {
            h.observe(v);
        }
        let mut out = String::new();
        h.render(&mut out, "x", "test");
        assert!(out.contains("x_bucket{le=\"1\"} 1"));
        assert!(out.contains("x_bucket{le=\"2\"} 2"));
        assert!(out.contains("x_bucket{le=\"4\"} 3"));
        assert!(out.contains("x_bucket{le=\"+Inf\"} 4"));
        assert!(out.contains("x_count 4"));
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn render_contains_every_series() {
        let m = Metrics::default();
        m.count_request("scan");
        m.count_request("/nonsense");
        m.count_response(200);
        m.count_response(429);
        m.scan_latency.observe(0.02);
        m.forward_duration.observe(0.004);
        m.batch_size.observe(4.0);
        m.queue_depth.store(3, Ordering::Relaxed);
        m.reloads.store(2, Ordering::Relaxed);
        m.reload_failures.store(5, Ordering::Relaxed);
        m.worker_panics.store(1, Ordering::Relaxed);
        m.conn.on_accept();
        m.conn.on_accept();
        m.conn.on_close(CloseReason::PeerClosed);
        m.model_stats("champion").scans.store(9, Ordering::Relaxed);
        m.model_stats("champion").forward_duration.observe(0.003);
        let text = m.render(
            7,
            "int8",
            &[("champion".to_string(), 7), ("challenger".to_string(), 1)],
        );
        for needle in [
            "sevuldet_precision_tier{tier=\"int8\"} 1",
            "sevuldet_requests_total{model=\"champion\"} 9",
            "sevuldet_requests_total{model=\"challenger\"} 0",
            "sevuldet_model_version{model=\"champion\"} 7",
            "sevuldet_model_version{model=\"challenger\"} 1",
            "sevuldet_model_forward_duration_seconds_bucket{model=\"champion\",le=\"0.005\"} 1",
            "sevuldet_model_forward_duration_seconds_count{model=\"champion\"} 1",
            "sevuldet_reload_failures_total 5",
            "sevuldet_worker_panics_total 1",
            "sevuldet_checkpoints_written_total",
            "sevuldet_requests_total{endpoint=\"scan\"} 1",
            "sevuldet_requests_total{endpoint=\"other\"} 1",
            "sevuldet_responses_total{code=\"200\"} 1",
            "sevuldet_responses_total{code=\"429\"} 1",
            "sevuldet_rejected_total{reason=\"queue_full\"} 0",
            "sevuldet_model_reloads_total 2",
            "sevuldet_model_version 7",
            "sevuldet_queue_depth 3",
            "sevuldet_scan_latency_seconds_bucket{le=\"0.025\"} 1",
            "sevuldet_scan_latency_seconds_count 1",
            "sevuldet_forward_duration_seconds_bucket{le=\"0.005\"} 1",
            "sevuldet_forward_duration_seconds_count 1",
            "sevuldet_workspace_acquires_total{result=\"hit\"}",
            "sevuldet_workspace_acquires_total{result=\"miss\"}",
            "sevuldet_query_cache_hits_total{tier=\"memory\"}",
            "sevuldet_query_cache_hits_total{tier=\"disk\"}",
            "sevuldet_query_cache_hits_total{tier=\"function\"}",
            "sevuldet_query_cache_misses_total",
            "sevuldet_query_cache_evictions_total",
            "sevuldet_cache_size_bytes",
            "sevuldet_batch_size_bucket{le=\"4\"} 1",
            "sevuldet_open_connections 1",
            "sevuldet_connections_accepted_total 2",
            "sevuldet_connections_closed_total{reason=\"peer_closed\"} 1",
            "sevuldet_connections_closed_total{reason=\"header_timeout\"} 0",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }

    #[test]
    fn connection_counters_track_accept_and_close_reasons() {
        let c = ConnCounters::default();
        c.on_accept();
        c.on_accept();
        c.on_close(CloseReason::PeerClosed);
        assert_eq!(c.open.load(Ordering::Relaxed), 1);
        assert_eq!(c.accepted.load(Ordering::Relaxed), 2);
        assert_eq!(c.closed(CloseReason::PeerClosed), 1);
        assert_eq!(c.closed(CloseReason::Drain), 0);
        let mut out = String::new();
        c.render(&mut out);
        assert!(out.contains("sevuldet_open_connections 1"));
        assert!(out.contains("sevuldet_connections_closed_total{reason=\"peer_closed\"} 1"));
    }

    #[test]
    fn stage_histograms_render_labeled_series_per_stage() {
        let m = Metrics::default();
        m.observe_stage("serve.forward", 2_000_000); // 2 ms
        m.observe_stage("serve.forward", 40_000_000); // 40 ms
        m.observe_stage("serve.queue_wait", 500); // 0.5 µs
        let text = m.render(1, "f64", &[]);
        for needle in [
            "# TYPE sevuldet_stage_duration_seconds histogram",
            "sevuldet_stage_duration_seconds_bucket{stage=\"serve.forward\",le=\"0.01\"} 1",
            "sevuldet_stage_duration_seconds_bucket{stage=\"serve.forward\",le=\"0.1\"} 2",
            "sevuldet_stage_duration_seconds_bucket{stage=\"serve.forward\",le=\"+Inf\"} 2",
            "sevuldet_stage_duration_seconds_count{stage=\"serve.forward\"} 2",
            "sevuldet_stage_duration_seconds_bucket{stage=\"serve.queue_wait\",le=\"0.000001\"} 1",
            "sevuldet_stage_duration_seconds_count{stage=\"serve.queue_wait\"} 1",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
        // A stage never observed renders nothing under its label.
        assert!(!text.contains("stage=\"nn.forward\""));
    }
}
