//! Thin, std-only wrappers over the handful of Linux syscalls the event
//! loop needs: `epoll` for readiness notification, `setsockopt` for socket
//! buffer tuning (test torture harnesses shrink them to force partial
//! reads/writes), and `setrlimit` so a 10k-connection server can raise its
//! own file-descriptor ceiling.
//!
//! No `libc` crate: like [`crate::signal`], these are `extern "C"`
//! declarations against the C runtime Rust already links on Linux. The
//! module only exists on `target_os = "linux"`; other platforms fall back
//! to the thread-per-connection serving path, which needs none of this.

use std::io;
use std::os::fd::RawFd;
use std::os::raw::{c_int, c_void};

/// Readable readiness (`EPOLLIN`).
pub const EPOLLIN: u32 = 0x001;
/// Writable readiness (`EPOLLOUT`).
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (`EPOLLERR`; always reported, never needs registering).
pub const EPOLLERR: u32 = 0x008;
/// Hangup (`EPOLLHUP`; always reported).
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down its writing half (`EPOLLRDHUP`).
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLL_CLOEXEC: c_int = 0o2000000;

const SOL_SOCKET: c_int = 1;
const SO_RCVBUF: c_int = 8;
const SO_SNDBUF: c_int = 7;

const RLIMIT_NOFILE: c_int = 7;

/// One readiness event, in the kernel's ABI layout. On x86-64 the kernel
/// packs the struct (no padding between `events` and `data`).
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy, Default)]
pub struct EpollEvent {
    /// Bitmask of `EPOLL*` readiness flags.
    pub events: u32,
    /// Caller-chosen token identifying the registered fd.
    pub data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn setsockopt(
        fd: c_int,
        level: c_int,
        optname: c_int,
        optval: *const c_void,
        optlen: u32,
    ) -> c_int;
    fn getrlimit(resource: c_int, rlim: *mut Rlimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const Rlimit) -> c_int;
}

#[repr(C)]
struct Rlimit {
    rlim_cur: u64,
    rlim_max: u64,
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An owned epoll instance. Dropping it closes the kernel object.
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    ///
    /// # Errors
    ///
    /// The raw `epoll_create1` failure, as an [`io::Error`].
    pub fn new() -> io::Result<Epoll> {
        let fd = unsafe { cvt(epoll_create1(EPOLL_CLOEXEC))? };
        Ok(Epoll { fd })
    }

    /// Registers `fd` for the readiness `events`, tagged with `token`.
    ///
    /// # Errors
    ///
    /// The raw `epoll_ctl` failure.
    pub fn add(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, events)
    }

    /// Changes the readiness interest of an already-registered `fd`.
    ///
    /// # Errors
    ///
    /// The raw `epoll_ctl` failure.
    pub fn modify(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, events)
    }

    /// Deregisters `fd`.
    ///
    /// # Errors
    ///
    /// The raw `epoll_ctl` failure.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    fn ctl(&self, op: c_int, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        unsafe { cvt(epoll_ctl(self.fd, op, fd, &mut ev))? };
        Ok(())
    }

    /// Blocks for up to `timeout_ms` (`-1` = forever) and fills `events`
    /// with ready fds, returning how many. `EINTR` is retried internally.
    ///
    /// # Errors
    ///
    /// The raw `epoll_wait` failure (never `EINTR`).
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            let n = unsafe {
                epoll_wait(
                    self.fd,
                    events.as_mut_ptr(),
                    events.len() as c_int,
                    timeout_ms,
                )
            };
            if n >= 0 {
                return Ok(n as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe {
            close(self.fd);
        }
    }
}

/// Shrinks (or grows) a socket's kernel send/receive buffers. The kernel
/// clamps to its own floor (~2304 bytes effective), which is still small
/// enough to force partial reads and writes of multi-kilobyte messages —
/// the EAGAIN-torture tests depend on exactly that.
///
/// # Errors
///
/// The raw `setsockopt` failure.
pub fn set_socket_buffers(fd: RawFd, recv_bytes: usize, send_bytes: usize) -> io::Result<()> {
    for (opt, bytes) in [(SO_RCVBUF, recv_bytes), (SO_SNDBUF, send_bytes)] {
        let val = bytes as c_int;
        unsafe {
            cvt(setsockopt(
                fd,
                SOL_SOCKET,
                opt,
                (&val as *const c_int).cast::<c_void>(),
                std::mem::size_of::<c_int>() as u32,
            ))?;
        }
    }
    Ok(())
}

/// Raises the process's soft open-file limit to its hard limit and returns
/// the resulting soft limit. A server fronting 10k connections needs >10k
/// descriptors; default soft limits (often 1024) would make `accept` fail
/// long before memory or CPU do.
///
/// # Errors
///
/// The raw `getrlimit`/`setrlimit` failure.
pub fn raise_nofile_limit() -> io::Result<u64> {
    let mut lim = Rlimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    unsafe { cvt(getrlimit(RLIMIT_NOFILE, &mut lim))? };
    if lim.rlim_cur < lim.rlim_max {
        lim.rlim_cur = lim.rlim_max;
        unsafe { cvt(setrlimit(RLIMIT_NOFILE, &lim))? };
    }
    Ok(lim.rlim_cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn epoll_reports_readable_sockets_by_token() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let ep = Epoll::new().unwrap();
        ep.add(server.as_raw_fd(), 7, EPOLLIN | EPOLLRDHUP).unwrap();
        let mut events = [EpollEvent::default(); 8];
        // Nothing to read yet: a zero-timeout wait returns no events.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

        client.write_all(b"ping").unwrap();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let ev = events[0];
        assert_eq!({ ev.data }, 7);
        assert_ne!({ ev.events } & EPOLLIN, 0);

        let mut server = server;
        let mut buf = [0u8; 8];
        assert_eq!(server.read(&mut buf).unwrap(), 4);

        // Interest can be modified and removed.
        ep.modify(server.as_raw_fd(), 7, EPOLLIN | EPOLLOUT)
            .unwrap();
        assert!(ep.wait(&mut events, 100).unwrap() >= 1, "EPOLLOUT fires");
        ep.delete(server.as_raw_fd()).unwrap();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn socket_buffers_shrink_and_nofile_raises() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        set_socket_buffers(listener.as_raw_fd(), 1024, 1024).unwrap();
        let soft = raise_nofile_limit().unwrap();
        assert!(soft >= 1024, "soft nofile limit {soft} suspiciously low");
    }
}
